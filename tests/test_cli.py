"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_figure1_defaults(self):
        args = build_parser().parse_args(["figure1"])
        assert args.command == "figure1"
        assert args.points == 51
        assert args.output_dir is None

    def test_sweep_policy_choices(self):
        args = build_parser().parse_args(["sweep", "--policy", "exclusive", "sharing"])
        assert args.policy == ["exclusive", "sharing"]
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--policy", "nonsense"])

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert (args.host, args.port) == ("127.0.0.1", 8080)
        assert args.max_batch == 64
        assert args.max_wait_ms == 2.0
        assert args.cache_size == 4096
        assert args.max_pending == 1024
        assert args.executor is None and args.workers is None
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--max-batch", "8", "--max-wait-ms", "0.5",
             "--max-pending", "16", "--executor", "thread", "--workers", "2"]
        )
        assert (args.port, args.max_batch, args.max_wait_ms) == (0, 8, 0.5)
        assert (args.max_pending, args.executor, args.workers) == (16, "thread", 2)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--executor", "nonsense"])

    def test_serve_help_exits_cleanly(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["serve", "--help"])
        assert excinfo.value.code == 0
        assert "--max-batch" in capsys.readouterr().out

    def test_dynamics_defaults_and_choices(self):
        args = build_parser().parse_args(["dynamics"])
        assert args.rule == "discrete"
        assert args.grid == "quick"
        assert args.batch is None  # auto-tuned from the grid and CPU count
        args = build_parser().parse_args(
            ["dynamics", "--rule", "logit", "--grid", "full", "--batch", "16"]
        )
        assert (args.rule, args.grid, args.batch) == ("logit", "full", 16)
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamics", "--rule", "rk4"])

    def test_sweep_fabric_flags_on_every_experiment_subcommand(self):
        # --executor/--store/--resume ride the shared parent parser, so every
        # experiment sub-command accepts them.
        for command in ("figure1", "observation1", "spoa", "ess", "sweep",
                        "dynamics", "travel-costs", "group-competition",
                        "repeated", "search", "coverage-times", "mechanism",
                        "experiments"):
            args = build_parser().parse_args(
                [command, "--executor", "serial", "--store", "cells", "--resume"]
            )
            assert args.executor == "serial"
            assert str(args.store) == "cells"
            assert args.resume is True
        with pytest.raises(SystemExit):
            build_parser().parse_args(["dynamics", "--executor", "carrier-pigeon"])

    def test_experiment_help_documents_the_fabric_flags(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["dynamics", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        for flag in ("--executor", "--store", "--resume", "--bind"):
            assert flag in out
        assert "distributed" in out

    def test_coverage_times_defaults_and_choices(self):
        args = build_parser().parse_args(["coverage-times"])
        assert args.command == "coverage-times"
        assert args.trials == 400
        assert args.max_rounds == 4000
        assert args.horizon == 64
        assert args.batch is None
        args = build_parser().parse_args(
            ["coverage-times", "--strategies", "uniform", "sigma_star", "--horizon", "16"]
        )
        assert args.strategies == ["uniform", "sigma_star"]
        assert args.horizon == 16
        with pytest.raises(SystemExit):
            build_parser().parse_args(["coverage-times", "--strategies", "nonsense"])

    def test_worker_subcommand_help_and_parsing(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["worker", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "--connect" in out and "coordinator" in out.lower()
        args = build_parser().parse_args(["worker", "--connect", "127.0.0.1:9999"])
        assert args.connect == "127.0.0.1:9999"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])  # --connect is required


class TestCommands:
    def test_figure1_command(self, capsys, tmp_path):
        exit_code = main(
            ["figure1", "--points", "5", "--output-dir", str(tmp_path), "--no-plot"]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "peak at c" in captured.out
        assert "CSV written" in captured.out
        assert list(tmp_path.glob("figure1_*.csv"))

    def test_observation1_command(self, capsys):
        assert main(["observation1"]) == 0
        assert "1 - 1/e" in capsys.readouterr().out

    def test_spoa_command_quick(self, capsys):
        assert main(["spoa", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "exclusive" in out
        assert "Theorem 6" in out

    def test_ess_command(self, capsys):
        assert main(["ess", "--mutants", "3"]) == 0
        assert "ESS" in capsys.readouterr().out

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--m", "8", "--policy", "exclusive", "sharing"]) == 0
        out = capsys.readouterr().out
        assert "exclusive" in out and "sharing" in out

    def test_dynamics_command(self, capsys):
        assert main(["dynamics", "--grid", "quick", "--batch", "8", "--max-iter", "3000"]) == 0
        out = capsys.readouterr().out
        assert "trajectories converged" in out
        assert "exploitability" in out

    def test_coverage_times_command(self, capsys):
        assert main(
            ["coverage-times", "--trials", "60", "--max-rounds", "500",
             "--strategies", "uniform", "proportional"]
        ) == 0
        out = capsys.readouterr().out
        assert "exact vs Monte-Carlo agreement" in out
        assert "uncoverable" in out
        assert "expected_rounds" in out

    def test_observation1_store_round_trip(self, capsys, tmp_path):
        # A cold run populates the store; the warm re-run answers every cell
        # from it and serialises to the same artifact bit for bit.
        store = tmp_path / "cells"
        assert main(["observation1", "--json", "--store", str(store)]) == 0
        cold = capsys.readouterr().out
        assert main(["observation1", "--json", "--store", str(store)]) == 0
        warm = capsys.readouterr().out
        assert cold == warm
        assert (store / "FORMAT").is_file()

    def test_bind_without_distributed_executor_is_an_error(self):
        with pytest.raises(SystemExit):
            main(["observation1", "--bind", "127.0.0.1:0"])

    def test_dynamics_command_json_worker_invariant(self, capsys):
        # Fanning the row chunks out over worker processes must not change
        # the structured result.  (Changing --batch legitimately reshuffles
        # per-task seeds for the rng-backed cells, so only the worker count
        # is varied here.)
        assert main(["dynamics", "--grid", "quick", "--batch", "16", "--json"]) == 0
        serial = capsys.readouterr().out
        assert main(["dynamics", "--grid", "quick", "--batch", "16", "--json", "--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel
