"""Property tests for the batched payoff kernel and the unified dynamics engine.

The core contract: every batched dynamics rule agrees **elementwise** with the
scalar wrappers of :mod:`repro.dynamics` — including ragged site counts, mixed
per-row player counts, rows that start at their equilibrium, and non-trivial
``record_every`` strides — and rows that converge are frozen (never updated
again) while the rest of the batch keeps stepping.

The whole module runs once per available array backend (numpy always;
``array_api_strict`` when installed, skip-marked otherwise) through the
autouse ``array_backend`` fixture, so the engine's scatter-free stepping path
is exercised under the strict namespace while the scalar references stay on
the host.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from repro.batch import (
    PaddedValues,
    best_response_batch,
    best_response_value_batch,
    congestion_table_batch,
    exploitability_batch,
    expected_payoff_batch,
    invasion_batch,
    logit_batch,
    make_rule,
    occupancy_congestion_factor_batch,
    replicator_batch,
    site_values_batch,
)
from repro.batch.dynamics import DynamicsEngine
from repro.batch.payoffs import as_k_vector
from repro.core.payoffs import (
    best_response_value,
    exploitability,
    expected_payoff,
    occupancy_congestion_factor,
    site_values,
)
from repro.core.policies import (
    AggressivePolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.dynamics import (
    best_response_dynamics,
    invasion_dynamics,
    logit_dynamics,
    replicator_dynamics,
)
from repro.utils.numerics import binomial_pmf_matrix, binomial_pmf_tensor

POLICIES = [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.2)]


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every dynamics property test under each available backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture
def ragged_batch():
    """Ragged instances with mixed per-row player counts."""
    rng = np.random.default_rng(7)
    instances = [SiteValues.random(int(m), rng) for m in (4, 9, 6, 3, 11)]
    ks = np.array([2, 5, 3, 4, 2], dtype=np.int64)
    return PaddedValues.from_instances(instances), instances, ks


def random_states(padded: PaddedValues, rng: np.random.Generator) -> np.ndarray:
    states = np.where(padded.mask, rng.random(padded.values.shape), 0.0)
    return states / states.sum(axis=1, keepdims=True)


class TestBinomialPmfTensor:
    def test_matches_matrix_version_per_row(self, ragged_batch):
        padded, _, ks = ragged_batch
        rng = np.random.default_rng(3)
        probs = rng.random(padded.values.shape)
        tensor = binomial_pmf_tensor(ks - 1, probs)
        for row, k in enumerate(ks):
            n = int(k) - 1
            expected = binomial_pmf_matrix(n, probs[row])
            np.testing.assert_allclose(tensor[row, :, : n + 1], expected, atol=1e-14)
            assert np.all(tensor[row, :, n + 1 :] == 0.0)

    def test_scalar_trials_broadcast(self):
        probs = np.array([[0.2, 0.8], [0.5, 0.5]])
        tensor = binomial_pmf_tensor(3, probs)
        assert tensor.shape == (2, 2, 4)
        np.testing.assert_allclose(tensor.sum(axis=2), 1.0)

    def test_zero_trials(self):
        tensor = binomial_pmf_tensor(0, np.array([[0.3, 0.7]]))
        np.testing.assert_allclose(tensor, np.ones((1, 2, 1)))

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            binomial_pmf_tensor(-1, np.array([[0.5]]))
        with pytest.raises(ValueError):
            binomial_pmf_tensor(2, np.array([0.5]))
        with pytest.raises(ValueError):
            binomial_pmf_tensor(2, np.array([[1.5]]))


class TestBatchedPayoffKernel:
    @pytest.mark.parametrize("policy", POLICIES)
    def test_site_values_match_scalar(self, ragged_batch, policy):
        padded, instances, ks = ragged_batch
        states = random_states(padded, np.random.default_rng(11))
        nu = site_values_batch(padded, states, ks, policy)
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            expected = site_values(values, states[row, :m], int(k), policy)
            np.testing.assert_allclose(nu[row, :m], expected, atol=1e-12)
            assert np.all(nu[row, m:] == 0.0)

    def test_congestion_tables_are_zero_padded_per_row(self):
        tables = congestion_table_batch(SharingPolicy(), np.array([1, 3, 0]))
        np.testing.assert_allclose(tables[0], [1.0, 0.5, 0.0, 0.0])
        np.testing.assert_allclose(tables[1], [1.0, 0.5, 1 / 3, 0.25])
        np.testing.assert_allclose(tables[2], [1.0, 0.0, 0.0, 0.0])

    def test_occupancy_factor_matches_scalar(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = SharingPolicy()
        states = random_states(padded, np.random.default_rng(13))
        factor = occupancy_congestion_factor_batch(policy, states, ks - 1)
        for row, (values, k) in enumerate(zip(instances, ks)):
            expected = occupancy_congestion_factor(policy, states[row], int(k) - 1)
            np.testing.assert_allclose(factor[row], expected, atol=1e-12)

    @pytest.mark.parametrize("policy", POLICIES + [AggressivePolicy(0.7)])
    def test_exploitability_and_best_response_match_scalar(self, ragged_batch, policy):
        padded, instances, ks = ragged_batch
        states = random_states(padded, np.random.default_rng(17))
        gaps = exploitability_batch(padded, states, ks, policy)
        best = best_response_value_batch(padded, states, ks, policy)
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            strategy = Strategy(states[row, :m])
            assert np.isclose(gaps[row], exploitability(values, strategy, int(k), policy), atol=1e-12)
            assert np.isclose(best[row], best_response_value(values, strategy, int(k), policy), atol=1e-12)

    def test_expected_payoff_matches_scalar(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = SharingPolicy()
        rng = np.random.default_rng(19)
        focal = random_states(padded, rng)
        opponents = random_states(padded, rng)
        payoffs = expected_payoff_batch(padded, focal, opponents, ks, policy)
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            expected = expected_payoff(
                values, focal[row, :m], opponents[row, :m], int(k), policy
            )
            assert np.isclose(payoffs[row], expected, atol=1e-12)

    def test_masked_best_response_beats_padding_zeros(self):
        # Aggressive payoffs are all negative away from singleton occupancy;
        # the padded columns' zero nu must not win the max.
        padded = PaddedValues.from_instances([[1.0, 0.9], [1.0, 0.8, 0.6]])
        states = np.array([[0.5, 0.5, 0.0], [0.4, 0.3, 0.3]])
        policy = AggressivePolicy(2.0)
        best = best_response_value_batch(padded, states, [3, 3], policy)
        scalar0 = best_response_value([1.0, 0.9], states[0, :2], 3, policy)
        assert np.isclose(best[0], scalar0, atol=1e-12)

    def test_shape_validation(self, ragged_batch):
        padded, _, ks = ragged_batch
        with pytest.raises(ValueError):
            site_values_batch(padded, np.zeros((2, 2)), ks, SharingPolicy())
        with pytest.raises(ValueError):
            as_k_vector([2, 3], 5)
        with pytest.raises(ValueError):
            as_k_vector(0, 3)


def scalar_replicator(values, k, **kwargs):
    return replicator_dynamics(values, int(k), kwargs.pop("policy"), **kwargs)


class TestBatchedDynamicsAgainstScalar:
    """Each batched rule agrees elementwise with the scalar wrappers."""

    @pytest.mark.parametrize("method", ["discrete", "euler"])
    @pytest.mark.parametrize("policy", POLICIES)
    def test_replicator_elementwise(self, ragged_batch, method, policy):
        padded, instances, ks = ragged_batch
        batch = replicator_batch(
            padded, ks, policy, method=method, max_iter=4_000, record_every=77
        )
        for row, (values, k) in enumerate(zip(instances, ks)):
            scalar = replicator_dynamics(
                values, int(k), policy, method=method, max_iter=4_000, record_every=77
            )
            assert scalar.converged == bool(batch.converged[row])
            assert scalar.iterations == int(batch.iterations[row])
            np.testing.assert_allclose(
                scalar.strategy.as_array(), batch.strategy(row).as_array(), atol=1e-10
            )
            np.testing.assert_allclose(scalar.trajectory, batch.trajectory(row), atol=1e-10)
            np.testing.assert_allclose(
                scalar.payoff_history, batch.payoff_history(row), atol=1e-10
            )

    def test_replicator_negative_payoffs(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = AggressivePolicy(0.5)
        batch = replicator_batch(padded, ks, policy, max_iter=6_000)
        for row, (values, k) in enumerate(zip(instances, ks)):
            scalar = replicator_dynamics(values, int(k), policy, max_iter=6_000)
            np.testing.assert_allclose(
                scalar.strategy.as_array(), batch.strategy(row).as_array(), atol=1e-9
            )

    # Rationality is kept in the contractive regime: with a strongly expanding
    # logit map, padded-width float-association differences (einsum reduction
    # order) amplify chaotically mid-trajectory even though the fixed point
    # agrees, so trajectory-level comparison is only meaningful when the map
    # contracts.
    @pytest.mark.parametrize("policy", [SharingPolicy(), AggressivePolicy(1.0)])
    def test_logit_elementwise(self, ragged_batch, policy):
        padded, instances, ks = ragged_batch
        batch = logit_batch(
            padded, ks, policy, rationality=25.0, max_iter=5_000, record_every=311
        )
        for row, (values, k) in enumerate(zip(instances, ks)):
            scalar = logit_dynamics(
                values, int(k), policy, rationality=25.0, max_iter=5_000, record_every=311
            )
            assert scalar.converged == bool(batch.converged[row])
            assert scalar.iterations == int(batch.iterations[row])
            np.testing.assert_allclose(
                scalar.strategy.as_array(), batch.strategy(row).as_array(), atol=1e-10
            )
            np.testing.assert_allclose(scalar.trajectory, batch.trajectory(row), atol=1e-10)

    def test_best_response_elementwise(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = SharingPolicy()
        batch = best_response_batch(padded, ks, policy, max_iter=3_000, record_every=59)
        for row, (values, k) in enumerate(zip(instances, ks)):
            scalar = best_response_dynamics(
                values, int(k), policy, max_iter=3_000, record_every=59
            )
            assert scalar.converged == bool(batch.converged[row])
            assert scalar.iterations == int(batch.iterations[row])
            np.testing.assert_allclose(
                scalar.strategy.as_array(), batch.strategy(row).as_array(), atol=1e-10
            )
            np.testing.assert_allclose(scalar.trajectory, batch.trajectory(row), atol=1e-10)

    def test_invasion_elementwise(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = ExclusivePolicy()
        residents = np.zeros(padded.values.shape)
        mutants = np.zeros(padded.values.shape)
        for row, (values, k) in enumerate(zip(instances, ks)):
            residents[row, : values.m] = sigma_star(values, int(k)).strategy.as_array()
            mutants[row, : values.m] = Strategy.uniform(values.m).as_array()
        batch = invasion_batch(padded, residents, mutants, ks, policy, initial_shares=0.05)
        for row, (values, k) in enumerate(zip(instances, ks)):
            scalar = invasion_dynamics(
                values,
                Strategy(residents[row, : values.m]),
                Strategy(mutants[row, : values.m]),
                int(k),
                policy,
                initial_share=0.05,
            )
            assert scalar.iterations == int(batch.iterations[row])
            assert scalar.mutant_extinct == bool(
                batch.states[row, 0] <= 1e-6
            )
            np.testing.assert_allclose(
                scalar.shares, batch.trajectory(row).ravel(), atol=1e-10
            )

    def test_already_converged_rows(self):
        # Row 0 starts exactly at its equilibrium (converges in one step);
        # row 1 starts far away and must keep stepping unaffected.
        values = SiteValues.zipf(6, exponent=0.8)
        k = 3
        policy = ExclusivePolicy()
        equilibrium = sigma_star(values, k).strategy.as_array()
        far = Strategy.point_mass(6, 5).as_array() * 0.9 + 0.1 / 6
        padded = PaddedValues.from_instances([values, values])
        initial = np.stack([equilibrium, far / far.sum()])
        batch = replicator_batch(padded, k, policy, initial=initial, max_iter=20_000)
        assert bool(batch.converged[0]) and int(batch.iterations[0]) <= 2
        assert int(batch.iterations[1]) > int(batch.iterations[0])
        # The early row's result equals its own scalar run bit-for-bit.
        scalar = replicator_dynamics(
            values, k, policy, initial=Strategy(equilibrium), max_iter=20_000
        )
        np.testing.assert_allclose(
            scalar.strategy.as_array(), batch.strategy(0).as_array(), atol=1e-12
        )

    def test_record_every_strides_match_scalar(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = SharingPolicy()
        for stride in (1, 13, 100):
            batch = replicator_batch(
                padded, ks, policy, max_iter=500, record_every=stride
            )
            for row, (values, k) in enumerate(zip(instances, ks)):
                scalar = replicator_dynamics(
                    values, int(k), policy, max_iter=500, record_every=stride
                )
                assert scalar.trajectory.shape == batch.trajectory(row).shape
                np.testing.assert_allclose(
                    scalar.trajectory, batch.trajectory(row), atol=1e-10
                )


class TestConvergenceMasking:
    def test_converged_rows_are_frozen(self):
        """Regression: per-row masking must stop updating converged rows."""
        values_fast = SiteValues.uniform(4)  # uniform start == equilibrium
        values_slow = SiteValues.zipf(4, exponent=1.0)
        padded = PaddedValues.from_instances([values_fast, values_slow])
        batch = replicator_batch(
            padded, 3, SharingPolicy(), max_iter=2_000, tol=1e-12, record_every=10
        )
        fast_t = int(batch.iterations[0])
        assert bool(batch.converged[0])
        assert fast_t < int(batch.iterations[1])
        # Every snapshot taken after row 0 converged is bit-identical to its
        # final state: the engine never touched the frozen row again.
        later = batch.record_times > fast_t
        assert later.any()
        for index in np.nonzero(later)[0]:
            np.testing.assert_array_equal(
                batch.records[index, 0], batch.states[0]
            )

    def test_early_exit_before_iteration_cap(self):
        values = SiteValues.uniform(5)
        padded = PaddedValues.from_instances([values, values])
        batch = replicator_batch(padded, 2, SharingPolicy(), max_iter=10_000)
        # Uniform values + uniform start converge immediately for every row,
        # so the recorded snapshots stop right away instead of running the cap.
        assert batch.converged.all()
        assert batch.record_times.max() <= batch.iterations.max()
        assert batch.iterations.max() <= 2


class TestEngineValidation:
    def test_unknown_rule_name(self):
        with pytest.raises(ValueError):
            make_rule("rk4")

    def test_initial_shape_mismatch(self):
        padded = PaddedValues.from_instances([[1.0, 0.5], [1.0, 0.9]])
        engine = DynamicsEngine(padded, 2, SharingPolicy(), make_rule("discrete"))
        with pytest.raises(ValueError):
            engine.run(np.full((3, 2), 0.5))

    def test_invasion_strategy_shape_mismatch(self):
        padded = PaddedValues.from_instances([[1.0, 0.5]])
        with pytest.raises(ValueError):
            invasion_batch(
                padded, np.zeros((2, 2)), np.zeros((2, 2)), 2, SharingPolicy()
            )

    def test_rule_parameter_validation(self):
        with pytest.raises(ValueError):
            make_rule("euler", step_size=0.0)
        with pytest.raises(ValueError):
            make_rule("logit", rationality=0.0)
        with pytest.raises(ValueError):
            make_rule("best-response", step_size=0.0)
