"""Tests for the extensions subpackage (Section 5.1 / 5.2 generalisations)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage, optimal_coverage_strategy
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.extensions import (
    adaptive_sigma_star_schedule,
    capacity_coverage,
    capacity_coverage_gradient,
    cost_adjusted_ifd,
    cost_adjusted_site_values,
    expected_repeated_dispersal,
    maximize_capacity_coverage,
    simulate_repeated_dispersal,
    two_group_competition,
)
from repro.extensions.repeated import constant_schedule


class TestTravelCosts:
    def test_zero_costs_reduce_to_core_model(self, small_values):
        for policy in (ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.2)):
            core = ideal_free_distribution(small_values, 3, policy)
            extended = cost_adjusted_ifd(small_values, 0.0, 3, policy)
            assert extended.strategy.total_variation(core.strategy) < 1e-7
            assert extended.value == pytest.approx(core.value, abs=1e-7)

    def test_costs_shift_mass_away_from_expensive_sites(self, small_values):
        # Make the top site expensive to reach: its equilibrium probability drops.
        costs = np.array([0.3, 0.0, 0.0, 0.0])
        free = ideal_free_distribution(small_values, 3, ExclusivePolicy())
        priced = cost_adjusted_ifd(small_values, costs, 3, ExclusivePolicy())
        assert priced.strategy.as_array()[0] < free.strategy.as_array()[0]

    def test_equal_payoffs_on_support(self, small_values):
        costs = np.array([0.2, 0.1, 0.05, 0.0])
        result = cost_adjusted_ifd(small_values, costs, 4, SharingPolicy())
        nu = cost_adjusted_site_values(small_values, costs, result.strategy, 4, SharingPolicy())
        support = result.strategy.as_array() > 1e-9
        spread = nu[support].max() - nu[support].min()
        assert spread < 1e-6
        if np.any(~support):
            assert nu[~support].max() <= nu[support].mean() + 1e-6

    def test_net_value_can_be_negative(self):
        # One site, expensive: the players must still go there and eat the loss.
        values = SiteValues.uniform(1)
        result = cost_adjusted_ifd(values, 2.0, 3, ExclusivePolicy())
        assert result.strategy.as_array()[0] == pytest.approx(1.0)
        assert result.value < 0

    def test_single_player_picks_best_net_site(self, small_values):
        costs = np.array([0.9, 0.0, 0.0, 0.0])
        result = cost_adjusted_ifd(small_values, costs, 1, SharingPolicy())
        # Net values: [0.1, 0.6, 0.3, 0.15] -> site 1 is best.
        assert result.strategy == Strategy.point_mass(4, 1)

    def test_constant_policy_concentrates_on_best_net_site(self, small_values):
        costs = np.array([0.9, 0.0, 0.0, 0.0])
        result = cost_adjusted_ifd(small_values, costs, 3, ConstantPolicy())
        assert result.strategy == Strategy.point_mass(4, 1)

    def test_coverage_at_costly_equilibrium_is_below_optimum(self, small_values):
        costs = np.array([0.0, 0.0, 0.25, 0.25])
        result = cost_adjusted_ifd(small_values, costs, 3, ExclusivePolicy())
        assert coverage(small_values, result.strategy, 3) <= optimal_coverage(small_values, 3)

    def test_validation(self, small_values):
        with pytest.raises(ValueError):
            cost_adjusted_ifd(small_values, np.array([0.1, 0.2]), 2, SharingPolicy())
        with pytest.raises(ValueError):
            cost_adjusted_ifd(small_values, -0.5, 2, SharingPolicy())

    @given(
        seed=st.integers(0, 500),
        k=st.integers(2, 5),
        scale=st.floats(0.0, 0.5),
    )
    @settings(max_examples=20, deadline=None)
    def test_cost_adjusted_equilibrium_is_unexploitable(self, seed, k, scale):
        rng = np.random.default_rng(seed)
        values = SiteValues.random(5, rng)
        costs = rng.uniform(0.0, scale, size=5)
        policy = SharingPolicy()
        result = cost_adjusted_ifd(values, costs, k, policy)
        nu = cost_adjusted_site_values(values, costs, result.strategy, k, policy)
        own = float(np.dot(result.strategy.as_array(), nu))
        assert nu.max() <= own + 1e-6


class TestCapacityCoverage:
    def test_requirement_one_equals_core_coverage(self, small_values):
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        for k in (1, 2, 5):
            assert capacity_coverage(small_values, strategy, k, 1) == pytest.approx(
                coverage(small_values, strategy, k), rel=1e-10
            )

    def test_higher_requirements_reduce_coverage(self, small_values):
        strategy = Strategy.uniform(4)
        k = 4
        values = [capacity_coverage(small_values, strategy, k, r) for r in (1, 2, 3)]
        assert values[0] > values[1] > values[2]

    def test_bounded_by_total_value(self, small_values):
        strategy = Strategy.uniform(4)
        assert capacity_coverage(small_values, strategy, 6, 2) <= small_values.total

    def test_gradient_matches_finite_differences(self, small_values):
        k = 4
        requirements = np.array([1, 2, 2, 3])
        p = np.array([0.4, 0.3, 0.2, 0.1])
        grad = capacity_coverage_gradient(small_values, p, k, requirements)
        h = 1e-6
        for x in range(4):
            bumped = p.copy()
            bumped[x] += h
            numeric = (
                capacity_coverage(small_values, bumped, k, requirements)
                - capacity_coverage(small_values, p, k, requirements)
            ) / h
            assert grad[x] == pytest.approx(numeric, rel=1e-3, abs=1e-6)

    def test_optimizer_matches_sigma_star_when_requirement_is_one(self, small_values):
        k = 3
        result = maximize_capacity_coverage(small_values, k, 1)
        closed = optimal_coverage_strategy(small_values, k)
        assert result.coverage == pytest.approx(closed.coverage, abs=1e-7)

    def test_optimizer_beats_baselines_with_requirements(self, small_values):
        k = 5
        requirements = np.array([2, 1, 1, 1])
        result = maximize_capacity_coverage(small_values, k, requirements)
        for baseline in (
            Strategy.uniform(4),
            Strategy.proportional(small_values.as_array()),
            sigma_star(small_values, k).strategy,
        ):
            assert result.coverage >= capacity_coverage(small_values, baseline, k, requirements) - 1e-8

    def test_requirements_shift_mass_towards_demanding_valuable_sites(self):
        # A valuable site that needs 2 visitors draws more probability than it
        # would under the standard coverage objective.
        values = SiteValues.from_values([1.0, 0.8, 0.2])
        k = 4
        requirements = np.array([2, 1, 1])
        constrained = maximize_capacity_coverage(values, k, requirements)
        unconstrained = optimal_coverage_strategy(values, k)
        assert constrained.strategy.as_array()[0] > unconstrained.strategy.as_array()[0]

    def test_validation(self, small_values):
        with pytest.raises(ValueError):
            capacity_coverage(small_values, Strategy.uniform(4), 2, 0)
        with pytest.raises(ValueError):
            capacity_coverage(small_values, Strategy.uniform(4), 2, np.array([1, 2]))


class TestRepeatedDispersal:
    def test_full_depletion_single_round_matches_coverage(self, small_values):
        star = sigma_star(small_values, 3).strategy
        result = simulate_repeated_dispersal(
            small_values, 3, constant_schedule(star), rounds=1, depletion=0.0,
            n_trials=4_000, rng=0,
        )
        exact = coverage(small_values, star, 3)
        assert result.cumulative_consumption_mean == pytest.approx(exact, abs=0.03)

    def test_consumption_plus_remaining_is_total(self, small_values):
        star = sigma_star(small_values, 3).strategy
        result = simulate_repeated_dispersal(
            small_values, 3, constant_schedule(star), rounds=4, depletion=0.25,
            n_trials=500, rng=1,
        )
        assert result.cumulative_consumption_mean + result.remaining_value_mean == pytest.approx(
            small_values.total, rel=1e-9
        )

    def test_adaptive_schedule_beats_constant_schedule(self, medium_values):
        # Re-solving sigma_star on the depleted values consumes more over the
        # horizon than repeating the round-one strategy.
        k, rounds = 4, 5
        star = sigma_star(medium_values, k).strategy
        constant = simulate_repeated_dispersal(
            medium_values, k, constant_schedule(star), rounds=rounds, depletion=0.0,
            n_trials=1_500, rng=2,
        )
        adaptive = simulate_repeated_dispersal(
            medium_values, k, adaptive_sigma_star_schedule(k), rounds=rounds, depletion=0.0,
            n_trials=1_500, rng=2,
        )
        assert adaptive.cumulative_consumption_mean > constant.cumulative_consumption_mean

    def test_per_round_consumption_decreases_with_depletion(self, small_values):
        star = sigma_star(small_values, 3).strategy
        result = simulate_repeated_dispersal(
            small_values, 3, constant_schedule(star), rounds=5, depletion=0.0,
            n_trials=2_000, rng=3,
        )
        assert np.all(np.diff(result.per_round_consumption) <= 1e-9)

    def test_validation(self, small_values):
        star = sigma_star(small_values, 2).strategy
        with pytest.raises(ValueError):
            simulate_repeated_dispersal(
                small_values, 2, constant_schedule(star), rounds=0
            )
        with pytest.raises(ValueError):
            simulate_repeated_dispersal(
                small_values, 2, constant_schedule(star), depletion=1.5
            )
        with pytest.raises(ValueError):
            simulate_repeated_dispersal(
                small_values, 2, constant_schedule(Strategy.uniform(3))
            )

    @pytest.mark.parametrize("bad", [1.0, -0.01, float("nan"), float("inf")])
    def test_depletion_bounds_error_states_the_contract(self, small_values, bad):
        star = sigma_star(small_values, 2).strategy
        with pytest.raises(ValueError, match=r"depletion must lie in \[0, 1\)"):
            simulate_repeated_dispersal(
                small_values, 2, constant_schedule(star), depletion=bad
            )
        with pytest.raises(ValueError, match=r"depletion must lie in \[0, 1\)"):
            expected_repeated_dispersal(
                small_values, 2, constant_schedule(star), depletion=bad
            )

    def test_zero_depletion_fully_consumes_visited_sites(self, small_values):
        # Regression for the depletion == 0 contract: one round with a point
        # mass on the top site consumes exactly that site's value, and the
        # site contributes nothing in later rounds.
        point = constant_schedule(Strategy.point_mass(small_values.m, 0))
        result = simulate_repeated_dispersal(
            small_values, 3, point, rounds=3, depletion=0.0, n_trials=64, rng=0
        )
        top = float(small_values.as_array()[0])
        assert result.per_round_consumption[0] == pytest.approx(top, abs=1e-12)
        np.testing.assert_allclose(result.per_round_consumption[1:], 0.0, atol=1e-12)
        assert result.remaining_value_mean == pytest.approx(
            small_values.total - top, abs=1e-12
        )
        exact = expected_repeated_dispersal(
            small_values, 3, point, rounds=3, depletion=0.0
        )
        assert exact.cumulative_consumption == pytest.approx(top, abs=1e-12)
        assert exact.remaining_value == pytest.approx(small_values.total - top, abs=1e-12)

    def test_expected_track_matches_monte_carlo(self, small_values):
        schedule = adaptive_sigma_star_schedule(3)
        exact = expected_repeated_dispersal(
            small_values, 3, schedule, rounds=4, depletion=0.25
        )
        simulated = simulate_repeated_dispersal(
            small_values, 3, schedule, rounds=4, depletion=0.25, n_trials=6_000, rng=4
        )
        assert simulated.cumulative_consumption_mean == pytest.approx(
            exact.cumulative_consumption, abs=0.05
        )
        np.testing.assert_allclose(
            simulated.per_round_consumption, exact.per_round_consumption, atol=0.05
        )
        assert exact.cumulative_consumption + exact.remaining_value == pytest.approx(
            small_values.total, rel=1e-9
        )


class TestGroupCompetition:
    def test_exclusive_first_group_consumes_optimal_coverage(self, medium_values):
        result = two_group_competition(
            medium_values, ExclusivePolicy(), SharingPolicy(), k_first=5, k_second=5
        )
        assert result.first_consumption == pytest.approx(optimal_coverage(medium_values, 5), rel=1e-9)

    def test_exclusive_group_beats_sharing_group_when_first(self, medium_values):
        exclusive_first = two_group_competition(
            medium_values, ExclusivePolicy(), SharingPolicy(), k_first=5
        )
        sharing_first = two_group_competition(
            medium_values, SharingPolicy(), ExclusivePolicy(), k_first=5
        )
        # Going first with the exclusive rule secures more than going first with sharing.
        assert exclusive_first.first_consumption > sharing_first.first_consumption
        # And leaves less for the opponent.
        assert exclusive_first.second_consumption < sharing_first.second_consumption
        assert exclusive_first.first_share > sharing_first.first_share

    def test_aggressive_group_covers_less_than_exclusive(self, medium_values):
        aggressive_first = two_group_competition(
            medium_values, AggressivePolicy(0.5), SharingPolicy(), k_first=5
        )
        exclusive_first = two_group_competition(
            medium_values, ExclusivePolicy(), SharingPolicy(), k_first=5
        )
        assert aggressive_first.first_consumption < exclusive_first.first_consumption

    def test_individual_payoffs_reported(self, medium_values):
        result = two_group_competition(
            medium_values, SharingPolicy(), SharingPolicy(), k_first=4, k_second=6
        )
        assert result.first_individual_payoff > 0
        assert result.second_individual_payoff > 0
        # Second group feeds on leftovers: lower per-capita intake.
        assert result.second_individual_payoff < result.first_individual_payoff

    def test_conservation_of_value(self, medium_values):
        result = two_group_competition(
            medium_values, ExclusivePolicy(), ExclusivePolicy(), k_first=3
        )
        total = result.first_consumption + result.second_consumption + result.leftover_value
        assert total == pytest.approx(medium_values.total, rel=1e-6)

    def test_default_second_group_size(self, small_values):
        result = two_group_competition(small_values, SharingPolicy(), SharingPolicy(), k_first=3)
        assert result.first_consumption > 0 and result.second_consumption > 0
