"""Tests for the symmetric price of anarchy (Corollary 5, Theorem 6)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.spoa import (
    adversarial_values,
    spoa_instance,
    spoa_lower_bound_certificate,
    spoa_search,
)
from repro.core.sigma_star import support_size
from repro.core.values import SiteValues


class TestCorollary5:
    """SPoA of the exclusive policy is exactly 1."""

    def test_fixture_instance(self, small_values):
        for k in (2, 3, 6):
            result = spoa_instance(small_values, k, ExclusivePolicy())
            assert result.ratio == pytest.approx(1.0, abs=1e-9)

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_randomised(self, seed, m, k):
        values = SiteValues.random(m, np.random.default_rng(seed))
        result = spoa_instance(values, k, ExclusivePolicy())
        assert result.ratio == pytest.approx(1.0, abs=1e-8)

    def test_search_never_exceeds_one(self):
        ratio, _ = spoa_search(
            ExclusivePolicy(), k_values=(2, 3), m_values=(2, 6), n_random=5, rng=0
        )
        assert ratio == pytest.approx(1.0, abs=1e-8)


class TestTheorem6:
    """Every non-exclusive congestion policy has SPoA strictly above 1."""

    @pytest.mark.parametrize(
        "policy",
        [
            SharingPolicy(),
            ConstantPolicy(),
            TwoLevelPolicy(0.3),
            TwoLevelPolicy(-0.3),
            AggressivePolicy(0.75),
            PowerLawPolicy(0.5),
            PowerLawPolicy(3.0),
            ExponentialPolicy(0.5),
        ],
        ids=["sharing", "constant", "c=+0.3", "c=-0.3", "aggressive", "pow0.5", "pow3", "exp0.5"],
    )
    def test_certificate_instance_strictly_above_one(self, policy):
        for k in (2, 3, 5):
            certificate = spoa_lower_bound_certificate(policy, k)
            assert certificate.ratio > 1.0 + 1e-9, (policy.name, k, certificate)

    def test_adversarial_values_support_premise(self):
        # The adversarial profile forces the exclusive support beyond 2k sites.
        for k in (2, 4, 7):
            values = adversarial_values(SharingPolicy(), k)
            assert support_size(values, k) >= 2 * k

    def test_exclusive_certificate_is_exactly_one(self):
        certificate = spoa_lower_bound_certificate(ExclusivePolicy(), 4)
        assert certificate.ratio == pytest.approx(1.0, abs=1e-9)

    def test_constant_policy_spoa_grows_with_k(self):
        # Under C == 1 everyone sits on the top site, so on near-uniform values
        # the SPoA is close to k (the paper's "roughly k" remark).
        values = SiteValues.slowly_decreasing(100, 8)
        ratios = [spoa_instance(values, k, ConstantPolicy()).ratio for k in (2, 4, 8)]
        assert np.all(np.diff(ratios) > 0)
        assert ratios[-1] > 4.0


class TestSharingBound:
    """Kleinberg-Oren / Vetta: SPoA of the sharing policy is at most 2."""

    def test_randomised_search_below_two(self):
        ratio, instance = spoa_search(
            SharingPolicy(),
            k_values=(2, 3, 5),
            m_values=(2, 5, 10),
            n_random=10,
            rng=1,
        )
        assert 1.0 <= ratio <= 2.0 + 1e-9
        assert instance.equilibrium_coverage > 0

    @given(
        seed=st.integers(min_value=0, max_value=1000),
        m=st.integers(min_value=2, max_value=12),
        k=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=30, deadline=None)
    def test_per_instance_bound(self, seed, m, k):
        values = SiteValues.random(m, np.random.default_rng(seed))
        result = spoa_instance(values, k, SharingPolicy())
        assert result.ratio <= 2.0 + 1e-6


class TestSPoAInstanceFields:
    def test_fields(self, small_values):
        result = spoa_instance(small_values, 3, SharingPolicy())
        assert result.m == 4
        assert result.k == 3
        assert result.optimal_coverage >= result.equilibrium_coverage > 0
        assert result.ratio == pytest.approx(
            result.optimal_coverage / result.equilibrium_coverage
        )

    def test_search_returns_best_instance(self):
        ratio, instance = spoa_search(
            TwoLevelPolicy(0.4), k_values=(2,), m_values=(2, 4), n_random=3, rng=2
        )
        assert ratio == pytest.approx(instance.ratio)
        assert ratio > 1.0
