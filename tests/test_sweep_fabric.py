"""The sweep fabric: executor strategies, the incremental store, resume.

The contracts under test:

* **strategy bit-identity** — all four executor strategies (serial,
  process, async, distributed) produce bit-identical ``ExperimentResult``
  artifacts for the same spec + seed, property-tested over specs and seeds;
* **content addresses** — :func:`repro.utils.canonical.cell_key` is stable,
  spelling-invariant over parameter values, and sensitive to everything a
  cell's output depends on (family, task, params, seed, grid index);
* **fault tolerance** — a worker process or connection dying mid-chunk
  retries that chunk (bounded) with the same per-task seeds instead of
  poisoning the run; deterministic task errors propagate immediately;
* **interrupt/resume** — a sweep killed mid-flight leaves only complete
  cells in the store, the resumed run is bit-identical to an uninterrupted
  one, and a widened grid recomputes only the new cells.
"""

from __future__ import annotations

import os
import pickle
import signal
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import numpy as np
import pytest

from repro.analysis.observation1 import build_observation1_spec
from repro.analysis.stochastic_experiments import build_coverage_times_spec
from repro.analysis.sweeps import build_dynamics_spec, build_sweep_spec
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.experiments import (
    DistributedExecutor,
    ExperimentSpec,
    ExperimentStore,
    cell_keys_for,
    make_executor,
    run_experiment,
)
from repro.experiments.executors import (
    ExecutorError,
    ProcessExecutor,
    TaskPayload,
    executor_names,
)
from repro.experiments.runner import auto_chunk_size, resolve_batch_rows
from repro.experiments.store import STORE_FORMAT
from repro.experiments.worker import parse_address
from repro.utils.canonical import cell_key

REPO = Path(__file__).resolve().parent.parent


def small_spec(seed: int = 7) -> ExperimentSpec:
    return build_observation1_spec(m_values=(4,), k_values=(2, 3), n_random=1, seed=seed)


# --------------------------------------------------------------------------
# module-level tasks (worker processes need picklable, importable functions)
# --------------------------------------------------------------------------


def square_task(params, rng):
    return {"x": params["x"], "sq": params["x"] ** 2, "noise": float(rng.random())}


def crash_if_marker_task(params, rng):
    """Die hard (``os._exit``) while a sentinel file exists, else compute.

    First execution of the marked cell kills its worker process mid-chunk;
    the retry (marker removed by then) must reproduce the same output from
    the same per-task seed.
    """
    marker = Path(params["marker"])
    if params["x"] == params["victim"] and marker.exists():
        marker.unlink()
        os._exit(1)
    return {"x": params["x"], "noise": float(rng.random())}


def failing_task(params, rng):
    if params["x"] == 2:
        raise ValueError("cell 2 is bad by construction")
    return params["x"]


def abort_after_task(params, rng):
    """Raise KeyboardInterrupt once ``limit`` cells have completed (via counter file)."""
    counter = Path(params["counter"])
    done = int(counter.read_text()) if counter.exists() else 0
    if done >= params["limit"]:
        raise KeyboardInterrupt
    counter.write_text(str(done + 1))
    return {"x": params["x"], "noise": float(rng.random())}


def simple_grid_spec(task, n: int = 8, seed: int = 3, **extra) -> ExperimentSpec:
    return ExperimentSpec(
        name="fabric-test",
        description="synthetic fabric-test grid",
        task=task,
        grid=tuple({"x": i, **extra} for i in range(n)),
        seed=seed,
    )


# --------------------------------------------------------------------------
# executor strategies: bit-identity across all four
# --------------------------------------------------------------------------


class TestExecutorBitIdentity:
    def test_all_strategies_registered(self):
        assert executor_names() == ("async", "distributed", "process", "serial")

    @pytest.mark.parametrize("seed", [0, 7, 20180503])
    @pytest.mark.parametrize("name", ["process", "async"])
    def test_pool_strategies_match_serial(self, name, seed):
        spec = small_spec(seed=seed)
        serial = run_experiment(spec, executor="serial")
        parallel = run_experiment(spec, max_workers=2, executor=name)
        assert serial.to_json(timing=False) == parallel.to_json(timing=False)
        assert parallel.metadata["runtime"]["executor"] == name

    @pytest.mark.parametrize("seed", [0, 7])
    def test_distributed_matches_serial(self, seed):
        spec = small_spec(seed=seed)
        serial = run_experiment(spec, executor="serial")
        executor = DistributedExecutor(workers=2, spawn="thread")
        distributed = run_experiment(spec, max_workers=2, executor=executor)
        assert serial.to_json(timing=False) == distributed.to_json(timing=False)
        assert distributed.metadata["runtime"]["executor"] == "distributed"

    def test_distributed_subprocess_workers_end_to_end(self):
        # The real deployment shape: the coordinator auto-spawns
        # `repro-dispersal worker` subprocesses that pull chunks over TCP.
        spec = small_spec()
        serial = run_experiment(spec, executor="serial")
        executor = DistributedExecutor(workers=2, spawn="process")
        distributed = run_experiment(spec, max_workers=2, executor=executor)
        assert serial.to_json(timing=False) == distributed.to_json(timing=False)

    def test_strategies_match_on_coverage_times_grid(self):
        # The coverage-times tasks draw chunk-wide rng for both the instance
        # families and the merged-search Monte-Carlo pass — a worst case for
        # seed threading through the executors.
        spec = coverage_times_spec()
        artifacts = {
            name: run_experiment(spec, max_workers=2, executor=name).to_json(timing=False)
            for name in ("serial", "process", "async")
        }
        assert len(set(artifacts.values())) == 1

    def test_strategies_match_on_rng_heavy_dynamics_grid(self):
        # Property-style sweep over a spec whose tasks consume chunk-wide rng.
        spec = build_dynamics_spec(
            families=("uniform", "zipf"),
            m_values=(5,),
            k_values=(2, 3),
            inits=("random",),
            batch_rows=2,
            max_iter=500,
            seed=11,
        )
        artifacts = {
            name: run_experiment(spec, max_workers=2, executor=name).to_json(timing=False)
            for name in ("serial", "process", "async")
        }
        assert len(set(artifacts.values())) == 1

    def test_default_executor_keeps_legacy_metadata_shape(self):
        spec = small_spec()
        serial = run_experiment(spec)
        assert serial.metadata["runtime"]["max_workers"] == 0
        assert serial.metadata["runtime"]["executor"] == "serial"
        parallel = run_experiment(spec, max_workers=2)
        assert parallel.metadata["runtime"]["max_workers"] == 2
        assert parallel.metadata["runtime"]["executor"] == "process"

    def test_unknown_executor_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("carrier-pigeon")


# --------------------------------------------------------------------------
# chunk auto-tuning
# --------------------------------------------------------------------------


class TestAutoChunkSize:
    def test_targets_at_least_two_chunks_per_worker(self):
        for n_cells in (1, 7, 64, 1000, 54):
            for workers in (1, 2, 4, 8):
                chunk = auto_chunk_size(n_cells, workers)
                n_chunks = -(-n_cells // chunk)
                assert chunk >= 1
                if n_cells >= 2 * workers:
                    assert n_chunks >= 2 * workers

    def test_caps_chunk_for_streaming(self):
        assert auto_chunk_size(1_000_000, 2) == 256

    def test_empty_grid_and_defaults(self):
        assert auto_chunk_size(0, 4) == 1
        assert auto_chunk_size(10) >= 1  # workers default to available CPUs

    def test_resolve_batch_rows_auto_and_explicit(self):
        assert resolve_batch_rows(16, 1000) == 16
        auto = resolve_batch_rows(None, 1000)
        assert 1 <= auto <= 256
        with pytest.raises(ValueError):
            resolve_batch_rows(0, 10)

    def test_spec_builders_record_the_resolved_value(self):
        spec = build_dynamics_spec(
            families=("uniform",), m_values=(5,), k_values=(2,), inits=("uniform",)
        )
        batch = spec.metadata["batch_rows"]
        assert isinstance(batch, int) and batch >= 1
        # Passing the recorded value back reproduces the same chunking.
        pinned = build_dynamics_spec(
            families=("uniform",), m_values=(5,), k_values=(2,),
            inits=("uniform",), batch_rows=batch,
        )
        assert pinned.n_tasks == spec.n_tasks


# --------------------------------------------------------------------------
# content addresses
# --------------------------------------------------------------------------


class TestCellKeys:
    def test_deterministic_and_index_sensitive(self):
        key = cell_key("sweep", {"k": 3, "m": 5}, 0, 1, task="t")
        assert key == cell_key("sweep", {"k": 3, "m": 5}, 0, 1, task="t")
        assert key != cell_key("sweep", {"k": 3, "m": 5}, 0, 2, task="t")
        assert key != cell_key("sweep", {"k": 3, "m": 5}, 1, 1, task="t")
        assert key != cell_key("other", {"k": 3, "m": 5}, 0, 1, task="t")
        assert key != cell_key("sweep", {"k": 3, "m": 5}, 0, 1, task="u")
        assert key != cell_key("sweep", {"k": 4, "m": 5}, 0, 1, task="t")

    def test_spelling_invariance(self):
        # numpy scalars, arrays vs lists-in-tuples, mapping order: one key.
        a = cell_key("s", {"k": np.int64(3), "w": np.asarray([1.0, 2.0])}, 0, 0)
        b = cell_key("s", {"w": (1.0, 2.0), "k": 3}, 0, 0)
        assert a == b

    def test_policy_objects_hash_by_type_and_state(self):
        a = cell_key("s", {"policy": SharingPolicy()}, 0, 0)
        b = cell_key("s", {"policy": SharingPolicy()}, 0, 0)
        c = cell_key("s", {"policy": ExclusivePolicy()}, 0, 0)
        assert a == b
        assert a != c

    def test_cell_keys_for_covers_the_grid_in_order(self):
        spec = small_spec()
        keys = cell_keys_for(spec)
        assert len(keys) == spec.n_tasks
        assert len(set(keys)) == spec.n_tasks
        assert keys == cell_keys_for(spec)
        assert keys != cell_keys_for(spec.with_seed(spec.seed + 1))


# --------------------------------------------------------------------------
# the store
# --------------------------------------------------------------------------


class TestExperimentStore:
    def test_round_trip_and_len(self, tmp_path):
        store = ExperimentStore(tmp_path / "cells")
        key = "ab" * 32
        assert key not in store
        store.put(key, {"rows": [1, 2, 3]})
        assert key in store
        assert store.get(key) == {"rows": [1, 2, 3]}
        assert len(store) == 1
        assert list(store.keys()) == [key]
        store.discard(key)
        assert key not in store and len(store) == 0

    def test_format_marker_and_version_check(self, tmp_path):
        root = tmp_path / "cells"
        ExperimentStore(root)
        assert (root / "FORMAT").read_text().strip() == str(STORE_FORMAT)
        ExperimentStore(root)  # reopening is fine
        (root / "FORMAT").write_text("999\n")
        with pytest.raises(ValueError, match="format 999"):
            ExperimentStore(root)
        (root / "FORMAT").write_text("not-a-store\n")
        with pytest.raises(ValueError, match="not a repro experiment store"):
            ExperimentStore(root)

    def test_corrupt_entry_is_a_miss_and_gets_cleared(self, tmp_path):
        store = ExperimentStore(tmp_path / "cells")
        key = "cd" * 32
        store.put(key, 42)
        store.path_for(key).write_bytes(b"\x80\x04 truncated garbage")
        assert store.get(key, "miss") == "miss"
        assert key not in store  # debris cleared, cell will be recomputed

    def test_no_temp_debris_after_puts(self, tmp_path):
        store = ExperimentStore(tmp_path / "cells")
        for i in range(10):
            store.put(f"{i:02d}" + "e" * 62, list(range(i)))
        assert not list(Path(tmp_path / "cells").rglob("*.tmp"))

    def test_runner_accepts_a_path_and_reports_hit_counts(self, tmp_path):
        spec = small_spec()
        cold = run_experiment(spec, store=tmp_path / "cells")
        warm = run_experiment(spec, store=tmp_path / "cells")
        assert cold.metadata["runtime"]["store"] == {
            "path": str(tmp_path / "cells"), "hits": 0, "misses": spec.n_tasks,
        }
        assert warm.metadata["runtime"]["store"] == {
            "path": str(tmp_path / "cells"), "hits": spec.n_tasks, "misses": 0,
        }
        assert cold.to_json(timing=False) == warm.to_json(timing=False)

    def test_resume_false_recomputes_but_still_writes(self, tmp_path):
        spec = small_spec()
        run_experiment(spec, store=tmp_path / "cells")
        again = run_experiment(spec, store=tmp_path / "cells", resume=False)
        assert again.metadata["runtime"]["store"]["hits"] == 0
        assert again.metadata["runtime"]["store"]["misses"] == spec.n_tasks

    def test_store_is_backend_and_executor_agnostic(self, tmp_path):
        # Cells computed serially serve a parallel re-run and vice versa.
        spec = small_spec()
        run_experiment(spec, executor="serial", store=tmp_path / "cells")
        warm = run_experiment(
            spec, max_workers=2, executor="process", store=tmp_path / "cells"
        )
        assert warm.metadata["runtime"]["store"]["hits"] == spec.n_tasks


# --------------------------------------------------------------------------
# fault tolerance
# --------------------------------------------------------------------------


class TestFaultTolerance:
    def test_process_pool_retries_a_killed_chunk_bit_identically(self, tmp_path):
        marker = tmp_path / "crash-once"
        marker.touch()
        spec = simple_grid_spec(
            crash_if_marker_task, n=6, marker=str(marker), victim=4
        )
        result = run_experiment(spec, max_workers=2, executor="process")
        assert not marker.exists()  # the crash really happened
        baseline = run_experiment(spec, executor="serial")
        assert result.to_json(timing=False) == baseline.to_json(timing=False)

    def test_process_pool_gives_up_after_bounded_retries(self, tmp_path):
        executor = ProcessExecutor(workers=2, max_retries=1)
        payloads = [
            TaskPayload(index=i, task=_exit_task, params={}, seed=np.random.SeedSequence(i))
            for i in range(4)
        ]
        with pytest.raises(ExecutorError, match="max_retries=1"):
            list(executor.run(payloads, chunk_size=2))

    def test_task_exceptions_propagate_without_retry(self):
        spec = simple_grid_spec(failing_task, n=4)
        with pytest.raises(ValueError, match="cell 2 is bad"):
            run_experiment(spec, max_workers=2, executor="process")

    def test_distributed_reports_task_errors_from_workers(self):
        spec = simple_grid_spec(failing_task, n=4)
        executor = DistributedExecutor(workers=2, spawn="thread")
        with pytest.raises(ExecutorError, match="cell 2 is bad"):
            run_experiment(spec, max_workers=2, executor=executor)

    def test_distributed_survives_a_killed_worker_process(self, tmp_path):
        # One auto-spawned worker subprocess os._exit()s mid-chunk; the
        # surviving worker re-pulls the requeued chunk and the sweep
        # completes bit-identically.
        marker = tmp_path / "crash-once"
        marker.touch()
        spec = simple_grid_spec(
            crash_if_marker_task, n=6, marker=str(marker), victim=4
        )
        executor = DistributedExecutor(workers=2, spawn="process")
        result = run_experiment(spec, max_workers=2, executor=executor)
        assert not marker.exists()
        baseline = run_experiment(spec, executor="serial")
        assert result.to_json(timing=False) == baseline.to_json(timing=False)

    def test_distributed_stalls_out_when_no_workers_show_up(self):
        executor = DistributedExecutor(spawn=None, wait_timeout=0.3)
        payloads = [
            TaskPayload(index=0, task=square_task, params={"x": 1},
                        seed=np.random.SeedSequence(0))
        ]
        with pytest.raises(ExecutorError, match="no workers connected"):
            list(executor.run(payloads, chunk_size=1))

    def test_parse_address(self):
        assert parse_address("127.0.0.1:5000") == ("127.0.0.1", 5000)
        assert parse_address("[::1]:5000") == ("::1", 5000)
        with pytest.raises(ValueError):
            parse_address("5000")


def _exit_task(params, rng):  # pragma: no cover - runs in worker processes
    os._exit(1)


# --------------------------------------------------------------------------
# interrupt / resume
# --------------------------------------------------------------------------


class TestInterruptResume:
    def test_interrupted_sweep_keeps_only_complete_cells_then_resumes(self, tmp_path):
        counter = tmp_path / "counter"
        spec = simple_grid_spec(
            abort_after_task, n=8, counter=str(counter), limit=3
        )
        store_root = tmp_path / "cells"
        with pytest.raises(KeyboardInterrupt):
            run_experiment(spec, store=store_root)

        # Only the cells that finished before the interrupt are stored, each
        # one complete and loadable.
        store = ExperimentStore(store_root)
        keys = cell_keys_for(spec)
        stored = [key for key in keys if key in store]
        assert len(stored) == 3
        for key in stored:
            assert store.get(key, "miss") != "miss"

        # Resume: only the missing cells run; the artifact matches an
        # uninterrupted run bit for bit.
        counter.write_text("-1000")  # disarm the abort
        resumed = run_experiment(spec, store=store_root)
        assert resumed.metadata["runtime"]["store"]["hits"] == 3
        assert resumed.metadata["runtime"]["store"]["misses"] == 5
        uninterrupted = run_experiment(spec)
        assert resumed.to_json(timing=False) == uninterrupted.to_json(timing=False)

    def test_sigkill_mid_sweep_leaves_a_loadable_store(self, tmp_path):
        # Kill -9 an external sweep process mid-flight: whatever made it to
        # disk must be complete cells, and resuming from them is identical
        # to a fresh run.
        store_root = tmp_path / "cells"
        script = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {str(REPO / "src")!r})
            sys.path.insert(0, {str(REPO / "tests")!r})
            from test_sweep_fabric import slow_spec
            from repro.experiments import run_experiment
            run_experiment(slow_spec(), store={str(store_root)!r})
            """
        )
        proc = subprocess.Popen([sys.executable, "-c", script])
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            if store_root.is_dir() and any(store_root.glob("*/*.pkl")):
                break
            if proc.poll() is not None:
                break
            time.sleep(0.02)
        else:
            proc.kill()
            pytest.fail("sweep subprocess never wrote a cell")
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)

        spec = slow_spec()
        store = ExperimentStore(store_root)
        keys = cell_keys_for(spec)
        n_stored = sum(1 for key in keys if key in store)
        assert 0 < n_stored  # something finished before the kill
        for key in keys:
            if key in store:
                assert store.get(key, "miss") != "miss"  # complete, loadable
        resumed = run_experiment(spec, store=store)
        fresh = run_experiment(spec)
        assert resumed.to_json(timing=False) == fresh.to_json(timing=False)

    def test_interrupted_coverage_times_sweep_resumes_bit_identically(self, tmp_path):
        # Kill a coverage-times sweep after its first chunk; the resumed run
        # must serve that chunk from the store and still serialise exactly
        # like an uninterrupted sweep (exact + Monte-Carlo columns included).
        spec = coverage_times_spec()
        assert spec.n_tasks >= 2
        store_root = tmp_path / "cells"
        store = ExperimentStore(store_root)
        keys = cell_keys_for(spec)

        class FirstChunkOnly:
            """Store wrapper that interrupts the sweep after one put."""

            def __init__(self):
                self.puts = 0

            def get(self, key, default=None):
                return store.get(key, default)

            def put(self, key, value):
                store.put(key, value)
                self.puts += 1
                if self.puts >= 1:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_experiment(spec, store=FirstChunkOnly())
        stored = [key for key in keys if key in store]
        assert len(stored) == 1

        resumed = run_experiment(spec, store=store_root)
        assert resumed.metadata["runtime"]["store"]["hits"] == 1
        assert resumed.metadata["runtime"]["store"]["misses"] == spec.n_tasks - 1
        fresh = run_experiment(spec)
        assert resumed.to_json(timing=False) == fresh.to_json(timing=False)

    def test_grid_extension_recomputes_only_new_cells(self, tmp_path):
        store_root = tmp_path / "cells"
        narrow = build_sweep_spec(policies=[SharingPolicy()], m=6, seed=5)
        run_experiment(narrow, store=store_root)

        # Widening the policy roster appends cells; the shared prefix of the
        # grid keeps its content addresses and is served from the store.
        wide = build_sweep_spec(
            policies=[SharingPolicy(), ExclusivePolicy()], m=6, seed=5
        )
        assert cell_keys_for(wide)[: narrow.n_tasks] == cell_keys_for(narrow)
        extended = run_experiment(wide, store=store_root)
        assert extended.metadata["runtime"]["store"]["hits"] == narrow.n_tasks
        assert (
            extended.metadata["runtime"]["store"]["misses"]
            == wide.n_tasks - narrow.n_tasks
        )
        fresh = run_experiment(wide)
        assert extended.to_json(timing=False) == fresh.to_json(timing=False)


def coverage_times_spec() -> ExperimentSpec:
    """A tiny multi-chunk coverage-times grid for fabric tests."""
    return build_coverage_times_spec(
        strategies=("uniform", "proportional"),
        families=("zipf", "uniform"),
        m_values=(3, 4),
        k_values=(1, 2),
        n_trials=60,
        max_rounds=500,
        horizon=16,
        batch_rows=3,
        seed=17,
    )


def slow_spec() -> ExperimentSpec:
    """Many quick cells — the SIGKILL test needs a sweep that outlives one cell."""
    return ExperimentSpec(
        name="fabric-slow",
        description="slow synthetic grid for kill tests",
        task=slow_task,
        grid=tuple({"x": i} for i in range(40)),
        seed=13,
    )


def slow_task(params, rng):
    time.sleep(0.05)
    return {"x": params["x"], "noise": float(rng.random())}
