"""Cross-cutting property-based tests of the paper's core invariants.

These tests tie several modules together: whatever instance hypothesis
generates, the structural statements of the paper must hold (existence and
uniqueness of the IFD, optimality of sigma_star, equivalence of the different
payoff formulations, consistency between analytic and simulated quantities).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.core.coverage import coverage
from repro.core.ess import ess_conditions_against
from repro.core.ifd import ideal_free_distribution, verify_ifd
from repro.core.optimal_coverage import maximize_coverage_waterfilling
from repro.core.payoffs import (
    exploitability,
    expected_payoff,
    site_values,
)
from repro.core.policies import ExclusivePolicy, SharingPolicy, TwoLevelPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import expected_welfare


def value_arrays(min_sites: int = 1, max_sites: int = 12):
    return st.lists(
        st.floats(min_value=0.01, max_value=10.0),
        min_size=min_sites,
        max_size=max_sites,
    )


def strategy_for(m: int, seed: int) -> Strategy:
    return Strategy.random(m, np.random.default_rng(seed))


class TestStructuralInvariants:
    @given(values=value_arrays(2, 12), k=st.integers(2, 8), seed=st.integers(0, 999))
    @settings(max_examples=60, deadline=None)
    def test_sigma_star_is_coverage_optimal_and_nash(self, values, k, seed):
        f = SiteValues.from_values(values)
        star = sigma_star(f, k)
        # Nash: zero exploitability under the exclusive policy.
        assert exploitability(f, star.strategy, k, ExclusivePolicy()) <= 1e-9
        # Optimality: beats random challengers and the independent water-filling optimum.
        challenger = strategy_for(f.m, seed)
        assert coverage(f, star.strategy, k) >= coverage(f, challenger, k) - 1e-9
        wf = maximize_coverage_waterfilling(f, k)
        assert coverage(f, star.strategy, k) == pytest.approx(wf.coverage, rel=1e-8)

    @given(values=value_arrays(2, 10), k=st.integers(2, 6), c=st.floats(-0.6, 0.9))
    @settings(max_examples=40, deadline=None)
    def test_ifd_exists_unique_and_dominated_by_exclusive(self, values, k, c):
        f = SiteValues.from_values(values)
        policy = TwoLevelPolicy(c)
        result = ideal_free_distribution(f, k, policy)
        assert verify_ifd(f, result.strategy, k, policy, atol=1e-5).is_ifd
        # Theorem 4 + Theorem 6 direction: no policy's IFD covers more than sigma_star.
        star_cover = coverage(f, sigma_star(f, k).strategy, k)
        assert coverage(f, result.strategy, k) <= star_cover + 1e-9

    @given(values=value_arrays(1, 10), k=st.integers(1, 8))
    @settings(max_examples=40, deadline=None)
    def test_coverage_between_single_player_and_total(self, values, k):
        f = SiteValues.from_values(values)
        strategy = Strategy.uniform(f.m)
        cover = coverage(f, strategy, k)
        assert coverage(f, strategy, 1) - 1e-12 <= cover <= f.total + 1e-12

    @given(values=value_arrays(2, 8), k=st.integers(2, 6), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_sharing_welfare_equals_coverage(self, values, k, seed):
        f = SiteValues.from_values(values)
        strategy = strategy_for(f.m, seed)
        assert expected_welfare(f, strategy, k, SharingPolicy()) == pytest.approx(
            coverage(f, strategy, k), rel=1e-9
        )

    @given(values=value_arrays(2, 8), k=st.integers(2, 6), seed=st.integers(0, 999))
    @settings(max_examples=40, deadline=None)
    def test_symmetric_payoff_conservation(self, values, k, seed):
        # Total expected payoff of a symmetric profile never exceeds the
        # coverage under any congestion policy with C(l) <= 1 ... in fact it is
        # at most the coverage for sub-sharing policies and equals k * E(p; p).
        f = SiteValues.from_values(values)
        strategy = strategy_for(f.m, seed)
        policy = ExclusivePolicy()
        welfare = expected_welfare(f, strategy, k, policy)
        assert welfare <= coverage(f, strategy, k) + 1e-9
        assert welfare == pytest.approx(
            k * expected_payoff(f, strategy, strategy, k, policy), rel=1e-12
        )

    @given(values=value_arrays(2, 8), k=st.integers(2, 6))
    @settings(max_examples=40, deadline=None)
    def test_equilibrium_payoff_monotone_in_competition(self, values, k):
        # Players earn less at equilibrium as collisions get more costly.
        f = SiteValues.from_values(values)
        payoffs = []
        for c in (0.5, 0.25, 0.0, -0.25):
            result = ideal_free_distribution(f, k, TwoLevelPolicy(c))
            payoffs.append(result.value)
        assert np.all(np.diff(payoffs) <= 1e-7)

    @given(values=value_arrays(2, 8), k=st.integers(2, 5), seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_theorem3_ess_against_random_mutant(self, values, k, seed):
        f = SiteValues.from_values(values)
        star = sigma_star(f, k).strategy
        mutant = strategy_for(f.m, seed)
        assume(mutant.total_variation(star) > 1e-6)
        comparison = ess_conditions_against(f, star, mutant, k, ExclusivePolicy())
        assert comparison.resists

    @given(values=value_arrays(2, 10), k=st.integers(2, 6))
    @settings(max_examples=30, deadline=None)
    def test_site_values_bounded_by_site_value(self, values, k):
        # nu_p(x) <= f(x) for congestion policies with C <= 1.
        f = SiteValues.from_values(values)
        strategy = Strategy.uniform(f.m)
        for policy in (ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.5)):
            nu = site_values(f, strategy, k, policy)
            assert np.all(nu <= f.as_array() + 1e-12)

    @given(values=value_arrays(2, 10), k=st.integers(2, 10))
    @settings(max_examples=40, deadline=None)
    def test_support_size_weakly_increasing_in_k(self, values, k):
        f = SiteValues.from_values(values)
        w_small = sigma_star(f, k).support_size
        w_large = sigma_star(f, k + 1).support_size
        assert w_large >= w_small

    @given(values=value_arrays(2, 10), k=st.integers(2, 6), seed=st.integers(0, 500))
    @settings(max_examples=25, deadline=None)
    def test_monte_carlo_agrees_with_formulas(self, values, k, seed):
        from repro.simulation import simulate_dispersal

        f = SiteValues.from_values(values)
        strategy = strategy_for(f.m, seed)
        result = simulate_dispersal(f, strategy, k, SharingPolicy(), 4_000, rng=seed)
        exact = coverage(f, strategy, k)
        # 6-sigma tolerance keeps the flake rate negligible across examples.
        assert abs(result.coverage_mean - exact) <= 6.0 * max(result.coverage_sem, 1e-9)
