"""Tests for the ESS machinery (Theorem 3)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ess import (
    equilibrium_payoff,
    ess_conditions_against,
    ess_report,
    invasion_barrier,
    is_symmetric_nash,
    resident_vs_mutant_payoffs,
)
from repro.core.ifd import ideal_free_distribution
from repro.core.policies import ConstantPolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestSymmetricNash:
    def test_sigma_star_is_nash_under_exclusive(self, small_values):
        for k in (2, 3, 5):
            star = sigma_star(small_values, k)
            assert is_symmetric_nash(small_values, star.strategy, k, ExclusivePolicy())

    def test_sigma_star_not_nash_under_sharing(self, small_values):
        star = sigma_star(small_values, 3)
        assert not is_symmetric_nash(small_values, star.strategy, 3, SharingPolicy())

    def test_uniform_not_nash_on_decreasing_values(self, small_values):
        assert not is_symmetric_nash(small_values, Strategy.uniform(4), 3, ExclusivePolicy())

    def test_equilibrium_payoff_matches_sigma_star_value(self, small_values):
        k = 4
        star = sigma_star(small_values, k)
        payoff = equilibrium_payoff(small_values, star.strategy, k, ExclusivePolicy())
        assert payoff == pytest.approx(star.equilibrium_value, abs=1e-12)


class TestESSCharacterisation:
    def test_sigma_star_resists_pure_mutants(self, small_values):
        k = 3
        star = sigma_star(small_values, k).strategy
        for site in range(4):
            mutant = Strategy.point_mass(4, site)
            comparison = ess_conditions_against(
                small_values, star, mutant, k, ExclusivePolicy()
            )
            assert comparison.resists

    def test_mutant_outside_support_rejected_at_m0(self):
        values = SiteValues.geometric(6, ratio=0.05)  # steep: small support
        k = 2
        star = sigma_star(values, k)
        assert star.support_size < 6
        mutant = Strategy.point_mass(6, 5)
        comparison = ess_conditions_against(values, star.strategy, mutant, k, ExclusivePolicy())
        assert comparison.resists
        assert comparison.m_index == 0

    def test_mutant_inside_support_rejected_at_m1(self, small_values):
        # Mutants supported inside [W] tie at l = 0 and lose at l = 1
        # (the stronger stability property proved in Section 3).
        k = 3
        star = sigma_star(small_values, k)
        mutant = Strategy.uniform_over_top(4, star.support_size)
        comparison = ess_conditions_against(small_values, star.strategy, mutant, k, ExclusivePolicy())
        assert comparison.resists
        assert comparison.m_index == 1
        # All later compositions also favour the resident (strict stability).
        assert np.all(comparison.payoff_differences[1:] > 0)

    def test_payoff_difference_vector_has_length_k(self, small_values):
        k = 5
        star = sigma_star(small_values, k).strategy
        comparison = ess_conditions_against(
            small_values, star, Strategy.uniform(4), k, ExclusivePolicy()
        )
        assert comparison.payoff_differences.shape == (k,)

    def test_non_ess_detected_for_constant_policy(self, small_values):
        # Under the constant policy the symmetric equilibrium (point mass on the
        # top site) is invadable-neutral: mutants playing the same thing tie, but
        # the equilibrium point mass cannot strictly beat a mutant that also
        # sits on the top site... use a genuinely different resident to check
        # the negative path of the characterisation.
        resident = Strategy.uniform(4)
        mutant = Strategy.point_mass(4, 0)
        comparison = ess_conditions_against(
            small_values, resident, mutant, 3, ConstantPolicy()
        )
        assert not comparison.resists


class TestInvasionBarrier:
    def test_positive_barrier_for_sigma_star(self, small_values):
        k = 3
        star = sigma_star(small_values, k).strategy
        barrier = invasion_barrier(
            small_values, star, Strategy.uniform(4), k, ExclusivePolicy()
        )
        assert barrier > 0

    def test_zero_barrier_when_resident_is_invadable(self, small_values):
        k = 3
        resident = Strategy.point_mass(4, 3)  # clearly not an equilibrium
        mutant = sigma_star(small_values, k).strategy
        barrier = invasion_barrier(small_values, resident, mutant, k, ExclusivePolicy())
        assert barrier == pytest.approx(0.0)

    def test_resident_vs_mutant_payoffs_ordering(self, small_values):
        k = 3
        star = sigma_star(small_values, k).strategy
        mutant = Strategy.proportional(small_values.as_array())
        res, mut = resident_vs_mutant_payoffs(
            small_values, star, mutant, 0.01, k, ExclusivePolicy()
        )
        assert res > mut


class TestESSReport:
    def test_sigma_star_full_audit(self, small_values):
        k = 3
        star = sigma_star(small_values, k).strategy
        report = ess_report(
            small_values, star, k, ExclusivePolicy(), n_random_mutants=20, rng=0
        )
        assert report.is_ess
        assert report.n_resisted == report.n_mutants
        assert report.worst_margin > 0
        assert report.failures == ()

    def test_non_equilibrium_fails_audit(self, small_values):
        report = ess_report(
            small_values,
            Strategy.uniform(4),
            3,
            ExclusivePolicy(),
            n_random_mutants=5,
            rng=0,
        )
        assert not report.is_ess
        assert len(report.failures) > 0

    def test_explicit_mutant_list(self, small_values):
        k = 2
        star = sigma_star(small_values, k).strategy
        mutants = [Strategy.uniform(4), Strategy.point_mass(4, 2)]
        report = ess_report(small_values, star, k, ExclusivePolicy(), mutants=mutants)
        assert report.n_mutants == 2
        assert report.is_ess

    @given(seed=st.integers(min_value=0, max_value=500), k=st.integers(min_value=2, max_value=5))
    @settings(max_examples=15, deadline=None)
    def test_theorem3_randomised(self, seed, k):
        rng = np.random.default_rng(seed)
        values = SiteValues.random(5, rng)
        star = sigma_star(values, k).strategy
        report = ess_report(values, star, k, ExclusivePolicy(), n_random_mutants=8, rng=rng)
        assert report.is_ess

    def test_sharing_ifd_is_nash_but_need_not_resist_all_at_m1(self, small_values):
        # Sanity: the sharing IFD passes the Nash check; the full ESS audit is
        # not claimed by the paper for sharing, so we only require Nash here.
        k = 3
        result = ideal_free_distribution(small_values, k, SharingPolicy())
        assert is_symmetric_nash(small_values, result.strategy, k, SharingPolicy(), atol=1e-6)
