"""Tests for the general IFD solver (Observation 2)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ifd import ideal_free_distribution, verify_ifd
from repro.core.payoffs import exploitability, site_values
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    PowerLawPolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestSolver:
    def test_matches_closed_form_for_exclusive(self, small_values):
        for k in (2, 3, 6):
            closed = sigma_star(small_values, k)
            numeric = ideal_free_distribution(
                small_values, k, ExclusivePolicy(), use_closed_form=False
            )
            np.testing.assert_allclose(
                numeric.strategy.as_array(), closed.strategy.as_array(), atol=1e-8
            )
            assert numeric.value == pytest.approx(closed.equilibrium_value, abs=1e-8)

    def test_closed_form_fast_path_flag(self, small_values):
        fast = ideal_free_distribution(small_values, 3, ExclusivePolicy(), use_closed_form=True)
        assert fast.iterations == 0

    def test_single_player(self, small_values, any_policy):
        result = ideal_free_distribution(small_values, 1, any_policy)
        assert result.strategy == Strategy.point_mass(4, 0)
        assert result.value == pytest.approx(small_values[0])

    def test_ifd_conditions_hold(self, small_values, any_policy):
        for k in (2, 3, 5):
            result = ideal_free_distribution(small_values, k, any_policy)
            report = verify_ifd(small_values, result.strategy, k, any_policy, atol=1e-6)
            assert report.is_ifd, (any_policy.name, k, report)

    def test_is_symmetric_nash(self, small_values, any_policy):
        result = ideal_free_distribution(small_values, 4, any_policy)
        gap = exploitability(small_values, result.strategy, 4, any_policy)
        assert gap <= 1e-6

    def test_sharing_two_sites_closed_form(self):
        # k=2, sharing, f=(1, f2): interior equilibrium satisfies
        # 1 - p/2 = f2 (1 - (1-p)/2)  =>  p = (2 - f2) / (1 + f2) when <= 1.
        f2 = 0.8
        values = SiteValues.two_sites(f2)
        result = ideal_free_distribution(values, 2, SharingPolicy())
        expected_p1 = (2 - f2) / (1 + f2) / 2  # solve 1*(1 - p1/2) = f2*(1 - p2/2), p2 = 1-p1
        # Derive directly: 1 - p1/2 = f2(1 - (1-p1)/2) -> 1 - p1/2 = f2(1+p1)/2... solve numerically instead
        p1 = result.strategy.as_array()[0]
        nu = site_values(values, result.strategy, 2, SharingPolicy())
        assert nu[0] == pytest.approx(nu[1], abs=1e-9)
        assert 0.5 < p1 < 1.0

    def test_sharing_concentrates_more_than_exclusive(self, small_values):
        # Sharing punishes collisions less, so the equilibrium piles more mass
        # on the top site than the exclusive equilibrium does.
        k = 3
        sharing = ideal_free_distribution(small_values, k, SharingPolicy())
        exclusive = ideal_free_distribution(small_values, k, ExclusivePolicy())
        assert sharing.strategy.as_array()[0] > exclusive.strategy.as_array()[0]

    def test_aggressive_spreads_more_than_exclusive(self, small_values):
        # Negative collision payoffs push players away from the top site even
        # harder than the exclusive policy does.
        k = 3
        aggressive = ideal_free_distribution(small_values, k, AggressivePolicy(0.5))
        exclusive = ideal_free_distribution(small_values, k, ExclusivePolicy())
        assert aggressive.strategy.as_array()[0] < exclusive.strategy.as_array()[0]
        assert aggressive.support_size >= exclusive.support_size

    def test_constant_policy_concentrates_on_best_site(self, small_values):
        result = ideal_free_distribution(small_values, 4, ConstantPolicy())
        assert result.strategy == Strategy.point_mass(4, 0)
        assert result.value == pytest.approx(small_values[0])

    def test_constant_policy_with_ties_spreads_over_argmax(self):
        values = SiteValues.from_values([1.0, 1.0, 0.5])
        result = ideal_free_distribution(values, 3, ConstantPolicy())
        np.testing.assert_allclose(result.strategy.as_array(), [0.5, 0.5, 0.0])

    def test_uniform_values_give_uniform_ifd(self, any_policy):
        values = SiteValues.uniform(5)
        result = ideal_free_distribution(values, 3, any_policy)
        np.testing.assert_allclose(result.strategy.as_array(), 0.2, atol=1e-7)

    def test_single_site(self, any_policy):
        values = SiteValues.uniform(1)
        result = ideal_free_distribution(values, 3, any_policy)
        assert result.strategy.as_array()[0] == pytest.approx(1.0)

    def test_support_size_field_consistent(self, small_values, any_policy):
        result = ideal_free_distribution(small_values, 3, any_policy)
        assert result.support_size == int(np.count_nonzero(result.strategy.as_array() > 1e-12))

    def test_rejects_bad_k(self, small_values):
        with pytest.raises(ValueError):
            ideal_free_distribution(small_values, 0, SharingPolicy())

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=2, max_value=15),
        k=st.integers(min_value=2, max_value=8),
        c=st.floats(min_value=-0.75, max_value=0.9),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_level_ifd_properties(self, seed, m, k, c):
        values = SiteValues.random(m, np.random.default_rng(seed))
        policy = TwoLevelPolicy(c)
        result = ideal_free_distribution(values, k, policy)
        probs = result.strategy.as_array()
        assert probs.sum() == pytest.approx(1.0, abs=1e-6)
        report = verify_ifd(values, result.strategy, k, policy, atol=1e-5)
        assert report.is_ifd

    @given(
        gamma=st.floats(min_value=0.1, max_value=4.0),
        k=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=25, deadline=None)
    def test_power_law_equilibrium_value_positive(self, gamma, k):
        values = SiteValues.zipf(8)
        result = ideal_free_distribution(values, k, PowerLawPolicy(gamma))
        assert result.value > 0


class TestVerifyIFD:
    def test_accepts_true_ifd(self, small_values):
        result = sigma_star(small_values, 3)
        report = verify_ifd(small_values, result.strategy, 3, ExclusivePolicy())
        assert report.is_ifd
        assert report.support_size == result.support_size
        assert report.support_value_spread < 1e-10

    def test_rejects_non_ifd(self, small_values):
        report = verify_ifd(small_values, Strategy.point_mass(4, 3), 3, ExclusivePolicy())
        assert not report.is_ifd
        assert report.max_outside_advantage > 0

    def test_rejects_uniform_on_decreasing_values(self, small_values):
        report = verify_ifd(small_values, Strategy.uniform(4), 3, SharingPolicy())
        assert not report.is_ifd
