"""Tests for the coverage functional (Eq. 1 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import (
    coverage,
    coverage_gradient,
    coverage_upper_bound,
    expected_sites_visited,
    full_coordination_coverage,
    missed_value,
    missed_value_gradient,
    site_coverage_probabilities,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


def random_instance(rng, m=None, k=None):
    m = m or int(rng.integers(1, 12))
    k = k or int(rng.integers(1, 8))
    values = SiteValues.random(m, rng)
    strategy = Strategy.random(m, rng)
    return values, strategy, k


class TestCoverage:
    def test_point_mass_covers_single_site(self):
        values = SiteValues.from_values([1.0, 0.5])
        strategy = Strategy.point_mass(2, 0)
        assert coverage(values, strategy, 3) == pytest.approx(1.0)

    def test_single_player_coverage_is_expected_value(self):
        values = SiteValues.from_values([1.0, 0.5])
        strategy = Strategy(np.array([0.25, 0.75]))
        assert coverage(values, strategy, 1) == pytest.approx(0.25 * 1.0 + 0.75 * 0.5)

    def test_manual_two_player_example(self):
        values = SiteValues.from_values([1.0, 0.3])
        strategy = Strategy(np.array([0.6, 0.4]))
        expected = 1.0 * (1 - 0.4**2) + 0.3 * (1 - 0.6**2)
        assert coverage(values, strategy, 2) == pytest.approx(expected)

    def test_coverage_plus_missed_value_is_total(self):
        values = SiteValues.from_values([1.0, 0.6, 0.3])
        strategy = Strategy(np.array([0.5, 0.3, 0.2]))
        for k in (1, 2, 5):
            assert coverage(values, strategy, k) + missed_value(values, strategy, k) == pytest.approx(
                values.total
            )

    def test_monotone_in_k(self):
        values = SiteValues.from_values([1.0, 0.6, 0.3])
        strategy = Strategy.uniform(3)
        covers = [coverage(values, strategy, k) for k in range(1, 10)]
        assert np.all(np.diff(covers) > 0)
        assert covers[-1] < values.total

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            coverage(SiteValues.uniform(3), Strategy.uniform(2), 2)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            coverage(SiteValues.uniform(2), Strategy.uniform(2), 0)

    def test_accepts_raw_arrays(self):
        assert coverage(np.array([1.0, 0.5]), np.array([0.5, 0.5]), 2) == pytest.approx(
            1.0 * 0.75 + 0.5 * 0.75
        )

    @given(
        m=st.integers(min_value=1, max_value=10),
        k=st.integers(min_value=1, max_value=10),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_coverage_bounds(self, m, k, seed):
        rng = np.random.default_rng(seed)
        values = SiteValues.random(m, rng)
        strategy = Strategy.random(m, rng)
        cover = coverage(values, strategy, k)
        assert 0.0 <= cover <= values.total + 1e-12
        # Coverage is at least the single-player expected value.
        assert cover >= coverage(values, strategy, 1) - 1e-12


class TestGradients:
    def test_gradient_matches_finite_differences(self):
        rng = np.random.default_rng(0)
        values, strategy, k = random_instance(rng, m=5, k=4)
        p = strategy.as_array().copy()
        grad = coverage_gradient(values, p, k)
        h = 1e-7
        for x in range(5):
            bumped = p.copy()
            bumped[x] += h
            numeric = (coverage(values, bumped, k) - coverage(values, p, k)) / h
            assert grad[x] == pytest.approx(numeric, rel=1e-4, abs=1e-6)

    def test_missed_value_gradient_is_negative_coverage_gradient(self):
        values = SiteValues.from_values([1.0, 0.5])
        p = np.array([0.4, 0.6])
        np.testing.assert_allclose(
            missed_value_gradient(values, p, 3), -coverage_gradient(values, p, 3)
        )

    def test_gradient_positive_for_unvisited_sites(self):
        values = SiteValues.from_values([1.0, 0.5])
        grad = coverage_gradient(values, np.array([1.0, 0.0]), 2)
        assert grad[1] > 0
        assert grad[0] == pytest.approx(0.0)


class TestAuxiliaries:
    def test_site_coverage_probabilities(self):
        probs = site_coverage_probabilities(Strategy(np.array([0.5, 0.5])), 2)
        np.testing.assert_allclose(probs, [0.75, 0.75])

    def test_expected_sites_visited_bounds(self):
        strategy = Strategy.uniform(4)
        visited = expected_sites_visited(strategy, 3)
        assert 1.0 <= visited <= 3.0

    def test_expected_sites_visited_single_player(self):
        assert expected_sites_visited(Strategy.uniform(5), 1) == pytest.approx(1.0)

    def test_coverage_upper_bound(self):
        values = SiteValues.from_values([1.0, 0.5])
        assert coverage_upper_bound(values) == pytest.approx(1.5)

    def test_full_coordination_coverage(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25])
        assert full_coordination_coverage(values, 2) == pytest.approx(1.5)
        assert full_coordination_coverage(values, 7) == pytest.approx(1.75)

    def test_full_coordination_on_unsorted_array(self):
        assert full_coordination_coverage(np.array([0.25, 1.0, 0.5]), 2) == pytest.approx(1.5)
