"""Tests for equilibrium verification and pure-equilibrium enumeration."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.equilibrium import (
    count_pure_equilibria,
    pure_equilibrium_occupancies,
    symmetric_equilibrium,
    verify_symmetric_equilibrium,
)
from repro.core.ifd import ideal_free_distribution
from repro.core.policies import ConstantPolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestVerifySymmetricEquilibrium:
    def test_accepts_ifd(self, small_values, any_policy):
        result = ideal_free_distribution(small_values, 3, any_policy)
        report = verify_symmetric_equilibrium(
            small_values, result.strategy, 3, any_policy, atol=1e-6
        )
        assert report.is_equilibrium
        assert report.exploitability <= 1e-6
        assert report.support_size == result.support_size

    def test_rejects_non_equilibrium(self, small_values):
        report = verify_symmetric_equilibrium(
            small_values, Strategy.uniform(4), 3, SharingPolicy()
        )
        assert not report.is_equilibrium
        assert report.exploitability > 0
        assert 0 in report.best_response_sites

    def test_symmetric_equilibrium_wrapper(self, small_values):
        direct = ideal_free_distribution(small_values, 3, ExclusivePolicy())
        wrapped = symmetric_equilibrium(small_values, 3, ExclusivePolicy())
        np.testing.assert_allclose(
            direct.strategy.as_array(), wrapped.strategy.as_array()
        )

    def test_equilibrium_payoff_reported(self, small_values):
        star = sigma_star(small_values, 3)
        report = verify_symmetric_equilibrium(
            small_values, star.strategy, 3, ExclusivePolicy()
        )
        assert report.equilibrium_payoff == pytest.approx(star.equilibrium_value, abs=1e-12)


class TestPureEquilibria:
    def test_two_players_two_distinct_sites_exclusive(self):
        # f = (1, 0.6): under the exclusive policy the only stable pure
        # occupancy is one player on each site.
        values = SiteValues.from_values([1.0, 0.6])
        equilibria = pure_equilibrium_occupancies(values, 2, ExclusivePolicy())
        assert len(equilibria) == 1
        np.testing.assert_array_equal(equilibria[0], [1, 1])

    def test_two_players_steep_values_sharing(self):
        # f = (1, 0.2): sharing the top site (0.5 each) beats moving to 0.2, so
        # both players on site 1 is also a pure equilibrium.
        values = SiteValues.from_values([1.0, 0.2])
        equilibria = pure_equilibrium_occupancies(values, 2, SharingPolicy())
        occupancies = {tuple(occ) for occ in equilibria}
        assert (2, 0) in occupancies

    def test_sharing_flat_values_spread(self):
        values = SiteValues.from_values([1.0, 0.9])
        equilibria = pure_equilibrium_occupancies(values, 2, SharingPolicy())
        occupancies = {tuple(occ) for occ in equilibria}
        assert (1, 1) in occupancies
        assert (2, 0) not in occupancies

    def test_constant_policy_all_on_top(self, small_values):
        equilibria = pure_equilibrium_occupancies(small_values, 3, ConstantPolicy())
        occupancies = {tuple(occ) for occ in equilibria}
        assert (3, 0, 0, 0) in occupancies
        # Any profile with someone away from the top site is unstable.
        assert all(occ[0] > 0 for occ in equilibria)

    def test_exclusive_equilibria_spread_players(self, small_values):
        # With k <= M and the exclusive policy, pure equilibria never stack
        # players (a stacked player earns 0 and can move to an empty site).
        equilibria = pure_equilibrium_occupancies(small_values, 3, ExclusivePolicy())
        assert equilibria, "expected at least one pure equilibrium"
        for occ in equilibria:
            assert occ.max() == 1

    def test_count_matches_enumeration(self, small_values):
        count = count_pure_equilibria(small_values, 2, ExclusivePolicy())
        assert count == len(pure_equilibrium_occupancies(small_values, 2, ExclusivePolicy()))

    def test_large_instance_rejected(self):
        values = SiteValues.uniform(200)
        with pytest.raises(ValueError):
            pure_equilibrium_occupancies(values, 20, ExclusivePolicy())

    def test_pure_equilibria_count_grows_with_symmetry(self):
        # Many sites of equal value: every spread assignment is an equilibrium,
        # illustrating the paper's remark that pure equilibria are numerous.
        values = SiteValues.uniform(6)
        count = count_pure_equilibria(values, 3, ExclusivePolicy())
        assert count == 20  # C(6, 3) occupancy patterns with one player per site
