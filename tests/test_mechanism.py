"""Tests for the mechanism-design subpackage (Kleinberg-Oren baseline, policy design)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution, verify_ifd
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import AggressivePolicy, ExclusivePolicy, SharingPolicy, TwoLevelPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.mechanism import (
    best_two_level_policy,
    compare_policies,
    design_rewards_for_target,
    optimal_grant_design,
    proportional_rewards,
)


class TestRewardDesign:
    def test_designed_rewards_induce_target(self, small_values):
        k = 3
        target = sigma_star(small_values, k).strategy
        rewards = design_rewards_for_target(target, k, SharingPolicy())
        induced = ideal_free_distribution(rewards, k, SharingPolicy(), use_closed_form=False)
        np.testing.assert_allclose(
            induced.strategy.as_array(), target.as_array(), atol=1e-6
        )

    def test_designed_rewards_satisfy_ifd_conditions(self, small_values):
        k = 4
        target = sigma_star(small_values, k).strategy
        rewards = design_rewards_for_target(target, k, SharingPolicy())
        report = verify_ifd(rewards, target, k, SharingPolicy(), atol=1e-9)
        assert report.is_ifd

    def test_rewards_on_support_exceed_off_support(self, small_values):
        k = 3
        target = sigma_star(small_values, k).strategy
        rewards = design_rewards_for_target(target, k, SharingPolicy())
        support = target.as_array() > 0
        if np.any(~support):
            assert rewards[support].min() > rewards[~support].max()

    def test_uniform_target(self):
        values = SiteValues.from_values([1.0, 0.7, 0.4])
        target = Strategy.uniform(3)
        rewards = design_rewards_for_target(target, 2, SharingPolicy())
        induced = ideal_free_distribution(rewards, 2, SharingPolicy(), use_closed_form=False)
        np.testing.assert_allclose(induced.strategy.as_array(), 1 / 3, atol=1e-6)

    def test_infeasible_target_raises(self):
        # Aggressive policy: the congestion factor goes negative at high
        # occupancy probability, so a very concentrated target is infeasible.
        target = Strategy(np.array([0.95, 0.05]))
        with pytest.raises(ValueError, match="not implementable"):
            design_rewards_for_target(target, 4, AggressivePolicy(1.0))

    def test_parameter_validation(self, small_values):
        target = Strategy.uniform(4)
        with pytest.raises(ValueError):
            design_rewards_for_target(target, 2, SharingPolicy(), equilibrium_value=0.0)
        with pytest.raises(ValueError):
            design_rewards_for_target(target, 2, SharingPolicy(), off_support_fraction=1.5)

    def test_proportional_rewards_baseline(self, small_values):
        np.testing.assert_allclose(proportional_rewards(small_values), small_values.as_array())


class TestOptimalGrantDesign:
    def test_recovers_optimal_coverage(self, small_values):
        k = 3
        design = optimal_grant_design(small_values, k)
        assert design.max_deviation < 1e-6
        assert design.induced_coverage == pytest.approx(optimal_coverage(small_values, k), abs=1e-8)

    def test_improves_on_sharing_equilibrium(self, small_values):
        # Grants strictly improve on the untouched sharing equilibrium whenever
        # the sharing IFD is not already coverage optimal.
        k = 3
        design = optimal_grant_design(small_values, k)
        sharing_eq = ideal_free_distribution(small_values, k, SharingPolicy())
        assert design.induced_coverage > coverage(small_values, sharing_eq.strategy, k)

    def test_matches_exclusive_policy_outcome(self, small_values):
        # Reward design under sharing and congestion design via the exclusive
        # policy reach the same coverage (both implement sigma_star).
        k = 4
        design = optimal_grant_design(small_values, k)
        exclusive_eq = ideal_free_distribution(small_values, k, ExclusivePolicy())
        assert design.induced_coverage == pytest.approx(
            coverage(small_values, exclusive_eq.strategy, k), abs=1e-7
        )


class TestPolicyDesign:
    def test_compare_policies_rows(self, small_values):
        rows = compare_policies(
            small_values, 3, [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.3)]
        )
        assert len(rows) == 3
        by_name = {row.policy_name: row for row in rows}
        assert by_name["exclusive"].spoa == pytest.approx(1.0, abs=1e-9)
        assert by_name["sharing"].spoa > 1.0
        assert by_name["two-level"].spoa > 1.0
        for row in rows:
            assert row.optimal_coverage >= row.equilibrium_coverage > 0

    def test_best_two_level_policy_is_exclusive(self, figure1_left):
        best_c, rows = best_two_level_policy(
            figure1_left, 2, c_grid=np.linspace(-0.5, 0.5, 21)
        )
        assert best_c == pytest.approx(0.0, abs=1e-9)
        assert len(rows) == 21

    def test_best_two_level_policy_right_panel(self, figure1_right):
        best_c, _ = best_two_level_policy(
            figure1_right, 2, c_grid=np.linspace(-0.5, 0.5, 11)
        )
        assert best_c == pytest.approx(0.0, abs=1e-9)
