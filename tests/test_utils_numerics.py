"""Unit and property tests for repro.utils.numerics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.utils.numerics import (
    assert_shape,
    binomial_coefficients,
    binomial_pmf_matrix,
    clip_probability,
    is_non_increasing,
    log_factorial,
    monotone_bisection,
    safe_power,
    simplex_projection,
    vectorized_bisection,
    weighted_average,
)


class TestAssertShape:
    def test_accepts_matching_shape(self):
        assert_shape(np.zeros((3, 4)), (3, 4))

    def test_wildcard_dimension(self):
        assert_shape(np.zeros((3, 7)), (3, -1))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ValueError, match="dimensions"):
            assert_shape(np.zeros(3), (3, 1))

    def test_rejects_wrong_size(self):
        with pytest.raises(ValueError, match="axis"):
            assert_shape(np.zeros((3, 4)), (3, 5), name="mat")


class TestClipProbability:
    def test_clips_into_unit_interval(self):
        assert clip_probability(1.5) == 1.0
        assert clip_probability(-0.5) == 0.0

    def test_eps_margin(self):
        assert clip_probability(0.0, eps=1e-3) == pytest.approx(1e-3)
        assert clip_probability(1.0, eps=1e-3) == pytest.approx(1.0 - 1e-3)

    def test_array_input(self):
        out = clip_probability(np.array([-1.0, 0.5, 2.0]))
        np.testing.assert_allclose(out, [0.0, 0.5, 1.0])


class TestIsNonIncreasing:
    def test_true_cases(self):
        assert is_non_increasing([3.0, 2.0, 2.0, 1.0])
        assert is_non_increasing([5.0])
        assert is_non_increasing([])

    def test_false_case(self):
        assert not is_non_increasing([1.0, 2.0])

    def test_tolerance(self):
        assert is_non_increasing([1.0, 1.0 + 1e-12], atol=1e-9)


class TestSafePower:
    def test_positive_base(self):
        np.testing.assert_allclose(safe_power(np.array([4.0, 9.0]), 0.5), [2.0, 3.0])

    def test_zero_base_negative_exponent_is_inf(self):
        out = safe_power(np.array([0.0, 2.0]), -1.0)
        assert np.isinf(out[0]) and out[1] == pytest.approx(0.5)

    def test_zero_base_zero_exponent_is_one(self):
        out = safe_power(np.array([0.0]), 0.0)
        assert out[0] == 1.0

    def test_zero_base_positive_exponent_is_zero(self):
        assert safe_power(np.array([0.0]), 2.0)[0] == 0.0

    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            safe_power(np.array([-1.0]), 0.5)

    def test_scalar_round_trip(self):
        assert float(safe_power(2.0, 3.0)) == pytest.approx(8.0)


class TestFactorialsAndBinomials:
    def test_log_factorial_small_values(self):
        lf = log_factorial(5)
        np.testing.assert_allclose(np.exp(lf), [1, 1, 2, 6, 24, 120])

    def test_log_factorial_rejects_negative(self):
        with pytest.raises(ValueError):
            log_factorial(-1)

    def test_binomial_coefficients_row(self):
        np.testing.assert_allclose(binomial_coefficients(5), [1, 5, 10, 10, 5, 1])

    def test_binomial_coefficients_zero(self):
        np.testing.assert_allclose(binomial_coefficients(0), [1.0])

    @given(n=st.integers(min_value=0, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_binomial_coefficients_sum(self, n):
        assert binomial_coefficients(n).sum() == pytest.approx(2.0**n, rel=1e-10)


class TestBinomialPmfMatrix:
    def test_rows_sum_to_one(self):
        pmf = binomial_pmf_matrix(7, np.linspace(0, 1, 9))
        np.testing.assert_allclose(pmf.sum(axis=1), 1.0)

    def test_matches_scipy(self):
        from scipy.stats import binom

        probs = np.array([0.0, 0.1, 0.5, 0.93, 1.0])
        pmf = binomial_pmf_matrix(6, probs)
        expected = np.vstack([binom.pmf(np.arange(7), 6, p) for p in probs])
        np.testing.assert_allclose(pmf, expected, atol=1e-12)

    def test_zero_trials(self):
        pmf = binomial_pmf_matrix(0, np.array([0.3, 0.7]))
        np.testing.assert_allclose(pmf, [[1.0], [1.0]])

    def test_degenerate_probabilities(self):
        pmf = binomial_pmf_matrix(4, np.array([0.0, 1.0]))
        assert pmf[0, 0] == pytest.approx(1.0)
        assert pmf[1, 4] == pytest.approx(1.0)

    def test_rejects_negative_trials(self):
        with pytest.raises(ValueError):
            binomial_pmf_matrix(-1, np.array([0.5]))

    def test_rejects_out_of_range_probs(self):
        with pytest.raises(ValueError):
            binomial_pmf_matrix(3, np.array([1.5]))

    def test_rejects_2d_probs(self):
        with pytest.raises(ValueError):
            binomial_pmf_matrix(3, np.zeros((2, 2)))

    @given(
        n=st.integers(min_value=1, max_value=15),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_mean_matches_np(self, n, p):
        pmf = binomial_pmf_matrix(n, np.array([p]))[0]
        mean = float(np.dot(np.arange(n + 1), pmf))
        assert mean == pytest.approx(n * p, abs=1e-9)


class TestSimplexProjection:
    def test_already_on_simplex_is_fixed_point(self):
        v = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(simplex_projection(v), v, atol=1e-12)

    def test_output_is_distribution(self):
        out = simplex_projection(np.array([5.0, -3.0, 0.4]))
        assert out.sum() == pytest.approx(1.0)
        assert np.all(out >= 0)

    def test_single_element(self):
        np.testing.assert_allclose(simplex_projection(np.array([42.0])), [1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            simplex_projection(np.array([]))

    @given(
        v=arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=12),
            elements=st.floats(min_value=-50, max_value=50, allow_nan=False),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_projection_properties(self, v):
        out = simplex_projection(v)
        assert out.sum() == pytest.approx(1.0, abs=1e-8)
        assert np.all(out >= -1e-12)

    def test_projection_is_closest_point(self, rng):
        # Compare against a brute-force search over random simplex points.
        v = rng.normal(size=4)
        projected = simplex_projection(v)
        candidates = rng.dirichlet(np.ones(4), size=2000)
        best = candidates[np.argmin(((candidates - v) ** 2).sum(axis=1))]
        assert np.linalg.norm(projected - v) <= np.linalg.norm(best - v) + 1e-6


class TestBisection:
    def test_monotone_bisection_increasing(self):
        root = monotone_bisection(lambda x: x**3, -2.0, 2.0, target=1.0)
        assert root == pytest.approx(1.0, abs=1e-9)

    def test_monotone_bisection_decreasing(self):
        root = monotone_bisection(lambda x: -x, -5.0, 5.0, target=-2.0, increasing=False)
        assert root == pytest.approx(2.0, abs=1e-9)

    def test_monotone_bisection_clamps_to_bounds(self):
        assert monotone_bisection(lambda x: x, 0.0, 1.0, target=5.0) == 1.0
        assert monotone_bisection(lambda x: x, 0.0, 1.0, target=-5.0) == 0.0

    def test_monotone_bisection_invalid_interval(self):
        with pytest.raises(ValueError):
            monotone_bisection(lambda x: x, 1.0, 0.0)

    def test_vectorized_bisection_decreasing(self):
        targets = np.array([0.9, 0.5, 0.1])

        def residual(q):
            return (1.0 - q) ** 2 - targets

        roots = vectorized_bisection(residual, np.zeros(3), np.ones(3), increasing=False)
        np.testing.assert_allclose(roots, 1.0 - np.sqrt(targets), atol=1e-9)

    def test_vectorized_bisection_shape_mismatch(self):
        with pytest.raises(ValueError):
            vectorized_bisection(lambda q: q, np.zeros(2), np.ones(3))


class TestWeightedAverage:
    def test_basic(self):
        assert weighted_average([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_rejects_zero_weights(self):
        with pytest.raises(ValueError):
            weighted_average([1.0], [0.0])

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            weighted_average([1.0, 2.0], [0.5, -0.5])

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            weighted_average([1.0, 2.0], [1.0])


class TestPlanMemo:
    """Cross-call memoization of binomial-PMF plans (repro.utils.memo)."""

    def _fresh(self, max_entries=4):
        from repro.utils.memo import PlanMemo

        return PlanMemo(max_entries=max_entries)

    def test_hit_miss_counters_and_reuse(self):
        memo = self._fresh()
        first = memo.get(5, batch_size=3)
        again = memo.get(5, batch_size=3)
        assert again is first  # the same plan object, not a rebuild
        stats = memo.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["entries"] == 1 and stats["hit_rate"] == 0.5

    def test_distinct_shapes_get_distinct_entries(self):
        memo = self._fresh()
        first = memo.get(5, batch_size=3)
        memo.get(5, batch_size=4)  # different broadcast width: new entry
        memo.get(np.array([5, 6, 7]))  # ragged roster: new entry
        assert len(memo) == 3
        # A constant roster collapses to the scalar spelling's key — the
        # plans are interchangeable, so this is a hit, not a new entry.
        assert memo.get(np.array([5, 5, 5])) is first
        assert len(memo) == 3

    def test_lru_eviction_is_bounded(self):
        memo = self._fresh(max_entries=2)
        for n in (3, 4, 5, 6):
            memo.get(n, batch_size=1)
        assert len(memo) == 2
        assert memo.stats()["evictions"] == 2

    def test_plan_path_is_elementwise_identical_to_no_plan(self):
        from repro.utils.memo import PlanMemo
        from repro.utils.numerics import binomial_pmf_tensor

        rng = np.random.default_rng(99)
        probs = rng.uniform(0.0, 1.0, size=(4, 6))
        memo = PlanMemo()
        for n in (1, 2, 7):
            plan = memo.get(n, batch_size=probs.shape[0])
            with_plan = binomial_pmf_tensor(n, probs, plan=plan)
            without = binomial_pmf_tensor(n, probs)
            np.testing.assert_array_equal(with_plan, without)

    def test_disabled_context_bypasses_without_caching(self):
        memo = self._fresh()
        with memo.disabled():
            memo.get(5, batch_size=2)
            memo.get(5, batch_size=2)
        stats = memo.stats()
        assert len(memo) == 0
        assert stats["bypasses"] == 2 and stats["hits"] == 0

    def test_module_singleton_feeds_the_solver_hot_path(self):
        from repro.batch.ifd import ifd_batch
        from repro.batch.padding import PaddedValues
        from repro.core.policies import SharingPolicy
        from repro.utils.memo import plan_memo

        padded = PaddedValues.from_instances(
            [np.sort(np.random.default_rng(7).uniform(0.5, 2.0, 9))[::-1]]
        )
        plan_memo.clear()
        plan_memo.reset_counters()
        solved = ifd_batch(padded, [4], SharingPolicy())
        stats = plan_memo.stats()
        assert stats["hits"] > 0  # the bisection reuses one plan per call site
        with plan_memo.disabled():
            reference = ifd_batch(padded, [4], SharingPolicy())
        np.testing.assert_array_equal(solved.probabilities, reference.probabilities)
        np.testing.assert_array_equal(solved.values, reference.values)
