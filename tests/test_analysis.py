"""Tests for the experiment harness (analysis subpackage)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ascii_line_plot,
    coverage_ratio_sweep,
    ess_experiment,
    figure1_data,
    figure1_panels,
    observation1_experiment,
    render_report,
    spoa_experiment,
    support_size_sweep,
    theorem6_certificates,
    write_figure1_csv,
)
from repro.analysis.reporting import figure1_report, rows_to_table
from repro.analysis.spoa_experiments import sharing_spoa_upper_bound_check
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.values import SiteValues
from repro.utils.io import read_csv

# Small grids keep the harness tests fast while exercising every code path.
SMALL_C_GRID = np.linspace(-0.5, 0.5, 11)


@pytest.fixture(scope="module")
def left_panel():
    return figure1_data(SiteValues.two_sites(0.3), 2, c_grid=SMALL_C_GRID, welfare_grid_points=801)


@pytest.fixture(scope="module")
def right_panel():
    return figure1_data(SiteValues.two_sites(0.5), 2, c_grid=SMALL_C_GRID, welfare_grid_points=801)


class TestFigure1:
    def test_ess_peaks_exactly_at_exclusive(self, left_panel, right_panel):
        # The headline qualitative claim of Figure 1: ESS coverage is maximised
        # at c = 0 and meets the optimum there.
        for panel in (left_panel, right_panel):
            assert panel.argmax_c == pytest.approx(0.0)
            assert panel.peak_gap == pytest.approx(0.0, abs=1e-9)

    def test_ess_strictly_below_optimum_away_from_zero(self, left_panel):
        mask = np.abs(left_panel.c_grid) > 1e-9
        assert np.all(left_panel.ess_coverage[mask] < left_panel.optimal_coverage - 1e-9)

    def test_ess_coverage_monotone_towards_zero(self, left_panel):
        # Coverage increases as c rises towards 0 and decreases beyond it.
        c = left_panel.c_grid
        ess = left_panel.ess_coverage
        below = ess[c <= 0]
        above = ess[c >= 0]
        assert np.all(np.diff(below) >= -1e-12)
        assert np.all(np.diff(above) <= 1e-12)

    def test_welfare_optimum_meets_optimum_at_sharing(self, left_panel):
        # At c = 0.5 (sharing with two players) welfare == coverage, so the
        # welfare-optimal strategy achieves the optimal coverage.
        idx = int(np.argmin(np.abs(left_panel.c_grid - 0.5)))
        assert left_panel.welfare_optimum_coverage[idx] == pytest.approx(
            left_panel.optimal_coverage, abs=1e-4
        )

    def test_optimum_values_match_paper_instances(self, left_panel, right_panel):
        # Closed form for k=2, f=(1, f2): optimal coverage = 1 + f2 - f2/(1+f2).
        for panel, f2 in ((left_panel, 0.3), (right_panel, 0.5)):
            expected = 1 + f2 - f2 / (1 + f2)
            assert panel.optimal_coverage == pytest.approx(expected, abs=1e-12)

    def test_series_and_csv_round_trip(self, tmp_path, left_panel):
        series = left_panel.as_series()
        assert set(series) == {"c", "ess_coverage", "optimal_coverage", "welfare_optimum_coverage"}
        paths = write_figure1_csv(tmp_path, c_grid=SMALL_C_GRID, welfare_grid_points=201)
        assert len(paths) == 2
        headers, rows = read_csv(paths[0])
        assert headers[0] == "c"
        assert len(rows) == SMALL_C_GRID.size

    def test_panels_helper_names(self):
        panels = figure1_panels(c_grid=np.linspace(-0.1, 0.1, 3), welfare_grid_points=101)
        assert set(panels) == {"f2=0.3", "f2=0.5"}

    def test_rejects_c_above_one(self):
        with pytest.raises(ValueError):
            figure1_data(SiteValues.two_sites(0.3), 2, c_grid=np.array([0.0, 1.5]))


class TestObservation1Experiment:
    def test_all_instances_hold(self):
        rows = observation1_experiment(m_values=(5, 20), k_values=(2, 5), n_random=2, rng=0)
        assert rows
        assert all(row.holds for row in rows)
        assert all(row.ratio > row.bound for row in rows)

    def test_uniform_bound_is_proof_step(self):
        # The proof lower-bounds the optimum by the uniform-over-top-k strategy.
        rows = observation1_experiment(m_values=(10,), k_values=(3,), n_random=1, rng=1)
        for row in rows:
            assert row.optimal_coverage >= row.uniform_top_k_coverage - 1e-12
            assert row.uniform_top_k_coverage > row.bound * row.top_k_coverage - 1e-12


class TestSPoAExperiments:
    def test_exclusive_worst_ratio_is_one(self):
        rows = spoa_experiment(
            policies=[ExclusivePolicy(), SharingPolicy()],
            m_values=(2, 5),
            k_values=(2, 3),
            n_random=3,
            rng=0,
        )
        by_name = {row.policy_name: row for row in rows}
        assert by_name["exclusive"].worst_ratio == pytest.approx(1.0, abs=1e-8)
        assert by_name["sharing"].worst_ratio > 1.0

    def test_theorem6_certificates(self):
        certificates = theorem6_certificates(k=3)
        assert certificates["exclusive"] == pytest.approx(1.0, abs=1e-9)
        for name, ratio in certificates.items():
            if name != "exclusive":
                assert ratio > 1.0, name

    def test_sharing_upper_bound_check(self):
        ratio = sharing_spoa_upper_bound_check(
            k_values=(2, 3), m_values=(2, 5), n_random=5, rng=0
        )
        assert 1.0 < ratio <= 2.0


class TestESSExperiment:
    def test_all_instances_are_ess(self):
        rows = ess_experiment(m_values=(3,), k_values=(2, 3), n_random_mutants=5, rng=0)
        assert rows
        for row in rows:
            assert row.is_ess
            assert row.worst_margin >= 0
            assert row.mutant_suppressed
            assert row.mutant_final_share < 0.02


class TestSweeps:
    def test_coverage_ratio_sweep_shapes_and_bounds(self):
        values = SiteValues.zipf(10)
        sweep = coverage_ratio_sweep(
            values, [ExclusivePolicy(), SharingPolicy()], k_values=(2, 4, 8)
        )
        assert sweep.x_values.shape == (3,)
        assert set(sweep.curves) == {"exclusive", "sharing"}
        np.testing.assert_allclose(sweep.curves["exclusive"], 1.0, atol=1e-9)
        assert np.all(sweep.curves["sharing"] <= 1.0 + 1e-12)
        series = sweep.as_series()
        assert "k" in series

    def test_support_size_sweep_monotone(self):
        families = {"zipf": SiteValues.zipf(60), "uniform": SiteValues.uniform(60)}
        sweep = support_size_sweep(families, k_values=(2, 4, 8, 16))
        assert np.all(np.diff(sweep.curves["zipf"]) >= 0)
        np.testing.assert_allclose(sweep.curves["uniform"], 60)


class TestReportingHelpers:
    def test_rows_to_table(self):
        rows = observation1_experiment(m_values=(5,), k_values=(2,), n_random=0, rng=0)
        table = rows_to_table(rows)
        assert "family" in table.splitlines()[0]
        assert len(table.splitlines()) == len(rows) + 2

    def test_rows_to_table_empty_and_invalid(self):
        assert rows_to_table([]) == "(no rows)"
        with pytest.raises(TypeError):
            rows_to_table([{"not": "a dataclass"}])

    def test_figure1_report_contains_key_numbers(self, left_panel):
        report = figure1_report({"f2=0.3": left_panel})
        assert "peak at c" in report
        assert "Figure 1 panel" in report

    def test_render_report_structure(self):
        text = render_report("Title", [("Section", "body")])
        assert text.splitlines()[0] == "Title"
        assert "Section" in text

    def test_ascii_plot_dimensions_and_symbols(self):
        x = np.linspace(0, 1, 20)
        plot = ascii_line_plot(x, {"a": x, "b": 1 - x}, width=40, height=10, title="demo")
        lines = plot.splitlines()
        assert lines[0] == "demo"
        assert any("*" in line for line in lines)
        assert any("o" in line for line in lines)

    def test_ascii_plot_validation(self):
        with pytest.raises(ValueError):
            ascii_line_plot([], {"a": []})
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], {})
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], {"a": [1, 2, 3]})
        with pytest.raises(ValueError):
            ascii_line_plot([0, 1], {"a": [1, 2]}, width=2, height=2)

    def test_ascii_plot_constant_curve(self):
        plot = ascii_line_plot([0, 1, 2], {"flat": [1.0, 1.0, 1.0]})
        assert "flat" in plot
