"""Exact Von Schelling coverage-time laws vs the Monte-Carlo stack.

The headline contract of this module: the closed-form coverage-time kernels
of :mod:`repro.batch.coverage_times` agree with the merged-search
Monte-Carlo estimator within four standard errors on a seeded 64-row grid
of ragged, mixed-``k``, partly near-degenerate visit distributions — with
censored rows flagged and excluded rather than silently biasing the
comparison (the SEM/DKW machinery lives in ``tests/stat_helpers.py`` and is
shared with the other stochastic suites).

Around the headline sit the deterministic anchors:

* a brute-force subset-state dynamic program reproduces the exact CDF,
  expectation and every partial expectation on small instances;
* distribution-free properties — CDF monotone in ``[0, 1]`` with
  ``F(0) = 0``, ``t`` rounds of ``k`` draws equals ``kt`` single draws,
  uniform rows collapse to the classical coupon collector
  (``m H_m`` harmonics at any ``M``), ``E[T]`` is minimised by the uniform
  distribution, partial coverage interpolates between ``j = 1`` and
  ``j = M``;
* the where-masked degenerate contract (``inf`` expectations, zero CDFs,
  no floating-point warnings) and the staging/validation error paths.

The whole module runs once per available array backend through the autouse
fixture, mirroring the other batch suites.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from repro.batch.coverage_times import (
    DEFAULT_MAX_EXACT_SITES,
    as_visit_distribution_batch,
    coverage_time_cdf_batch,
    estimate_coverage_time_mc,
    expected_coverage_time_batch,
    partial_coverage_time_batch,
)
from repro.search import (
    BayesianSearchProblem,
    coverage_time_cdf,
    expected_coverage_time,
    partial_coverage_time,
    sigma_star_strategy,
    uniform_strategy,
)
from stat_helpers import assert_cdf_within_band, assert_z_within

SIGMAS = 4.0


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every coverage-time property test under each available backend."""
    with use_backend(request.param):
        yield request.param


def brute_force_laws(p, k, t_max, tol=1e-13):
    """Subset-state DP: exact CDFs of |visited| >= j for every j, plus E[T_j].

    State = the set of visited sites; one round composes ``k`` single-draw
    transitions.  Returns ``(cdfs, expectations)`` where ``cdfs[j - 1]`` is
    the CDF grid of the time to visit ``j`` distinct sites on
    ``t = 0..t_max`` and ``expectations[j - 1]`` its mean via the survival
    sum (truncated once the full-coverage survival drops below ``tol``).
    """
    p = np.asarray(p, dtype=float)
    m = p.size
    size = np.array([bin(state).count("1") for state in range(1 << m)])

    def step(dist):
        out = np.zeros_like(dist)
        for state in range(1 << m):
            if dist[state] == 0.0:
                continue
            for site in range(m):
                out[state | (1 << site)] += dist[state] * p[site]
        return out

    dist = np.zeros(1 << m)
    dist[0] = 1.0
    cdfs = [[0.0] for _ in range(m)]
    expectations = np.zeros(m)
    t = 0
    while True:
        survival = 1.0 - cdfs[m - 1][-1]
        expectations += np.array([1.0 - row[-1] for row in cdfs])
        if (survival < tol and t >= t_max) or t > 100_000:
            break
        for _ in range(k):
            dist = step(dist)
        t += 1
        for j in range(1, m + 1):
            cdfs[j - 1].append(float(dist[size >= j].sum()))
    return [np.asarray(row[: t_max + 1]) for row in cdfs], expectations


def ragged_rows(rng, count, m_range=(2, 6), near_degenerate_every=5):
    """A ragged batch of visit distributions with a few near-degenerate rows."""
    rows = []
    for index in range(count):
        m = int(rng.integers(*m_range))
        if near_degenerate_every and index % near_degenerate_every == 0 and m >= 2:
            # Almost all mass on one site: long but finite coverage times.
            row = np.full(m, 0.05 / (m - 1))
            row[int(rng.integers(m))] = 0.95
        else:
            row = rng.dirichlet(np.ones(m) * 0.9)
        rows.append(row)
    return rows


class TestStaging:
    def test_ragged_sequence_packs_and_normalises(self):
        probs, counts = as_visit_distribution_batch([[2.0, 2.0], [1.0, 1.0, 2.0]])
        assert probs.shape == (2, 3)
        assert counts.tolist() == [2, 3]
        assert np.allclose(probs[0], [0.5, 0.5, 0.0])
        assert np.allclose(probs[1], [0.25, 0.25, 0.5])

    def test_matrix_with_sizes_keeps_padding_clean(self):
        matrix = np.array([[0.5, 0.5, 0.0], [0.2, 0.3, 0.5]])
        probs, counts = as_visit_distribution_batch(matrix, sizes=[2, 3])
        assert counts.tolist() == [2, 3]
        assert probs[0, 2] == 0.0

    def test_strategy_objects_are_accepted(self):
        problem = BayesianSearchProblem.from_weights([3.0, 2.0, 1.0])
        probs, counts = as_visit_distribution_batch([uniform_strategy(problem)])
        assert counts.tolist() == [3]
        assert np.allclose(probs[0], 1.0 / 3.0)

    def test_validation_errors(self):
        with pytest.raises(ValueError, match="non-empty"):
            as_visit_distribution_batch(np.empty((0, 3)))
        with pytest.raises(ValueError, match="empty batch"):
            as_visit_distribution_batch([])
        with pytest.raises(ValueError, match="finite and non-negative"):
            as_visit_distribution_batch([[0.5, -0.5]])
        with pytest.raises(ValueError, match="positive mass"):
            as_visit_distribution_batch([[0.0, 0.0]])
        with pytest.raises(ValueError, match="zero mass"):
            as_visit_distribution_batch(np.array([[0.5, 0.5]]), sizes=[1])
        with pytest.raises(ValueError, match="sizes"):
            as_visit_distribution_batch(np.eye(2), sizes=[1, 2, 3])

    def test_times_and_j_validation(self):
        row = np.array([[0.5, 0.5]])
        with pytest.raises(ValueError, match="non-negative"):
            coverage_time_cdf_batch(row, 1, -1)
        with pytest.raises(ValueError, match="1 <= j"):
            partial_coverage_time_batch(row, 1, 3)
        with pytest.raises(ValueError, match="1 <= j"):
            partial_coverage_time_batch(row, 1, 0)
        with pytest.raises(ValueError, match=r"\(1,\) roster"):
            partial_coverage_time_batch(row, 1, [1, 2])

    def test_non_uniform_rows_beyond_max_sites_refuse(self):
        wide = np.linspace(1.0, 2.0, DEFAULT_MAX_EXACT_SITES + 1)
        with pytest.raises(ValueError, match="max_sites"):
            expected_coverage_time_batch(wide[None, :] / wide.sum(), 2)
        # An explicit cap raise admits the same row.
        value = expected_coverage_time_batch(
            wide[None, :] / wide.sum(), 2, max_sites=DEFAULT_MAX_EXACT_SITES + 1
        )
        assert np.isfinite(value[0])
        # Uniform rows bypass enumeration entirely, at any width.
        big = np.full((1, 50), 1.0 / 50.0)
        assert np.isfinite(expected_coverage_time_batch(big, 2)[0])


class TestBruteForceAnchor:
    def test_all_laws_match_subset_state_dp(self, rng):
        for m in (2, 3, 4):
            for k in (1, 2, 3):
                p = rng.dirichlet(np.ones(m) * 0.8)
                t_max = 12
                cdfs, expectations = brute_force_laws(p, k, t_max)
                grid = np.arange(t_max + 1)
                full = coverage_time_cdf_batch(p[None, :], k, grid)[0]
                assert np.allclose(full, cdfs[m - 1], atol=1e-10)
                value = expected_coverage_time_batch(p[None, :], k)[0]
                assert abs(value - expectations[m - 1]) < 1e-8 * max(1.0, expectations[m - 1])
                for j in range(1, m + 1):
                    partial = partial_coverage_time_batch(p[None, :], k, j)[0]
                    assert abs(partial - expectations[j - 1]) < 1e-8 * max(
                        1.0, expectations[j - 1]
                    )

    def test_uniform_rows_match_dp_for_k_greater_than_one(self):
        for m, k in ((3, 2), (4, 3)):
            p = np.full(m, 1.0 / m)
            _, expectations = brute_force_laws(p, k, 1)
            value = expected_coverage_time_batch(p[None, :], k)[0]
            assert abs(value - expectations[m - 1]) < 1e-8 * max(1.0, expectations[m - 1])


class TestProperties:
    def test_cdf_is_monotone_in_unit_interval_from_zero(self, rng):
        rows = ragged_rows(rng, 6)
        probs, counts = as_visit_distribution_batch(rows)
        ks = np.asarray([1, 2, 3, 5, 2, 1])
        grid = np.arange(0, 40)
        cdf = coverage_time_cdf_batch(probs, ks, grid, sizes=counts)
        assert cdf.shape == (6, 40)
        assert np.all(cdf[:, 0] == 0.0)
        assert np.all((cdf >= 0.0) & (cdf <= 1.0))
        assert np.all(np.diff(cdf, axis=1) >= -1e-12)

    def test_k_rounds_reduce_to_single_draws(self, rng):
        p = rng.dirichlet(np.ones(5))
        grid = np.arange(0, 15)
        for k in (2, 3, 4):
            many = coverage_time_cdf_batch(p[None, :], k, grid)[0]
            single = coverage_time_cdf_batch(p[None, :], 1, k * grid)[0]
            assert np.allclose(many, single, atol=1e-12)

    def test_uniform_is_the_classical_coupon_collector(self):
        for m in (1, 2, 7, 40, 500):
            harmonic = float(np.sum(1.0 / np.arange(1, m + 1)))
            value = expected_coverage_time_batch(np.full((1, m), 1.0 / m), 1)[0]
            assert abs(value - m * harmonic) < 1e-9 * max(1.0, m * harmonic)
        # Partial coverage: E[T_j] = m (H_m - H_{m-j}).
        m, j = 30, 12
        harmonics = np.cumsum(1.0 / np.arange(1, m + 1))
        expected = m * (harmonics[-1] - harmonics[m - j - 1])
        value = partial_coverage_time_batch(np.full((1, m), 1.0 / m), 1, j)[0]
        assert abs(value - expected) < 1e-9 * expected

    def test_uniform_minimises_expected_coverage_time(self, rng):
        for m in (3, 4, 5):
            uniform = expected_coverage_time_batch(np.full((1, m), 1.0 / m), 1)[0]
            for _ in range(5):
                p = rng.dirichlet(np.ones(m))
                skewed = expected_coverage_time_batch(p[None, :], 1)[0]
                assert skewed >= uniform - 1e-9

    def test_partial_coverage_interpolates(self, rng):
        p = rng.dirichlet(np.ones(5))
        full = expected_coverage_time_batch(p[None, :], 2)[0]
        previous = 0.0
        for j in range(1, 6):
            value = partial_coverage_time_batch(p[None, :], 2, j)[0]
            assert value >= previous - 1e-12
            previous = value
        assert abs(previous - full) < 1e-10 * max(1.0, full)
        assert partial_coverage_time_batch(p[None, :], 2, 1)[0] == pytest.approx(1.0)

    def test_single_site_is_immediate(self):
        one = np.ones((1, 1))
        assert expected_coverage_time_batch(one, 3)[0] == pytest.approx(1.0)
        cdf = coverage_time_cdf_batch(one, 3, [0, 1, 2])[0]
        assert np.allclose(cdf, [0.0, 1.0, 1.0])

    def test_mixed_j_roster(self, rng):
        rows = [rng.dirichlet(np.ones(m)) for m in (3, 4, 5)]
        probs, counts = as_visit_distribution_batch(rows)
        js = np.asarray([1, 2, 5])
        values = partial_coverage_time_batch(probs, 2, js, sizes=counts)
        for index, j in enumerate(js):
            scalar = partial_coverage_time_batch(
                rows[index][None, :], 2, int(j)
            )[0]
            assert values[index] == pytest.approx(scalar)


class TestDegenerateContract:
    def test_uncoverable_rows_are_inf_without_warnings(self):
        probs = np.array([[0.5, 0.5, 0.0], [0.2, 0.3, 0.5]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            expected = expected_coverage_time_batch(probs, 2)
            cdf = coverage_time_cdf_batch(probs, 2, [0, 4, 64])
            partial = partial_coverage_time_batch(probs, 2, [3, 3])
        assert np.isinf(expected[0]) and np.isfinite(expected[1])
        assert np.all(cdf[0] == 0.0) and cdf[1, -1] > 0.9
        assert np.isinf(partial[0]) and np.isfinite(partial[1])
        # j within the positive support is still reachable.
        reachable = partial_coverage_time_batch(probs, 2, [2, 2])
        assert np.isfinite(reachable).all()

    def test_sigma_star_with_small_support_is_flagged(self):
        problem = BayesianSearchProblem.from_weights([5.0, 1.0, 0.5, 0.1])
        strategy = sigma_star_strategy(problem, 1)  # concentrates on one box
        probs, counts = as_visit_distribution_batch([strategy])
        if float(np.count_nonzero(probs[0])) < counts[0]:
            assert np.isinf(expected_coverage_time_batch(probs, 1, sizes=counts)[0])


class TestScalarWrappers:
    def test_wrappers_agree_with_batch(self, rng):
        p = rng.dirichlet(np.ones(4))
        assert expected_coverage_time(p, 2) == pytest.approx(
            float(expected_coverage_time_batch(p[None, :], 2)[0])
        )
        grid = [0, 3, 9]
        vector = coverage_time_cdf(p, 2, grid)
        assert vector.shape == (3,)
        assert np.allclose(vector, coverage_time_cdf_batch(p[None, :], 2, grid)[0])
        scalar = coverage_time_cdf(p, 2, 3)
        assert isinstance(scalar, float)
        assert scalar == pytest.approx(float(vector[1]))
        assert partial_coverage_time(p, 2, 3) == pytest.approx(
            float(partial_coverage_time_batch(p[None, :], 2, 3)[0])
        )

    def test_wrapper_validation(self):
        with pytest.raises(ValueError):
            expected_coverage_time([0.5, 0.5], 0)
        with pytest.raises(ValueError):
            partial_coverage_time([0.5, 0.5], 1, 0)
        with pytest.raises(ValueError):
            expected_coverage_time([], 1)


class TestMonteCarloCrossValidation:
    def test_headline_grid_agrees_within_four_sigma(self):
        # The acceptance grid: >= 64 ragged rows, mixed k, near-degenerate
        # rows every fifth position, one seeded estimator pass.
        rng = np.random.default_rng(20180503)
        rows = ragged_rows(rng, 64)
        probs, counts = as_visit_distribution_batch(rows)
        ks = np.asarray([(1, 2, 3, 5)[index % 4] for index in range(64)])
        grid = np.asarray([1, 2, 4, 8, 16, 64, 256])

        exact_mean = expected_coverage_time_batch(probs, ks, sizes=counts)
        exact_cdf = coverage_time_cdf_batch(probs, ks, grid, sizes=counts)
        estimate = estimate_coverage_time_mc(
            probs, ks, 3000, sizes=counts, times=grid, rng=rng
        )

        assert np.all(np.isfinite(exact_mean))
        assert np.all(estimate.censored_counts == 0)
        assert_z_within(
            estimate.means, exact_mean, estimate.sems, SIGMAS, context="E[T]"
        )
        # Under the null the tail fraction is Binomial(n, F): its SEM is
        # sqrt(F (1 - F) / n) — nonzero even when every trial lands on one
        # side (where the empirical SEM degenerates to 0).
        null_sems = np.sqrt(exact_cdf * (1.0 - exact_cdf) / estimate.n_trials)
        assert_z_within(
            estimate.cdfs,
            exact_cdf,
            np.maximum(estimate.cdf_sems, null_sems),
            SIGMAS,
            context="P(T <= t)",
        )
    def test_exact_cdf_generates_consistent_samples(self, rng):
        # The recombined estimator is not a plain ECDF (signed subset sums
        # inflate its pointwise variance), so the DKW band is exercised on a
        # genuine one: n inverse-CDF samples drawn from the exact law must
        # stay inside the band around the exact CDF.
        n_samples = 4000
        for m, k in ((3, 1), (5, 2), (4, 3)):
            p = rng.dirichlet(np.ones(m))
            grid = np.arange(0, 512)
            exact = coverage_time_cdf_batch(p[None, :], k, grid)[0]
            assert exact[-1] > 1.0 - 1e-9  # the horizon captures all the mass
            draws = np.searchsorted(exact, rng.uniform(size=n_samples), side="left")
            empirical = np.mean(draws[None, :] <= grid[:, None], axis=1)
            assert_cdf_within_band(
                empirical, exact, n_samples, SIGMAS, context=f"ECDF m={m} k={k}"
            )

    def test_estimator_flags_censored_rows(self):
        probs = np.array([[0.98, 0.02]])
        estimate = estimate_coverage_time_mc(probs, 1, 300, max_rounds=3, rng=0)
        assert estimate.censored_counts[0] > 0
        assert np.isnan(estimate.means[0]) and np.isnan(estimate.sems[0])

    def test_estimator_flags_degenerate_rows(self):
        probs = np.array([[0.5, 0.5, 0.0], [0.25, 0.25, 0.5]])
        estimate = estimate_coverage_time_mc(probs, 2, 120, times=[4], rng=1)
        assert estimate.censored_counts[0] == estimate.n_trials
        assert np.isnan(estimate.means[0])
        assert np.all(np.isnan(estimate.cdfs[0]))
        assert np.isfinite(estimate.means[1])

    def test_estimator_is_seed_deterministic(self):
        probs = np.array([[0.3, 0.7], [0.5, 0.5]])
        first = estimate_coverage_time_mc(probs, 2, 200, times=[2, 8], rng=42)
        second = estimate_coverage_time_mc(probs, 2, 200, times=[2, 8], rng=42)
        assert np.array_equal(first.means, second.means)
        assert np.array_equal(first.cdfs, second.cdfs)
