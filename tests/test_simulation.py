"""Tests for the Monte-Carlo simulation engine and estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage, expected_sites_visited
from repro.core.payoffs import expected_payoff, site_values
from repro.core.policies import AggressivePolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import individual_payoff
from repro.simulation import (
    DispersalSimulator,
    empirical_coverage,
    empirical_individual_payoff,
    empirical_site_values,
    simulate_dispersal,
    simulate_profile,
    spawn_generators,
    standard_error,
)

N_TRIALS = 40_000
SIGMAS = 5.0  # calibrated tolerance: five standard errors


class TestEngineAgainstExactFormulas:
    def test_coverage_matches_formula(self, small_values, named_policy):
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 3
        result = simulate_dispersal(small_values, strategy, k, named_policy, N_TRIALS, rng=0)
        exact = coverage(small_values, strategy, k)
        assert abs(result.coverage_mean - exact) < SIGMAS * max(result.coverage_sem, 1e-9)

    def test_payoff_matches_formula(self, small_values, named_policy):
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 3
        result = simulate_dispersal(small_values, strategy, k, named_policy, N_TRIALS, rng=1)
        exact = individual_payoff(small_values, strategy, k, named_policy)
        assert abs(result.payoff_mean - exact) < SIGMAS * max(result.payoff_sem, 1e-9)

    def test_sites_visited_matches_formula(self, small_values):
        strategy = Strategy.uniform(4)
        k = 3
        result = simulate_dispersal(small_values, strategy, k, ExclusivePolicy(), N_TRIALS, rng=2)
        exact = expected_sites_visited(strategy, k)
        assert result.sites_visited_mean == pytest.approx(exact, abs=0.02)

    def test_negative_payoffs_simulated_correctly(self, small_values):
        strategy = Strategy.point_mass(4, 0)
        k = 3
        policy = AggressivePolicy(1.0)
        result = simulate_dispersal(small_values, strategy, k, policy, 5_000, rng=3)
        # Everyone collides on site 0, so each player earns -f(0) deterministically.
        assert result.payoff_mean == pytest.approx(-1.0)
        assert result.collision_rate == pytest.approx(1.0)

    def test_collision_rate_zero_for_disjoint_point_masses(self, small_values):
        profile = [Strategy.point_mass(4, 0), Strategy.point_mass(4, 1), Strategy.point_mass(4, 2)]
        result = simulate_profile(small_values, profile, ExclusivePolicy(), 2_000, rng=4)
        np.testing.assert_allclose(
            result.player_payoff_means, [1.0, 0.6, 0.3], atol=1e-12
        )

    def test_occupancy_histogram_sums_to_trials_times_sites(self, small_values):
        result = simulate_dispersal(
            small_values, Strategy.uniform(4), 3, SharingPolicy(), 1_000, rng=5
        )
        assert result.occupancy_histogram.sum() == 1_000 * 4

    def test_site_visit_frequencies_match_formula(self, small_values):
        strategy = Strategy(np.array([0.55, 0.25, 0.15, 0.05]))
        k = 2
        result = simulate_dispersal(small_values, strategy, k, SharingPolicy(), N_TRIALS, rng=6)
        exact = 1.0 - (1.0 - strategy.as_array()) ** k
        np.testing.assert_allclose(result.site_visit_frequencies, exact, atol=0.02)

    def test_batching_gives_identical_totals(self, small_values):
        strategy = Strategy.uniform(4)
        small_batch = DispersalSimulator(small_values, 2, SharingPolicy(), batch_size=97)
        large_batch = DispersalSimulator(small_values, 2, SharingPolicy(), batch_size=100_000)
        a = small_batch.run(strategy, 1_000, rng=7)
        b = large_batch.run(strategy, 1_000, rng=7)
        # Same seed but different batch splits: results are statistically
        # compatible (not bitwise identical); check they are close.
        assert abs(a.coverage_mean - b.coverage_mean) < 0.05

    def test_reproducibility_with_same_seed(self, small_values):
        strategy = Strategy.uniform(4)
        a = simulate_dispersal(small_values, strategy, 3, SharingPolicy(), 2_000, rng=11)
        b = simulate_dispersal(small_values, strategy, 3, SharingPolicy(), 2_000, rng=11)
        assert a.coverage_mean == b.coverage_mean
        assert a.payoff_mean == b.payoff_mean

    def test_profile_simulation_payoffs_match_group_formula(self, small_values):
        # Player 0 plays sigma_star, players 1-2 play uniform: check player 0's
        # mean payoff against the exact multi-group formula.
        star = sigma_star(small_values, 3).strategy
        uniform = Strategy.uniform(4)
        policy = ExclusivePolicy()
        result = simulate_profile(small_values, [star, uniform, uniform], policy, N_TRIALS, rng=8)
        from repro.core.payoffs import payoff_against_groups

        exact = payoff_against_groups(small_values, star, [(uniform, 2)], policy)
        sem = result.player_payoff_sems[0]
        assert abs(result.player_payoff_means[0] - exact) < SIGMAS * max(sem, 1e-9)

    def test_validation_errors(self, small_values):
        with pytest.raises(ValueError):
            simulate_dispersal(small_values, Strategy.uniform(3), 2, SharingPolicy(), 10)
        with pytest.raises(ValueError):
            simulate_profile(small_values, [Strategy.uniform(4)] * 2, SharingPolicy(), 0)
        with pytest.raises(ValueError):
            DispersalSimulator(small_values, 2, SharingPolicy()).run_profile(
                [Strategy.uniform(4)], 10
            )


class TestEstimators:
    def test_standard_error_basics(self):
        assert standard_error(np.array([1.0])) == np.inf
        assert standard_error(np.array([1.0, 1.0, 1.0])) == 0.0

    def test_empirical_coverage_wrapper(self, small_values):
        strategy = Strategy.uniform(4)
        mean, sem = empirical_coverage(small_values, strategy, 2, SharingPolicy(), 20_000, rng=0)
        exact = coverage(small_values, strategy, 2)
        assert abs(mean - exact) < SIGMAS * sem

    def test_empirical_individual_payoff_wrapper(self, small_values):
        strategy = Strategy.uniform(4)
        mean, sem = empirical_individual_payoff(
            small_values, strategy, 3, ExclusivePolicy(), 20_000, rng=1
        )
        exact = individual_payoff(small_values, strategy, 3, ExclusivePolicy())
        assert abs(mean - exact) < SIGMAS * sem

    def test_empirical_site_values_match_eq2(self, small_values):
        strategy = Strategy(np.array([0.5, 0.3, 0.15, 0.05]))
        k = 3
        means, sems = empirical_site_values(
            small_values, strategy, k, SharingPolicy(), 30_000, rng=2
        )
        exact = site_values(small_values, strategy, k, SharingPolicy())
        for mean, sem, target in zip(means, sems, exact):
            assert abs(mean - target) < SIGMAS * max(sem, 1e-9)

    def test_empirical_site_values_single_player(self, small_values):
        means, _ = empirical_site_values(
            small_values, Strategy.uniform(4), 1, SharingPolicy(), 100, rng=3
        )
        np.testing.assert_allclose(means, small_values.as_array())

    def test_empirical_payoff_of_equilibrium_matches_nu(self, small_values):
        # At sigma_star every player's expected payoff equals alpha^(k-1).
        k = 3
        star = sigma_star(small_values, k)
        mean, sem = empirical_individual_payoff(
            small_values, star.strategy, k, ExclusivePolicy(), N_TRIALS, rng=4
        )
        assert abs(mean - star.equilibrium_value) < SIGMAS * max(sem, 1e-9)


class TestRNGHelpers:
    def test_spawn_generators_count_and_independence(self):
        gens = spawn_generators(3, rng=0)
        assert len(gens) == 3
        draws = [g.random(4) for g in gens]
        assert not np.allclose(draws[0], draws[1])

    def test_spawn_from_existing_generator(self):
        base = np.random.default_rng(5)
        gens = spawn_generators(2, rng=base)
        assert len(gens) == 2

    def test_spawn_reproducible_from_seed(self):
        a = [g.random() for g in spawn_generators(2, rng=42)]
        b = [g.random() for g in spawn_generators(2, rng=42)]
        assert a == b

    def test_spawn_rejects_zero(self):
        with pytest.raises(ValueError):
            spawn_generators(0)
