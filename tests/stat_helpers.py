"""Reusable statistical assertion helpers for exact-vs-Monte-Carlo tests.

The stochastic suites compare closed-form quantities against Monte-Carlo
estimates.  Ad-hoc absolute tolerances conflate two very different error
sources — sampling noise (shrinks like ``1/sqrt(n)``) and genuine kernel
bugs (don't) — so these helpers phrase every comparison in *sampling* units:

* :func:`assert_z_within` — SEM-normalised z-test of an estimate against an
  exact value (or of two independent estimates against each other via
  :func:`assert_two_sample_z_within`): the assertion budget is a number of
  standard errors, not an absolute gap, so it is invariant to trial count.
* :func:`assert_cdf_within_band` — a Dvoretzky-Kiefer-Wolfowitz style
  uniform band around an empirical CDF: ``eps = sqrt(ln(2 / alpha) / (2 n))``
  covers the whole curve simultaneously with probability ``1 - alpha``,
  where ``alpha`` is derived from the requested sigma level so callers keep
  thinking in sigmas.

All helpers accept scalars or arrays and produce failure messages naming the
worst offender, its z-score (or band exceedance) and the budget.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "sigmas_to_alpha",
    "assert_z_within",
    "assert_two_sample_z_within",
    "assert_cdf_within_band",
]


def sigmas_to_alpha(sigmas: float) -> float:
    """Two-sided tail mass of a standard normal beyond ``sigmas``.

    Converts a sigma budget into the significance level ``alpha`` used by
    the DKW band, so every helper speaks the same "how many sigmas" dialect.
    """
    return math.erfc(float(sigmas) / math.sqrt(2.0))


def assert_z_within(
    estimates,
    exact,
    sems,
    sigmas: float = 4.0,
    *,
    context: str = "estimate",
) -> np.ndarray:
    """Assert ``|estimates - exact| <= sigmas * sems`` elementwise.

    ``estimates``/``exact``/``sems`` broadcast together; entries where any
    input is NaN are skipped (censored/uncoverable rows flag themselves with
    NaN rather than biasing the comparison) and entries where both sides are
    infinite agree by convention.  Returns the z-score array (NaN where
    skipped) for callers that want to report or aggregate further.
    """
    estimates = np.asarray(estimates, dtype=float)
    exact = np.asarray(exact, dtype=float)
    sems = np.asarray(sems, dtype=float)
    estimates, exact, sems = np.broadcast_arrays(estimates, exact, sems)

    z = np.full(estimates.shape, np.nan)
    comparable = np.isfinite(estimates) & np.isfinite(exact) & np.isfinite(sems)
    both_infinite = np.isinf(estimates) & np.isinf(exact) & (np.sign(estimates) == np.sign(exact))
    z[both_infinite] = 0.0
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.abs(estimates - exact) / sems
    z[comparable] = ratio[comparable]
    # A zero SEM demands exact agreement: 0/0 -> 0, gap/0 -> inf (fails).
    exact_match = comparable & (sems == 0.0) & (estimates == exact)
    z[exact_match] = 0.0

    checked = np.isfinite(z) | np.isinf(z)
    if not np.any(checked):
        return z
    worst = np.nanmax(np.where(checked, z, -np.inf))
    if worst > float(sigmas):
        index = np.unravel_index(int(np.argmax(np.where(checked, z, -np.inf))), z.shape)
        raise AssertionError(
            f"{context}: worst z-score {worst:.3f} exceeds the {float(sigmas):.1f}-sigma "
            f"budget at index {tuple(int(i) for i in index)} "
            f"(estimate={estimates[index]!r}, exact={exact[index]!r}, sem={sems[index]!r})"
        )
    return z


def assert_two_sample_z_within(
    first,
    first_sems,
    second,
    second_sems,
    sigmas: float = 4.0,
    *,
    context: str = "estimates",
) -> np.ndarray:
    """Assert two independent estimates agree within ``sigmas`` combined SEMs.

    The combined standard error is the quadrature sum
    ``sqrt(sem_a**2 + sem_b**2)`` — the null hypothesis is that both
    estimators target the same underlying value.
    """
    first_sems = np.asarray(first_sems, dtype=float)
    second_sems = np.asarray(second_sems, dtype=float)
    combined = np.sqrt(first_sems**2 + second_sems**2)
    return assert_z_within(first, second, combined, sigmas, context=context)


def assert_cdf_within_band(
    empirical_cdf,
    exact_cdf,
    n_samples: int,
    sigmas: float = 4.0,
    *,
    context: str = "CDF",
) -> float:
    """Assert an empirical CDF stays in a DKW-style band around the exact one.

    The Dvoretzky-Kiefer-Wolfowitz inequality bounds the uniform deviation
    of an ``n``-sample empirical CDF: ``P(sup |F_n - F| > eps) <= alpha``
    for ``eps = sqrt(ln(2 / alpha) / (2 n))``.  ``alpha`` is derived from
    ``sigmas`` via :func:`sigmas_to_alpha`, so the band is the CDF-shaped
    analogue of a ``sigmas``-sigma z-test and covers every grid point of the
    curve *simultaneously*.  NaN entries (censored rows) are skipped.
    Returns the worst deviation in band units.
    """
    empirical = np.asarray(empirical_cdf, dtype=float)
    exact = np.asarray(exact_cdf, dtype=float)
    empirical, exact = np.broadcast_arrays(empirical, exact)
    n_samples = int(n_samples)
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")

    alpha = sigmas_to_alpha(sigmas)
    eps = math.sqrt(math.log(2.0 / alpha) / (2.0 * n_samples))
    comparable = np.isfinite(empirical) & np.isfinite(exact)
    if not np.any(comparable):
        return 0.0
    deviations = np.where(comparable, np.abs(empirical - exact), 0.0)
    worst = float(np.max(deviations))
    if worst > eps:
        index = np.unravel_index(int(np.argmax(deviations)), deviations.shape)
        raise AssertionError(
            f"{context}: empirical CDF leaves the DKW band at index "
            f"{tuple(int(i) for i in index)} — |{empirical[index]:.6f} - "
            f"{exact[index]:.6f}| = {worst:.6f} > eps = {eps:.6f} "
            f"(n={n_samples}, {float(sigmas):.1f} sigma, alpha={alpha:.3g})"
        )
    return worst / eps
