"""Special-case conformance tests for the batched kernels.

Modelled on the array-api test suite's special-case files: each test pins an
edge of the numerical contract — infinities, single-trial statistics,
degenerate supports and ``k = 1`` closed forms — rather than a property over
random inputs.  The whole module runs once per available backend (numpy
always; ``array_api_strict`` / ``torch`` when installed) through the autouse
``array_backend`` fixture, and every kernel call must complete **without
emitting warnings**: where-masked arithmetic, not warning suppression, is
the required implementation technique.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from repro.batch import PaddedValues, replicator_batch
from repro.batch.search import (
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.batch.simulation import simulate_dispersal_batch
from repro.core.policies import SharingPolicy
from repro.core.values import SiteValues


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every special-case test under each available backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture(autouse=True)
def warnings_are_errors():
    """Every special case must be handled by masking, not by warning."""
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        yield


class TestInfiniteDiscoveryTimes:
    """Rows whose treasure can sit in a never-searched box take forever."""

    priors = [[0.5, 0.5], [0.5, 0.5], [1.0, 0.0]]
    strategies = [[1.0, 0.0], [0.6, 0.4], [0.0, 1.0]]
    ks = np.array([2, 2, 1])

    def test_unsearched_positive_prior_is_inf(self):
        expected = expected_discovery_time_batch(self.priors, self.strategies, self.ks)
        assert np.isinf(expected[0])  # box 1 has prior mass but is never searched
        assert np.isfinite(expected[1])
        assert np.isinf(expected[2])  # the only possible box is never searched

    def test_zero_prior_boxes_do_not_poison_finite_rows(self):
        # Row: the *unsearched* box has zero prior, so the search always ends.
        expected = expected_discovery_time_batch(
            [[1.0, 0.0]], [[1.0, 0.0]], np.array([1])
        )
        assert expected[0] == pytest.approx(1.0)

    def test_success_probability_of_hopeless_rows_is_partial(self):
        success = success_probability_batch(self.priors, self.strategies, self.ks)
        # Row 0 finds the treasure only when it is in box 0: probability 1/2.
        assert success[0] == pytest.approx(0.5)
        assert success[2] == pytest.approx(0.0)

    def test_simulation_censors_hopeless_rows(self):
        sim = simulate_search_batch(
            self.priors, self.strategies, self.ks, 32, max_rounds=10, rng=5
        )
        # Row 2 can never succeed: every trial is censored at max_rounds + 1.
        assert np.all(sim.rounds[2] == 11)
        assert sim.success_rates[2] == 0.0
        assert np.isnan(sim.mean_rounds_when_found[2])


class TestSingleTrialStatistics:
    """``n_trials == 1`` leaves the mean defined and every SEM ``nan``."""

    def test_sems_are_nan_means_are_exact(self):
        rng = np.random.default_rng(6)
        instances = [SiteValues.random(m, rng) for m in (3, 5)]
        padded = PaddedValues.from_instances(instances)
        strategies = [
            (lambda w: w / w.sum())(rng.random(int(s))) for s in padded.sizes
        ]
        result = simulate_dispersal_batch(
            padded, strategies, [2, 3], SharingPolicy(), 1, 7
        )
        assert np.all(np.isnan(result.coverage_sems))
        assert np.all(np.isnan(result.payoff_sems))
        assert np.all(np.isfinite(result.coverage_means))
        reference = simulate_dispersal_batch(
            padded, strategies, [2, 3], SharingPolicy(), 1, 7, backend="numpy"
        )
        np.testing.assert_allclose(
            result.coverage_means, reference.coverage_means, rtol=1e-9, atol=1e-12
        )


class TestDegenerateSupports:
    """Single-site rows and zero-padded columns behave like their scalar limits."""

    def test_single_site_rows(self):
        # A one-site instance: everyone sits on the site, coverage is its value.
        padded = PaddedValues.from_instances(
            [SiteValues.from_values([2.0]), SiteValues.from_values([1.0, 0.5, 0.25])]
        )
        strategies = [np.array([1.0]), np.array([0.5, 0.3, 0.2])]
        result = simulate_dispersal_batch(
            padded, strategies, [3, 2], SharingPolicy(), 50, 11
        )
        assert np.all(result.coverage_means[0] == pytest.approx(2.0))
        assert result.collision_rates[0] == pytest.approx(1.0)

    def test_zero_probability_sites_never_drawn(self):
        padded = PaddedValues.from_instances([SiteValues.from_values([1.0, 0.5, 0.25])])
        strategies = [np.array([0.5, 0.0, 0.5])]
        result = simulate_dispersal_batch(
            padded, strategies, [4], SharingPolicy(), 200, 13
        )
        assert result.site_visit_frequencies[0, 1] == 0.0

    def test_padding_columns_stay_empty(self):
        padded = PaddedValues.from_instances(
            [SiteValues.from_values([1.0]), SiteValues.from_values([1.0, 0.5, 0.25, 0.125])]
        )
        strategies = [np.array([1.0]), np.array([0.4, 0.3, 0.2, 0.1])]
        result = simulate_dispersal_batch(
            padded, strategies, [2, 2], SharingPolicy(), 100, 17
        )
        assert np.all(result.site_visit_frequencies[0, 1:] == 0.0)

    def test_dynamics_on_single_site_rows(self):
        result = replicator_batch(
            [[1.0], [1.0, 0.4]], 2, SharingPolicy(), max_iter=50, record_every=10
        )
        # One site: the state is pinned at 1 and converges immediately.
        assert result.states[0, 0] == pytest.approx(1.0)
        assert bool(result.converged[0])


class TestKEqualsOneClosedForms:
    """With a single searcher the batched formulas collapse to inner products."""

    priors = [[0.5, 0.3, 0.2], [0.7, 0.2, 0.1]]
    strategies = [[0.6, 0.3, 0.1], [0.25, 0.5, 0.25]]

    def test_success_probability_is_q_dot_p(self):
        q = np.asarray(self.priors)
        p = np.asarray(self.strategies)
        success = success_probability_batch(self.priors, self.strategies, 1)
        np.testing.assert_allclose(success, np.sum(q * p, axis=1), rtol=1e-12)

    def test_expected_discovery_is_sum_q_over_p(self):
        q = np.asarray(self.priors)
        p = np.asarray(self.strategies)
        expected = expected_discovery_time_batch(self.priors, self.strategies, 1)
        np.testing.assert_allclose(expected, np.sum(q / p, axis=1), rtol=1e-12)

    def test_k_one_matches_scalar_reference(self):
        from repro.core.strategy import Strategy
        from repro.search.boxes import BayesianSearchProblem
        from repro.search.simulator import (
            expected_discovery_time,
            single_round_success_probability,
        )

        success = success_probability_batch(self.priors, self.strategies, 1)
        expected = expected_discovery_time_batch(self.priors, self.strategies, 1)
        for row, (q, p) in enumerate(zip(self.priors, self.strategies)):
            problem = BayesianSearchProblem(np.asarray(q))
            strategy = Strategy(np.asarray(p))
            assert success[row] == pytest.approx(
                single_round_success_probability(problem, strategy, 1), rel=1e-12
            )
            assert expected[row] == pytest.approx(
                expected_discovery_time(problem, strategy, 1), rel=1e-12
            )

    def test_k_one_simulation_merges_with_round_law(self):
        # With one searcher the per-round success probability is exactly
        # q·p, so the empirical round-one rate estimates it unbiasedly.
        sim = simulate_search_batch(self.priors, self.strategies, 1, 4000, rng=19)
        law = success_probability_batch(self.priors, self.strategies, 1)
        np.testing.assert_allclose(sim.round_one_success_rates, law, atol=0.05)
