"""Tests for the table formatter and CSV helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.io import read_csv, write_csv, write_series
from repro.utils.tables import format_float, format_table


class TestFormatFloat:
    def test_trims_trailing_zeros(self):
        assert format_float(1.5000) == "1.5"

    def test_keeps_integers_compact(self):
        assert format_float(3.0) == "3"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_precision(self):
        assert format_float(np.pi, precision=3) == "3.142"

    def test_zero(self):
        assert format_float(0.0) == "0"


class TestFormatTable:
    def test_alignment_and_separator(self):
        table = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert "-+-" in lines[1]
        assert lines[0].split(" | ")[0].strip() == "a"

    def test_mixed_types(self):
        table = format_table(["name", "flag", "x"], [["exclusive", True, 1.0]])
        assert "exclusive" in table and "True" in table

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_left_alignment(self):
        table = format_table(["col"], [["x"]], align_right=False)
        assert table.splitlines()[2].startswith("x")


class TestCSV:
    def test_write_and_read_round_trip(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2.5], [3, 4.5]])
        headers, rows = read_csv(path)
        assert headers == ["a", "b"]
        assert rows == [["1", "2.5"], ["3", "4.5"]]

    def test_write_creates_parent_dirs(self, tmp_path):
        path = write_csv(tmp_path / "nested" / "dir" / "out.csv", ["x"], [[1]])
        assert path.exists()

    def test_write_series(self, tmp_path):
        path = write_series(tmp_path / "s.csv", {"x": [1.0, 2.0], "y": [3.0, 4.0]})
        headers, rows = read_csv(path)
        assert headers == ["x", "y"]
        assert [float(v) for v in rows[1]] == [2.0, 4.0]

    def test_write_series_length_mismatch(self, tmp_path):
        with pytest.raises(ValueError):
            write_series(tmp_path / "bad.csv", {"x": [1.0], "y": [1.0, 2.0]})

    def test_write_series_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_series(tmp_path / "bad.csv", {})

    def test_read_empty_file(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            read_csv(empty)
