"""Tests of the online equilibrium service: hashing, cache, coalescer, HTTP.

The asyncio pieces run through ``asyncio.run`` inside synchronous tests, so
the suite needs no async test plugin.  The bit-identity battery is the
load-bearing part: a coalesced answer must equal the direct batch-of-one
answer **exactly** (``==`` on the JSON payload, not ``allclose``), for every
request family and also for requests deliberately co-batched with different
instance sizes — see ``repro/serving/engine.py`` for why that holds.
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest

from repro.core.values import SiteValues
from repro.serving import (
    BatchCoalescer,
    ContinuousBatchScheduler,
    CoverageTimeRequest,
    EquilibriumService,
    EXECUTOR_MODES,
    MechanismRequest,
    QueueFullError,
    ResultCache,
    SolveRequest,
    SweepRequest,
    create_executor,
    evaluate_group,
    evaluate_one,
    evaluate_requests,
    parse_request,
    start_server,
)
from repro.utils.canonical import canonical_k_grid, canonical_values, content_key

RNG = np.random.default_rng(1234)


def random_values(m: int) -> np.ndarray:
    return SiteValues.random(m, np.random.default_rng(m)).as_array()


# --------------------------------------------------------------------------
# canonical hashing
# --------------------------------------------------------------------------
class TestCanonical:
    def test_values_order_independent(self):
        assert canonical_values([0.3, 1.0, 0.7]) == canonical_values([1.0, 0.7, 0.3])
        assert canonical_values(np.array([0.5, 0.25])) == (0.5, 0.25)

    def test_values_validation(self):
        with pytest.raises(ValueError):
            canonical_values([1.0, -0.5])

    def test_k_grid_sorted_unique(self):
        assert canonical_k_grid([3, 2, 3]) == (2, 3)
        assert canonical_k_grid(5) == (5,)
        with pytest.raises(ValueError):
            canonical_k_grid([0, 2])
        with pytest.raises(ValueError):
            canonical_k_grid([2.5])

    def test_content_key_equal_across_spellings(self):
        a = content_key("solve", [0.3, 1.0], k=3, policy="exclusive")
        b = content_key("solve", np.array([1.0, 0.3]), k=np.int64(3), policy="exclusive")
        assert a == b

    def test_content_key_separates_params(self):
        base = content_key("solve", [0.3, 1.0], k=3)
        assert content_key("solve", [0.3, 1.0], k=4) != base
        assert content_key("sweep", [0.3, 1.0], k=3) != base
        # last-bit value changes must change the key (float.hex encoding)
        assert content_key("solve", [np.nextafter(0.3, 1.0), 1.0], k=3) != base


# --------------------------------------------------------------------------
# result cache
# --------------------------------------------------------------------------
class TestResultCache:
    def test_hit_miss_counters(self):
        cache = ResultCache(4)
        assert cache.get("a") is None
        cache.put("a", {"x": 1})
        assert cache.get("a") == {"x": 1}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5
        assert "a" in cache and len(cache) == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" becomes least recent
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_clear(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.clear()
        assert len(cache) == 0 and cache.get("a") is None


# --------------------------------------------------------------------------
# request models
# --------------------------------------------------------------------------
class TestRequests:
    def test_solve_canonicalises_and_validates(self):
        request = SolveRequest([0.3, 1.0, 0.7], k=np.int64(3))
        assert request.values == (1.0, 0.7, 0.3)
        assert request.m == 3 and request.k == 3
        with pytest.raises(ValueError):
            SolveRequest([1.0], k=0)
        with pytest.raises(ValueError):
            SolveRequest([1.0], policy="nonsense")

    def test_equal_requests_share_cache_key(self):
        a = SolveRequest([0.3, 1.0], k=2)
        b = SolveRequest(np.array([1.0, 0.3]), k=2)
        assert a == b and a.cache_key == b.cache_key
        assert a.cache_key != SolveRequest([0.3, 1.0], k=3).cache_key

    def test_mechanism_roster_canonicalised(self):
        a = MechanismRequest([1.0, 0.5], k=2, policies=("sharing", "exclusive", "sharing"))
        assert a.policies == ("exclusive", "sharing")
        with pytest.raises(ValueError):
            MechanismRequest([1.0], k=2, policies=())

    def test_pad_width_buckets(self):
        assert SolveRequest([1.0] * 1).pad_width == 8
        assert SolveRequest(random_values(8)).pad_width == 8
        assert SolveRequest(random_values(9)).pad_width == 16
        assert SolveRequest(random_values(65)).pad_width == 128

    def test_group_key_pins_everything_but_the_instance(self):
        a = SolveRequest(random_values(20), k=3)
        assert a.group_key == SolveRequest(random_values(25), k=3).group_key
        assert a.group_key != SolveRequest(random_values(20), k=4).group_key
        assert a.group_key != SolveRequest(random_values(20), k=3, policy="sharing").group_key
        assert a.group_key != SolveRequest(random_values(40), k=3).group_key  # bucket
        s = SweepRequest(random_values(20), k_grid=(2, 3))
        assert s.group_key != SweepRequest(random_values(20), k_grid=(2, 4)).group_key

    def test_parse_request_rejects_unknowns(self):
        request = parse_request("solve", {"values": [1.0, 0.5], "k": 2})
        assert isinstance(request, SolveRequest)
        with pytest.raises(ValueError, match="unknown request kind"):
            parse_request("solv", {"values": [1.0]})
        with pytest.raises(ValueError, match="unknown field"):
            parse_request("solve", {"values": [1.0], "kk": 2})
        with pytest.raises(ValueError):
            parse_request("solve", [1.0])


# --------------------------------------------------------------------------
# engine: grouped evaluation and the bit-identity contract
# --------------------------------------------------------------------------
def mixed_workload() -> list:
    # Ragged sizes inside and across width buckets, repeated ks, every family,
    # both the closed-form (exclusive) and bisection (sharing) solver paths.
    return [
        SolveRequest(random_values(12), k=3),
        SolveRequest(random_values(20), k=3),
        SolveRequest(random_values(17), k=3),
        SolveRequest(random_values(12), k=5),
        SolveRequest(random_values(14), k=3, policy="sharing"),
        SolveRequest(random_values(19), k=3, policy="sharing"),
        SweepRequest(random_values(11), k_grid=(2, 3, 5)),
        SweepRequest(random_values(16), k_grid=(2, 3, 5)),
        MechanismRequest(random_values(10), k=4, policies=("exclusive", "sharing")),
        MechanismRequest(random_values(13), k=4, policies=("exclusive", "sharing")),
    ]


class TestEngine:
    def test_coalesced_equals_direct_bitwise(self):
        requests = mixed_workload()
        direct = [evaluate_one(request) for request in requests]
        batched = evaluate_requests(requests)
        for index, (one, many) in enumerate(zip(direct, batched)):
            assert one == many, f"request {index} differs between direct and coalesced"

    def test_solve_payload_shape(self):
        payload = evaluate_one(SolveRequest(random_values(9), k=4))
        assert payload["kind"] == "solve" and payload["k"] == 4
        assert len(payload["probabilities"]) == 9
        assert payload["converged"] is True
        total = sum(payload["probabilities"])
        assert total == pytest.approx(1.0, abs=1e-9)
        assert payload["coverage"] > 0

    def test_sweep_payload_shape(self):
        payload = evaluate_one(SweepRequest(random_values(9), k_grid=(2, 4)))
        assert payload["k_grid"] == [2, 4]
        assert len(payload["coverages"]) == 2
        assert payload["support_sizes"][0] >= 1

    def test_mechanism_payload_shape(self):
        payload = evaluate_one(
            MechanismRequest(random_values(9), k=3, policies=("exclusive", "sharing"))
        )
        assert payload["policies"] == ["exclusive", "sharing"]
        assert len(payload["spoa"]) == 2
        for ratio in payload["spoa"]:
            assert ratio is None or ratio >= 1.0 - 1e-9

    def test_payloads_are_json_native(self):
        for request in mixed_workload()[:4]:
            json.dumps(evaluate_one(request))  # raises on numpy scalars

    def test_mixed_group_rejected(self):
        with pytest.raises(ValueError, match="mixed group"):
            evaluate_group(
                [SolveRequest(random_values(9), k=2), SolveRequest(random_values(9), k=3)]
            )


# --------------------------------------------------------------------------
# coalescer
# --------------------------------------------------------------------------
class TestCoalescer:
    def test_concurrent_submits_coalesce_into_one_batch(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=64, max_wait_ms=5.0)
            requests = [SolveRequest(random_values(10 + i), k=3) for i in range(8)]
            answers = await asyncio.gather(*(coalescer.submit(r) for r in requests))
            await coalescer.close()
            return answers, coalescer.stats(), [evaluate_one(r) for r in requests]

        answers, stats, direct = asyncio.run(run())
        assert answers == direct
        assert stats["batches"] == 1 and stats["largest_batch"] == 8

    def test_max_batch_triggers_immediate_flush(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=2, max_wait_ms=60_000.0)
            requests = [SolveRequest(random_values(10 + i), k=3) for i in range(4)]
            answers = await asyncio.gather(*(coalescer.submit(r) for r in requests))
            await coalescer.close()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        assert len(answers) == 4 and stats["batches"] == 2
        assert stats["largest_batch"] == 2

    def test_single_flight_dedup(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=64, max_wait_ms=5.0)
            request = SolveRequest(random_values(11), k=3)
            duplicate = SolveRequest(list(reversed(request.values)), k=3)
            answers = await asyncio.gather(
                *(coalescer.submit(r) for r in (request, duplicate, request))
            )
            await coalescer.close()
            return answers, coalescer.stats()

        answers, stats = asyncio.run(run())
        assert answers[0] == answers[1] == answers[2]
        assert stats["solved"] == 1 and stats["singleflight_hits"] == 2

    def test_cache_hits_skip_the_queue(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=64, max_wait_ms=1.0, cache=ResultCache(8))
            request = SolveRequest(random_values(11), k=3)
            first = await coalescer.submit(request)
            second = await coalescer.submit(SolveRequest(request.values, k=3))
            await coalescer.close()
            return first, second, coalescer.stats()

        first, second, stats = asyncio.run(run())
        assert first == second
        assert stats["cache_hits"] == 1 and stats["solved"] == 1
        assert stats["cache"]["hits"] == 1

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            BatchCoalescer(max_batch=0)
        with pytest.raises(ValueError):
            BatchCoalescer(max_wait_ms=-1.0)

    def test_failing_group_does_not_poison_others(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=64, max_wait_ms=5.0)
            good = SolveRequest(random_values(9), k=3)
            bad = SolveRequest(random_values(9), k=3, policy="sharing")
            # Sabotage only the sharing group's evaluator path.
            object.__setattr__(bad, "policy", "no-such-policy")
            results = await asyncio.gather(
                coalescer.submit(good), coalescer.submit(bad), return_exceptions=True
            )
            await coalescer.close()
            return results

        good_answer, bad_answer = asyncio.run(run())
        assert isinstance(good_answer, dict)
        assert isinstance(bad_answer, Exception)


# --------------------------------------------------------------------------
# continuous batching: executors, bursty loads, admission control
# --------------------------------------------------------------------------
class TestContinuousBatching:
    def test_lone_request_does_not_wait_for_the_backstop(self):
        # A fixed-window coalescer would hold this request for max_wait_ms;
        # continuous batching dispatches on the next tick when idle.
        async def run():
            scheduler = ContinuousBatchScheduler(max_batch=64, max_wait_ms=60_000.0)
            loop = asyncio.get_running_loop()
            t0 = loop.time()
            answer = await scheduler.submit(SolveRequest(random_values(10), k=3))
            elapsed = loop.time() - t0
            await scheduler.close()
            return answer, elapsed

        answer, elapsed = asyncio.run(run())
        assert answer["kind"] == "solve"
        assert elapsed < 1.0  # far below the 60 s backstop

    @pytest.mark.parametrize("mode", EXECUTOR_MODES)
    def test_bursty_load_is_bit_identical_under_every_executor(self, mode):
        # idle -> burst -> idle -> burst: the adaptive batch sizes differ
        # between phases, the answers must not.
        requests = mixed_workload()
        direct = [evaluate_one(request) for request in requests]

        async def run():
            scheduler = ContinuousBatchScheduler(
                max_batch=8, max_wait_ms=2.0, executor=create_executor(mode)
            )
            lone = await scheduler.submit(requests[0])  # idle phase
            burst_one = await asyncio.gather(*(scheduler.submit(r) for r in requests))
            lone_again = await scheduler.submit(requests[1])  # idle again
            burst_two = await asyncio.gather(*(scheduler.submit(r) for r in requests))
            stats = scheduler.stats()
            await scheduler.close()
            return lone, list(burst_one), lone_again, list(burst_two), stats

        lone, burst_one, lone_again, burst_two, stats = asyncio.run(run())
        assert lone == direct[0] and lone_again == direct[1]
        assert burst_one == direct and burst_two == direct
        assert stats["executor"]["mode"] == mode
        assert stats["solved"] == 2 * len(requests) + 2

    def test_stats_expose_scheduling_observability(self):
        async def run():
            scheduler = ContinuousBatchScheduler(max_batch=4, max_wait_ms=1.0)
            await asyncio.gather(
                *(scheduler.submit(SolveRequest(random_values(9 + i), k=3)) for i in range(6))
            )
            stats = scheduler.stats()
            await scheduler.close()
            return stats

        stats = asyncio.run(run())
        assert stats["max_pending"] == 1024 and stats["rejected"] == 0
        assert stats["accumulation_target"] >= 1
        assert stats["ewma_service_ms"] is None or stats["ewma_service_ms"] >= 0
        for histogram in (stats["queue_depth"], stats["latency_ms"]):
            assert histogram["count"] >= 1
            assert sum(histogram["buckets"].values()) == histogram["count"]
        assert stats["plan_memo"]["max_entries"] >= 1

    def test_cancelled_caller_does_not_poison_the_group(self):
        async def run():
            scheduler = ContinuousBatchScheduler(max_batch=8, max_wait_ms=5.0)
            doomed = SolveRequest(random_values(10), k=3)
            survivor = SolveRequest(random_values(12), k=3)
            with pytest.raises(asyncio.TimeoutError):
                await asyncio.wait_for(scheduler.submit(doomed), timeout=1e-6)
            answer = await scheduler.submit(survivor)
            # The abandoned request still settled internally: a re-ask is
            # served (from single-flight or a fresh dispatch), not wedged.
            redo = await scheduler.submit(doomed)
            await scheduler.close()
            return answer, redo

        answer, redo = asyncio.run(run())
        assert answer == evaluate_one(SolveRequest(random_values(12), k=3))
        assert redo == evaluate_one(SolveRequest(random_values(10), k=3))

    def test_queue_full_rejects_with_retry_after(self):
        async def run():
            scheduler = ContinuousBatchScheduler(max_batch=2, max_wait_ms=5.0, max_pending=3)
            requests = [SolveRequest(random_values(9 + i), k=3) for i in range(8)]
            # One gather burst: the pump is deferred to the next tick, so
            # admissions beyond max_pending reject before anything dispatches.
            results = await asyncio.gather(
                *(scheduler.submit(r) for r in requests), return_exceptions=True
            )
            stats = scheduler.stats()
            await scheduler.close()
            return results, stats

        results, stats = asyncio.run(run())
        rejected = [r for r in results if isinstance(r, QueueFullError)]
        served = [r for r in results if isinstance(r, dict)]
        assert len(rejected) == 5 and len(served) == 3
        assert stats["rejected"] == 5
        for error in rejected:
            assert error.retry_after > 0

    def test_invalid_executor_mode_rejected(self):
        with pytest.raises(ValueError):
            create_executor("fork-bomb")


# --------------------------------------------------------------------------
# coverage-time requests
# --------------------------------------------------------------------------
class TestCoverageTimeServing:
    def test_request_normalises_distribution(self):
        request = CoverageTimeRequest([2.0, 2.0, 4.0], k=2)
        assert request.values == (0.5, 0.25, 0.25)
        assert request.kind == "coverage-times"
        zeros_ok = CoverageTimeRequest([0.7, 0.3, 0.0])
        assert zeros_ok.values[-1] == 0.0

    def test_request_validation(self):
        with pytest.raises(ValueError):
            CoverageTimeRequest([0.5, 0.5], k=0)
        with pytest.raises(ValueError):
            CoverageTimeRequest([0.5, 0.5], j=3)  # j > m
        with pytest.raises(ValueError):
            CoverageTimeRequest([0.5, 0.5], times=[1.5])
        with pytest.raises(ValueError, match="enumeration cap"):
            CoverageTimeRequest(list(range(1, 19)))  # non-uniform, m=18 > 16
        # uniform distributions are exempt from the cap (O(M) closed form)
        wide = CoverageTimeRequest([1.0] * 40, k=2)
        assert wide.m == 40

    def test_payload_and_degenerate_rows(self):
        payload = evaluate_one(CoverageTimeRequest([0.5, 0.3, 0.2], k=2, times=(1, 5), j=2))
        assert payload["coverable"] is True
        assert payload["expected_rounds"] > 0
        assert payload["cdf"] == sorted(payload["cdf"])  # CDF is monotone
        assert 0 < payload["partial_expected_rounds"] < payload["expected_rounds"]
        degenerate = evaluate_one(CoverageTimeRequest([0.7, 0.3, 0.0], k=1))
        assert degenerate["coverable"] is False
        assert degenerate["expected_rounds"] is None

    def test_coalesced_equals_direct_bitwise(self):
        requests = [
            CoverageTimeRequest([0.5, 0.3, 0.2], k=2, times=(1, 3, 5), j=2),
            CoverageTimeRequest([0.25] * 4, k=2, times=(1, 3, 5), j=2),
            CoverageTimeRequest([0.6, 0.2, 0.1, 0.1], k=2, times=(1, 3, 5), j=2),
            CoverageTimeRequest([0.4, 0.3, 0.2, 0.1], k=2),  # separate group (no times)
        ]
        direct = [evaluate_one(request) for request in requests]
        assert evaluate_requests(requests) == direct

    def test_http_route_end_to_end(self):
        async def run():
            async with await start_server("127.0.0.1", 0, max_wait_ms=1.0) as running:
                ok = await http_request(
                    running.port, "POST", "/coverage-times",
                    {"values": [0.5, 0.3, 0.2], "k": 2, "times": [1, 3], "j": 2},
                )
                capped = await http_request(
                    running.port, "POST", "/coverage-times",
                    {"values": list(range(1, 19))},
                )
                return ok, capped

        ok, capped = asyncio.run(run())
        assert ok[0] == 200
        expected = evaluate_one(
            CoverageTimeRequest([0.5, 0.3, 0.2], k=2, times=(1, 3), j=2)
        )
        assert ok[1] == expected
        assert capped[0] == 400 and "enumeration cap" in capped[1]["error"]


# --------------------------------------------------------------------------
# HTTP front
# --------------------------------------------------------------------------
async def http_request(
    port: int, method: str, path: str, payload: dict | None = None
) -> tuple[int, dict]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\nHost: localhost\r\n"
        f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
    )
    writer.write(head.encode() + body)
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    status_line, _, rest = raw.partition(b"\r\n")
    status = int(status_line.split()[1])
    _, _, response_body = rest.partition(b"\r\n\r\n")
    return status, json.loads(response_body)


class TestHTTPServer:
    def test_routes_end_to_end(self):
        async def run():
            async with await start_server("127.0.0.1", 0, max_wait_ms=1.0) as running:
                port = running.port
                health = await http_request(port, "GET", "/healthz")
                values = [round(v, 6) for v in random_values(9).tolist()]
                solve = await http_request(
                    port, "POST", "/solve", {"values": values, "k": 3}
                )
                stats = await http_request(port, "GET", "/stats")
                bad = await http_request(port, "POST", "/solve", {"values": values, "kk": 1})
                missing = await http_request(port, "GET", "/nope")
                wrong_method = await http_request(port, "GET", "/solve")
                expected = evaluate_one(parse_request("solve", {"values": values, "k": 3}))
                return health, solve, stats, bad, missing, wrong_method, expected

        health, solve, stats, bad, missing, wrong_method, expected = asyncio.run(run())
        assert health == (200, {"status": "ok"})
        assert solve[0] == 200 and solve[1] == expected
        assert stats[0] == 200
        assert stats[1]["coalescer"]["requests"] == 1
        assert "environment" in stats[1]
        assert bad[0] == 400 and "unknown field" in bad[1]["error"]
        assert missing[0] == 404
        assert wrong_method[0] == 405

    def test_invalid_json_is_a_400(self):
        async def run():
            async with await start_server("127.0.0.1", 0, max_wait_ms=1.0) as running:
                reader, writer = await asyncio.open_connection("127.0.0.1", running.port)
                body = b"{not json"
                writer.write(
                    b"POST /solve HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                return raw

        raw = asyncio.run(run())
        assert raw.startswith(b"HTTP/1.1 400")

    def test_queue_full_maps_to_503_with_retry_after(self):
        async def run():
            coalescer = BatchCoalescer(max_batch=4, max_wait_ms=1.0)

            async def always_full(request):
                raise QueueFullError("pending queue is full", retry_after=2.4)

            coalescer.submit = always_full  # type: ignore[method-assign]
            async with await start_server("127.0.0.1", 0, coalescer=coalescer) as running:
                reader, writer = await asyncio.open_connection("127.0.0.1", running.port)
                body = json.dumps({"values": [1.0, 0.5], "k": 2}).encode()
                writer.write(
                    b"POST /solve HTTP/1.1\r\nHost: x\r\nConnection: close\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                raw = await reader.read()
                writer.close()
                await writer.wait_closed()
                return raw

        raw = asyncio.run(run())
        head, _, body = raw.partition(b"\r\n\r\n")
        assert raw.startswith(b"HTTP/1.1 503")
        assert b"Retry-After: 2" in head
        payload = json.loads(body)
        assert payload["retry_after_s"] == 2

    def test_server_flags_thread_through_to_stats(self):
        async def run():
            async with await start_server(
                "127.0.0.1", 0, max_wait_ms=1.0, cache_size=32,
                max_pending=7, executor="thread", workers=2,
            ) as running:
                return await http_request(running.port, "GET", "/stats")

        status, stats = asyncio.run(run())
        assert status == 200
        coalescer_stats = stats["coalescer"]
        assert coalescer_stats["max_pending"] == 7
        assert coalescer_stats["cache"]["max_entries"] == 32
        assert coalescer_stats["executor"] == {"mode": "thread", "concurrency": 2}


class TestFastAPIFront:
    def test_create_app_or_clear_install_hint(self):
        try:
            import fastapi  # noqa: F401

            has_fastapi = True
        except ImportError:
            has_fastapi = False
        from repro.serving import create_fastapi_app

        if has_fastapi:
            app = create_fastapi_app()
            assert app is not None
        else:
            with pytest.raises(RuntimeError, match="serve"):
                create_fastapi_app()
