"""Property tests for the batched Bayesian-search kernels of ``repro.batch.search``.

The core contracts:

* the closed-form kernels agree **elementwise** with the scalar
  :mod:`repro.search.simulator` formulas on ragged batches with mixed
  per-row ``k``, including rows whose expected discovery time is infinite;
* infinite rows are produced by where-masking — no floating-point warnings;
* the geometric and lockstep simulation methods agree with each other and
  with the closed forms in distribution; censored trials report
  ``max_rounds + 1``;
* ``k <= 0`` rosters fail with a clear validation error.

The whole module runs once per available array backend through the autouse
fixture, mirroring the other batch suites.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from stat_helpers import assert_two_sample_z_within, assert_z_within
from repro.batch.search import (
    as_prior_batch,
    as_search_strategy_batch,
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.core.strategy import Strategy
from repro.search import (
    BayesianSearchProblem,
    expected_discovery_time,
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    simulate_search,
    single_round_success_probability,
    uniform_strategy,
)

SIGMAS = 6.0


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every search property test under each available backend."""
    with use_backend(request.param):
        yield request.param


def ragged_search_batch(rng, count=8):
    """Problems with ragged box counts, mixed k, and a mixed strategy roster."""
    problems, strategies, ks = [], [], []
    for index in range(count):
        m = int(rng.integers(3, 9))
        problem = BayesianSearchProblem.from_weights(rng.uniform(0.1, 2.0, m))
        k = int(rng.integers(1, 6))
        factory = (
            sigma_star_strategy,
            lambda p, _k: uniform_strategy(p),
            lambda p, _k: proportional_strategy(p),
            greedy_top_k_strategy,
        )[index % 4]
        problems.append(problem)
        strategies.append(factory(problem, k))
        ks.append(k)
    priors = as_prior_batch(problems)
    matrix = as_search_strategy_batch(strategies, priors)
    return problems, strategies, np.asarray(ks, dtype=np.int64), priors, matrix


class TestClosedForms:
    def test_success_probability_matches_scalar_elementwise(self, rng):
        problems, strategies, ks, priors, matrix = ragged_search_batch(rng)
        batch = success_probability_batch(priors, matrix, ks)
        for index, (problem, strategy) in enumerate(zip(problems, strategies)):
            scalar = single_round_success_probability(problem, strategy, int(ks[index]))
            assert batch[index] == pytest.approx(scalar, abs=1e-12)

    def test_expected_discovery_time_matches_scalar_elementwise(self, rng):
        problems, strategies, ks, priors, matrix = ragged_search_batch(rng)
        batch = expected_discovery_time_batch(priors, matrix, ks)
        for index, (problem, strategy) in enumerate(zip(problems, strategies)):
            scalar = expected_discovery_time(problem, strategy, int(ks[index]))
            if np.isinf(scalar):
                assert np.isinf(batch[index])
            else:
                assert batch[index] == pytest.approx(scalar, rel=1e-12)

    def test_infinite_rows_without_warnings(self):
        # Row 0 ignores a possible box (-> inf); row 1 covers everything.
        priors = np.array([[0.5, 0.5, 0.0], [0.5, 0.25, 0.25]])
        strategies = np.array([[1.0, 0.0, 0.0], [0.4, 0.3, 0.3]])
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            times = expected_discovery_time_batch(priors, strategies, 2)
        assert np.isinf(times[0])
        assert np.isfinite(times[1])

    def test_scalar_wrapper_infinite_without_warnings(self):
        problem = BayesianSearchProblem.uniform(4)
        strategy = Strategy(np.array([0.5, 0.5, 0.0, 0.0]))
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert expected_discovery_time(problem, strategy, 2) == np.inf

    def test_mixed_per_row_k(self, rng):
        problem = BayesianSearchProblem.zipf(6)
        priors = as_prior_batch([problem, problem])
        strategy = uniform_strategy(problem)
        matrix = as_search_strategy_batch([strategy, strategy], priors)
        out = success_probability_batch(priors, matrix, [1, 8])
        assert out[1] > out[0]

    def test_k_roster_validation(self):
        priors = np.array([[0.5, 0.5]])
        strategies = np.array([[0.5, 0.5]])
        with pytest.raises(ValueError, match=">= 1"):
            success_probability_batch(priors, strategies, 0)
        with pytest.raises(ValueError, match=">= 1"):
            expected_discovery_time_batch(priors, strategies, [-2])
        with pytest.raises(ValueError, match="roster"):
            success_probability_batch(priors, strategies, [2, 3])


class TestSimulation:
    def test_geometric_b1_matches_scalar_wrapper(self):
        problem = BayesianSearchProblem.zipf(8)
        strategy = proportional_strategy(problem)
        outcome = simulate_search(problem, strategy, 3, 500, max_rounds=50, rng=5)
        batch = simulate_search_batch(
            problem.prior[None, :],
            strategy.as_array()[None, :],
            3,
            500,
            max_rounds=50,
            rng=5,
        )
        assert outcome.success_rate == batch.success_rates[0]
        assert outcome.round_one_success_rate == batch.round_one_success_rates[0]
        np.testing.assert_array_equal(outcome.rounds, batch.rounds[0])

    @pytest.mark.parametrize("method", ["geometric", "lockstep"])
    def test_round_one_rate_matches_closed_form(self, rng, method):
        problems, _, ks, priors, matrix = ragged_search_batch(rng, count=4)
        n_trials = 3_000
        batch = simulate_search_batch(
            priors, matrix, ks, n_trials, max_rounds=100, rng=3, method=method
        )
        expected = success_probability_batch(priors, matrix, ks)
        # Under the null the round-one count is Binomial(n, p): SEM-aware
        # z-test instead of an ad-hoc absolute tolerance.
        sems = np.sqrt(np.maximum(expected * (1 - expected), 1e-12) / n_trials)
        assert_z_within(
            batch.round_one_success_rates,
            expected,
            sems,
            SIGMAS,
            context=f"round-one rate ({method})",
        )

    def test_methods_agree_in_distribution(self):
        problem = BayesianSearchProblem.uniform(5)
        strategy = uniform_strategy(problem)
        priors = problem.prior[None, :]
        matrix = strategy.as_array()[None, :]
        n_trials = 4_000
        geometric = simulate_search_batch(
            priors, matrix, 2, n_trials, max_rounds=300, rng=0, method="geometric"
        )
        lockstep = simulate_search_batch(
            priors, matrix, 2, n_trials, max_rounds=300, rng=1, method="lockstep"
        )
        assert geometric.censored_counts[0] == 0
        assert lockstep.censored_counts[0] == 0
        expected = expected_discovery_time_batch(priors, matrix, 2)[0]
        # Exact-vs-empirical and method-vs-method in sampling units: the SEM
        # of each uncensored mean replaces the old 10% relative tolerance.
        sems = [
            float(np.std(batch.rounds[0], ddof=1) / np.sqrt(n_trials))
            for batch in (geometric, lockstep)
        ]
        for batch, sem in zip((geometric, lockstep), sems):
            assert_z_within(
                batch.mean_rounds_when_found[0],
                expected,
                sem,
                SIGMAS,
                context=f"mean rounds ({batch.method})",
            )
        assert_two_sample_z_within(
            geometric.mean_rounds_when_found[0],
            sems[0],
            lockstep.mean_rounds_when_found[0],
            sems[1],
            SIGMAS,
            context="geometric vs lockstep mean rounds",
        )

    def test_lockstep_early_exit_when_treasure_is_certain(self):
        # One box: every search ends in round one, so the loop exits after it.
        priors = np.array([[1.0]])
        strategies = np.array([[1.0]])
        batch = simulate_search_batch(
            priors, strategies, 2, 100, max_rounds=10_000, rng=0, method="lockstep"
        )
        assert np.all(batch.rounds == 1)
        assert batch.success_rates[0] == 1.0

    def test_censoring_marks_unfound_trials(self):
        # Row 0 can never find its treasure when it hides in box 1.
        priors = np.array([[0.5, 0.5], [0.5, 0.5]])
        strategies = np.array([[1.0, 0.0], [0.5, 0.5]])
        batch = simulate_search_batch(
            priors, strategies, [1, 2], 2_000, max_rounds=3, rng=4, method="lockstep"
        )
        assert batch.success_rates[0] == pytest.approx(0.5, abs=0.05)
        assert batch.rounds.max() == 4  # max_rounds + 1 = censored marker
        assert np.all(batch.rounds >= 1)
        # The explicit censored-count field mirrors the rounds marker exactly.
        np.testing.assert_array_equal(
            batch.censored_counts, (batch.rounds > batch.max_rounds).sum(axis=1)
        )
        assert batch.censored_counts[0] > 0

    def test_censored_rows_are_excluded_from_exact_comparisons(self, rng):
        # Regression: a harshly censored row's conditional mean is biased
        # low; the censored_counts flag is what exempts it from the
        # exact-vs-empirical z-test (comparing it anyway would fail).
        problem = BayesianSearchProblem.zipf(8)
        priors = as_prior_batch([problem, problem])
        strategy = uniform_strategy(problem)
        matrix = as_search_strategy_batch([strategy, strategy], priors)
        n_trials = 2_000
        batch = simulate_search_batch(
            priors, matrix, [1, 1], n_trials, max_rounds=4, rng=11
        )
        assert np.all(batch.censored_counts > 0)
        expected = expected_discovery_time_batch(priors, matrix, [1, 1])
        sems = np.std(batch.rounds, axis=1, ddof=1) / np.sqrt(n_trials)
        means = np.where(batch.censored_counts > 0, np.nan, batch.mean_rounds_when_found)
        # NaN-flagged rows are skipped by the helper: the assertion passes
        # only because every biased row is masked out.
        z = assert_z_within(means, expected, sems, SIGMAS, context="censored rows")
        assert np.all(np.isnan(z))
        with pytest.raises(AssertionError, match="z-score"):
            assert_z_within(
                batch.mean_rounds_when_found, expected, sems, SIGMAS, context="biased"
            )

    def test_scalar_outcome_reports_censored_count(self):
        problem = BayesianSearchProblem.uniform(6)
        outcome = simulate_search(
            problem, uniform_strategy(problem), 1, 400, max_rounds=2, rng=9
        )
        assert outcome.n_censored == int(np.sum(outcome.rounds > outcome.max_rounds))
        assert outcome.n_censored > 0
        covered = simulate_search(
            problem, uniform_strategy(problem), 4, 100, max_rounds=5_000, rng=9
        )
        assert covered.n_censored == 0

    def test_nothing_found_reports_nan_mean_rounds(self):
        priors = np.array([[1.0, 0.0]])
        strategies = np.array([[0.0, 1.0]])  # searches only the impossible box
        batch = simulate_search_batch(
            priors, strategies, 2, 50, max_rounds=5, rng=0, method="geometric"
        )
        assert batch.success_rates[0] == 0.0
        assert np.isnan(batch.mean_rounds_when_found[0])
        assert np.all(batch.rounds[0] == 6)

    def test_method_validation(self):
        with pytest.raises(ValueError, match="method"):
            simulate_search_batch(
                np.array([[1.0]]), np.array([[1.0]]), 1, 5, method="replay"
            )


class TestStaging:
    def test_prior_rows_are_normalised_and_zero_padded(self):
        packed = as_prior_batch([np.array([2.0, 2.0]), np.array([1.0, 1.0, 2.0])])
        np.testing.assert_allclose(packed[0], [0.5, 0.5, 0.0])
        np.testing.assert_allclose(packed[1], [0.25, 0.25, 0.5])

    def test_prior_validation(self):
        with pytest.raises(ValueError, match="positive mass"):
            as_prior_batch(np.array([[0.0, 0.0]]))
        with pytest.raises(ValueError, match="non-negative"):
            as_prior_batch(np.array([[-0.5, 1.5]]))

    def test_strategy_validation(self):
        priors = as_prior_batch([np.array([1.0, 1.0])])
        with pytest.raises(ValueError, match="sum to one"):
            as_search_strategy_batch(np.array([[0.7, 0.7]]), priors)
        with pytest.raises(ValueError, match="boxes"):
            as_search_strategy_batch(np.ones((1, 3)) / 3, priors)
