"""Tests for the evolutionary / learning dynamics subpackage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ifd import ideal_free_distribution
from repro.core.payoffs import exploitability
from repro.core.policies import (
    AggressivePolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.dynamics import (
    best_response_dynamics,
    invasion_dynamics,
    logit_dynamics,
    quantal_response_equilibrium,
    replicator_dynamics,
)


class TestReplicator:
    def test_converges_to_sigma_star_under_exclusive(self, small_values):
        result = replicator_dynamics(small_values, 3, ExclusivePolicy(), max_iter=30_000)
        target = sigma_star(small_values, 3).strategy
        assert result.converged
        assert result.strategy.total_variation(target) < 1e-6

    def test_converges_to_ifd_under_sharing(self, small_values):
        result = replicator_dynamics(small_values, 4, SharingPolicy(), max_iter=30_000)
        target = ideal_free_distribution(small_values, 4, SharingPolicy()).strategy
        assert result.strategy.total_variation(target) < 1e-5

    def test_euler_variant_also_converges(self, small_values):
        result = replicator_dynamics(
            small_values, 3, ExclusivePolicy(), method="euler", step_size=0.3, max_iter=30_000
        )
        target = sigma_star(small_values, 3).strategy
        assert result.strategy.total_variation(target) < 1e-5

    def test_handles_negative_payoffs(self, small_values):
        result = replicator_dynamics(small_values, 3, AggressivePolicy(0.5), max_iter=30_000)
        gap = exploitability(small_values, result.strategy, 3, AggressivePolicy(0.5))
        assert gap < 1e-5

    def test_ifd_is_rest_point(self, small_values):
        # Starting exactly at the IFD, the state should not move.
        target = sigma_star(small_values, 3).strategy
        result = replicator_dynamics(
            small_values, 3, ExclusivePolicy(), initial=target, max_iter=10
        )
        assert result.strategy.total_variation(target) < 1e-10

    def test_trajectory_records_start_and_end(self, small_values):
        result = replicator_dynamics(small_values, 2, SharingPolicy(), max_iter=500, record_every=50)
        assert result.trajectory.shape[1] == 4
        np.testing.assert_allclose(result.trajectory[0], 0.25)
        np.testing.assert_allclose(result.trajectory[-1], result.strategy.as_array())

    def test_rejects_bad_method_and_step(self, small_values):
        with pytest.raises(ValueError):
            replicator_dynamics(small_values, 2, SharingPolicy(), method="rk4")
        with pytest.raises(ValueError):
            replicator_dynamics(small_values, 2, SharingPolicy(), step_size=0.0)


class TestLogit:
    def test_high_rationality_approximates_ifd(self, small_values):
        result = logit_dynamics(
            small_values, 3, SharingPolicy(), rationality=500.0, max_iter=20_000, tol=1e-12
        )
        target = ideal_free_distribution(small_values, 3, SharingPolicy()).strategy
        assert result.strategy.total_variation(target) < 0.01

    def test_quantal_response_wrapper(self, small_values):
        strategy = quantal_response_equilibrium(
            small_values, 3, ExclusivePolicy(), rationality=800.0, max_iter=20_000, tol=1e-12
        )
        target = sigma_star(small_values, 3).strategy
        assert strategy.total_variation(target) < 0.01

    def test_low_rationality_is_near_uniform(self, small_values):
        result = logit_dynamics(small_values, 3, ExclusivePolicy(), rationality=1e-6)
        assert result.strategy.total_variation(Strategy.uniform(4)) < 1e-4

    def test_works_with_negative_payoffs(self, small_values):
        result = logit_dynamics(
            small_values, 3, AggressivePolicy(1.0), rationality=200.0, max_iter=20_000
        )
        gap = exploitability(small_values, result.strategy, 3, AggressivePolicy(1.0))
        assert gap < 0.05

    def test_parameter_validation(self, small_values):
        with pytest.raises(ValueError):
            logit_dynamics(small_values, 2, SharingPolicy(), rationality=0.0)
        with pytest.raises(ValueError):
            logit_dynamics(small_values, 2, SharingPolicy(), damping=0.0)


class TestBestResponseDynamics:
    def test_exploitability_shrinks(self, small_values):
        result = best_response_dynamics(small_values, 3, SharingPolicy(), max_iter=5_000)
        assert result.exploitability < 0.01

    def test_approaches_sigma_star_under_exclusive(self, small_values):
        result = best_response_dynamics(
            small_values, 3, ExclusivePolicy(), max_iter=20_000, step_decay=0.005
        )
        target = sigma_star(small_values, 3).strategy
        assert result.strategy.total_variation(target) < 0.02

    def test_parameter_validation(self, small_values):
        with pytest.raises(ValueError):
            best_response_dynamics(small_values, 2, SharingPolicy(), step_size=0.0)


class TestInvasionDynamics:
    def test_mutants_die_out_against_ess(self, small_values):
        resident = sigma_star(small_values, 3).strategy
        result = invasion_dynamics(
            small_values, resident, Strategy.uniform(4), 3, ExclusivePolicy(), initial_share=0.05
        )
        assert result.mutant_extinct
        assert not result.mutant_fixated
        assert result.final_share < 1e-5

    def test_ess_invades_unstable_resident(self, small_values):
        mutant = sigma_star(small_values, 3).strategy
        resident = Strategy.point_mass(4, 3)
        result = invasion_dynamics(
            small_values, resident, mutant, 3, ExclusivePolicy(), initial_share=0.05
        )
        assert result.final_share > 0.5

    def test_share_trajectory_monotone_for_ess_resident(self, small_values):
        resident = sigma_star(small_values, 2).strategy
        result = invasion_dynamics(
            small_values,
            resident,
            Strategy.proportional(small_values.as_array()),
            2,
            ExclusivePolicy(),
            initial_share=0.1,
        )
        assert np.all(np.diff(result.shares) <= 1e-12)

    def test_parameter_validation(self, small_values):
        resident = Strategy.uniform(4)
        with pytest.raises(ValueError):
            invasion_dynamics(
                small_values, resident, resident, 2, SharingPolicy(), initial_share=1.5
            )
        with pytest.raises(ValueError):
            invasion_dynamics(
                small_values, resident, resident, 2, SharingPolicy(), selection_strength=0.0
            )


class TestDynamicsAgreement:
    """Replicator, logit, best-response and the water-filling solver agree."""

    @pytest.mark.parametrize("policy", [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.2)])
    def test_all_routes_reach_the_same_equilibrium(self, policy):
        values = SiteValues.zipf(5, exponent=0.7)
        k = 3
        ifd = ideal_free_distribution(values, k, policy).strategy
        replicator = replicator_dynamics(values, k, policy, max_iter=60_000).strategy
        assert replicator.total_variation(ifd) < 1e-4
        logit = logit_dynamics(values, k, policy, rationality=800.0, max_iter=30_000).strategy
        assert logit.total_variation(ifd) < 0.02
