"""Tests for the closed-form sigma_star (Section 2.1, Claim 7)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ifd import verify_ifd
from repro.core.policies import ExclusivePolicy
from repro.core.sigma_star import normalization_constant, sigma_star, support_size
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


def random_values(seed: int, m: int) -> SiteValues:
    return SiteValues.random(m, np.random.default_rng(seed))


class TestSupportSize:
    def test_single_site(self):
        assert support_size(SiteValues.uniform(1), 5) == 1

    def test_single_player(self):
        assert support_size(SiteValues.uniform(10), 1) == 1

    def test_uniform_values_full_support(self):
        # With equal values every site enters the support.
        assert support_size(SiteValues.uniform(7), 3) == 7

    def test_two_sites_always_in_support(self):
        # For M >= 2, k >= 2 the support has at least 2 sites.
        values = SiteValues.from_values([1.0, 1e-6])
        assert support_size(values, 2) == 2

    def test_steep_values_limit_support(self):
        # Extremely steep decay keeps the support small.
        values = SiteValues.geometric(20, ratio=1e-4)
        assert support_size(values, 2) == 2

    def test_support_grows_with_k(self):
        values = SiteValues.zipf(50, exponent=1.0)
        supports = [support_size(values, k) for k in (2, 4, 8, 16)]
        assert np.all(np.diff(supports) >= 0)

    def test_slowly_decreasing_support_exceeds_2k(self):
        # The premise used in the Theorem 6 proof.
        k = 4
        values = SiteValues.slowly_decreasing(40, k)
        assert support_size(values, k) >= 2 * k

    def test_raw_array_must_be_sorted(self):
        with pytest.raises(ValueError):
            support_size(np.array([0.5, 1.0]), 2)


class TestNormalizationConstant:
    def test_w_equals_one_gives_zero(self):
        assert normalization_constant(SiteValues.uniform(3), 3, w=1) == 0.0

    def test_matches_formula(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25])
        k = 3
        w = support_size(values, k)
        alpha = normalization_constant(values, k, w)
        expected = (w - 1) / np.sum(values.as_array()[:w] ** (-1.0 / (k - 1)))
        assert alpha == pytest.approx(expected)

    def test_out_of_range_w(self):
        with pytest.raises(ValueError):
            normalization_constant(SiteValues.uniform(3), 2, w=5)


class TestSigmaStar:
    def test_two_sites_closed_form(self):
        # k = 2, f = (1, f2): sigma*(1) = 1/(1 + f2), sigma*(2) = f2/(1 + f2) ... no:
        # alpha = 1 / (1 + 1/f2) and sigma*(x) = 1 - alpha / f(x).
        f2 = 0.3
        result = sigma_star(SiteValues.two_sites(f2), 2)
        alpha = 1.0 / (1.0 + 1.0 / f2)
        np.testing.assert_allclose(
            result.strategy.as_array(), [1.0 - alpha, 1.0 - alpha / f2], atol=1e-12
        )
        assert result.support_size == 2
        assert result.alpha == pytest.approx(alpha)
        assert result.equilibrium_value == pytest.approx(alpha)

    def test_uniform_values_give_uniform_strategy(self):
        result = sigma_star(SiteValues.uniform(6), 4)
        np.testing.assert_allclose(result.strategy.as_array(), np.full(6, 1 / 6), atol=1e-12)

    def test_single_player_picks_best_site(self):
        result = sigma_star(SiteValues.from_values([1.0, 0.9, 0.8]), 1)
        assert result.strategy == Strategy.point_mass(3, 0)
        assert result.equilibrium_value == pytest.approx(1.0)

    def test_single_site_many_players(self):
        result = sigma_star(SiteValues.uniform(1), 4)
        assert result.strategy == Strategy.point_mass(1, 0)
        assert result.equilibrium_value == 0.0

    def test_is_valid_distribution(self, medium_values):
        for k in (2, 3, 7, 15):
            result = sigma_star(medium_values, k)
            probs = result.strategy.as_array()
            assert probs.sum() == pytest.approx(1.0)
            assert np.all(probs >= 0)

    def test_support_is_prefix_and_monotone(self, medium_values):
        result = sigma_star(medium_values, 5)
        probs = result.strategy.as_array()
        assert result.strategy.has_prefix_support()
        within = probs[: result.support_size]
        # Higher-value sites are explored with higher probability.
        assert np.all(np.diff(within) <= 1e-12)

    def test_equilibrium_value_matches_site_values(self, small_values):
        # Claim 7: on the support nu(x) = alpha^(k-1) and below it nu(x) = f(x) < alpha^(k-1).
        k = 3
        result = sigma_star(small_values, k)
        f = small_values.as_array()
        nu = f * (1.0 - result.strategy.as_array()) ** (k - 1)
        np.testing.assert_allclose(
            nu[: result.support_size], result.equilibrium_value, atol=1e-12
        )
        if result.support_size < small_values.m:
            assert np.all(
                f[result.support_size :] < result.equilibrium_value + 1e-12
            )

    def test_satisfies_ifd_conditions(self, small_values):
        for k in (2, 3, 6):
            result = sigma_star(small_values, k)
            report = verify_ifd(small_values, result.strategy, k, ExclusivePolicy())
            assert report.is_ifd

    def test_scale_invariance(self, small_values):
        # Scaling all values by a constant does not change sigma_star.
        k = 4
        base = sigma_star(small_values, k).strategy.as_array()
        scaled = sigma_star(small_values.scaled(7.3), k).strategy.as_array()
        np.testing.assert_allclose(base, scaled, atol=1e-12)

    def test_accepts_sorted_raw_array(self):
        result = sigma_star(np.array([1.0, 0.5]), 2)
        assert result.support_size == 2

    def test_rejects_unsorted_raw_array(self):
        with pytest.raises(ValueError):
            sigma_star(np.array([0.5, 1.0]), 2)

    def test_rejects_bad_k(self, small_values):
        with pytest.raises(ValueError):
            sigma_star(small_values, 0)

    @given(
        seed=st.integers(min_value=0, max_value=5000),
        m=st.integers(min_value=1, max_value=40),
        k=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=60, deadline=None)
    def test_sigma_star_properties(self, seed, m, k):
        values = random_values(seed, m)
        result = sigma_star(values, k)
        probs = result.strategy.as_array()
        assert probs.sum() == pytest.approx(1.0, abs=1e-9)
        assert np.all(probs >= -1e-12)
        assert 1 <= result.support_size <= m
        # IFD conditions hold for every instance (Claim 7).
        if k >= 2:
            report = verify_ifd(values, result.strategy, k, ExclusivePolicy(), atol=1e-7)
            assert report.is_ifd

    @given(seed=st.integers(min_value=0, max_value=5000))
    @settings(max_examples=30, deadline=None)
    def test_support_at_least_two_for_multi_site_multi_player(self, seed):
        values = random_values(seed, 6)
        assert sigma_star(values, 2).support_size >= 2
