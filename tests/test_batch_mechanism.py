"""Property tests for the batched mechanism-design kernels of ``repro.batch.mechanism``.

The core contracts:

* :func:`~repro.batch.mechanism.design_rewards_batch` and
  :func:`~repro.batch.mechanism.optimal_grant_design_batch` agree
  **elementwise** with looping the scalar :mod:`repro.mechanism` pipeline
  over the rows — ragged site counts, mixed per-row ``k``, and the sorted /
  unsorted round trip of the designed-reward games included;
* infeasible targets fail with the scalar error message and name the
  offending rows;
* the roster sweeps that moved here from ``repro.batch.scenarios`` remain
  importable from their old home and unchanged in behaviour.

The whole module runs once per available array backend through the autouse
fixture, mirroring the other batch suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from repro.batch import (
    PaddedValues,
    design_rewards_batch,
    optimal_grant_design_batch,
)
from repro.batch.mechanism import best_two_level_batch, compare_policies_batch
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import AggressivePolicy, ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.mechanism import (
    best_two_level_policy,
    compare_policies,
    design_rewards_for_target,
    optimal_grant_design,
)


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every mechanism property test under each available backend."""
    with use_backend(request.param):
        yield request.param


def ragged_instances(rng, count=6, m_range=(3, 8)):
    instances = [
        SiteValues.random(int(m), rng)
        for m in rng.integers(m_range[0], m_range[1], size=count)
    ]
    ks = rng.integers(2, 6, size=count).astype(np.int64)
    return instances, ks


class TestDesignRewardsBatch:
    def test_matches_scalar_elementwise_on_ragged_mixed_k_targets(self, rng):
        instances, ks = ragged_instances(rng)
        targets = [
            sigma_star(values, int(k)).strategy for values, k in zip(instances, ks)
        ]
        batch = design_rewards_batch(targets, ks, SharingPolicy())
        for index, (values, target) in enumerate(zip(instances, targets)):
            scalar = design_rewards_for_target(target, int(ks[index]), SharingPolicy())
            np.testing.assert_allclose(
                batch[index, : values.m], scalar, rtol=1e-12, atol=1e-12
            )

    def test_padding_columns_receive_off_support_grant(self, rng):
        targets = [Strategy.uniform(2), Strategy.uniform(4)]
        batch = design_rewards_batch(targets, 3, SharingPolicy(), off_support_fraction=0.25)
        assert batch.shape == (2, 4)
        np.testing.assert_allclose(batch[0, 2:], 0.25)

    def test_infeasible_rows_raise_and_are_named(self):
        # A well-spread target keeps the aggressive congestion factor
        # positive; the concentrated one drives it negative (as in the
        # scalar test) — only the infeasible row is named.
        feasible = Strategy.uniform(8)
        concentrated = Strategy(np.array([0.95, 0.05]))
        with pytest.raises(ValueError, match=r"not implementable.*rows \[1\]"):
            design_rewards_batch([feasible, concentrated], 4, AggressivePolicy(1.0))

    def test_parameter_validation(self):
        target = Strategy.uniform(3)
        with pytest.raises(ValueError, match="equilibrium_value"):
            design_rewards_batch([target], 2, SharingPolicy(), equilibrium_value=0.0)
        with pytest.raises(ValueError, match="off_support_fraction"):
            design_rewards_batch([target], 2, SharingPolicy(), off_support_fraction=1.5)
        with pytest.raises(ValueError, match="sum to one"):
            design_rewards_batch(np.array([[0.7, 0.7]]), 2, SharingPolicy())


class TestOptimalGrantDesignBatch:
    def test_matches_scalar_elementwise(self, rng):
        instances, ks = ragged_instances(rng, count=5)
        padded = PaddedValues.from_instances(instances)
        batch = optimal_grant_design_batch(padded, ks, SharingPolicy())
        for index, values in enumerate(instances):
            scalar = optimal_grant_design(values, int(ks[index]), SharingPolicy())
            m = values.m
            np.testing.assert_allclose(
                batch.rewards[index, :m], scalar.rewards, rtol=1e-9, atol=1e-9
            )
            np.testing.assert_allclose(
                batch.induced_strategies[index, :m],
                scalar.induced_strategy.as_array(),
                atol=1e-6,
            )
            assert batch.induced_coverages[index] == pytest.approx(
                scalar.induced_coverage, abs=1e-6
            )
            assert batch.max_deviations[index] == pytest.approx(
                scalar.max_deviation, abs=1e-6
            )

    def test_designs_recover_the_coverage_optimum(self, rng):
        instances, ks = ragged_instances(rng, count=4)
        batch = optimal_grant_design_batch(instances, ks, SharingPolicy())
        assert np.all(batch.max_deviations < 1e-5)
        for index, values in enumerate(instances):
            assert batch.induced_coverages[index] == pytest.approx(
                optimal_coverage(values, int(ks[index])), abs=1e-5
            )

    def test_hydrated_design_matches_scalar_type(self, rng):
        values = SiteValues.zipf(5)
        batch = optimal_grant_design_batch([values], 3)
        design = batch.design(0)
        assert design.rewards.shape == (5,)
        assert design.induced_strategy.m == 5
        assert design.max_deviation < 1e-6


class TestRosterSweepsMoved:
    def test_backward_compatible_import_from_scenarios(self):
        from repro.batch import scenarios

        assert scenarios.compare_policies_batch is compare_policies_batch
        assert scenarios.best_two_level_batch is best_two_level_batch

    def test_compare_policies_batch_matches_scalar(self, rng):
        instances = [SiteValues.zipf(5), SiteValues.random(4, rng)]
        padded = PaddedValues.from_instances(instances)
        roster = [ExclusivePolicy(), SharingPolicy()]
        batch = compare_policies_batch(padded, [2, 4], roster)
        for instance_index, values in enumerate(instances):
            for k_index, k in enumerate((2, 4)):
                scalar_rows = compare_policies(values, k, roster)
                for policy_index, scalar in enumerate(scalar_rows):
                    cell = batch.comparison(policy_index, instance_index, k_index)
                    assert cell.equilibrium_coverage == pytest.approx(
                        scalar.equilibrium_coverage, abs=1e-9
                    )
                    assert cell.spoa == pytest.approx(scalar.spoa, abs=1e-9)

    def test_best_two_level_batch_matches_scalar_wrapper(self, figure1_left):
        c_grid = np.linspace(-0.5, 0.5, 11)
        batch = best_two_level_batch([figure1_left], [2], c_grid=c_grid)
        best_c, rows = best_two_level_policy(figure1_left, 2, c_grid=c_grid)
        assert float(batch.best_c[0, 0]) == pytest.approx(best_c, abs=1e-12)
        assert len(rows) == c_grid.size
        assert best_c == pytest.approx(0.0, abs=1e-9)
