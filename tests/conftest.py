"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.values import SiteValues


def backend_params() -> list:
    """Backend roster for suites that re-run under every available backend.

    Always contains ``"numpy"``; ``array_api_strict`` and ``torch`` are
    skip-marked when the corresponding namespace is not installed (the CI
    jobs install one each).  The batch test modules build an autouse fixture
    from this so every property test runs once per backend.
    """
    installed = available_backends()
    params = ["numpy"]
    for name in ("array_api_strict", "torch"):
        params.append(
            pytest.param(
                name,
                marks=pytest.mark.skipif(
                    name not in installed,
                    reason=f"{name} backend not installed",
                ),
            )
        )
    return params


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic generator shared by stochastic tests."""
    return np.random.default_rng(20180503)  # arXiv submission date of the paper


@pytest.fixture
def small_values() -> SiteValues:
    """A small, strictly decreasing instance used across unit tests."""
    return SiteValues.from_values([1.0, 0.6, 0.3, 0.15])


@pytest.fixture
def figure1_left() -> SiteValues:
    """The left panel instance of Figure 1: f = (1, 0.3)."""
    return SiteValues.two_sites(0.3)


@pytest.fixture
def figure1_right() -> SiteValues:
    """The right panel instance of Figure 1: f = (1, 0.5)."""
    return SiteValues.two_sites(0.5)


@pytest.fixture
def medium_values() -> SiteValues:
    """A moderately sized Zipf instance."""
    return SiteValues.zipf(25, exponent=1.0)


@pytest.fixture(
    params=[
        ExclusivePolicy(),
        SharingPolicy(),
        TwoLevelPolicy(0.25),
        TwoLevelPolicy(-0.25),
        PowerLawPolicy(2.0),
        ExponentialPolicy(1.0),
        AggressivePolicy(0.5),
    ],
    ids=["exclusive", "sharing", "two-level(.25)", "two-level(-.25)", "power2", "exp1", "aggressive"],
)
def any_policy(request):
    """Parametrised roster of congestion policies (excluding the constant one)."""
    return request.param


@pytest.fixture(
    params=[ExclusivePolicy(), SharingPolicy(), ConstantPolicy()],
    ids=["exclusive", "sharing", "constant"],
)
def named_policy(request):
    """The three policies the paper names explicitly."""
    return request.param
