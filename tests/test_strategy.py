"""Tests for the Strategy class."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.strategy import Strategy


class TestConstruction:
    def test_basic(self):
        s = Strategy(np.array([0.5, 0.5]))
        np.testing.assert_allclose(s.as_array(), [0.5, 0.5])

    def test_renormalises_tolerance_level_error(self):
        s = Strategy(np.array([0.5, 0.5 + 1e-10]))
        assert s.as_array().sum() == pytest.approx(1.0, abs=1e-15)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Strategy(np.array([1.2, -0.2]))

    def test_rejects_bad_sum(self):
        with pytest.raises(ValueError):
            Strategy(np.array([0.7, 0.7]))

    def test_from_probabilities_normalize(self):
        s = Strategy.from_probabilities([2.0, 6.0], normalize=True)
        np.testing.assert_allclose(s.as_array(), [0.25, 0.75])

    def test_read_only(self):
        s = Strategy.uniform(3)
        with pytest.raises(ValueError):
            s.as_array()[0] = 1.0

    def test_len_getitem(self):
        s = Strategy.uniform(4)
        assert len(s) == 4
        assert s[0] == pytest.approx(0.25)

    def test_equality_and_hash(self):
        assert Strategy.uniform(3) == Strategy.uniform(3)
        assert hash(Strategy.uniform(3)) == hash(Strategy.uniform(3))
        assert Strategy.uniform(3) != Strategy.point_mass(3, 0)
        assert Strategy.uniform(3) != "something else"


class TestQueries:
    def test_support(self):
        s = Strategy(np.array([0.5, 0.0, 0.5]))
        np.testing.assert_array_equal(s.support, [0, 2])
        assert s.support_size == 2

    def test_prefix_support(self):
        assert Strategy(np.array([0.7, 0.3, 0.0])).has_prefix_support()
        assert not Strategy(np.array([0.7, 0.0, 0.3])).has_prefix_support()

    def test_entropy(self):
        assert Strategy.point_mass(5, 2).entropy() == pytest.approx(0.0)
        assert Strategy.uniform(4).entropy() == pytest.approx(np.log(4))

    def test_total_variation_and_l2(self):
        a = Strategy(np.array([1.0, 0.0]))
        b = Strategy(np.array([0.0, 1.0]))
        assert a.total_variation(b) == pytest.approx(1.0)
        assert a.l2_distance(b) == pytest.approx(np.sqrt(2.0))

    def test_distance_requires_same_m(self):
        with pytest.raises(ValueError):
            Strategy.uniform(2).total_variation(Strategy.uniform(3))


class TestOperations:
    def test_mix(self):
        a = Strategy(np.array([1.0, 0.0]))
        b = Strategy(np.array([0.0, 1.0]))
        mixed = a.mix(b, 0.25)
        np.testing.assert_allclose(mixed.as_array(), [0.75, 0.25])

    def test_mix_epsilon_bounds(self):
        a = Strategy.uniform(2)
        with pytest.raises(ValueError):
            a.mix(a, 1.5)

    def test_restricted(self):
        s = Strategy(np.array([0.5, 0.25, 0.25]))
        restricted = s.restricted([0, 2])
        np.testing.assert_allclose(restricted.as_array(), [2 / 3, 0.0, 1 / 3])

    def test_restricted_rejects_empty_mass(self):
        s = Strategy(np.array([1.0, 0.0]))
        with pytest.raises(ValueError):
            s.restricted([1])

    def test_perturbed_stays_distribution(self):
        s = Strategy.uniform(5)
        p = s.perturbed(0, scale=0.3)
        assert p.as_array().sum() == pytest.approx(1.0)
        assert p.total_variation(s) > 0

    def test_sample_sites_shape_and_range(self):
        s = Strategy(np.array([0.9, 0.1]))
        samples = s.sample_sites(k=3, n_trials=100, rng=0)
        assert samples.shape == (100, 3)
        assert set(np.unique(samples)).issubset({0, 1})

    def test_sample_sites_respects_support(self):
        s = Strategy(np.array([1.0, 0.0]))
        samples = s.sample_sites(k=2, n_trials=50, rng=0)
        assert np.all(samples == 0)


class TestConstructors:
    def test_uniform(self):
        np.testing.assert_allclose(Strategy.uniform(4).as_array(), [0.25] * 4)

    def test_uniform_over_top(self):
        s = Strategy.uniform_over_top(5, 2)
        np.testing.assert_allclose(s.as_array(), [0.5, 0.5, 0.0, 0.0, 0.0])

    def test_uniform_over_top_with_k_larger_than_m(self):
        s = Strategy.uniform_over_top(3, 10)
        np.testing.assert_allclose(s.as_array(), [1 / 3] * 3)

    def test_point_mass(self):
        s = Strategy.point_mass(3, 1)
        np.testing.assert_allclose(s.as_array(), [0.0, 1.0, 0.0])
        with pytest.raises(ValueError):
            Strategy.point_mass(3, 3)

    def test_proportional(self):
        s = Strategy.proportional([3.0, 1.0])
        np.testing.assert_allclose(s.as_array(), [0.75, 0.25])

    def test_random_reproducible(self):
        assert Strategy.random(4, rng=7) == Strategy.random(4, rng=7)

    def test_random_rejects_bad_concentration(self):
        with pytest.raises(ValueError):
            Strategy.random(3, concentration=0.0)

    @given(
        weights=arrays(
            dtype=float,
            shape=st.integers(min_value=1, max_value=10),
            elements=st.floats(min_value=0.01, max_value=100.0),
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_proportional_is_valid_distribution(self, weights):
        s = Strategy.proportional(weights)
        assert s.as_array().sum() == pytest.approx(1.0)
        assert np.all(s.as_array() >= 0)
