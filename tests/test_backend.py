"""Tests of the Array-API backend layer: registry, contexts, adapters, wiring.

Covers the resolution order (context > process default > ``REPRO_BACKEND``
env var > numpy), ``use_backend`` nesting/restoration, registry
fallback/auto-detect behaviour, the backend adapters, the batched capacity
kernels of ``repro.batch.extensions``, and the runner/CLI backend plumbing.
The property suites in ``tests/test_batch*.py`` separately re-run under
``array_api_strict`` when it is installed.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro.backend.registry as registry
from repro.backend import (
    Backend,
    BackendNotAvailableError,
    available_backends,
    backend_failures,
    bincount,
    contract_occupancy,
    ensure_numpy,
    from_numpy,
    get_backend,
    is_native,
    load_backend,
    random_uniform,
    register_backend,
    resolve_backend,
    scatter_rows,
    set_default_backend,
    take_rows,
    to_numpy,
    use_backend,
)
from repro.batch import (
    PaddedValues,
    capacity_coverage_batch,
    capacity_coverage_gradient_batch,
    capacity_payoff_batch,
    replicator_batch,
    sigma_star_batch,
)
from repro.core.policies import SharingPolicy
from repro.core.values import SiteValues
from repro.experiments.spec import ExperimentSpec
from repro.experiments.runner import run_experiment
from repro.extensions.capacity import capacity_coverage, capacity_coverage_gradient
from repro.simulation.engine import DispersalSimulator
from repro.core.strategy import Strategy
from repro.utils.sampling import (
    inverse_cdf_sample,
    inverse_cdf_sample_stacked,
    stacked_cdfs,
    strategy_cdf,
)


class TestRegistry:
    def test_numpy_always_available_and_first(self):
        names = available_backends()
        assert names[0] == "numpy"

    def test_load_numpy_backend(self):
        backend = load_backend("numpy")
        assert backend.is_numpy
        assert backend.xp is np
        assert backend.supports_einsum and backend.supports_fancy_assignment

    def test_unknown_backend_raises(self):
        with pytest.raises(BackendNotAvailableError, match="unknown backend"):
            load_backend("no-such-backend")

    def test_unavailable_backends_report_reasons(self):
        failures = backend_failures()
        for name in ("array_api_strict", "torch", "cupy"):
            assert name in available_backends() or name in failures

    def test_register_backend_and_overwrite_guard(self):
        def loader():
            base = load_backend("numpy")
            return Backend(
                name="numpy-alias",
                xp=base.xp,
                float_dtype=base.float_dtype,
                int_dtype=base.int_dtype,
                bool_dtype=base.bool_dtype,
                is_numpy=True,
                supports_einsum=True,
                supports_fancy_assignment=True,
            )

        register_backend("numpy-alias", loader)
        try:
            with pytest.raises(ValueError, match="already registered"):
                register_backend("numpy-alias", loader)
            assert load_backend("numpy-alias").name == "numpy-alias"
            assert "numpy-alias" in available_backends()
        finally:
            registry._LOADERS.pop("numpy-alias", None)
            registry._CACHE.pop("numpy-alias", None)

    def test_resolve_backend_passthrough(self):
        backend = load_backend("numpy")
        assert resolve_backend(backend) is backend
        assert resolve_backend("numpy") is backend
        assert resolve_backend(None) is get_backend()


class TestActivation:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv(registry.ENV_VAR, raising=False)
        assert get_backend().name == "numpy"

    def test_env_var_override(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "numpy")
        assert get_backend().name == "numpy"
        monkeypatch.setenv(registry.ENV_VAR, "no-such-backend")
        with pytest.raises(BackendNotAvailableError):
            get_backend()

    def test_use_backend_nesting_and_restoration(self):
        outer_default = get_backend()
        with use_backend("numpy") as outer:
            assert get_backend() is outer
            with use_backend("numpy") as inner:
                assert get_backend() is inner
            assert get_backend() is outer
        assert get_backend() is outer_default

    def test_use_backend_restores_after_exception(self):
        before = get_backend()
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("numpy"):
                raise RuntimeError("boom")
        assert get_backend() is before

    def test_use_backend_isolated_across_asyncio_tasks(self):
        # The activation stack lives in a ContextVar, so each asyncio task
        # gets its own copy-on-write context: one task's ``use_backend``
        # must never leak into a concurrently running sibling.  Cached
        # backends are singletons (two ``use_backend("numpy")`` activations
        # yield the same object), so each task activates its own distinct
        # handle — ``dataclasses.replace`` of the numpy backend — to make
        # leakage observable by identity.
        import asyncio
        import dataclasses

        base = load_backend("numpy")
        default = get_backend()
        handles = [dataclasses.replace(base, name=f"numpy-task-{i}") for i in range(4)]

        async def worker(handle: Backend, hops: int) -> None:
            assert get_backend() is default  # nothing leaked in before activation
            with use_backend(handle) as scoped:
                assert scoped is handle
                for _ in range(hops):
                    await asyncio.sleep(0)  # yield so siblings interleave
                    assert get_backend() is handle
                with use_backend(base) as inner:
                    await asyncio.sleep(0)
                    assert get_backend() is inner
                assert get_backend() is handle
            await asyncio.sleep(0)
            assert get_backend() is default  # nothing leaked out after exit

        async def run() -> None:
            await asyncio.gather(*(worker(h, i + 1) for i, h in enumerate(handles)))
            assert get_backend() is default

        asyncio.run(run())
        assert get_backend() is default

    def test_set_default_backend_shadowed_by_context(self, monkeypatch):
        monkeypatch.setenv(registry.ENV_VAR, "no-such-backend")
        set_default_backend("numpy")
        try:
            # The process-wide default wins over the (broken) env var.
            assert get_backend().name == "numpy"
            with use_backend("numpy") as scoped:
                assert get_backend() is scoped
        finally:
            set_default_backend(None)

    def test_kernels_accept_explicit_backend(self):
        values = [SiteValues.zipf(6), SiteValues.uniform(4)]
        implicit = sigma_star_batch(values, (2, 3))
        explicit = sigma_star_batch(values, (2, 3), backend="numpy")
        np.testing.assert_array_equal(implicit.probabilities, explicit.probabilities)


class TestAdapters:
    def test_to_from_numpy_round_trip(self):
        backend = load_backend("numpy")
        host = np.arange(6.0).reshape(2, 3)
        dev = from_numpy(backend, host)
        assert to_numpy(dev) is dev  # numpy path is a no-op
        assert is_native(backend, dev)
        assert not is_native(backend, [1.0, 2.0])

    def test_ensure_numpy_unwraps_wrappers(self):
        strategy = Strategy(np.array([0.5, 0.5]))
        out = ensure_numpy(strategy)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_contract_occupancy_matches_einsum(self, rng):
        backend = load_backend("numpy")
        pmf = rng.random((4, 3, 5))
        tables = rng.random((4, 5))
        expected = np.einsum("bmj,bj->bm", pmf, tables)
        np.testing.assert_allclose(contract_occupancy(backend, pmf, tables), expected)
        # The standard-only fallback computes the same contraction.
        no_einsum = Backend(
            name="numpy-no-einsum",
            xp=np,
            float_dtype=np.float64,
            int_dtype=np.int64,
            bool_dtype=np.bool_,
            is_numpy=True,
            supports_einsum=False,
            supports_fancy_assignment=True,
        )
        np.testing.assert_allclose(contract_occupancy(no_einsum, pmf, tables), expected)

    def test_take_and_scatter_rows(self):
        backend = load_backend("numpy")
        data = np.arange(12.0).reshape(4, 3)
        rows = np.array([0, 2])
        np.testing.assert_array_equal(take_rows(backend, data, rows), data[[0, 2]])
        assert take_rows(backend, data, None) is data
        dest = data.copy()
        scatter_rows(backend, dest, rows, np.zeros((2, 3)))
        assert dest[0].sum() == 0 and dest[2].sum() == 0 and dest[1].sum() > 0
        # Scatter-free fallback returns a fresh array instead of mutating.
        no_fancy = Backend(
            name="numpy-no-fancy",
            xp=np,
            float_dtype=np.float64,
            int_dtype=np.int64,
            bool_dtype=np.bool_,
            is_numpy=True,
            supports_einsum=True,
            supports_fancy_assignment=False,
        )
        dest2 = data.copy()
        out = scatter_rows(no_fancy, dest2, rows, np.zeros((2, 3)))
        np.testing.assert_array_equal(out, dest)

    def test_bincount_and_random_uniform(self, rng):
        backend = load_backend("numpy")
        counts = bincount(np.array([0, 1, 1, 3]), minlength=6)
        np.testing.assert_array_equal(counts, [1, 2, 0, 1, 0, 0])
        draws = random_uniform(backend, np.random.default_rng(5), (3, 2))
        np.testing.assert_array_equal(draws, np.random.default_rng(5).random((3, 2)))


class TestSamplingBackendPath:
    """The explicit-backend sampling path matches the NumPy fast path bit for bit."""

    def test_single_cdf(self):
        cdf = strategy_cdf(np.array([0.2, 0.3, 0.5]))
        np.testing.assert_allclose(strategy_cdf(np.array([0.2, 0.3, 0.5]), backend="numpy"), cdf)
        fast = inverse_cdf_sample(cdf, (100,), np.random.default_rng(1))
        routed = inverse_cdf_sample(cdf, (100,), np.random.default_rng(1), backend="numpy")
        np.testing.assert_array_equal(fast, routed)

    def test_stacked(self):
        rows = np.array([[0.5, 0.5, 0.0], [0.1, 0.2, 0.7]])
        cdfs = stacked_cdfs(rows)
        np.testing.assert_allclose(stacked_cdfs(rows, backend="numpy"), cdfs)
        fast = inverse_cdf_sample_stacked(cdfs, 64, np.random.default_rng(2))
        routed = inverse_cdf_sample_stacked(cdfs, 64, np.random.default_rng(2), backend="numpy")
        np.testing.assert_array_equal(fast, routed)


class TestCapacityBatch:
    """The batched capacity kernels match the scalar extension elementwise."""

    @pytest.fixture
    def capacity_batch(self, rng):
        instances = [SiteValues.random(int(m), rng) for m in (4, 7, 3, 6)]
        padded = PaddedValues.from_instances(instances)
        ks = np.array([2, 4, 3, 5], dtype=np.int64)
        states = np.where(padded.mask, rng.random(padded.values.shape), 0.0)
        states /= states.sum(axis=1, keepdims=True)
        return padded, instances, ks, states

    @pytest.mark.parametrize("requirement", [1, 2, 3])
    def test_coverage_matches_scalar(self, capacity_batch, requirement):
        padded, instances, ks, states = capacity_batch
        covered = capacity_coverage_batch(padded, states, ks, requirement)
        assert covered.shape == (len(instances),)
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            exact = capacity_coverage(values, states[row, :m], int(k), requirement)
            assert covered[row] == pytest.approx(exact, abs=1e-12)

    def test_per_row_requirements(self, capacity_batch, rng):
        padded, instances, ks, states = capacity_batch
        requirements = rng.integers(1, 4, size=padded.values.shape)
        covered = capacity_coverage_batch(padded, states, ks, requirements)
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            exact = capacity_coverage(
                values, states[row, :m], int(k), requirements[row, :m]
            )
            assert covered[row] == pytest.approx(exact, abs=1e-12)

    def test_requirement_one_recovers_paper_coverage(self, capacity_batch):
        from repro.batch import coverage_batch

        padded, instances, ks, states = capacity_batch
        covered = capacity_coverage_batch(padded, states, ks, 1)
        for row, k in enumerate(ks):
            plain = coverage_batch(padded, states, int(k))[row, 0]
            assert covered[row] == pytest.approx(plain, abs=1e-10)

    def test_gradient_matches_scalar(self, capacity_batch):
        padded, instances, ks, states = capacity_batch
        grad = capacity_coverage_gradient_batch(padded, states, ks, 2)
        assert grad.shape == padded.values.shape
        for row, (values, k) in enumerate(zip(instances, ks)):
            m = values.m
            exact = capacity_coverage_gradient(values, states[row, :m], int(k), 2)
            np.testing.assert_allclose(grad[row, :m], exact, atol=1e-12)
            assert np.all(grad[row, m:] == 0.0)

    def test_alias_and_validation(self, capacity_batch):
        padded, _, ks, states = capacity_batch
        assert capacity_payoff_batch is capacity_coverage_batch
        with pytest.raises(ValueError, match=">= 1"):
            capacity_coverage_batch(padded, states, ks, 0)
        with pytest.raises(ValueError, match="must match the padded batch"):
            capacity_coverage_batch(padded, states[:, :2], ks, 1)


class TestRunnerWiring:
    def test_spec_backend_field_round_trip(self):
        spec = ExperimentSpec(
            name="t", description="", task=_task_support, grid=({"m": 4},), backend="numpy"
        )
        assert spec.backend == "numpy"
        assert spec.with_backend(None).backend is None

    @pytest.mark.parametrize("workers", [0, 2])
    def test_runner_activates_spec_backend(self, workers):
        spec = ExperimentSpec(
            name="backend-probe",
            description="records the active backend inside each task",
            task=_task_active_backend,
            grid=tuple({"index": i} for i in range(3)),
            backend="numpy",
        )
        result = run_experiment(spec, max_workers=workers)
        assert all(name == "numpy" for name in result.rows)
        assert result.metadata["runtime"]["backend"] == "numpy"

    def test_runner_backend_argument_overrides_spec(self):
        spec = ExperimentSpec(
            name="backend-probe",
            description="",
            task=_task_active_backend,
            grid=({"index": 0},),
            backend=None,
        )
        result = run_experiment(spec, backend="numpy")
        assert result.rows == ("numpy",)
        assert result.metadata["runtime"]["backend"] == "numpy"

    def test_results_identical_across_available_backends(self):
        grids = {}
        for name in available_backends():
            spec = ExperimentSpec(
                name="support-grid",
                description="",
                task=_task_support,
                grid=({"m": 5}, {"m": 8}),
                backend=name,
            )
            grids[name] = run_experiment(spec).rows
        baseline = grids["numpy"]
        for name, rows in grids.items():
            assert rows == baseline, name


class TestSimulationDtypes:
    def test_histogram_and_frequencies_dtypes(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25])
        simulator = DispersalSimulator(values, k=3, policy=SharingPolicy())
        result = simulator.run(Strategy.uniform(3), n_trials=500, rng=7)
        assert result.occupancy_histogram.dtype == np.int64
        assert result.site_visit_frequencies.dtype == np.float64
        assert result.occupancy_histogram.sum() == 500 * 3  # (trial, site) pairs

    def test_single_trial_sem_is_nan(self):
        values = SiteValues.from_values([1.0, 0.5])
        simulator = DispersalSimulator(values, k=2, policy=SharingPolicy())
        result = simulator.run(Strategy.uniform(2), n_trials=1, rng=3)
        assert np.isnan(result.coverage_sem) and np.isnan(result.payoff_sem)
        profile = simulator.run_profile(
            [Strategy.uniform(2), Strategy.uniform(2)], n_trials=1, rng=3
        )
        assert np.isnan(profile.coverage_sem)
        assert np.all(np.isnan(profile.player_payoff_sems))
        # With more than one trial the SEMs are finite again.
        many = simulator.run(Strategy.uniform(2), n_trials=100, rng=3)
        assert np.isfinite(many.coverage_sem) and np.isfinite(many.payoff_sem)


class TestEndToEndUnderEveryBackend:
    """The acceptance path: solver + engine under every available backend."""

    def test_sigma_star_and_engine_elementwise_identical(self):
        rng = np.random.default_rng(11)
        instances = [SiteValues.random(int(m), rng) for m in (3, 6, 5)]
        ks = (2, 3, 4)
        reference_star = sigma_star_batch(instances, ks, backend="numpy")
        reference_dyn = replicator_batch(
            PaddedValues.from_instances(instances),
            3,
            SharingPolicy(),
            max_iter=500,
            backend="numpy",
        )
        for name in available_backends():
            with use_backend(name):
                star = sigma_star_batch(instances, ks)
                np.testing.assert_allclose(
                    star.probabilities, reference_star.probabilities, atol=1e-12
                )
                np.testing.assert_array_equal(
                    star.support_sizes, reference_star.support_sizes
                )
                dyn = replicator_batch(
                    PaddedValues.from_instances(instances),
                    3,
                    SharingPolicy(),
                    max_iter=500,
                )
                np.testing.assert_array_equal(dyn.iterations, reference_dyn.iterations)
                np.testing.assert_allclose(dyn.states, reference_dyn.states, atol=1e-12)


def _task_support(params, rng):
    """Module-level (picklable) task: support sizes of a small grid."""
    from repro.batch import support_size_batch

    supports = support_size_batch([SiteValues.zipf(int(params["m"]))], (2, 3, 5))
    return tuple(int(w) for w in supports[0])


def _task_active_backend(params, rng):
    """Module-level (picklable) task: report the backend active inside the task."""
    return get_backend().name
