"""Property tests: the batched solvers match the scalar solvers elementwise.

The whole module runs once per available array backend (numpy always;
``array_api_strict`` when installed, skip-marked otherwise): an autouse
fixture activates each backend around every test, so the batched kernels are
exercised on the alternative namespace while the scalar references stay on
the host — results must agree elementwise either way.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import load_backend, use_backend
from repro.batch import (
    PaddedValues,
    coverage_batch,
    ifd_batch,
    optimal_coverage_batch,
    sigma_star_batch,
    spoa_batch,
    support_size_batch,
)
from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.sigma_star import sigma_star
from repro.core.spoa import spoa_instance
from repro.core.strategy import Strategy
from repro.core.values import SiteValues

K_GRID = (1, 2, 3, 5, 11)

#: Smaller grid for the tests that also run the scalar nested-bisection IFD
#: per cell (the expensive side of the comparison is the scalar loop).
IFD_K_GRID = (1, 2, 5)


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every solver property test under each available backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture(scope="module")
def ragged_instances() -> list[SiteValues]:
    """A randomized ragged batch covering the solver edge cases.

    Includes single-site instances (W = 1), uniform profiles (W = M), the
    Figure 1 two-site instances, and random instances with M from 1 to 12.
    """
    rng = np.random.default_rng(20180503)
    instances = [SiteValues.random(int(m), rng) for m in rng.integers(1, 13, size=12)]
    instances += [
        SiteValues.from_values([1.0]),  # M = 1: support W = 1 for every k
        SiteValues.uniform(6),
        SiteValues.two_sites(0.3),
        SiteValues.two_sites(0.5),
        SiteValues.geometric(9, ratio=0.6),
        SiteValues.zipf(10, exponent=1.3),
        SiteValues.slowly_decreasing(12, 3),
    ]
    return instances


class TestPaddedValues:
    def test_packing_round_trip(self, ragged_instances):
        padded = PaddedValues.from_instances(ragged_instances)
        assert padded.batch_size == len(ragged_instances)
        assert padded.width == max(v.m for v in ragged_instances)
        for index, values in enumerate(ragged_instances):
            assert padded.row(index) == values

    def test_mask_matches_sizes(self, ragged_instances):
        padded = PaddedValues.from_instances(ragged_instances)
        np.testing.assert_array_equal(padded.mask.sum(axis=1), padded.sizes)

    def test_padding_is_positive_and_sorted(self, ragged_instances):
        padded = PaddedValues.from_instances(ragged_instances)
        assert np.all(padded.values > 0)
        assert np.all(np.diff(padded.values, axis=1) <= 1e-12)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError):
            PaddedValues.from_instances([])

    def test_unsorted_raw_arrays_are_sorted(self):
        padded = PaddedValues.from_instances([np.array([0.2, 1.0, 0.5])])
        np.testing.assert_allclose(padded.values[0], [1.0, 0.5, 0.2])

    def test_explicit_width_pads_beyond_longest_row(self, ragged_instances):
        longest = max(v.m for v in ragged_instances)
        padded = PaddedValues.from_instances(ragged_instances, width=longest + 5)
        assert padded.width == longest + 5
        np.testing.assert_array_equal(
            padded.sizes, [v.m for v in ragged_instances]
        )
        # Padding columns replicate each row's own smallest value and stay
        # out of the mask, so downstream masked reductions see exact zeros.
        for index, values in enumerate(ragged_instances):
            assert padded.row(index) == values
            tail = padded.values[index, values.m :]
            np.testing.assert_array_equal(tail, values.as_array()[-1])
        np.testing.assert_array_equal(padded.mask.sum(axis=1), padded.sizes)

    def test_explicit_width_too_narrow_raises(self, ragged_instances):
        longest = max(v.m for v in ragged_instances)
        with pytest.raises(ValueError, match="narrower than the longest"):
            PaddedValues.from_instances(ragged_instances, width=longest - 1)

    def test_explicit_width_preserves_results(self, ragged_instances):
        # Widening the padding must not change any answer — only where the
        # real terms sit in the reduction tree (which is why the serving
        # layer pins a width bucket per request).
        narrow = sigma_star_batch(
            PaddedValues.from_instances(ragged_instances), K_GRID
        )
        wide = sigma_star_batch(
            PaddedValues.from_instances(ragged_instances, width=32), K_GRID
        )
        np.testing.assert_array_equal(narrow.support_sizes, wide.support_sizes)
        np.testing.assert_allclose(
            narrow.equilibrium_values, wide.equilibrium_values, rtol=1e-12
        )
        np.testing.assert_allclose(
            narrow.probabilities,
            wide.probabilities[:, :, : narrow.padded.width],
            atol=1e-12,
        )
        assert np.abs(wide.probabilities[:, :, narrow.padded.width :]).max() == 0.0

    def test_clear_device_cache_repopulates_lazily(self, ragged_instances):
        padded = PaddedValues.from_instances(ragged_instances)
        backend = load_backend("numpy")
        first = padded.fmask_for(backend)  # fmask caches even on numpy
        assert padded.fmask_for(backend) is first
        padded.clear_device_cache()
        second = padded.fmask_for(backend)
        assert second is not first
        np.testing.assert_array_equal(second, first)
        # Host-side canonical arrays are untouched by the cache drop.
        assert padded.values.flags.writeable is False


class TestSigmaStarBatch:
    def test_matches_scalar_elementwise(self, ragged_instances):
        batch = sigma_star_batch(ragged_instances, K_GRID)
        for b, values in enumerate(ragged_instances):
            for j, k in enumerate(K_GRID):
                scalar = sigma_star(values, k)
                cell = batch.result(b, j)
                assert cell.support_size == scalar.support_size, (b, k)
                assert cell.k == k
                assert cell.alpha == pytest.approx(scalar.alpha, abs=1e-12)
                assert cell.equilibrium_value == pytest.approx(
                    scalar.equilibrium_value, abs=1e-12
                )
                np.testing.assert_allclose(
                    cell.probabilities, scalar.probabilities, atol=1e-9
                )

    def test_padding_columns_are_zero(self, ragged_instances):
        batch = sigma_star_batch(ragged_instances, K_GRID)
        inverse_mask = ~batch.padded.mask
        leaked = batch.probabilities * inverse_mask[:, None, :]
        assert np.abs(leaked).max() == 0.0

    def test_rows_are_distributions(self, ragged_instances):
        batch = sigma_star_batch(ragged_instances, K_GRID)
        np.testing.assert_allclose(batch.probabilities.sum(axis=2), 1.0, atol=1e-9)
        assert np.all(batch.probabilities >= 0)

    def test_chunked_evaluation_identical(self, ragged_instances):
        full = sigma_star_batch(ragged_instances, K_GRID)
        chunked = sigma_star_batch(ragged_instances, K_GRID, max_elements=64)
        np.testing.assert_array_equal(full.support_sizes, chunked.support_sizes)
        np.testing.assert_array_equal(full.probabilities, chunked.probabilities)

    def test_support_size_batch_shortcut(self, ragged_instances):
        supports = support_size_batch(ragged_instances, K_GRID)
        batch = sigma_star_batch(ragged_instances, K_GRID)
        np.testing.assert_array_equal(supports, batch.support_sizes)

    def test_k_grid_validation(self):
        with pytest.raises(ValueError):
            sigma_star_batch([SiteValues.uniform(3)], [0])
        with pytest.raises(ValueError):
            sigma_star_batch([SiteValues.uniform(3)], [])
        with pytest.raises(ValueError):
            sigma_star_batch([SiteValues.uniform(3)], [1.5])

    def test_scalar_k_accepted(self):
        batch = sigma_star_batch([SiteValues.zipf(5)], 3)
        assert batch.probabilities.shape == (1, 1, 5)


class TestCoverageBatch:
    def test_matches_scalar_for_random_strategies(self, ragged_instances, rng):
        padded = PaddedValues.from_instances(ragged_instances)
        strategies = np.zeros((padded.batch_size, padded.width))
        per_instance = []
        for b, values in enumerate(ragged_instances):
            strategy = Strategy.random(values.m, rng)
            per_instance.append(strategy)
            strategies[b, : values.m] = strategy.as_array()
        batch_cover = coverage_batch(padded, strategies, K_GRID)
        for b, values in enumerate(ragged_instances):
            for j, k in enumerate(K_GRID):
                exact = coverage(values, per_instance[b], k)
                assert batch_cover[b, j] == pytest.approx(exact, abs=1e-10)

    def test_optimal_coverage_matches_scalar(self, ragged_instances):
        best = optimal_coverage_batch(ragged_instances, K_GRID)
        for b, values in enumerate(ragged_instances):
            for j, k in enumerate(K_GRID):
                assert best[b, j] == pytest.approx(optimal_coverage(values, k), abs=1e-10)

    def test_shape_validation(self):
        padded = PaddedValues.from_instances([SiteValues.uniform(4)])
        with pytest.raises(ValueError):
            coverage_batch(padded, np.zeros((2, 4)), [2])


class TestIFDBatch:
    @pytest.mark.parametrize(
        "policy",
        [
            ExclusivePolicy(),
            SharingPolicy(),
            ConstantPolicy(),
            TwoLevelPolicy(0.25),
            TwoLevelPolicy(-0.25),
            AggressivePolicy(0.5),
        ],
        ids=["exclusive", "sharing", "constant", "two-level+", "two-level-", "aggressive"],
    )
    def test_matches_scalar_ifd(self, ragged_instances, policy):
        batch = ifd_batch(ragged_instances, IFD_K_GRID, policy)
        for b, values in enumerate(ragged_instances):
            for j, k in enumerate(IFD_K_GRID):
                scalar = ideal_free_distribution(values, k, policy)
                tv = 0.5 * np.abs(
                    batch.probabilities[b, j, : values.m] - scalar.strategy.as_array()
                ).sum()
                assert tv < 1e-5, (b, k, policy.name, tv)

    def test_probabilities_are_distributions(self, ragged_instances):
        batch = ifd_batch(ragged_instances, (2, 4), SharingPolicy())
        np.testing.assert_allclose(batch.probabilities.sum(axis=2), 1.0, atol=1e-6)
        assert bool(batch.converged.all())

    def test_exclusive_uses_closed_form(self, ragged_instances):
        closed = ifd_batch(ragged_instances, (2, 3), ExclusivePolicy())
        star = sigma_star_batch(ragged_instances, (2, 3))
        np.testing.assert_array_equal(closed.probabilities, star.probabilities)
        np.testing.assert_array_equal(closed.support_sizes, star.support_sizes)


class TestSPoABatch:
    @pytest.mark.parametrize(
        "policy",
        [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.25)],
        ids=["exclusive", "sharing", "two-level-"],
    )
    def test_matches_scalar_spoa(self, ragged_instances, policy):
        batch = spoa_batch(ragged_instances, IFD_K_GRID, policy)
        for b, values in enumerate(ragged_instances):
            for j, k in enumerate(IFD_K_GRID):
                scalar = spoa_instance(values, k, policy)
                got = batch.instance(b, j)
                assert got.k == k and got.m == values.m
                if np.isinf(scalar.ratio):
                    assert np.isinf(got.ratio)
                else:
                    assert got.ratio == pytest.approx(scalar.ratio, rel=1e-6, abs=1e-8)

    def test_exclusive_ratios_are_one(self, ragged_instances):
        batch = spoa_batch(ragged_instances, (2, 3, 5), ExclusivePolicy())
        np.testing.assert_allclose(batch.ratios, 1.0, atol=1e-9)

    def test_argmax_points_at_largest_ratio(self, ragged_instances):
        batch = spoa_batch(ragged_instances, (2, 3), SharingPolicy())
        b, j = batch.argmax()
        assert batch.ratios[b, j] == batch.ratios.max()
