"""Smoke tests: the example scripts run end-to-end and print sensible output.

Every script of the documented examples gallery (``docs/examples.md``) runs
here.  The Figure 1 sweep (`competition_sweep.py`) runs on a coarse ``c``
grid via its ``--points`` flag — the full 51-point sweep is paper-quality
but too slow for the unit-test suite.
"""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys, argv: list[str] | None = None) -> str:
    """Execute an example script as ``__main__`` and return its stdout."""
    old_argv = sys.argv
    sys.argv = [str(EXAMPLES_DIR / name)] + list(argv or [])
    try:
        runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script, expected_phrases",
    [
        ("quickstart.py", ["sigma_star", "Simulated coverage", "ESS audit"]),
        ("animal_foraging.py", ["social rule", "exclusive conflict", "coverage"]),
        ("research_grants.py", ["mechanism", "exclusive credit", "laissez-faire"]),
        ("parallel_search.py", ["round strategy", "sigma_star", "expected rounds"]),
        ("two_species.py", ["species feeding first", "first's share"]),
    ],
)
def test_example_runs_and_mentions_key_output(script, expected_phrases, capsys):
    out = run_example(script, capsys)
    assert out.strip(), f"{script} produced no output"
    for phrase in expected_phrases:
        assert phrase in out, f"{script} output missing {phrase!r}"


def test_competition_sweep_runs_on_a_coarse_grid(tmp_path, capsys):
    out = run_example(
        "competition_sweep.py",
        capsys,
        argv=["--points", "9", "--welfare-grid-points", "201", str(tmp_path)],
    )
    assert "Key facts reproduced from the paper" in out
    assert "ESS coverage peaks at c = +0.000" in out
    written = sorted(tmp_path.glob("figure1_*.csv"))
    assert len(written) == 2, f"expected two CSV panels, got {written}"


def test_examples_directory_contains_documented_scripts():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "animal_foraging.py",
        "research_grants.py",
        "competition_sweep.py",
        "parallel_search.py",
        "two_species.py",
    } <= scripts
