"""Smoke tests: the example scripts run end-to-end and print sensible output.

The Figure 1 sweep example (`competition_sweep.py`) is exercised through its
underlying harness in ``tests/test_analysis.py`` instead of here, because the
full 51-point sweep is too slow for the unit-test suite.
"""

from __future__ import annotations

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, capsys) -> str:
    """Execute an example script as ``__main__`` and return its stdout."""
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize(
    "script, expected_phrases",
    [
        ("quickstart.py", ["sigma_star", "Simulated coverage", "ESS audit"]),
        ("animal_foraging.py", ["social rule", "exclusive conflict", "coverage"]),
        ("research_grants.py", ["mechanism", "exclusive credit", "laissez-faire"]),
        ("parallel_search.py", ["round strategy", "sigma_star", "expected rounds"]),
        ("two_species.py", ["species feeding first", "first's share"]),
    ],
)
def test_example_runs_and_mentions_key_output(script, expected_phrases, capsys):
    out = run_example(script, capsys)
    assert out.strip(), f"{script} produced no output"
    for phrase in expected_phrases:
        assert phrase in out, f"{script} output missing {phrase!r}"


def test_examples_directory_contains_documented_scripts():
    scripts = {path.name for path in EXAMPLES_DIR.glob("*.py")}
    assert {
        "quickstart.py",
        "animal_foraging.py",
        "research_grants.py",
        "competition_sweep.py",
        "parallel_search.py",
        "two_species.py",
    } <= scripts
