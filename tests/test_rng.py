"""Tests for the unified RNG plumbing of ``repro.utils.rng``.

The seed-derivation policy is documented once in the module: root seed ->
per-task child ``SeedSequence`` streams keyed by spawn index (stable under
re-chunking) -> sequential, trial-major draws within a task.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators, spawn_seed_sequences


class TestAsGenerator:
    def test_passes_generators_through(self):
        generator = np.random.default_rng(0)
        assert as_generator(generator) is generator

    def test_coerces_seeds_deterministically(self):
        assert as_generator(5).random() == np.random.default_rng(5).random()

    def test_none_gives_fresh_entropy(self):
        assert as_generator(None).random() != as_generator(None).random()


class TestSpawnSeedSequences:
    def test_children_depend_only_on_root_and_index(self):
        # The documented re-chunking stability: asking for more children
        # never changes the streams of the earlier ones.
        few = spawn_seed_sequences(123, 3)
        many = spawn_seed_sequences(123, 10)
        for index in range(3):
            a = np.random.default_rng(few[index]).random(4)
            b = np.random.default_rng(many[index]).random(4)
            np.testing.assert_array_equal(a, b)

    def test_children_are_distinct_streams(self):
        children = spawn_seed_sequences(7, 4)
        draws = {float(np.random.default_rng(child).random()) for child in children}
        assert len(draws) == 4

    def test_accepts_seed_sequence_roots(self):
        root = np.random.SeedSequence(9)
        children = spawn_seed_sequences(root, 2)
        reference = spawn_seed_sequences(9, 2)
        assert np.random.default_rng(children[0]).random() == np.random.default_rng(
            reference[0]
        ).random()

    def test_seed_sequence_roots_are_not_consumed(self):
        # Repeated calls with the same SeedSequence return the same streams —
        # the root's mutable spawn counter is never advanced.
        root = np.random.SeedSequence(9)
        first = spawn_seed_sequences(root, 2)
        second = spawn_seed_sequences(root, 2)
        for a, b in zip(first, second):
            assert np.random.default_rng(a).random() == np.random.default_rng(b).random()

    def test_zero_children_and_validation(self):
        assert spawn_seed_sequences(0, 0) == []
        with pytest.raises(ValueError):
            spawn_seed_sequences(0, -1)


class TestSpawnGenerators:
    def test_deterministic_from_integer_seed(self):
        first = [g.random() for g in spawn_generators(3, 11)]
        second = [g.random() for g in spawn_generators(3, 11)]
        assert first == second

    def test_children_independent_of_parent_stream(self):
        parent = np.random.default_rng(2)
        children = spawn_generators(2, parent)
        before = parent.random()
        # Re-spawning from a fresh parent yields different children (the
        # parent's spawn counter advanced), but the parent stream itself is
        # untouched by spawning.
        assert before == np.random.default_rng(2).random()
        assert len(children) == 2

    def test_validation(self):
        with pytest.raises(ValueError):
            spawn_generators(0, 1)


class TestBackwardCompatibleShim:
    def test_simulation_rng_reexports(self):
        from repro.simulation import rng as shim

        assert shim.as_generator is as_generator
        assert shim.spawn_generators is spawn_generators
        assert shim.spawn_seed_sequences is spawn_seed_sequences

    def test_runner_spawn_task_seeds_delegates(self):
        from repro.experiments.runner import spawn_task_seeds

        ours = spawn_seed_sequences(42, 3)
        theirs = spawn_task_seeds(42, 3)
        for a, b in zip(ours, theirs):
            assert np.random.default_rng(a).random() == np.random.default_rng(b).random()
