"""Consistency checks for the documentation site.

``mkdocs build --strict`` runs in CI (the ``docs`` job) and catches broken
nav entries and links; these tests enforce the *content* contracts locally,
without the docs toolchain installed:

* every file referenced by ``mkdocs.yml`` exists (and vice versa: every docs
  page is reachable from the nav);
* the "Experiments & CLI" page documents every registered experiment;
* the API pages cover every public ``repro.batch`` / ``repro.backend``
  symbol (via the mkdocstrings module directives whose ``__all__`` the site
  renders);
* the examples gallery documents every example script;
* internal relative links point at files that exist.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.experiments.registry import experiment_names

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def nav_pages() -> list[str]:
    """Extract the page paths referenced by the mkdocs nav (regex, no yaml dep)."""
    text = MKDOCS_YML.read_text()
    nav = text[text.index("\nnav:") :]
    return re.findall(r":\s*([\w./-]+\.md)\s*$", nav, flags=re.MULTILINE)


def test_mkdocs_config_exists_and_is_strict_ready():
    text = MKDOCS_YML.read_text()
    assert "mkdocstrings" in text, "API reference requires the mkdocstrings plugin"
    assert "paths: [src]" in text, "mkdocstrings must resolve the src layout"
    assert "docstring_style: numpy" in text


def test_every_nav_entry_resolves_to_a_docs_file():
    pages = nav_pages()
    assert pages, "mkdocs.yml nav must reference at least one page"
    for page in pages:
        assert (DOCS / page).is_file(), f"nav references missing page {page}"


def test_every_docs_page_is_reachable_from_the_nav():
    pages = set(nav_pages())
    on_disk = {
        str(path.relative_to(DOCS)) for path in DOCS.rglob("*.md")
    }
    # (The converse — nav entries resolving to files — is checked above.)
    assert on_disk <= pages, (
        f"docs pages missing from nav: {sorted(on_disk - pages)}"
    )


def test_experiments_page_documents_every_registered_experiment():
    from repro.experiments.registry import _BUILTIN_MODULES, _REGISTRY

    text = (DOCS / "experiments.md").read_text()
    # Other test modules may register throwaway experiments in the process-wide
    # registry; the docs contract covers the built-in modules' experiments.
    experiment_names()  # force built-in registration
    builtin = {
        name
        for name, definition in _REGISTRY.items()
        if definition.build.__module__ in _BUILTIN_MODULES
    }
    assert builtin, "no built-in experiments registered"
    for name in sorted(builtin):
        assert f"`{name}`" in text, f"experiments.md does not document {name!r}"


def test_api_pages_cover_public_batch_and_backend_symbols():
    import repro.backend
    import repro.batch

    batch_page = (DOCS / "api" / "batch.md").read_text()
    backend_page = (DOCS / "api" / "backend.md").read_text()
    # The mkdocstrings directives render every __all__ member of the module.
    assert "::: repro.batch" in batch_page
    assert "::: repro.backend" in backend_page
    assert repro.batch.__all__, "repro.batch must declare its public API"
    assert repro.backend.__all__, "repro.backend must declare its public API"
    # Scenario kernels get their own directive so the padded/roster contracts
    # render with full signatures.
    assert "::: repro.batch.scenarios" in batch_page


def test_serving_api_page_covers_service_and_canonical_hashing():
    import repro.serving

    serving_page = (DOCS / "api" / "serving.md").read_text()
    assert "::: repro.serving" in serving_page
    # The cache-key machinery is part of the serving contract even though it
    # lives in utils — the serving API page renders it alongside.
    assert "::: repro.utils.canonical" in serving_page
    assert repro.serving.__all__, "repro.serving must declare its public API"


def test_serving_guide_documents_every_endpoint_and_cli_flag():
    text = (DOCS / "serving.md").read_text()
    for route in ("/solve", "/sweep", "/mechanism", "/coverage-times", "/healthz", "/stats"):
        assert f"`{route}`" in text, f"serving.md does not document {route}"
    for flag in ("--max-batch", "--max-wait-ms", "--cache-size",
                 "--max-pending", "--executor", "--workers"):
        assert flag in text, f"serving.md does not document {flag}"


def test_serving_guide_documents_scheduling_and_backpressure():
    text = (DOCS / "serving.md").read_text()
    # The continuous-batching discipline and its architecture diagram.
    assert "ontinuous batching" in text
    assert "mermaid" in text
    # Every executor mode of the off-loop execution layer.
    from repro.serving.executor import EXECUTOR_MODES

    for mode in EXECUTOR_MODES:
        assert f"`{mode}`" in text or f"**{mode}**" in text, (
            f"serving.md does not document executor mode {mode!r}"
        )
    # Admission control: the shed status and its retry hint.
    assert "503" in text
    assert "Retry-After" in text
    # The cross-call plan memo and its stats surface.
    assert "plan_memo" in text


def test_device_guide_documents_the_residency_contract():
    text = (DOCS / "device.md").read_text()
    # The transfer-accounting API and the gate it enforces.
    for symbol in ("track_transfers", "expected_transfer", "mid_kernel"):
        assert symbol in text, f"device.md does not document {symbol}"
    # Device selection surfaces: keyword, CLI flag and environment variable.
    from repro.backend import DEVICE_ENV_VAR

    assert "--device" in text
    assert DEVICE_ENV_VAR in text
    # The compiled stepping path and the benchmark artifact it is gated by.
    assert "compile=True" in text
    assert "torch.compile" in text
    assert "BENCH_device.json" in text
    assert "mermaid" in text, "device.md must include the architecture diagram"


def test_sweeps_guide_documents_the_fabric_contract():
    text = (DOCS / "sweeps.md").read_text()
    # Every executor strategy, the worker entry point and the shared flags.
    from repro.experiments import executor_names

    for name in executor_names():
        assert f"`{name}`" in text, f"sweeps.md does not document the {name!r} strategy"
    for flag in ("--executor", "--store", "--resume", "--bind", "--batch"):
        assert flag in text, f"sweeps.md does not document {flag}"
    assert "repro-dispersal worker" in text
    assert "--connect" in text
    # Store layout, resume semantics, and the CI artifact gating it all.
    assert "cell_key" in text
    assert "FORMAT" in text
    assert "BENCH_sweep.json" in text
    assert "mermaid" in text, "sweeps.md must include the fabric diagram"


def test_coverage_times_guide_documents_the_exact_layer_contract():
    text = (DOCS / "coverage_times.md").read_text()
    # The exact kernel family, its estimator, and the scalar wrappers.
    for symbol in (
        "coverage_time_cdf_batch",
        "expected_coverage_time_batch",
        "partial_coverage_time_batch",
        "estimate_coverage_time_mc",
    ):
        assert symbol in text, f"coverage_times.md does not document {symbol}"
    assert "::: repro.batch.coverage_times" in text
    assert "::: repro.search.coverage_times" in text
    # The degenerate contract and the enumeration cap.
    assert "`inf`" in text, "the uncoverable-row contract must be documented"
    assert "DEFAULT_MAX_EXACT_SITES" in text
    # The statistical-validation story and the CI artifact gating the layer.
    assert "stat_helpers" in text
    assert "BENCH_covertime.json" in text


def test_examples_gallery_documents_every_example_script():
    text = (DOCS / "examples.md").read_text()
    for script in sorted((REPO / "examples").glob("*.py")):
        assert f"`{script.name}`" in text, (
            f"examples.md does not document {script.name}"
        )


@pytest.mark.parametrize("page", sorted(DOCS.rglob("*.md"), key=str))
def test_internal_relative_links_resolve(page: Path):
    text = page.read_text()
    for target in re.findall(r"\]\(([^)#\s]+\.md)(?:#[\w-]+)?\)", text):
        if target.startswith(("http://", "https://")):
            continue
        resolved = (page.parent / target).resolve()
        assert resolved.is_file(), f"{page.name} links to missing page {target}"


def test_public_symbols_have_docstrings():
    """The docstring-audit guard: every public symbol the site renders is documented."""
    import repro
    import repro.backend
    import repro.batch
    import repro.experiments
    import repro.serving

    for module in (repro, repro.batch, repro.backend, repro.experiments, repro.serving):
        assert (module.__doc__ or "").strip(), f"{module.__name__} needs a module docstring"
        for name in module.__all__:
            if name.startswith("__"):
                continue
            obj = getattr(module, name)
            if isinstance(obj, (str, int, float, tuple, dict)):
                continue
            assert (getattr(obj, "__doc__", None) or "").strip(), (
                f"{module.__name__}.{name} needs a docstring"
            )
