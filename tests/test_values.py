"""Tests for SiteValues and the value-function generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.values import SiteValues


class TestConstruction:
    def test_sorts_descending(self):
        values = SiteValues.from_values([0.2, 1.0, 0.5])
        np.testing.assert_allclose(values.as_array(), [1.0, 0.5, 0.2])

    def test_rejects_non_positive(self):
        with pytest.raises(ValueError):
            SiteValues.from_values([1.0, 0.0])
        with pytest.raises(ValueError):
            SiteValues.from_values([1.0, -1.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SiteValues.from_values([])

    def test_array_is_read_only(self):
        values = SiteValues.from_values([1.0, 0.5])
        with pytest.raises(ValueError):
            values.as_array()[0] = 2.0

    def test_len_and_getitem(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25])
        assert len(values) == 3
        assert values[0] == 1.0
        assert values.m == 3

    def test_iteration(self):
        values = SiteValues.from_values([1.0, 0.5])
        assert list(values) == [1.0, 0.5]

    def test_equality_and_hash(self):
        a = SiteValues.from_values([1.0, 0.5])
        b = SiteValues.from_values([0.5, 1.0])
        assert a == b
        assert hash(a) == hash(b)
        assert a != SiteValues.from_values([1.0, 0.4])

    def test_equality_against_other_type(self):
        assert SiteValues.from_values([1.0]) != "not values"


class TestProperties:
    def test_total_and_top(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25])
        assert values.total == pytest.approx(1.75)
        assert values.top(2) == pytest.approx(1.5)
        assert values.top(10) == pytest.approx(1.75)

    def test_value_ratio(self):
        values = SiteValues.from_values([2.0, 1.0])
        assert values.value_ratio() == pytest.approx(0.5)


class TestOperations:
    def test_normalized(self):
        values = SiteValues.from_values([4.0, 2.0]).normalized()
        np.testing.assert_allclose(values.as_array(), [1.0, 0.5])

    def test_truncated(self):
        values = SiteValues.from_values([1.0, 0.5, 0.25]).truncated(2)
        assert values.m == 2
        with pytest.raises(ValueError):
            SiteValues.from_values([1.0]).truncated(5)

    def test_scaled(self):
        values = SiteValues.from_values([1.0, 0.5]).scaled(3.0)
        np.testing.assert_allclose(values.as_array(), [3.0, 1.5])
        with pytest.raises(ValueError):
            SiteValues.from_values([1.0]).scaled(0.0)

    def test_with_values(self):
        values = SiteValues.from_values([1.0, 0.5]).with_values([(1, 2.0)])
        np.testing.assert_allclose(values.as_array(), [2.0, 1.0])  # re-sorted

    def test_with_values_rejects_bad_index_and_value(self):
        values = SiteValues.from_values([1.0, 0.5])
        with pytest.raises(IndexError):
            values.with_values([(5, 1.0)])
        with pytest.raises(ValueError):
            values.with_values([(0, -1.0)])


class TestGenerators:
    def test_uniform(self):
        values = SiteValues.uniform(4, value=2.0)
        np.testing.assert_allclose(values.as_array(), [2.0] * 4)

    def test_linear(self):
        values = SiteValues.linear(3, high=1.0, low=0.5)
        np.testing.assert_allclose(values.as_array(), [1.0, 0.75, 0.5])

    def test_linear_rejects_low_above_high(self):
        with pytest.raises(ValueError):
            SiteValues.linear(3, high=1.0, low=2.0)

    def test_geometric(self):
        values = SiteValues.geometric(3, ratio=0.5)
        np.testing.assert_allclose(values.as_array(), [1.0, 0.5, 0.25])

    def test_zipf(self):
        values = SiteValues.zipf(3, exponent=1.0)
        np.testing.assert_allclose(values.as_array(), [1.0, 0.5, 1 / 3])

    def test_exponential(self):
        values = SiteValues.exponential(3, rate=np.log(2.0))
        np.testing.assert_allclose(values.as_array(), [1.0, 0.5, 0.25])

    def test_two_sites(self):
        values = SiteValues.two_sites(0.3)
        np.testing.assert_allclose(values.as_array(), [1.0, 0.3])
        with pytest.raises(ValueError):
            SiteValues.two_sites(1.5)  # second value must not exceed the first

    def test_random_is_reproducible(self):
        a = SiteValues.random(5, rng=3)
        b = SiteValues.random(5, rng=3)
        assert a == b

    def test_random_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            SiteValues.random(5, low=0.5, high=0.5)

    def test_slowly_decreasing_satisfies_theorem6_premise(self):
        k = 4
        values = SiteValues.slowly_decreasing(20, k)
        ratio = values.value_ratio()
        assert ratio > (1.0 - 1.0 / (2 * k)) ** (k - 1)
        # Strictly decreasing
        assert np.all(np.diff(values.as_array()) < 0)

    @given(m=st.integers(min_value=1, max_value=200), k=st.integers(min_value=1, max_value=20))
    @settings(max_examples=30, deadline=None)
    def test_generators_are_sorted_and_positive(self, m, k):
        for values in (
            SiteValues.linear(m),
            SiteValues.geometric(m, ratio=0.9),
            SiteValues.zipf(m),
            SiteValues.exponential(m, rate=0.1),
            SiteValues.slowly_decreasing(m, k),
        ):
            arr = values.as_array()
            assert np.all(arr > 0)
            assert np.all(np.diff(arr) <= 1e-12)
