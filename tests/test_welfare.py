"""Tests for welfare (total payoff) computation and maximisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.policies import (
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import expected_welfare, individual_payoff, welfare_optimal_strategy


class TestWelfareEvaluation:
    def test_welfare_is_k_times_individual(self, small_values, any_policy):
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 3
        assert expected_welfare(small_values, strategy, k, any_policy) == pytest.approx(
            k * individual_payoff(small_values, strategy, k, any_policy)
        )

    def test_sharing_welfare_equals_coverage(self, small_values):
        # Under the sharing policy the site value is split, never lost, so the
        # total payoff of the group equals the coverage for every strategy.
        k = 4
        for strategy in (Strategy.uniform(4), Strategy.proportional(small_values.as_array())):
            assert expected_welfare(small_values, strategy, k, SharingPolicy()) == pytest.approx(
                coverage(small_values, strategy, k), rel=1e-10
            )

    def test_exclusive_welfare_below_coverage(self, small_values):
        # Collisions destroy value under the exclusive policy.
        strategy = Strategy.uniform(4)
        k = 3
        assert expected_welfare(small_values, strategy, k, ExclusivePolicy()) < coverage(
            small_values, strategy, k
        )

    def test_constant_policy_welfare_can_exceed_coverage(self, small_values):
        strategy = Strategy.point_mass(4, 0)
        k = 3
        welfare = expected_welfare(small_values, strategy, k, ConstantPolicy())
        assert welfare == pytest.approx(k * small_values[0])
        assert welfare > coverage(small_values, strategy, k)


class TestWelfareOptimum:
    def test_two_site_matches_analytic_solution(self):
        # For M = 2, k = 2 and the two-level policy the welfare is quadratic in
        # p1 with interior maximiser p1 = (1.3 - 0.6 c) / (2.6 (1 - c)) for f2 = 0.3.
        f = SiteValues.two_sites(0.3)
        for c in (-0.5, -0.2, 0.2, 0.45):
            result = welfare_optimal_strategy(f, 2, TwoLevelPolicy(c), grid_points=4001)
            analytic_p1 = (1.3 - 0.6 * c) / (2.6 * (1.0 - c))
            assert result.strategy.as_array()[0] == pytest.approx(analytic_p1, abs=2e-3)

    def test_sharing_welfare_optimum_matches_coverage_optimum(self):
        # Under sharing, welfare == coverage, so the welfare optimum coincides
        # with sigma_star's coverage (the c = 0.5 endpoint of Figure 1).
        from repro.core.optimal_coverage import optimal_coverage

        f = SiteValues.two_sites(0.3)
        result = welfare_optimal_strategy(f, 2, SharingPolicy(), grid_points=4001)
        assert result.coverage == pytest.approx(optimal_coverage(f, 2), abs=1e-5)

    def test_single_site(self):
        result = welfare_optimal_strategy(SiteValues.uniform(1), 3, SharingPolicy())
        assert result.strategy.as_array()[0] == pytest.approx(1.0)

    def test_general_m_projected_gradient_beats_baselines(self, small_values):
        k = 3
        policy = TwoLevelPolicy(0.25)
        result = welfare_optimal_strategy(
            small_values, k, policy, restarts=4, max_iter=400
        )
        for baseline in (Strategy.uniform(4), Strategy.proportional(small_values.as_array())):
            assert result.welfare >= expected_welfare(small_values, baseline, k, policy) - 1e-6

    def test_welfare_result_fields_consistent(self, small_values):
        result = welfare_optimal_strategy(small_values, 2, SharingPolicy(), restarts=2, max_iter=200)
        assert result.welfare == pytest.approx(2 * result.individual_payoff)
        assert result.coverage == pytest.approx(coverage(small_values, result.strategy, 2))

    def test_rejects_bad_k(self, small_values):
        with pytest.raises(ValueError):
            welfare_optimal_strategy(small_values, 0, SharingPolicy())
