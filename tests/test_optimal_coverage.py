"""Tests for coverage optimisation (Theorem 4, Observation 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.coverage import coverage, full_coordination_coverage
from repro.core.optimal_coverage import (
    maximize_coverage_projected_gradient,
    maximize_coverage_waterfilling,
    observation1_holds,
    observation1_lower_bound,
    optimal_coverage,
    optimal_coverage_strategy,
)
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestClosedFormOptimum:
    def test_equals_sigma_star(self, small_values):
        for k in (2, 3, 5):
            optimum = optimal_coverage_strategy(small_values, k)
            star = sigma_star(small_values, k)
            np.testing.assert_allclose(
                optimum.strategy.as_array(), star.strategy.as_array(), atol=1e-12
            )
            assert optimum.coverage == pytest.approx(coverage(small_values, star.strategy, k))

    def test_optimal_coverage_value(self, small_values):
        assert optimal_coverage(small_values, 3) == pytest.approx(
            optimal_coverage_strategy(small_values, 3).coverage
        )


class TestIndependentOptimisers:
    def test_waterfilling_matches_closed_form(self, small_values):
        for k in (1, 2, 4, 9):
            wf = maximize_coverage_waterfilling(small_values, k)
            closed = optimal_coverage_strategy(small_values, k)
            assert wf.coverage == pytest.approx(closed.coverage, rel=1e-9)
            np.testing.assert_allclose(
                wf.strategy.as_array(), closed.strategy.as_array(), atol=1e-6
            )

    def test_projected_gradient_matches_closed_form(self, small_values):
        for k in (2, 3):
            pg = maximize_coverage_projected_gradient(small_values, k)
            closed = optimal_coverage_strategy(small_values, k)
            assert pg.coverage == pytest.approx(closed.coverage, abs=1e-8)

    def test_projected_gradient_with_custom_start(self, small_values):
        start = Strategy.point_mass(4, 3)
        pg = maximize_coverage_projected_gradient(small_values, 3, initial=start)
        closed = optimal_coverage_strategy(small_values, 3)
        assert pg.coverage == pytest.approx(closed.coverage, abs=1e-6)

    def test_waterfilling_single_player(self, small_values):
        wf = maximize_coverage_waterfilling(small_values, 1)
        assert wf.strategy == Strategy.point_mass(4, 0)

    @given(
        seed=st.integers(min_value=0, max_value=3000),
        m=st.integers(min_value=2, max_value=20),
        k=st.integers(min_value=2, max_value=10),
    )
    @settings(max_examples=40, deadline=None)
    def test_waterfilling_agrees_with_sigma_star_property(self, seed, m, k):
        values = SiteValues.random(m, np.random.default_rng(seed))
        wf = maximize_coverage_waterfilling(values, k)
        closed = sigma_star(values, k)
        assert wf.coverage == pytest.approx(coverage(values, closed.strategy, k), rel=1e-8)


class TestTheorem4:
    """sigma_star beats every other symmetric strategy on coverage."""

    def test_beats_uniform_and_proportional(self, small_values):
        k = 3
        best = optimal_coverage(small_values, k)
        for challenger in (
            Strategy.uniform(4),
            Strategy.proportional(small_values.as_array()),
            Strategy.uniform_over_top(4, k),
            Strategy.point_mass(4, 0),
        ):
            assert best >= coverage(small_values, challenger, k) - 1e-12

    @given(
        seed=st.integers(min_value=0, max_value=3000),
        m=st.integers(min_value=1, max_value=15),
        k=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=60, deadline=None)
    def test_no_random_strategy_beats_sigma_star(self, seed, m, k):
        rng = np.random.default_rng(seed)
        values = SiteValues.random(m, rng)
        best = optimal_coverage(values, k)
        for _ in range(5):
            challenger = Strategy.random(m, rng)
            assert coverage(values, challenger, k) <= best + 1e-9

    def test_uniqueness_local_perturbations_strictly_worse(self, small_values):
        k = 3
        star = sigma_star(small_values, k)
        best = coverage(small_values, star.strategy, k)
        rng = np.random.default_rng(1)
        for scale in (0.01, 0.05, 0.2):
            perturbed = star.strategy.perturbed(rng, scale=scale)
            if perturbed.total_variation(star.strategy) > 1e-9:
                assert coverage(small_values, perturbed, k) < best


class TestObservation1:
    def test_bound_value(self, small_values):
        k = 2
        expected = (1 - 1 / np.e) * full_coordination_coverage(small_values, k)
        assert observation1_lower_bound(small_values, k) == pytest.approx(expected)

    def test_holds_on_fixture(self, small_values):
        for k in (1, 2, 3, 4):
            assert observation1_holds(small_values, k)

    def test_holds_on_uniform_values_large_k(self):
        # Worst case for the bound: k equal-value sites, where the optimal
        # coverage tends to (1 - 1/e) * top-k as k grows; the inequality stays strict.
        values = SiteValues.uniform(50)
        for k in (2, 10, 50):
            assert observation1_holds(values, k)

    @given(
        seed=st.integers(min_value=0, max_value=2000),
        m=st.integers(min_value=1, max_value=30),
        k=st.integers(min_value=1, max_value=15),
    )
    @settings(max_examples=50, deadline=None)
    def test_observation1_property(self, seed, m, k):
        values = SiteValues.random(m, np.random.default_rng(seed))
        assert optimal_coverage(values, k) > observation1_lower_bound(values, k)
