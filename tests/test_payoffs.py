"""Tests for the payoff calculus (Eqs. 2 and 3 of the paper)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.payoffs import (
    best_response_sites,
    best_response_value,
    exploitability,
    expected_payoff,
    mixture_payoff,
    mixture_payoff_expanded,
    occupancy_congestion_factor,
    payoff_against_groups,
    site_values,
)
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestOccupancyCongestionFactor:
    def test_no_opponents_returns_c1(self):
        out = occupancy_congestion_factor(SharingPolicy(), np.array([0.3, 0.9]), 0)
        np.testing.assert_allclose(out, 1.0)

    def test_exclusive_closed_form(self):
        q = np.array([0.0, 0.25, 1.0])
        out = occupancy_congestion_factor(ExclusivePolicy(), q, 3)
        np.testing.assert_allclose(out, (1 - q) ** 3)

    def test_constant_policy_is_one(self):
        out = occupancy_congestion_factor(ConstantPolicy(), np.array([0.1, 0.9]), 5)
        np.testing.assert_allclose(out, 1.0)

    def test_sharing_two_players(self):
        # g(q) = (1-q) + q/2 = 1 - q/2 for a single opponent.
        q = np.array([0.0, 0.4, 1.0])
        out = occupancy_congestion_factor(SharingPolicy(), q, 1)
        np.testing.assert_allclose(out, 1 - q / 2)

    def test_monotone_in_q_for_non_increasing_policy(self):
        q = np.linspace(0, 1, 50)
        out = occupancy_congestion_factor(TwoLevelPolicy(-0.5), q, 4)
        assert np.all(np.diff(out) <= 1e-12)

    def test_rejects_negative_opponents(self):
        with pytest.raises(ValueError):
            occupancy_congestion_factor(SharingPolicy(), np.array([0.5]), -1)


class TestSiteValues:
    def test_exclusive_formula(self, small_values):
        # nu_p(x) = f(x) (1 - p(x))^(k-1) under the exclusive policy.
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 4
        nu = site_values(small_values, strategy, k, ExclusivePolicy())
        expected = small_values.as_array() * (1 - strategy.as_array()) ** (k - 1)
        np.testing.assert_allclose(nu, expected)

    def test_single_player_gets_full_value(self, small_values):
        nu = site_values(small_values, Strategy.uniform(4), 1, SharingPolicy())
        np.testing.assert_allclose(nu, small_values.as_array())

    def test_two_player_sharing_manual(self):
        values = SiteValues.two_sites(0.3)
        strategy = Strategy(np.array([0.6, 0.4]))
        nu = site_values(values, strategy, 2, SharingPolicy())
        expected = np.array([1.0 * (0.4 + 0.6 / 2), 0.3 * (0.6 + 0.4 / 2)])
        np.testing.assert_allclose(nu, expected)

    def test_aggressive_policy_can_be_negative(self):
        values = SiteValues.two_sites(0.5)
        nu = site_values(values, Strategy.point_mass(2, 0), 2, AggressivePolicy(1.0))
        assert nu[0] == pytest.approx(-1.0)
        assert nu[1] == pytest.approx(0.5)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            site_values(SiteValues.uniform(3), Strategy.uniform(2), 2, SharingPolicy())


class TestExpectedPayoff:
    def test_symmetric_profile_payoff_is_weighted_nu(self, small_values, any_policy):
        strategy = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 3
        nu = site_values(small_values, strategy, k, any_policy)
        direct = expected_payoff(small_values, strategy, strategy, k, any_policy)
        assert direct == pytest.approx(float(np.dot(strategy.as_array(), nu)))

    def test_single_group_matches_expected_payoff(self, small_values, any_policy):
        focal = Strategy.uniform(4)
        opponents = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        k = 4
        via_groups = payoff_against_groups(
            small_values, focal, [(opponents, k - 1)], any_policy
        )
        direct = expected_payoff(small_values, focal, opponents, k, any_policy)
        assert via_groups == pytest.approx(direct, rel=1e-12)

    def test_group_order_does_not_matter(self, small_values):
        sigma = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        pi = Strategy.uniform(4)
        focal = Strategy.point_mass(4, 0)
        policy = SharingPolicy()
        a = payoff_against_groups(small_values, focal, [(sigma, 2), (pi, 1)], policy)
        b = payoff_against_groups(small_values, focal, [(pi, 1), (sigma, 2)], policy)
        assert a == pytest.approx(b, rel=1e-12)

    def test_zero_count_groups_are_ignored(self, small_values):
        sigma = Strategy.uniform(4)
        focal = Strategy.point_mass(4, 1)
        policy = SharingPolicy()
        a = payoff_against_groups(small_values, focal, [(sigma, 2), (sigma, 0)], policy)
        b = payoff_against_groups(small_values, focal, [(sigma, 2)], policy)
        assert a == pytest.approx(b)

    def test_rejects_negative_group_size(self, small_values):
        with pytest.raises(ValueError):
            payoff_against_groups(
                small_values, Strategy.uniform(4), [(Strategy.uniform(4), -1)], SharingPolicy()
            )


class TestMixturePayoff:
    def test_mixture_equals_expanded_form(self, small_values, any_policy):
        # Eq. (3) evaluated directly and via the binomial expansion must agree.
        resident = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        mutant = Strategy.uniform(4)
        focal = Strategy(np.array([0.7, 0.1, 0.1, 0.1]))
        for eps in (0.0, 0.05, 0.3, 1.0):
            direct = mixture_payoff(small_values, focal, resident, mutant, eps, 4, any_policy)
            expanded = mixture_payoff_expanded(
                small_values, focal, resident, mutant, eps, 4, any_policy
            )
            assert direct == pytest.approx(expanded, rel=1e-10, abs=1e-12)

    def test_epsilon_zero_is_resident_only(self, small_values):
        resident = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        mutant = Strategy.uniform(4)
        policy = SharingPolicy()
        u = mixture_payoff(small_values, mutant, resident, mutant, 0.0, 3, policy)
        assert u == pytest.approx(expected_payoff(small_values, mutant, resident, 3, policy))

    def test_epsilon_one_is_mutant_only(self, small_values):
        resident = Strategy(np.array([0.4, 0.3, 0.2, 0.1]))
        mutant = Strategy.uniform(4)
        policy = ExclusivePolicy()
        u = mixture_payoff(small_values, resident, resident, mutant, 1.0, 3, policy)
        assert u == pytest.approx(expected_payoff(small_values, resident, mutant, 3, policy))

    @given(
        eps=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_mixture_consistency_property(self, eps, seed):
        rng = np.random.default_rng(seed)
        values = SiteValues.random(3, rng)
        resident = Strategy.random(3, rng)
        mutant = Strategy.random(3, rng)
        focal = Strategy.random(3, rng)
        policy = TwoLevelPolicy(float(rng.uniform(-0.5, 1.0)))
        direct = mixture_payoff(values, focal, resident, mutant, eps, 3, policy)
        expanded = mixture_payoff_expanded(values, focal, resident, mutant, eps, 3, policy)
        assert direct == pytest.approx(expanded, rel=1e-9, abs=1e-12)


class TestBestResponse:
    def test_best_response_against_point_mass(self):
        values = SiteValues.two_sites(0.5)
        # Everyone sits on site 0, so a deviator should prefer site 1 under
        # the exclusive policy.
        nu_based = best_response_sites(values, Strategy.point_mass(2, 0), 3, ExclusivePolicy())
        np.testing.assert_array_equal(nu_based, [1])
        assert best_response_value(values, Strategy.point_mass(2, 0), 3, ExclusivePolicy()) == pytest.approx(0.5)

    def test_constant_policy_best_response_is_top_site(self, small_values):
        sites = best_response_sites(small_values, Strategy.uniform(4), 5, ConstantPolicy())
        np.testing.assert_array_equal(sites, [0])

    def test_exploitability_nonnegative(self, small_values, any_policy):
        strategy = Strategy.random(4, np.random.default_rng(1))
        assert exploitability(small_values, strategy, 3, any_policy) >= -1e-12

    def test_exploitability_zero_at_equilibrium(self, small_values):
        from repro.core.sigma_star import sigma_star

        result = sigma_star(small_values, 3)
        gap = exploitability(small_values, result.strategy, 3, ExclusivePolicy())
        assert gap == pytest.approx(0.0, abs=1e-10)
