"""Tests for congestion policies."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policies import (
    AggressivePolicy,
    CallablePolicy,
    ConstantPolicy,
    CooperativeSharingPolicy,
    ExclusivePolicy,
    ExponentialPolicy,
    PowerLawPolicy,
    SharingPolicy,
    TabulatedPolicy,
    TwoLevelPolicy,
)


class TestExclusive:
    def test_values(self):
        policy = ExclusivePolicy()
        assert policy.congestion(1) == 1.0
        assert policy.congestion(2) == 0.0
        np.testing.assert_allclose(policy.table(4), [1.0, 0.0, 0.0, 0.0])

    def test_reward(self):
        policy = ExclusivePolicy()
        assert policy.reward(0.7, 1) == pytest.approx(0.7)
        assert policy.reward(0.7, 3) == pytest.approx(0.0)

    def test_is_exclusive(self):
        assert ExclusivePolicy().is_exclusive(5)
        assert not SharingPolicy().is_exclusive(5)
        assert TwoLevelPolicy(0.0).is_exclusive(5)
        assert not TwoLevelPolicy(1e-3).is_exclusive(5)

    def test_rejects_zero_occupancy(self):
        with pytest.raises(ValueError):
            ExclusivePolicy().congestion(0)


class TestSharing:
    def test_values(self):
        policy = SharingPolicy()
        np.testing.assert_allclose(policy.table(4), [1.0, 0.5, 1 / 3, 0.25])

    def test_total_reward_conserved(self):
        # Sharing splits the site's value exactly: l * C(l) == 1.
        policy = SharingPolicy()
        ell = np.arange(1, 20)
        np.testing.assert_allclose(ell * policy.congestion(ell), 1.0)


class TestConstant:
    def test_values(self):
        np.testing.assert_allclose(ConstantPolicy().table(3), [1.0, 1.0, 1.0])


class TestTwoLevel:
    def test_interpolates_between_exclusive_and_sharing(self):
        np.testing.assert_allclose(TwoLevelPolicy(0.0).table(3), [1.0, 0.0, 0.0])
        np.testing.assert_allclose(TwoLevelPolicy(0.5).table(2), SharingPolicy().table(2))

    def test_negative_collision_value(self):
        np.testing.assert_allclose(TwoLevelPolicy(-0.4).table(3), [1.0, -0.4, -0.4])

    def test_rejects_value_above_one(self):
        with pytest.raises(ValueError):
            TwoLevelPolicy(1.1)

    def test_scalar_output_type(self):
        assert isinstance(TwoLevelPolicy(0.2).congestion(2), float)


class TestPowerLaw:
    def test_gamma_one_is_sharing(self):
        np.testing.assert_allclose(PowerLawPolicy(1.0).table(5), SharingPolicy().table(5))

    def test_gamma_zero_is_constant(self):
        np.testing.assert_allclose(PowerLawPolicy(0.0).table(5), ConstantPolicy().table(5))

    def test_cooperative_regime(self):
        policy = PowerLawPolicy(0.5)
        table = policy.table(5)
        assert np.all(table[1:] > SharingPolicy().table(5)[1:])

    def test_rejects_negative_gamma(self):
        with pytest.raises(ValueError):
            PowerLawPolicy(-1.0)


class TestExponential:
    def test_values(self):
        policy = ExponentialPolicy(np.log(2.0))
        np.testing.assert_allclose(policy.table(3), [1.0, 0.5, 0.25])

    def test_beta_zero_is_constant(self):
        np.testing.assert_allclose(ExponentialPolicy(0.0).table(4), [1.0] * 4)

    def test_rejects_negative_beta(self):
        with pytest.raises(ValueError):
            ExponentialPolicy(-0.1)


class TestAggressive:
    def test_values(self):
        np.testing.assert_allclose(AggressivePolicy(0.5).table(3), [1.0, -0.5, -0.5])

    def test_zero_penalty_is_exclusive(self):
        assert AggressivePolicy(0.0).is_exclusive(4)

    def test_rejects_negative_penalty(self):
        with pytest.raises(ValueError):
            AggressivePolicy(-1.0)


class TestCooperativeSharing:
    def test_above_equal_share(self):
        policy = CooperativeSharingPolicy(synergy=1.5)
        table = policy.table(4)
        assert table[0] == 1.0
        assert np.all(table[1:] >= SharingPolicy().table(4)[1:])

    def test_rejects_synergy_below_one(self):
        with pytest.raises(ValueError):
            CooperativeSharingPolicy(0.5)


class TestTabulated:
    def test_lookup_and_extension(self):
        policy = TabulatedPolicy([1.0, 0.4, 0.1])
        assert policy.congestion(2) == pytest.approx(0.4)
        # Occupancies beyond the table reuse the last value.
        assert policy.congestion(10) == pytest.approx(0.1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TabulatedPolicy([0.9, 0.4])
        with pytest.raises(ValueError):
            TabulatedPolicy([1.0, 0.4, 0.6])
        with pytest.raises(ValueError):
            TabulatedPolicy([])

    def test_validation_can_be_disabled(self):
        policy = TabulatedPolicy([1.0, 1.2], validate=False)
        assert policy.congestion(2) == pytest.approx(1.2)
        assert not policy.is_valid(2)


class TestCallable:
    def test_wraps_function(self):
        policy = CallablePolicy(lambda ell: 1.0 / ell**2, name="inverse-square")
        assert policy.congestion(2) == pytest.approx(0.25)
        assert policy.name == "inverse-square"
        np.testing.assert_allclose(policy.table(3), [1.0, 0.25, 1 / 9])


class TestValidation:
    @pytest.mark.parametrize(
        "policy",
        [
            ExclusivePolicy(),
            SharingPolicy(),
            ConstantPolicy(),
            TwoLevelPolicy(0.3),
            TwoLevelPolicy(-0.3),
            PowerLawPolicy(2.0),
            ExponentialPolicy(0.7),
            AggressivePolicy(1.0),
            CooperativeSharingPolicy(2.0),
            TabulatedPolicy([1.0, 0.5, 0.2]),
        ],
    )
    def test_all_policies_satisfy_axioms(self, policy):
        policy.validate(10)
        assert policy.is_valid(10)

    def test_invalid_callable_detected(self):
        policy = CallablePolicy(lambda ell: ell, name="increasing")
        assert not policy.is_valid(3)
        with pytest.raises(ValueError):
            policy.validate(3)

    @given(c=st.floats(min_value=-1.0, max_value=1.0))
    @settings(max_examples=30, deadline=None)
    def test_two_level_table_non_increasing(self, c):
        table = TwoLevelPolicy(c).table(6)
        assert table[0] == 1.0
        assert np.all(np.diff(table) <= 1e-12)
