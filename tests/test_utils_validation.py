"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.validation import (
    check_in_range,
    check_integer,
    check_positive_integer,
    check_probability,
    check_probability_vector,
    check_value_vector,
)


class TestCheckInteger:
    def test_accepts_int(self):
        assert check_integer(5, "x") == 5

    def test_accepts_numpy_integer(self):
        assert check_integer(np.int64(7), "x") == 7

    def test_accepts_integral_float(self):
        assert check_integer(3.0, "x") == 3

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_integer(True, "x")

    def test_rejects_non_integral_float(self):
        with pytest.raises(TypeError):
            check_integer(3.5, "x")

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_integer("3", "x")

    def test_minimum_enforced(self):
        with pytest.raises(ValueError, match=">= 2"):
            check_integer(1, "x", minimum=2)

    def test_positive_integer(self):
        assert check_positive_integer(1, "k") == 1
        with pytest.raises(ValueError):
            check_positive_integer(0, "k")


class TestCheckProbability:
    def test_valid_values(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        assert check_probability(0.25, "p") == 0.25

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_probability(1.01, "p")
        with pytest.raises(ValueError):
            check_probability(-0.01, "p")

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability(float("nan"), "p")


class TestCheckInRange:
    def test_within_bounds(self):
        assert check_in_range(0.5, "x", lo=0.0, hi=1.0) == 0.5

    def test_outside_bounds(self):
        with pytest.raises(ValueError):
            check_in_range(2.0, "x", lo=0.0, hi=1.0)

    def test_rejects_infinite(self):
        with pytest.raises(ValueError):
            check_in_range(np.inf, "x")


class TestCheckProbabilityVector:
    def test_valid_distribution(self):
        out = check_probability_vector([0.25, 0.75])
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_normalize_option(self):
        out = check_probability_vector([2.0, 2.0], normalize=True)
        np.testing.assert_allclose(out, [0.5, 0.5])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector([1.2, -0.2])

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector([0.3, 0.3])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_probability_vector([])

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            check_probability_vector(np.ones((2, 2)) / 4)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_probability_vector([np.nan, 1.0])

    def test_normalize_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            check_probability_vector([0.0, 0.0], normalize=True)


class TestCheckValueVector:
    def test_valid_values(self):
        out = check_value_vector([3.0, 2.0, 1.0])
        np.testing.assert_allclose(out, [3.0, 2.0, 1.0])

    def test_returns_copy(self):
        original = np.array([2.0, 1.0])
        out = check_value_vector(original)
        out[0] = 99.0
        assert original[0] == 2.0

    def test_rejects_zero_when_positive_required(self):
        with pytest.raises(ValueError):
            check_value_vector([1.0, 0.0])

    def test_allows_zero_when_not_positive(self):
        out = check_value_vector([1.0, 0.0], require_positive=False)
        assert out[1] == 0.0

    def test_rejects_negative_even_when_not_positive(self):
        with pytest.raises(ValueError):
            check_value_vector([1.0, -0.5], require_positive=False)

    def test_sorted_requirement(self):
        with pytest.raises(ValueError, match="non-increasing"):
            check_value_vector([1.0, 2.0], require_sorted=True)

    def test_rejects_empty_and_2d(self):
        with pytest.raises(ValueError):
            check_value_vector([])
        with pytest.raises(ValueError):
            check_value_vector(np.ones((2, 2)))

    def test_rejects_non_finite(self):
        with pytest.raises(ValueError):
            check_value_vector([np.inf, 1.0])
