"""Smoke tests of the package-level public API."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicAPI:
    def test_version_string(self):
        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_core_symbols_exported(self):
        for name in (
            "SiteValues",
            "Strategy",
            "ExclusivePolicy",
            "SharingPolicy",
            "sigma_star",
            "ideal_free_distribution",
            "coverage",
            "optimal_coverage",
            "spoa_instance",
            "ess_report",
        ):
            assert name in repro.__all__

    def test_docstring_example(self):
        # The example from the package docstring must keep working.
        f = repro.SiteValues.from_values([1.0, 0.5, 0.25])
        result = repro.sigma_star(f, k=3)
        np.testing.assert_allclose(
            result.strategy.as_array().round(3), [0.547, 0.359, 0.094]
        )
        numeric = repro.ideal_free_distribution(f, 3, repro.ExclusivePolicy())
        assert numeric.strategy == result.strategy

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.dynamics
        import repro.mechanism
        import repro.search
        import repro.simulation
        import repro.utils

        assert repro.analysis and repro.dynamics and repro.mechanism
        assert repro.search and repro.simulation and repro.utils

    def test_quickstart_workflow(self):
        values = repro.SiteValues.geometric(8, ratio=0.7)
        equilibrium = repro.ideal_free_distribution(values, 4, repro.SharingPolicy())
        assert equilibrium.strategy.as_array().sum() == pytest.approx(1.0)
        ratio = repro.spoa_instance(values, 4, repro.SharingPolicy()).ratio
        assert 1.0 <= ratio <= 2.0
