"""Tests for the DispersalGame facade."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.game import DispersalGame
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues


class TestConstruction:
    def test_accepts_lists_and_sitevalues(self):
        a = DispersalGame([0.5, 1.0, 0.25], k=2)
        b = DispersalGame(SiteValues.from_values([1.0, 0.5, 0.25]), k=2)
        np.testing.assert_allclose(a.values.as_array(), b.values.as_array())
        assert a.m == 3

    def test_default_policy_is_exclusive(self, small_values):
        game = DispersalGame(small_values, k=3)
        assert game.policy.is_exclusive(3)

    def test_rejects_bad_k(self, small_values):
        with pytest.raises(ValueError):
            DispersalGame(small_values, k=0)


class TestSolutions:
    def test_equilibrium_matches_module_function(self, small_values):
        game = DispersalGame(small_values, k=3, policy=SharingPolicy())
        direct = ideal_free_distribution(small_values, 3, SharingPolicy())
        assert game.equilibrium().strategy == direct.strategy
        assert game.equilibrium_payoff() == pytest.approx(direct.value)

    def test_optimal_strategy_is_sigma_star(self, small_values):
        game = DispersalGame(small_values, k=4)
        star = sigma_star(small_values, 4)
        assert game.optimal_strategy() == star.strategy
        assert game.optimal_coverage() == pytest.approx(optimal_coverage(small_values, 4))

    def test_equilibrium_is_cached(self, small_values):
        game = DispersalGame(small_values, k=3)
        assert game.equilibrium() is game.equilibrium()

    def test_exclusive_poa_is_one(self, small_values):
        game = DispersalGame(small_values, k=3, policy=ExclusivePolicy())
        assert game.price_of_anarchy() == pytest.approx(1.0, abs=1e-9)
        assert game.equilibrium().strategy == game.optimal_strategy()

    def test_sharing_poa_above_one(self, small_values):
        game = DispersalGame(small_values, k=3, policy=SharingPolicy())
        assert game.price_of_anarchy() > 1.0


class TestQuantities:
    def test_coverage_and_exploitability(self, small_values):
        game = DispersalGame(small_values, k=3)
        uniform = Strategy.uniform(4)
        assert game.coverage_of(uniform) < game.optimal_coverage()
        assert game.exploitability_of(uniform) > 0
        assert game.exploitability_of(game.equilibrium().strategy) == pytest.approx(0.0, abs=1e-9)

    def test_site_values_shape(self, small_values):
        game = DispersalGame(small_values, k=3)
        nu = game.site_values_at(Strategy.uniform(4))
        assert nu.shape == (4,)

    def test_full_coordination_and_welfare(self, small_values):
        game = DispersalGame(small_values, k=2, policy=SharingPolicy())
        assert game.full_coordination_coverage() == pytest.approx(1.6)
        welfare = game.welfare_optimum(restarts=2, max_iter=200)
        assert welfare.welfare > 0

    def test_ess_audit_for_exclusive(self, small_values):
        game = DispersalGame(small_values, k=3)
        report = game.ess_audit(n_random_mutants=5, rng=0)
        assert report.is_ess

    def test_simulation_defaults_to_equilibrium(self, small_values):
        game = DispersalGame(small_values, k=3)
        result = game.simulate(5_000, rng=0)
        assert abs(result.coverage_mean - game.equilibrium_coverage()) < 6 * result.coverage_sem

    def test_with_policy_and_with_players(self, small_values):
        game = DispersalGame(small_values, k=3)
        sharing = game.with_policy(SharingPolicy())
        assert sharing.policy.name == "sharing"
        assert sharing.k == 3
        bigger = game.with_players(5)
        assert bigger.k == 5
        assert bigger.policy.is_exclusive(5)
