"""Tests for the experiment subsystem: spec, registry, runner, result, CLI glue."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.analysis.observation1 import build_observation1_spec, observation1_task
from repro.analysis.spoa_experiments import SPoARow
from repro.cli import main
from repro.experiments import (
    ExperimentSpec,
    build_experiment,
    coerce_seed,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
    run_registered,
)
from repro.experiments.runner import resolve_workers, spawn_task_seeds
from repro.utils.envinfo import available_cpus
from repro.utils.io import read_csv

SMALL_GRID = dict(m_values=(4,), k_values=(2, 3), n_random=1)


def _small_spec(seed: int = 0) -> ExperimentSpec:
    return build_observation1_spec(seed=seed, **SMALL_GRID)


class TestSpec:
    def test_grid_and_metadata_are_frozen_copies(self):
        spec = _small_spec()
        assert spec.n_tasks == 6  # 5 families + 1 random, one M
        assert spec.metadata["m_values"] == (4,)
        assert all(isinstance(params, dict) for params in spec.grid)

    def test_with_seed(self):
        spec = _small_spec(seed=1)
        assert spec.with_seed(9).seed == 9
        assert spec.with_seed(9).grid == spec.grid

    def test_subset(self):
        spec = _small_spec()
        sub = spec.subset([0, 2])
        assert sub.n_tasks == 2
        assert sub.grid[1] == spec.grid[2]

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSpec(name="", description="", task=observation1_task, grid=())
        with pytest.raises(TypeError):
            ExperimentSpec(name="x", description="", task="not-callable", grid=())
        with pytest.raises(ValueError):
            ExperimentSpec(
                name="x", description="", task=observation1_task, grid=(), chunk_size=0
            )


class TestRegistry:
    def test_builtins_registered(self):
        names = experiment_names()
        for name in ("figure1", "observation1", "spoa", "ess", "sweep"):
            assert name in names

    def test_get_unknown_experiment(self):
        with pytest.raises(KeyError, match="unknown experiment"):
            get_experiment("no-such-experiment")

    def test_build_experiment_forwards_options(self):
        spec = build_experiment("observation1", seed=3, **SMALL_GRID)
        assert spec.seed == 3
        assert spec.n_tasks == 6

    def test_register_and_run_custom_experiment(self):
        @register_experiment("unit-test-exp", "registry round trip")
        def build(*, seed: int = 0) -> ExperimentSpec:
            return ExperimentSpec(
                name="unit-test-exp",
                description="",
                task=observation1_task,
                grid=({"family": "uniform", "m": 3, "k_values": (2,)},),
                seed=seed,
            )

        result = run_registered("unit-test-exp", seed=5)
        assert result.seed == 5
        assert len(result.rows) == 1


class TestRunner:
    def test_seed_spawning_is_deterministic(self):
        a = [s.generate_state(2).tolist() for s in spawn_task_seeds(7, 4)]
        b = [s.generate_state(2).tolist() for s in spawn_task_seeds(7, 4)]
        assert a == b
        assert a[0] != a[1]

    def test_same_seed_bit_identical_rows(self):
        first = run_experiment(_small_spec(seed=11))
        second = run_experiment(_small_spec(seed=11))
        assert first.rows == second.rows

    def test_different_seed_changes_random_rows(self):
        first = run_experiment(_small_spec(seed=1))
        second = run_experiment(_small_spec(seed=2))
        random_first = [r for r in first.rows if r.family.startswith("random")]
        random_second = [r for r in second.rows if r.family.startswith("random")]
        assert random_first != random_second
        structured_first = [r for r in first.rows if not r.family.startswith("random")]
        structured_second = [r for r in second.rows if not r.family.startswith("random")]
        assert structured_first == structured_second

    def test_process_pool_matches_serial(self):
        spec = _small_spec(seed=4)
        serial = run_experiment(spec, max_workers=0)
        parallel = run_experiment(spec, max_workers=2)
        assert serial.rows == parallel.rows
        assert parallel.metadata["runtime"]["max_workers"] == 2
        # The deterministic serialisation must not leak scheduling details.
        assert serial.to_json(timing=False) == parallel.to_json(timing=False)

    def test_resolve_workers_normalisation(self, monkeypatch):
        assert resolve_workers(None) == 0
        assert resolve_workers(0) == 0
        assert resolve_workers(3) == 3
        # -1 means "one worker per available CPU", where "available" is the
        # scheduling-affinity mask (cgroup/taskset aware), not the machine's
        # raw core count.
        assert resolve_workers(-1) == available_cpus()
        import repro.utils.envinfo as envinfo

        if hasattr(envinfo.os, "sched_getaffinity"):
            monkeypatch.setattr(
                envinfo.os, "sched_getaffinity", lambda pid: {0, 2, 5}
            )
            assert resolve_workers(-1) == 3

    def test_coerce_seed(self):
        assert coerce_seed(None) == 0
        assert coerce_seed(17) == 17
        gen_a = np.random.default_rng(3)
        gen_b = np.random.default_rng(3)
        assert coerce_seed(gen_a) == coerce_seed(gen_b)

    def test_rows_are_flattened_in_grid_order(self):
        result = run_experiment(_small_spec())
        families = [row.family for row in result.rows]
        # Each task yields its k rows contiguously, tasks in grid order.
        assert families == sorted(families, key=families.index)
        assert len(result.rows) == 6 * len(SMALL_GRID["k_values"])


class TestResultSerialisation:
    def test_json_round_trip(self, tmp_path):
        result = run_experiment(_small_spec(seed=2))
        payload = json.loads(result.to_json())
        assert payload["experiment"] == "observation1"
        assert payload["seed"] == 2
        assert len(payload["rows"]) == len(result.rows)
        assert payload["rows"][0]["row_type"] == "Observation1Row"
        path = result.write_json(tmp_path / "obs.json")
        assert json.loads(path.read_text())["n_tasks"] == result.n_tasks

    def test_json_without_timing_is_deterministic(self):
        a = run_experiment(_small_spec(seed=2)).to_json(timing=False)
        b = run_experiment(_small_spec(seed=2)).to_json(timing=False)
        assert a == b

    def test_csv_artifact(self, tmp_path):
        result = run_experiment(_small_spec())
        path = result.write_csv(tmp_path / "obs.csv")
        headers, rows = read_csv(path)
        assert "family" in headers and "row_type" in headers
        assert len(rows) == len(result.rows)

    def test_heterogeneous_rows_union_headers(self, tmp_path):
        result = run_registered("spoa", quick=True, seed=0)
        assert result.rows_of_type(SPoARow)
        path = result.write_csv(tmp_path / "spoa.csv")
        headers, rows = read_csv(path)
        assert "worst_ratio" in headers and "max_ratio" in headers
        assert len(rows) == len(result.rows)


class TestCLIIntegration:
    def test_seed_flag_gives_bit_identical_json(self, capsys):
        argv = ["sweep", "--m", "6", "--policy", "exclusive", "sharing", "--json", "--seed", "7"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["experiment"] == "sweep"
        assert payload["seed"] == 7

    def test_json_flag_on_observation1(self, capsys):
        assert main(["observation1", "--json", "--seed", "1"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["experiment"] == "observation1"
        assert all(row["holds"] for row in payload["rows"])

    def test_workers_flag_matches_serial_output(self, capsys):
        serial_argv = ["ess", "--mutants", "2", "--json", "--seed", "3"]
        assert main(serial_argv) == 0
        serial = capsys.readouterr().out
        assert main(serial_argv + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        # The whole JSON artifact is worker-count independent.
        assert serial == parallel

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        for name in ("figure1", "observation1", "spoa", "ess", "sweep"):
            assert name in out
