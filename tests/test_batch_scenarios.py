"""Property tests for the batched scenario kernels of ``repro.batch.scenarios``.

The core contract: every scenario kernel agrees **elementwise** with its
scalar counterpart from :mod:`repro.extensions` /
:mod:`repro.mechanism.policy_design` — including ragged site counts, mixed
per-row player counts, per-row cost vectors and depletion factors, and the
reduction-to-core cases (``d == 0`` costs, ``k = 1`` rows, constant
congestion tables).

The whole module runs once per available array backend (numpy always;
``array_api_strict`` when installed, skip-marked otherwise) through the
autouse ``array_backend`` fixture, mirroring ``tests/test_batch_dynamics.py``.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from repro.batch import (
    PaddedValues,
    best_two_level_batch,
    compare_policies_batch,
    cost_adjusted_ifd_batch,
    cost_adjusted_site_values_batch,
    repeated_dispersal_batch,
    two_group_competition_batch,
)
from repro.batch.scenarios import as_costs_batch
from repro.core.ifd import ideal_free_distribution
from repro.core.policies import (
    AggressivePolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
    TwoLevelPolicy,
)
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.extensions import (
    cost_adjusted_ifd,
    cost_adjusted_site_values,
    expected_repeated_dispersal,
    two_group_competition,
)
from repro.extensions.repeated import adaptive_sigma_star_schedule, constant_schedule
from repro.core.sigma_star import sigma_star
from repro.mechanism import best_two_level_policy, compare_policies

POLICIES = [SharingPolicy(), ExclusivePolicy(), TwoLevelPolicy(-0.2)]


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every scenario property test under each available backend."""
    with use_backend(request.param):
        yield request.param


@pytest.fixture
def ragged_batch():
    """Ragged instances with mixed per-row player counts (k = 1 included)."""
    rng = np.random.default_rng(20180503)
    instances = [SiteValues.random(int(m), rng, low=0.1, high=3.0) for m in (4, 9, 6, 3, 11)]
    ks = np.array([2, 5, 3, 1, 4], dtype=np.int64)
    return PaddedValues.from_instances(instances), instances, ks


def random_costs(padded: PaddedValues, rng: np.random.Generator, scale: float = 0.4) -> np.ndarray:
    return np.where(padded.mask, rng.uniform(0.0, scale, padded.values.shape), 0.0)


class TestAsCostsBatch:
    def test_scalar_vector_and_matrix_forms(self, ragged_batch):
        padded, _, _ = ragged_batch
        scalar = as_costs_batch(0.25, padded)
        assert scalar.shape == padded.values.shape
        np.testing.assert_allclose(scalar[padded.mask], 0.25)
        assert np.all(scalar[~padded.mask] == 0.0)
        vector = as_costs_batch(np.linspace(0.0, 1.0, padded.width), padded)
        assert vector.shape == padded.values.shape

    def test_rejects_bad_costs(self, ragged_batch):
        padded, _, _ = ragged_batch
        with pytest.raises(ValueError):
            as_costs_batch(np.full(padded.width + 1, 0.1), padded)
        with pytest.raises(ValueError):
            as_costs_batch(-0.1, padded)
        bad = np.zeros(padded.values.shape)
        bad[0, 0] = np.nan
        with pytest.raises(ValueError):
            as_costs_batch(bad, padded)


class TestCostAdjustedIFDBatch:
    @pytest.mark.parametrize("policy", POLICIES, ids=lambda p: p.name)
    def test_matches_scalar_rows(self, ragged_batch, policy):
        padded, instances, ks = ragged_batch
        costs = random_costs(padded, np.random.default_rng(11))
        batch = cost_adjusted_ifd_batch(padded, costs, ks, policy)
        for index, (values, k) in enumerate(zip(instances, ks)):
            scalar = cost_adjusted_ifd(values, costs[index, : values.m], int(k), policy)
            np.testing.assert_allclose(
                batch.probabilities[index, : values.m],
                scalar.strategy.as_array(),
                atol=2e-6,
            )
            np.testing.assert_allclose(batch.values[index], scalar.value, atol=2e-6)
            assert int(batch.support_sizes[index]) == scalar.support_size
            assert bool(batch.converged[index]) == scalar.converged
            assert np.all(batch.probabilities[index, values.m :] == 0.0)

    def test_zero_costs_reduce_to_core_ifd(self, ragged_batch):
        padded, instances, ks = ragged_batch
        policy = SharingPolicy()
        batch = cost_adjusted_ifd_batch(padded, 0.0, ks, policy)
        for index, (values, k) in enumerate(zip(instances, ks)):
            core = ideal_free_distribution(values, int(k), policy)
            np.testing.assert_allclose(
                batch.probabilities[index, : values.m],
                core.strategy.as_array(),
                atol=2e-6,
            )

    def test_k_equals_one_rows_pick_the_best_net_site(self, ragged_batch):
        padded, instances, _ = ragged_batch
        costs = random_costs(padded, np.random.default_rng(5), scale=1.0)
        batch = cost_adjusted_ifd_batch(padded, costs, 1, SharingPolicy())
        for index, values in enumerate(instances):
            net = values.as_array() - costs[index, : values.m]
            best = int(np.argmax(net))
            assert batch.support_sizes[index] == 1
            np.testing.assert_allclose(batch.probabilities[index, best], 1.0)
            np.testing.assert_allclose(batch.values[index], net[best], atol=1e-12)

    def test_constant_policy_rows_match_scalar_closed_form(self, ragged_batch):
        padded, instances, ks = ragged_batch
        costs = random_costs(padded, np.random.default_rng(7))
        batch = cost_adjusted_ifd_batch(padded, costs, ks, ConstantPolicy())
        for index, (values, k) in enumerate(zip(instances, ks)):
            scalar = cost_adjusted_ifd(values, costs[index, : values.m], int(k), ConstantPolicy())
            np.testing.assert_allclose(
                batch.probabilities[index, : values.m],
                scalar.strategy.as_array(),
                atol=1e-12,
            )
            assert int(batch.support_sizes[index]) == scalar.support_size

    def test_aggressive_policy_supports_negative_values(self):
        values = SiteValues.from_values([1.0, 0.9, 0.8])
        padded = PaddedValues.from_instances([values])
        costs = np.array([[0.9, 0.9, 0.9]])
        batch = cost_adjusted_ifd_batch(padded, costs, 4, AggressivePolicy(0.5))
        scalar = cost_adjusted_ifd(values, costs[0], 4, AggressivePolicy(0.5))
        np.testing.assert_allclose(batch.probabilities[0], scalar.strategy.as_array(), atol=2e-6)
        np.testing.assert_allclose(batch.values[0], scalar.value, atol=2e-6)

    def test_site_values_batch_matches_scalar(self, ragged_batch):
        padded, instances, ks = ragged_batch
        rng = np.random.default_rng(3)
        costs = random_costs(padded, rng)
        states = np.where(padded.mask, rng.random(padded.values.shape), 0.0)
        states /= states.sum(axis=1, keepdims=True)
        policy = SharingPolicy()
        nu = cost_adjusted_site_values_batch(padded, costs, states, ks, policy)
        for index, (values, k) in enumerate(zip(instances, ks)):
            expected = cost_adjusted_site_values(
                values,
                costs[index, : values.m],
                Strategy(states[index, : values.m]),
                int(k),
                policy,
            )
            np.testing.assert_allclose(nu[index, : values.m], expected, atol=1e-12)
            assert np.all(nu[index, values.m :] == 0.0)


class TestTwoGroupCompetitionBatch:
    def test_mixed_policy_pairs_match_scalar(self, ragged_batch):
        padded, instances, _ = ragged_batch
        firsts = [SharingPolicy(), ExclusivePolicy(), AggressivePolicy(0.5), SharingPolicy(), ExclusivePolicy()]
        seconds = [ExclusivePolicy(), SharingPolicy(), SharingPolicy(), AggressivePolicy(0.5), SharingPolicy()]
        k1 = np.array([3, 5, 2, 4, 2], dtype=np.int64)
        k2 = np.array([4, 3, 2, 2, 5], dtype=np.int64)
        batch = two_group_competition_batch(padded, firsts, seconds, k1, k2)
        for index, values in enumerate(instances):
            scalar = two_group_competition(
                values, firsts[index], seconds[index], int(k1[index]), int(k2[index])
            )
            np.testing.assert_allclose(batch.first_consumption[index], scalar.first_consumption, atol=1e-5)
            np.testing.assert_allclose(batch.second_consumption[index], scalar.second_consumption, atol=1e-5)
            np.testing.assert_allclose(
                batch.first_strategies[index, : values.m], scalar.first_strategy.as_array(), atol=1e-5
            )
            np.testing.assert_allclose(
                batch.second_strategies[index, : values.m], scalar.second_strategy.as_array(), atol=1e-5
            )
            np.testing.assert_allclose(batch.first_individual_payoffs[index], scalar.first_individual_payoff, atol=1e-5)
            np.testing.assert_allclose(batch.second_individual_payoffs[index], scalar.second_individual_payoff, atol=1e-5)
            np.testing.assert_allclose(batch.leftover_values[index], scalar.leftover_value, atol=1e-5)
            np.testing.assert_allclose(batch.first_shares[index], scalar.first_share, atol=1e-5)

    def test_single_policy_broadcasts(self, small_values):
        batch = two_group_competition_batch(
            [small_values], SharingPolicy(), ExclusivePolicy(), 3
        )
        scalar = two_group_competition(small_values, SharingPolicy(), ExclusivePolicy(), 3)
        np.testing.assert_allclose(batch.first_consumption[0], scalar.first_consumption, atol=1e-6)
        np.testing.assert_allclose(batch.first_shares[0], scalar.first_share, atol=1e-6)

    def test_roster_length_mismatch_raises(self, small_values):
        with pytest.raises(ValueError):
            two_group_competition_batch(
                [small_values], [SharingPolicy(), SharingPolicy()], ExclusivePolicy(), 3
            )


class TestRepeatedDispersalBatch:
    @pytest.mark.parametrize("schedule", ["adaptive", "constant"])
    def test_matches_scalar_expected_track(self, ragged_batch, schedule):
        padded, instances, ks = ragged_batch
        depletions = np.array([0.0, 0.3, 0.5, 0.25, 0.6])
        batch = repeated_dispersal_batch(
            padded, ks, rounds=4, depletion=depletions, schedule=schedule
        )
        for index, (values, k) in enumerate(zip(instances, ks)):
            if schedule == "adaptive":
                scalar_schedule = adaptive_sigma_star_schedule(int(k))
            else:
                scalar_schedule = constant_schedule(sigma_star(values, int(k)).strategy)
            scalar = expected_repeated_dispersal(
                values,
                int(k),
                scalar_schedule,
                rounds=4,
                depletion=float(depletions[index]),
            )
            np.testing.assert_allclose(
                batch.per_round_consumption[index], scalar.per_round_consumption, atol=1e-9
            )
            np.testing.assert_allclose(
                batch.cumulative_consumption[index], scalar.cumulative_consumption, atol=1e-9
            )
            np.testing.assert_allclose(
                batch.remaining_values[index], scalar.remaining_value, atol=1e-9
            )

    def test_full_consumption_depletes_visited_sites(self, small_values):
        batch = repeated_dispersal_batch(
            [small_values], 3, rounds=12, depletion=0.0, schedule="adaptive"
        )
        # With depletion 0 every visited patch is fully consumed, so the
        # cumulative consumption approaches the total value from below.
        total = float(small_values.total)
        assert batch.cumulative_consumption[0] <= total + 1e-9
        assert batch.cumulative_consumption[0] > 0.9 * total
        np.testing.assert_allclose(
            batch.cumulative_consumption[0] + batch.remaining_values[0], total, atol=1e-9
        )

    def test_explicit_constant_strategies(self, ragged_batch):
        padded, instances, ks = ragged_batch
        rng = np.random.default_rng(2)
        states = np.where(padded.mask, rng.random(padded.values.shape), 0.0)
        states /= states.sum(axis=1, keepdims=True)
        batch = repeated_dispersal_batch(
            padded, ks, rounds=3, depletion=0.2, schedule="constant", strategies=states
        )
        for index, (values, k) in enumerate(zip(instances, ks)):
            scalar = expected_repeated_dispersal(
                values,
                int(k),
                constant_schedule(Strategy(states[index, : values.m])),
                rounds=3,
                depletion=0.2,
            )
            np.testing.assert_allclose(
                batch.per_round_consumption[index], scalar.per_round_consumption, atol=1e-9
            )

    def test_rejects_bad_arguments(self, small_values):
        with pytest.raises(ValueError):
            repeated_dispersal_batch([small_values], 3, depletion=1.0)
        with pytest.raises(ValueError):
            repeated_dispersal_batch([small_values], 3, depletion=-0.1)
        with pytest.raises(ValueError):
            repeated_dispersal_batch([small_values], 3, schedule="greedy")
        with pytest.raises(ValueError):
            repeated_dispersal_batch(
                [small_values], 3, schedule="adaptive", strategies=np.ones((1, 4)) / 4
            )


class TestMechanismSweeps:
    def test_compare_policies_matches_scalar_grid(self, ragged_batch):
        padded, instances, _ = ragged_batch
        k_grid = np.array([2, 4], dtype=np.int64)
        roster = [ExclusivePolicy(), SharingPolicy(), TwoLevelPolicy(-0.2)]
        batch = compare_policies_batch(padded, k_grid, roster)
        assert batch.policy_names == ("exclusive", "sharing", "two-level")
        for index, values in enumerate(instances):
            for k_index, k in enumerate(k_grid):
                rows = compare_policies(values, int(k), roster)
                for policy_index, row in enumerate(rows):
                    cell = batch.comparison(policy_index, index, k_index)
                    np.testing.assert_allclose(
                        cell.equilibrium_coverage, row.equilibrium_coverage, atol=1e-5
                    )
                    np.testing.assert_allclose(
                        cell.optimal_coverage, row.optimal_coverage, atol=1e-7
                    )
                    np.testing.assert_allclose(cell.spoa, row.spoa, atol=1e-5)
                    np.testing.assert_allclose(
                        cell.equilibrium_payoff, row.equilibrium_payoff, atol=1e-5
                    )
                    assert cell.support_size == row.support_size

    def test_exclusive_policy_is_never_beaten(self, ragged_batch):
        padded, _, _ = ragged_batch
        k_grid = np.array([2, 3, 5], dtype=np.int64)
        batch = compare_policies_batch(
            padded, k_grid, [ExclusivePolicy(), SharingPolicy(), ConstantPolicy()]
        )
        # Corollary 5: the exclusive equilibrium achieves the optimum.
        np.testing.assert_allclose(
            batch.equilibrium_coverages[0], batch.optimal_coverages, atol=1e-6
        )
        assert np.all(
            batch.equilibrium_coverages[0] >= batch.equilibrium_coverages[1:] - 1e-6
        )

    def test_best_two_level_matches_scalar_argmax(self, figure1_left, figure1_right):
        padded = PaddedValues.from_instances([figure1_left, figure1_right])
        c_grid = np.linspace(-0.5, 0.5, 11)
        k_grid = np.array([2, 3], dtype=np.int64)
        batch = best_two_level_batch(padded, k_grid, c_grid=c_grid)
        for index, values in enumerate((figure1_left, figure1_right)):
            for k_index, k in enumerate(k_grid):
                best_c, rows = best_two_level_policy(values, int(k), c_grid=c_grid)
                assert batch.best_c[index, k_index] == pytest.approx(best_c, abs=1e-12)
                np.testing.assert_allclose(
                    batch.comparisons.equilibrium_coverages[:, index, k_index],
                    [row.equilibrium_coverage for row in rows],
                    atol=1e-5,
                )
        # Theorem 6: the maximiser sits at the exclusive policy c = 0.
        np.testing.assert_allclose(batch.best_c, 0.0, atol=1e-12)

    def test_empty_roster_rejected(self, small_values):
        with pytest.raises(ValueError):
            compare_policies_batch([small_values], 2, [])
        with pytest.raises(ValueError):
            best_two_level_batch([small_values], 2, c_grid=[])
