"""Property tests for the batched Monte-Carlo kernels of ``repro.batch.simulation``.

The core contracts:

* the scalar engine is a thin ``B = 1`` wrapper, so a single-row batch must
  reproduce :class:`~repro.simulation.engine.DispersalSimulator` **bit for
  bit** under the same seed;
* the sampled choices — and every integer statistic — are bit-identical for
  every ``max_chunk_draws`` memory cap (trial-major chunk draws concatenate
  to the unchunked stream); float accumulations agree to rounding;
* batched statistics agree with the exact formulas of :mod:`repro.core`
  within calibrated standard errors, on ragged batches with mixed per-row
  ``k``;
* ``n_trials == 1`` rows report ``nan`` standard errors.

The whole module runs once per available array backend (numpy always;
``array_api_strict`` when installed) through the autouse fixture, mirroring
the other batch suites.
"""

from __future__ import annotations

import numpy as np
import pytest

from conftest import backend_params
from repro.backend import use_backend
from stat_helpers import assert_two_sample_z_within, assert_z_within
from repro.batch import (
    PaddedValues,
    coverage_batch,
    simulate_dispersal_batch,
    simulate_profile_batch,
)
from repro.batch.simulation import as_strategy_batch
from repro.core.policies import ExclusivePolicy, SharingPolicy
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import individual_payoff
from repro.simulation import DispersalSimulator

SIGMAS = 6.0


@pytest.fixture(autouse=True, params=backend_params())
def array_backend(request):
    """Re-run every simulation property test under each available backend."""
    with use_backend(request.param):
        yield request.param


def ragged_batch(rng, count=6, m_range=(3, 9)):
    instances = [
        SiteValues.random(int(m), rng)
        for m in rng.integers(m_range[0], m_range[1], size=count)
    ]
    padded = PaddedValues.from_instances(instances)
    ks = rng.integers(2, 6, size=count).astype(np.int64)
    strategies = np.zeros(padded.values.shape)
    for index, values in enumerate(instances):
        strategies[index, : values.m] = sigma_star(values, int(ks[index])).strategy.as_array()
    return instances, padded, ks, strategies


class TestSingleRowEqualsEngine:
    def test_run_is_bit_identical_to_wrapped_engine(self, rng):
        values = SiteValues.zipf(7)
        strategy = Strategy.proportional(values.as_array())
        k, n_trials = 4, 3_000
        engine = DispersalSimulator(values, k, SharingPolicy(), batch_size=512).run(
            strategy, n_trials, 42
        )
        batch = simulate_dispersal_batch(
            values.as_array()[None, :],
            strategy.as_array()[None, :],
            k,
            SharingPolicy(),
            n_trials,
            42,
            max_chunk_draws=512 * k,
        )
        assert engine.coverage_mean == batch.coverage_means[0]
        assert engine.coverage_sem == batch.coverage_sems[0]
        assert engine.payoff_mean == batch.payoff_means[0]
        assert engine.collision_rate == batch.collision_rates[0]
        np.testing.assert_array_equal(
            engine.occupancy_histogram, batch.occupancy_histograms[0]
        )
        np.testing.assert_array_equal(
            engine.site_visit_frequencies, batch.site_visit_frequencies[0]
        )

    def test_profile_is_bit_identical_to_wrapped_engine(self, rng):
        values = SiteValues.zipf(5)
        profile = [
            Strategy.proportional(values.as_array()),
            Strategy.uniform(5),
            Strategy.point_mass(5, 0),
        ]
        engine = DispersalSimulator(values, 3, ExclusivePolicy()).run_profile(
            profile, 2_000, 7
        )
        batch = simulate_profile_batch(
            values.as_array()[None, :],
            [profile],
            3,
            ExclusivePolicy(),
            2_000,
            7,
        )
        assert engine.coverage_mean == batch.coverage_means[0]
        np.testing.assert_array_equal(engine.player_payoff_means, batch.player_payoff_means[0])
        np.testing.assert_array_equal(engine.player_payoff_sems, batch.player_payoff_sems[0])


class TestChunkInvariance:
    def test_results_do_not_depend_on_max_chunk_draws(self, rng):
        _, padded, ks, strategies = ragged_batch(rng)
        policy = SharingPolicy()
        n_trials = 600
        whole = simulate_dispersal_batch(
            padded, strategies, ks, policy, n_trials, 11, max_chunk_draws=1 << 24
        )
        tiny = simulate_dispersal_batch(
            padded, strategies, ks, policy, n_trials, 11, max_chunk_draws=padded.batch_size * int(ks.max()) * 7
        )
        # Integer statistics see the exact same sampled choices ...
        np.testing.assert_array_equal(whole.occupancy_histograms, tiny.occupancy_histograms)
        np.testing.assert_array_equal(
            whole.site_visit_frequencies, tiny.site_visit_frequencies
        )
        np.testing.assert_array_equal(whole.collision_rates, tiny.collision_rates)
        # ... and float accumulations agree to summation rounding.
        np.testing.assert_allclose(whole.coverage_means, tiny.coverage_means, rtol=1e-12)
        np.testing.assert_allclose(whole.coverage_sems, tiny.coverage_sems, rtol=1e-9, atol=1e-12)
        np.testing.assert_allclose(whole.payoff_means, tiny.payoff_means, rtol=1e-12)

    def test_minimum_cap_still_works(self, rng):
        # A cap below one trial's draw cost degrades to one trial per chunk.
        _, padded, ks, strategies = ragged_batch(rng, count=3)
        small = simulate_dispersal_batch(
            padded, strategies, ks, SharingPolicy(), 5, 0, max_chunk_draws=1
        )
        assert small.n_trials == 5


class TestAgreementWithExactFormulas:
    def test_coverage_and_payoff_within_sem(self, rng):
        instances, padded, ks, strategies = ragged_batch(rng)
        policy = SharingPolicy()
        n_trials = 4_000
        batch = simulate_dispersal_batch(padded, strategies, ks, policy, n_trials, 5)
        unique_ks = np.unique(ks)
        columns = np.searchsorted(unique_ks, ks)
        exact = coverage_batch(padded, strategies, unique_ks)[
            np.arange(padded.batch_size), columns
        ]
        # SEM-aware z-tests (stat_helpers) replace the old ad-hoc absolute
        # tolerances; the floor keeps exact-hit rows with zero SEM passing.
        assert_z_within(
            batch.coverage_means,
            exact,
            np.maximum(batch.coverage_sems, 1e-9),
            SIGMAS,
            context="coverage",
        )
        payoffs = np.array(
            [
                individual_payoff(
                    values, Strategy(strategies[index, : values.m]), int(ks[index]), policy
                )
                for index, values in enumerate(instances)
            ]
        )
        assert_z_within(
            batch.payoff_means,
            payoffs,
            np.maximum(batch.payoff_sems, 1e-9),
            SIGMAS,
            context="payoff",
        )

    def test_histogram_invariants_on_ragged_mixed_k_batches(self, rng):
        instances, padded, ks, strategies = ragged_batch(rng)
        n_trials = 500
        batch = simulate_dispersal_batch(
            padded, strategies, ks, ExclusivePolicy(), n_trials, 9
        )
        for index, values in enumerate(instances):
            histogram = batch.occupancy_histograms[index]
            # Every real (trial, site) pair lands in exactly one bin ...
            assert histogram.sum() == n_trials * values.m
            # ... and the players of every trial are conserved.
            assert (histogram * np.arange(histogram.size)).sum() == n_trials * int(ks[index])
            # Occupancies beyond the row's own player count are impossible.
            assert np.all(histogram[int(ks[index]) + 1 :] == 0)
        # Padding sites are never visited.
        assert np.all(batch.site_visit_frequencies[~padded.mask] == 0.0)
        assert np.all((batch.collision_rates >= 0) & (batch.collision_rates <= 1))

    def test_point_mass_collisions_are_deterministic(self):
        # Everyone on site 0: payoff C(k) * f(0), full collision, coverage f(0).
        values = np.array([[2.0, 1.0, 0.5]])
        strategies = np.array([[1.0, 0.0, 0.0]])
        batch = simulate_dispersal_batch(
            values, strategies, 3, SharingPolicy(), 50, 1
        )
        assert batch.coverage_means[0] == pytest.approx(2.0)
        assert batch.collision_rates[0] == pytest.approx(1.0)
        assert batch.payoff_means[0] == pytest.approx(2.0 / 3.0)
        assert batch.coverage_sems[0] == pytest.approx(0.0)


class TestSpreadReporting:
    def test_single_trial_rows_report_nan_sems(self, rng):
        _, padded, ks, strategies = ragged_batch(rng, count=4)
        batch = simulate_dispersal_batch(padded, strategies, ks, SharingPolicy(), 1, 0)
        assert np.all(np.isnan(batch.coverage_sems))
        assert np.all(np.isnan(batch.payoff_sems))

    def test_single_trial_profile_rows_report_nan_sems(self, rng):
        values = SiteValues.zipf(4)
        profile = [[Strategy.uniform(4), Strategy.uniform(4)]]
        batch = simulate_profile_batch(
            values.as_array()[None, :], profile, None, SharingPolicy(), 1, 0
        )
        assert np.isnan(batch.coverage_sems[0])
        assert np.all(np.isnan(batch.player_payoff_sems[0]))


class TestProfileBatch:
    def test_mixed_per_row_k_masks_surplus_players(self, rng):
        instances = [SiteValues.zipf(5), SiteValues.zipf(3)]
        padded = PaddedValues.from_instances(instances)
        profiles = [
            [Strategy.uniform(5), Strategy.uniform(5), Strategy.uniform(5)],
            [Strategy.uniform(3)],
        ]
        batch = simulate_profile_batch(padded, profiles, None, SharingPolicy(), 300, 2)
        np.testing.assert_array_equal(batch.k, [3, 1])
        # Row 1 has a single player: no collisions, payoff spread over sites.
        assert batch.player_payoff_means[1, 0] > 0
        assert np.all(batch.player_payoff_means[1, 1:] == 0.0)
        assert np.all(np.isnan(batch.player_payoff_sems[1, 1:]))

    def test_profile_statistics_match_symmetric_kernel(self, rng):
        # A profile in which every player uses the same strategy must agree
        # with the symmetric kernel in distribution.
        values = SiteValues.zipf(6)
        strategy = Strategy.proportional(values.as_array())
        k, n_trials = 3, 6_000
        symmetric = simulate_dispersal_batch(
            values.as_array()[None, :],
            strategy.as_array()[None, :],
            k,
            SharingPolicy(),
            n_trials,
            21,
        )
        profile = simulate_profile_batch(
            values.as_array()[None, :],
            [[strategy] * k],
            k,
            SharingPolicy(),
            n_trials,
            22,
        )
        assert_two_sample_z_within(
            symmetric.coverage_means[0],
            max(float(symmetric.coverage_sems[0]), 1e-9),
            profile.coverage_means[0],
            max(float(profile.coverage_sems[0]), 1e-9),
            SIGMAS,
            context="symmetric vs profile coverage",
        )


class TestValidation:
    def test_strategy_shape_and_mass_errors(self, rng):
        _, padded, ks, strategies = ragged_batch(rng, count=3)
        with pytest.raises(ValueError, match="matrix"):
            simulate_dispersal_batch(padded, strategies[:, :-1], ks, SharingPolicy(), 5)
        with pytest.raises(ValueError, match="non-negative"):
            bad = strategies.copy()
            bad[0, 0] = -0.1
            simulate_dispersal_batch(padded, bad, ks, SharingPolicy(), 5)
        with pytest.raises(ValueError, match="sum to one"):
            bad = strategies.copy()
            bad[1, 0] += 0.5
            simulate_dispersal_batch(padded, bad, ks, SharingPolicy(), 5)
        with pytest.raises(ValueError, match="padding"):
            bad = strategies.copy()
            row = int(np.argmin(padded.sizes))
            bad[row, padded.sizes[row]] = 0.25
            bad[row, 0] -= 0.25
            simulate_dispersal_batch(padded, bad, ks, SharingPolicy(), 5)

    def test_max_chunk_draws_must_be_positive(self, rng):
        _, padded, ks, strategies = ragged_batch(rng, count=2)
        with pytest.raises(ValueError):
            simulate_dispersal_batch(
                padded, strategies, ks, SharingPolicy(), 5, max_chunk_draws=0
            )

    def test_as_strategy_batch_accepts_ragged_strategy_objects(self, rng):
        instances = [SiteValues.zipf(5), SiteValues.zipf(3)]
        padded = PaddedValues.from_instances(instances)
        matrix = as_strategy_batch(
            [Strategy.uniform(5), Strategy.uniform(3)], padded
        )
        assert matrix.shape == padded.values.shape
        np.testing.assert_allclose(matrix.sum(axis=1), 1.0)
        assert np.all(matrix[1, 3:] == 0.0)
