"""Device-execution tests: transfer accounting, device pinning, zero-transfer
kernels and compiled stepping.

Three layers are covered:

* the :class:`~repro.backend.TransferStats` counter — crossings recorded at
  the ``to_numpy`` / ``from_numpy`` seams, the ``expected_transfer`` boundary
  classification, and collector nesting;
* device resolution — ``with_device`` / ``resolve_backend(device=...)``
  semantics per backend, the CLI/runner threading, and the skip-guarded
  accelerator cases;
* the device-resident kernel property itself: the simulation, search and
  dynamics pipelines perform **zero mid-kernel host transfers** on a
  non-NumPy backend while agreeing elementwise with the NumPy reference.
  The property is checked both on every installed non-NumPy backend and on a
  NumPy namespace *masquerading* as a device backend (``is_numpy=False``,
  no fancy assignment), so the accounting is exercised even where only
  NumPy is available.

The ``torch.compile`` agreement grid runs only where torch is installed.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.backend import (
    BackendNotAvailableError,
    available_backends,
    expected_transfer,
    from_numpy,
    resolve_backend,
    scatter_rows,
    to_numpy,
    track_transfers,
    use_backend,
    with_device,
)
from repro.batch import PaddedValues, replicator_batch
from repro.batch.compiled import clear_graph_cache, compiled_step_for, width_bucket
from repro.batch.dynamics import (
    DynamicsEngine,
    best_response_batch,
    invasion_batch,
    logit_batch,
    make_rule,
)
from repro.batch.search import (
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.batch.simulation import simulate_dispersal_batch
from repro.core.policies import PowerLawPolicy, SharingPolicy
from repro.core.values import SiteValues
from repro.utils.numerics import binomial_pmf_tensor, make_binomial_pmf_plan

TORCH_MISSING = "torch" not in available_backends()


@pytest.fixture
def fake_device_backend():
    """A NumPy namespace masquerading as a device backend.

    ``is_numpy=False`` makes the adapter seams count crossings and routes the
    kernels through their device-resident paths; ``supports_fancy_assignment
    =False`` additionally exercises the scatter-free code.  Data never
    actually leaves the host, so results must be bit-compatible with NumPy.
    """
    base = resolve_backend("numpy")
    return dataclasses.replace(
        base, name="fake-device", is_numpy=False, supports_fancy_assignment=False
    )


def device_backends():
    """Every genuinely installed non-NumPy backend handle."""
    return [resolve_backend(n) for n in available_backends() if n != "numpy"]


class _DeviceArray:
    """Minimal non-ndarray array wrapper: ``to_numpy`` must count a crossing."""

    def __init__(self, data):
        self._data = np.asarray(data)

    def __array__(self, dtype=None, copy=None):
        return np.asarray(self._data, dtype=dtype)


# ---------------------------------------------------------------- accounting
class TestTransferStats:
    def test_numpy_seams_are_free(self):
        be = resolve_backend("numpy")
        with track_transfers() as stats:
            arr = from_numpy(be, np.arange(5.0))
            to_numpy(arr)
        assert stats.total == 0
        assert stats.mid_kernel == 0

    def test_fake_device_crossings_are_counted(self, fake_device_backend):
        be = fake_device_backend
        with track_transfers() as stats:
            arr = from_numpy(be, np.arange(5.0))
            to_numpy(_DeviceArray(arr))
        assert stats.to_device == 1
        assert stats.to_host == 1
        assert stats.mid_kernel == 2
        assert stats.boundary_to_host == stats.boundary_to_device == 0

    def test_host_materialisation_of_real_ndarrays_is_free(self, fake_device_backend):
        # ``to_numpy`` of an actual ndarray is a no-op — no crossing happened,
        # so none is counted (the fake backend's data never left the host).
        with track_transfers() as stats:
            to_numpy(np.arange(5.0))
        assert stats.total == 0

    def test_expected_transfer_classifies_as_boundary(self, fake_device_backend):
        be = fake_device_backend
        with track_transfers() as stats:
            with expected_transfer():
                arr = from_numpy(be, np.arange(3.0))
            to_numpy(_DeviceArray(arr))  # mid-kernel: outside the boundary
        assert stats.boundary_to_device == 1
        assert stats.to_host == 1
        assert stats.mid_kernel == 1
        assert stats.total == 2

    def test_nested_expected_transfer_stays_boundary(self, fake_device_backend):
        be = fake_device_backend
        with track_transfers() as stats:
            with expected_transfer():
                with expected_transfer():
                    from_numpy(be, np.arange(3.0))
                from_numpy(be, np.arange(3.0))
        assert stats.boundary_to_device == 2
        assert stats.mid_kernel == 0

    def test_nested_trackers_both_collect(self, fake_device_backend):
        be = fake_device_backend
        with track_transfers() as outer:
            from_numpy(be, np.arange(2.0))
            with track_transfers() as inner:
                from_numpy(be, np.arange(2.0))
        assert inner.to_device == 1
        assert outer.to_device == 2

    def test_as_dict_round_trip(self, fake_device_backend):
        with track_transfers() as stats:
            from_numpy(fake_device_backend, np.arange(2.0))
        d = stats.as_dict()
        assert d["to_device"] == 1
        assert d["mid_kernel"] == 1
        assert set(d) >= {
            "to_host",
            "to_device",
            "boundary_to_host",
            "boundary_to_device",
            "mid_kernel",
            "total",
        }


# ---------------------------------------------------------------- resolution
class TestDeviceResolution:
    def test_cpu_is_identity_on_numpy(self):
        base = resolve_backend("numpy")
        assert with_device(base, "cpu") is base
        assert with_device(base, None) is base
        assert with_device(base, "default") is base
        assert resolve_backend("numpy", device="cpu").name == "numpy"

    @pytest.mark.parametrize("device", ["cuda", "mps", "tpu"])
    def test_accelerators_rejected_on_host_backends(self, device):
        base = resolve_backend("numpy")
        with pytest.raises(BackendNotAvailableError):
            with_device(base, device)

    def test_pinned_backend_is_usable(self):
        pinned = resolve_backend("numpy", device="cpu")
        with use_backend(pinned):
            assert resolve_backend(None).name == "numpy"

    def test_runner_threads_device_into_metadata(self):
        from repro.experiments import ExperimentSpec, run_experiment

        spec = ExperimentSpec(
            name="probe",
            description="device plumbing probe",
            task=lambda params, rng: {"x": float(rng.random())},
            grid=({"i": 0}, {"i": 1}),
            seed=5,
        )
        result = run_experiment(spec, device="cpu")
        assert result.metadata["runtime"]["device"] == "cpu"
        assert result.metadata["runtime"]["backend"] == "default"
        default = run_experiment(spec)
        assert default.metadata["runtime"]["device"] == "default"
        assert [r["x"] for r in result.rows] == [r["x"] for r in default.rows]

    def test_spec_with_device(self):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(
            name="probe",
            description="",
            task=lambda params, rng: None,
            grid=({},),
            seed=0,
        )
        assert spec.device is None
        assert spec.with_device("cuda").device == "cuda"

    def test_cli_rejects_unavailable_device(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["sweep", "--m", "4", "--policy", "sharing", "--device", "cuda"])

    @pytest.mark.skipif(TORCH_MISSING, reason="torch backend not installed")
    def test_torch_cpu_pinning(self):
        import torch

        pinned = with_device(resolve_backend("torch"), "cpu")
        assert pinned.device == torch.device("cpu")
        with pytest.raises(BackendNotAvailableError):
            with_device(resolve_backend("torch"), "nonsense")
        if not torch.cuda.is_available():
            with pytest.raises(BackendNotAvailableError):
                with_device(resolve_backend("torch"), "cuda")


# ----------------------------------------------------------- scatter purity
class TestScatterRowsPurity:
    def test_standard_path_moves_only_the_index_vector(self, fake_device_backend):
        be = fake_device_backend
        dest_host = np.arange(12.0).reshape(4, 3)
        src_host = -np.arange(6.0).reshape(2, 3)
        rows = np.array([1, 3])
        with expected_transfer():
            dest = from_numpy(be, dest_host.copy())
            src = from_numpy(be, src_host.copy())
        with track_transfers() as stats:
            out = scatter_rows(be, dest, rows, src)
        # One small index upload; the array payload never crosses.
        assert stats.to_host == 0
        assert stats.to_device == 1
        expected = dest_host.copy()
        expected[rows] = src_host
        np.testing.assert_array_equal(to_numpy(out), expected)

    def test_fancy_path_is_in_place(self):
        be = resolve_backend("numpy")
        dest = np.arange(12.0).reshape(4, 3)
        out = scatter_rows(be, dest, np.array([0]), np.full((1, 3), 7.0))
        assert out is dest
        np.testing.assert_array_equal(dest[0], 7.0)


# --------------------------------------------------------------- pmf plans
class TestBinomialPmfPlan:
    def test_plan_matches_plan_free_bit_for_bit(self):
        rng = np.random.default_rng(11)
        n = np.array([3, 0, 7, 5])
        P = rng.random((4, 6))
        plan = make_binomial_pmf_plan(n, backend="numpy")
        assert np.array_equal(
            binomial_pmf_tensor(n, P, backend="numpy", plan=plan),
            binomial_pmf_tensor(n, P, backend="numpy"),
        )

    def test_scalar_n_requires_batch_size(self):
        with pytest.raises(ValueError, match="batch_size"):
            make_binomial_pmf_plan(3, backend="numpy")
        plan = make_binomial_pmf_plan(3, batch_size=2, backend="numpy")
        assert plan.trials.tolist() == [3, 3]

    def test_negative_n_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            make_binomial_pmf_plan(np.array([2, -1]), backend="numpy")

    def test_plan_calls_make_no_transfers(self, fake_device_backend):
        be = fake_device_backend
        n = np.array([4, 2, 6])
        plan = make_binomial_pmf_plan(n, backend=be)
        with expected_transfer():
            P = from_numpy(be, np.random.default_rng(0).random((3, 5)))
        with track_transfers() as stats:
            pmf = binomial_pmf_tensor(n, P, backend=be, plan=plan)
        assert stats.total == 0
        with expected_transfer():
            host = to_numpy(pmf)
        assert np.array_equal(host, binomial_pmf_tensor(n, to_numpy(P), backend="numpy"))


# --------------------------------------------------- zero-transfer pipelines
def _zero_transfer_backends():
    """The fake backend plus every installed non-NumPy backend."""
    params = ["fake"]
    for name in available_backends():
        if name != "numpy":
            params.append(name)
    return params


@pytest.fixture(params=_zero_transfer_backends())
def kernel_backend(request, fake_device_backend):
    if request.param == "fake":
        return fake_device_backend
    return resolve_backend(request.param)


class TestZeroTransferKernels:
    """simulation / search / dynamics run without mid-kernel host crossings."""

    def test_simulation(self, kernel_backend):
        rng = np.random.default_rng(31)
        instances = [SiteValues.random(int(m), rng) for m in (4, 7, 3, 9)]
        padded = PaddedValues.from_instances(instances)
        strategies = [
            (lambda w: w / w.sum())(rng.random(int(s))) for s in padded.sizes
        ]
        ks = np.array([3, 2, 5, 4])
        policy = SharingPolicy()
        ref = simulate_dispersal_batch(
            padded, strategies, ks, policy, 150, 9, backend="numpy"
        )
        with track_transfers() as stats:
            got = simulate_dispersal_batch(
                padded, strategies, ks, policy, 150, 9, backend=kernel_backend
            )
        assert stats.mid_kernel == 0, stats.as_dict()
        assert stats.boundary_to_device > 0  # staging really crossed the seam
        np.testing.assert_allclose(
            got.coverage_means, ref.coverage_means, rtol=1e-9, atol=1e-12
        )
        np.testing.assert_array_equal(
            got.occupancy_histograms, ref.occupancy_histograms
        )

    def test_search(self, kernel_backend):
        rng = np.random.default_rng(32)
        sizes = (3, 6, 4, 8)
        priors = [(lambda w: w / w.sum())(rng.random(s)) for s in sizes]
        strategies = [(lambda w: w / w.sum())(rng.random(s)) for s in sizes]
        ks = np.array([1, 3, 2, 4])
        with track_transfers() as stats:
            success = success_probability_batch(
                priors, strategies, ks, backend=kernel_backend
            )
            expected = expected_discovery_time_batch(
                priors, strategies, ks, backend=kernel_backend
            )
            sim = simulate_search_batch(
                priors, strategies, ks, 64, rng=4, backend=kernel_backend
            )
        assert stats.mid_kernel == 0, stats.as_dict()
        np.testing.assert_allclose(
            success,
            success_probability_batch(priors, strategies, ks, backend="numpy"),
            rtol=1e-9,
        )
        np.testing.assert_allclose(
            expected,
            expected_discovery_time_batch(priors, strategies, ks, backend="numpy"),
            rtol=1e-9,
        )
        ref = simulate_search_batch(priors, strategies, ks, 64, rng=4, backend="numpy")
        np.testing.assert_array_equal(sim.rounds, ref.rounds)

    @pytest.mark.parametrize("rule_name", ["discrete", "euler", "logit", "best-response"])
    def test_dynamics(self, kernel_backend, rule_name):
        rng = np.random.default_rng(33)
        instances = [SiteValues.random(int(m), rng) for m in (4, 6, 3)]
        padded = PaddedValues.from_instances(instances)
        ks = np.array([3, 2, 4])
        policy = PowerLawPolicy(0.8)

        def run(backend):
            engine = DynamicsEngine(
                padded,
                ks,
                policy,
                make_rule(rule_name),
                max_iter=120,
                tol=1e-12,
                record_every=40,
                backend=backend,
            )
            return engine.run()

        ref = run("numpy")
        with track_transfers() as stats:
            got = run(kernel_backend)
        assert stats.mid_kernel == 0, stats.as_dict()
        np.testing.assert_allclose(got.states, ref.states, rtol=1e-9, atol=1e-12)
        assert np.array_equal(got.converged, ref.converged)
        assert np.array_equal(got.iterations, ref.iterations)
        np.testing.assert_allclose(got.records, ref.records, rtol=1e-9, atol=1e-12)

    def test_invasion(self, kernel_backend):
        rng = np.random.default_rng(34)
        instances = [SiteValues.random(int(m), rng) for m in (4, 5)]
        padded = PaddedValues.from_instances(instances)
        width = padded.width
        residents = np.zeros((2, width))
        mutants = np.zeros((2, width))
        residents[:, 0] = 1.0
        mutants[:, 1] = 1.0
        ks = np.array([3, 2])
        policy = SharingPolicy()
        ref = invasion_batch(
            padded, residents, mutants, ks, policy, max_iter=150, backend="numpy"
        )
        with track_transfers() as stats:
            got = invasion_batch(
                padded, residents, mutants, ks, policy, max_iter=150,
                backend=kernel_backend,
            )
        assert stats.mid_kernel == 0, stats.as_dict()
        np.testing.assert_allclose(got.states, ref.states, rtol=1e-9, atol=1e-12)
        assert np.array_equal(got.iterations, ref.iterations)


# ----------------------------------------------------------------- compiled
class TestCompiledStepping:
    def test_width_bucket(self):
        assert [width_bucket(w) for w in (1, 2, 3, 4, 5, 12, 16, 17)] == [
            1, 2, 4, 4, 8, 16, 16, 32,
        ]

    def test_no_compilation_off_torch(self, fake_device_backend):
        engine = DynamicsEngine(
            [[1.0, 0.5]], 2, SharingPolicy(), make_rule("logit"),
            max_iter=5, backend="numpy", compile=True,
        )
        assert engine._compiled_step is None
        engine = DynamicsEngine(
            [[1.0, 0.5]], 2, SharingPolicy(), make_rule("logit"),
            max_iter=5, backend=fake_device_backend, compile=True,
        )
        assert engine._compiled_step is None

    def test_compile_flag_is_safe_on_numpy(self):
        values = [[1.0, 0.6, 0.3], [0.9, 0.4]]
        ref = replicator_batch(values, 3, SharingPolicy(), max_iter=80, backend="numpy")
        got = replicator_batch(
            values, 3, SharingPolicy(), max_iter=80, backend="numpy", compile=True
        )
        np.testing.assert_array_equal(got.states, ref.states)

    @pytest.mark.skipif(TORCH_MISSING, reason="torch backend not installed")
    @pytest.mark.parametrize(
        "rule_name", ["discrete", "euler", "logit", "best-response"]
    )
    def test_compiled_agrees_with_eager(self, rule_name):
        rng = np.random.default_rng(35)
        instances = [SiteValues.random(int(m), rng) for m in (4, 9, 6, 3, 11)]
        padded = PaddedValues.from_instances(instances)
        ks = np.array([2, 5, 3, 4, 2])
        policy = PowerLawPolicy(0.7)

        def run(compile_flag):
            engine = DynamicsEngine(
                padded,
                ks,
                policy,
                make_rule(rule_name),
                max_iter=150,
                tol=1e-12,
                record_every=50,
                backend="torch",
                compile=compile_flag,
            )
            return engine.run()

        eager = run(False)
        compiled = run(True)
        np.testing.assert_allclose(
            compiled.states, eager.states, rtol=1e-9, atol=1e-10
        )
        assert np.array_equal(compiled.converged, eager.converged)
        assert np.array_equal(compiled.iterations, eager.iterations)

    @pytest.mark.skipif(TORCH_MISSING, reason="torch backend not installed")
    def test_graph_cache_reuse(self):
        clear_graph_cache()
        policy = SharingPolicy()
        first = DynamicsEngine(
            [[1.0, 0.5, 0.2]], 3, policy, make_rule("logit"),
            max_iter=5, backend="torch", compile=True,
        )
        second = DynamicsEngine(
            [[0.8, 0.4, 0.1, 0.05]], 3, policy, make_rule("logit"),
            max_iter=5, backend="torch", compile=True,
        )
        # widths 3 and 4 share the bucket-4 graph
        assert first._compiled_step is not None
        assert first._compiled_step is second._compiled_step
