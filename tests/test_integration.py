"""End-to-end integration tests tying the whole pipeline together."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.figure1 import figure1_data
from repro.core.coverage import coverage
from repro.core.ess import ess_report, is_symmetric_nash
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import ExclusivePolicy, SharingPolicy, TwoLevelPolicy
from repro.core.sigma_star import sigma_star
from repro.core.spoa import spoa_instance
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.core.welfare import welfare_optimal_strategy
from repro.dynamics import replicator_dynamics
from repro.mechanism import optimal_grant_design
from repro.search import BayesianSearchProblem, sigma_star_strategy, single_round_success_probability
from repro.simulation import simulate_dispersal


class TestPaperStoryEndToEnd:
    """One scenario exercised through every layer of the library."""

    @pytest.fixture(scope="class")
    def scenario(self):
        values = SiteValues.zipf(12, exponent=0.8)
        return values, 5

    def test_exclusive_policy_full_pipeline(self, scenario):
        values, k = scenario
        policy = ExclusivePolicy()

        # 1. Closed form and numerical solver agree.
        star = sigma_star(values, k)
        numeric = ideal_free_distribution(values, k, policy, use_closed_form=False)
        assert star.strategy.total_variation(numeric.strategy) < 1e-7

        # 2. The equilibrium is a Nash equilibrium, an ESS, and coverage optimal.
        assert is_symmetric_nash(values, star.strategy, k, policy)
        audit = ess_report(values, star.strategy, k, policy, n_random_mutants=10, rng=0)
        assert audit.is_ess
        assert coverage(values, star.strategy, k) == pytest.approx(optimal_coverage(values, k))

        # 3. Decentralised dynamics find the same point.
        dynamics = replicator_dynamics(values, k, policy, max_iter=40_000)
        assert dynamics.strategy.total_variation(star.strategy) < 1e-4

        # 4. Monte-Carlo simulation confirms the analytic coverage and payoff.
        simulated = simulate_dispersal(values, star.strategy, k, policy, 30_000, rng=1)
        assert abs(simulated.coverage_mean - coverage(values, star.strategy, k)) < 5 * simulated.coverage_sem
        assert abs(simulated.payoff_mean - star.equilibrium_value) < 5 * max(simulated.payoff_sem, 1e-9)

        # 5. The SPoA of the exclusive policy is 1 on this instance.
        assert spoa_instance(values, k, policy).ratio == pytest.approx(1.0, abs=1e-9)

    def test_sharing_vs_exclusive_vs_grants(self, scenario):
        values, k = scenario
        # Sharing alone loses coverage relative to the exclusive policy ...
        sharing_eq = ideal_free_distribution(values, k, SharingPolicy())
        exclusive_eq = ideal_free_distribution(values, k, ExclusivePolicy())
        sharing_cover = coverage(values, sharing_eq.strategy, k)
        exclusive_cover = coverage(values, exclusive_eq.strategy, k)
        assert sharing_cover < exclusive_cover
        # ... but the Kleinberg-Oren grant design recovers the optimum under sharing.
        design = optimal_grant_design(values, k)
        assert design.induced_coverage == pytest.approx(exclusive_cover, abs=1e-6)

    def test_search_connection(self, scenario):
        values, k = scenario
        prior = values.as_array() / values.total
        problem = BayesianSearchProblem(prior)
        strategy = sigma_star_strategy(problem, k)
        # Single-round success probability equals (normalised) optimal coverage.
        success = single_round_success_probability(problem, strategy, k)
        assert success == pytest.approx(optimal_coverage(values, k) / values.total, abs=1e-12)


class TestFigure1ConsistencyWithCoreTheorems:
    def test_figure1_panel_agrees_with_spoa_and_welfare(self):
        values = SiteValues.two_sites(0.4)
        panel = figure1_data(values, 2, c_grid=np.linspace(-0.4, 0.5, 10), welfare_grid_points=501)
        # ESS coverage at each grid point equals optimal coverage divided by the SPoA ratio.
        for c, ess_cover in zip(panel.c_grid, panel.ess_coverage):
            instance = spoa_instance(values, 2, TwoLevelPolicy(float(c)))
            assert ess_cover == pytest.approx(panel.optimal_coverage / instance.ratio, rel=1e-9)
        # The welfare curve is consistent with a direct welfare optimisation.
        direct = welfare_optimal_strategy(values, 2, TwoLevelPolicy(float(panel.c_grid[0])), grid_points=501)
        assert panel.welfare_optimum_coverage[0] == pytest.approx(direct.coverage, abs=1e-9)


class TestNumericalRobustness:
    def test_large_instance_closed_form(self):
        values = SiteValues.zipf(100_000, exponent=1.2)
        result = sigma_star(values, 50)
        assert result.strategy.as_array().sum() == pytest.approx(1.0, abs=1e-8)
        # The support need not reach k sites; it is set by how fast f decays.
        assert 2 <= result.support_size <= 100_000

    def test_extreme_value_spread(self):
        values = SiteValues.from_values(np.geomspace(1.0, 1e-9, 30))
        for k in (2, 5):
            star = sigma_star(values, k)
            assert np.isfinite(star.equilibrium_value)
            assert star.strategy.as_array().sum() == pytest.approx(1.0)

    def test_many_players_few_sites(self):
        values = SiteValues.from_values([1.0, 0.5])
        result = ideal_free_distribution(values, 200, SharingPolicy())
        # With massive competition the population ratio approaches the value ratio
        # (the classical input-matching law of the IFD literature).
        p = result.strategy.as_array()
        assert p[0] / p[1] == pytest.approx(2.0, rel=0.05)

    def test_near_tied_values(self):
        values = SiteValues.from_values([1.0, 1.0 - 1e-12, 1.0 - 2e-12])
        star = sigma_star(values, 3)
        np.testing.assert_allclose(star.strategy.as_array(), 1 / 3, atol=1e-6)

    def test_single_site_everything(self):
        values = SiteValues.uniform(1)
        policy = SharingPolicy()
        assert ideal_free_distribution(values, 5, policy).strategy == Strategy.point_mass(1, 0)
        assert optimal_coverage(values, 5) == pytest.approx(1.0)
        assert spoa_instance(values, 5, policy).ratio == pytest.approx(1.0)
