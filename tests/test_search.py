"""Tests for the Bayesian parallel-search substrate (Korman-Rodeh connection)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.coverage import coverage
from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.search import (
    BayesianSearchProblem,
    compare_search_strategies,
    expected_discovery_time,
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    simulate_search,
    single_round_success_probability,
    uniform_strategy,
)


class TestProblem:
    def test_prior_sorted_and_normalised(self):
        problem = BayesianSearchProblem(np.array([0.2, 0.5, 0.3]))
        np.testing.assert_allclose(problem.prior, [0.5, 0.3, 0.2])
        assert problem.m == 3

    def test_from_weights(self):
        problem = BayesianSearchProblem.from_weights(np.array([2.0, 1.0, 1.0]))
        np.testing.assert_allclose(problem.prior, [0.5, 0.25, 0.25])

    def test_from_weights_rejects_bad_input(self):
        with pytest.raises(ValueError):
            BayesianSearchProblem.from_weights(np.array([-1.0, 2.0]))
        with pytest.raises(ValueError):
            BayesianSearchProblem.from_weights(np.array([0.0, 0.0]))

    def test_zipf_and_uniform_constructors(self):
        zipf = BayesianSearchProblem.zipf(4)
        assert zipf.prior[0] == pytest.approx(max(zipf.prior))
        uniform = BayesianSearchProblem.uniform(4)
        np.testing.assert_allclose(uniform.prior, 0.25)

    def test_sample_treasure_distribution(self):
        problem = BayesianSearchProblem(np.array([0.8, 0.2]))
        samples = problem.sample_treasure(20_000, rng=0)
        assert samples.shape == (20_000,)
        assert abs((samples == 0).mean() - 0.8) < 0.02

    def test_possible_boxes_excludes_zero_prior(self):
        problem = BayesianSearchProblem(np.array([0.7, 0.3, 0.0]))
        assert problem.n_possible_boxes == 2
        assert problem.as_site_values().m == 2


class TestStrategies:
    def test_sigma_star_strategy_matches_core(self):
        problem = BayesianSearchProblem.zipf(10)
        k = 3
        strategy = sigma_star_strategy(problem, k)
        core = sigma_star(problem.as_site_values(), k)
        np.testing.assert_allclose(strategy.as_array(), core.strategy.as_array())

    def test_sigma_star_strategy_handles_zero_prior_boxes(self):
        problem = BayesianSearchProblem(np.array([0.6, 0.4, 0.0]))
        strategy = sigma_star_strategy(problem, 2)
        assert strategy.as_array()[2] == 0.0
        assert strategy.as_array().sum() == pytest.approx(1.0)

    def test_uniform_strategy_ignores_impossible_boxes(self):
        problem = BayesianSearchProblem(np.array([0.6, 0.4, 0.0]))
        np.testing.assert_allclose(uniform_strategy(problem).as_array(), [0.5, 0.5, 0.0])

    def test_proportional_strategy_is_prior(self):
        problem = BayesianSearchProblem.zipf(5)
        np.testing.assert_allclose(proportional_strategy(problem).as_array(), problem.prior)

    def test_greedy_top_k(self):
        problem = BayesianSearchProblem.zipf(5)
        strategy = greedy_top_k_strategy(problem, 2)
        np.testing.assert_allclose(strategy.as_array(), [0.5, 0.5, 0, 0, 0])


class TestFormulas:
    def test_success_probability_is_coverage_of_prior(self):
        problem = BayesianSearchProblem.zipf(8)
        k = 3
        strategy = Strategy.uniform(8)
        success = single_round_success_probability(problem, strategy, k)
        assert success == pytest.approx(coverage(problem.prior, strategy, k))

    def test_sigma_star_maximises_single_round_success(self):
        # Theorem 4 with the prior as value function.
        problem = BayesianSearchProblem.zipf(12)
        k = 4
        star = sigma_star_strategy(problem, k)
        best = single_round_success_probability(problem, star, k)
        for other in (
            uniform_strategy(problem),
            proportional_strategy(problem),
            greedy_top_k_strategy(problem, k),
            Strategy.random(12, np.random.default_rng(0)),
        ):
            assert best >= single_round_success_probability(problem, other, k) - 1e-12

    def test_expected_discovery_time_uniform_prior(self):
        # Uniform prior over M boxes with k searchers sampling uniformly:
        # per-round success probability is identical for every box.
        m, k = 6, 2
        problem = BayesianSearchProblem.uniform(m)
        strategy = uniform_strategy(problem)
        per_round = 1.0 - (1.0 - 1.0 / m) ** k
        assert expected_discovery_time(problem, strategy, k) == pytest.approx(1.0 / per_round)

    def test_expected_discovery_time_infinite_when_boxes_ignored(self):
        problem = BayesianSearchProblem.uniform(4)
        strategy = Strategy(np.array([0.5, 0.5, 0.0, 0.0]))
        assert expected_discovery_time(problem, strategy, 2) == np.inf

    def test_strategy_box_count_mismatch(self):
        problem = BayesianSearchProblem.uniform(4)
        with pytest.raises(ValueError):
            single_round_success_probability(problem, Strategy.uniform(3), 2)


class TestSimulator:
    def test_round_one_rate_matches_formula(self):
        problem = BayesianSearchProblem.zipf(10)
        k = 3
        strategy = proportional_strategy(problem)
        outcome = simulate_search(problem, strategy, k, 30_000, rng=0)
        expected = single_round_success_probability(problem, strategy, k)
        assert abs(outcome.round_one_success_rate - expected) < 0.02

    def test_mean_rounds_matches_formula_when_all_findable(self):
        problem = BayesianSearchProblem.uniform(5)
        strategy = uniform_strategy(problem)
        k = 2
        outcome = simulate_search(problem, strategy, k, 30_000, rng=1, max_rounds=500)
        assert outcome.success_rate > 0.999
        expected = expected_discovery_time(problem, strategy, k)
        assert abs(outcome.mean_rounds_when_found - expected) < 0.1

    def test_unreachable_boxes_reduce_success_rate(self):
        problem = BayesianSearchProblem.uniform(4)
        strategy = Strategy(np.array([0.5, 0.5, 0.0, 0.0]))
        outcome = simulate_search(problem, strategy, 2, 10_000, rng=2, max_rounds=100)
        assert outcome.success_rate == pytest.approx(0.5, abs=0.02)

    def test_rounds_array_bounds(self):
        problem = BayesianSearchProblem.uniform(3)
        outcome = simulate_search(problem, uniform_strategy(problem), 2, 500, rng=3, max_rounds=50)
        assert outcome.rounds.min() >= 1
        assert outcome.rounds.max() <= 51


class TestComparison:
    def test_compare_includes_all_baselines(self):
        problem = BayesianSearchProblem.zipf(15)
        report = compare_search_strategies(problem, 3)
        assert set(report) == {"sigma_star", "uniform", "proportional", "greedy_top_k"}
        assert report["sigma_star"]["success_probability"] == max(
            entry["success_probability"] for entry in report.values()
        )

    def test_extra_strategies_included(self):
        problem = BayesianSearchProblem.zipf(6)
        extra = {"point": Strategy.point_mass(6, 0)}
        report = compare_search_strategies(problem, 2, extra_strategies=extra)
        assert "point" in report
        assert report["point"]["expected_rounds"] == np.inf
