"""repro — reproduction of *Intense Competition can Drive Selfish Explorers to Optimize Coverage*.

The library implements the dispersal game of Collet & Korman (SPAA 2018):
``k`` selfish players simultaneously pick one of ``M`` sites of value
``f(1) >= ... >= f(M)``; a congestion policy ``I(x, l) = f(x) * C(l)`` rewards
each of the ``l`` players that landed on site ``x``.  The package provides

* the game model (:mod:`repro.core`): values, strategies, congestion policies,
  coverage, payoffs, the closed-form :func:`repro.core.sigma_star.sigma_star`,
  the general IFD solver, ESS machinery and the symmetric price of anarchy;
* batched instance solvers (:mod:`repro.batch`): whole ``(instances x
  k-grid)`` grids — ``sigma_star``, coverage optima, IFDs, SPoA, the
  Section-5 scenario extensions and the Theorems 4-6 mechanism sweeps
  (:mod:`repro.batch.scenarios`) — in a handful of tensor passes over
  padded ragged batches, expressed as pure Array-API kernels against the
  pluggable backend layer of :mod:`repro.backend` (``numpy`` default;
  ``array_api_strict`` / ``torch`` / ``cupy`` auto-detected, selected via
  ``use_backend`` / ``REPRO_BACKEND`` / the CLI's ``--backend``);
* evolutionary and learning dynamics converging to the IFD
  (:mod:`repro.dynamics`);
* a vectorised Monte-Carlo simulator of the one-shot game
  (:mod:`repro.simulation`), sampling through the shared inverse-CDF drawer
  of :mod:`repro.utils.sampling`;
* mechanism-design baselines (:mod:`repro.mechanism`) and the Bayesian
  parallel-search connection (:mod:`repro.search`);
* the experiment harness that regenerates the paper's Figure 1, the
  numerical checks of Theorems 3, 4, 6 and Corollary 5, and the scenario
  sweeps (:mod:`repro.analysis`), built as thin clients of the declarative
  registry/runner subsystem of :mod:`repro.experiments` (process-pool
  fan-out, deterministic per-task seeding, JSON/CSV result artifacts).

The documentation site under ``docs/`` (mkdocs-material, built with
``mkdocs build --strict`` in CI) covers the architecture, the backend
conventions, every registered experiment and the full API reference.

Quickstart
----------
>>> from repro import SiteValues, ExclusivePolicy, sigma_star, ideal_free_distribution
>>> f = SiteValues.from_values([1.0, 0.5, 0.25])
>>> result = sigma_star(f, k=3)
>>> result.strategy.as_array().round(3)
array([0.547, 0.359, 0.094])
>>> ideal_free_distribution(f, 3, ExclusivePolicy()).strategy == result.strategy
True
"""

from repro.core import *  # noqa: F401,F403 -- re-export the stable public API
from repro.core import __all__ as _core_all

__version__ = "1.1.0"

__all__ = list(_core_all) + ["__version__"]
