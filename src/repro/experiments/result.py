"""Structured experiment artifacts: rows + provenance, JSON/CSV serialisable.

An :class:`ExperimentResult` is what the runner hands back: the flattened
task rows in grid order together with everything needed to reproduce them
(experiment name, base seed, task count, wall-clock time, spec metadata).
Rows are typically small dataclasses; they are converted to plain records for
serialisation, with NumPy scalars and arrays mapped to JSON-native types.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from repro.utils.io import write_csv

__all__ = ["ExperimentResult"]


def _jsonify(value: Any) -> Any:
    """Map a value (possibly NumPy-typed or a dataclass) to JSON-native types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        return [_jsonify(item) for item in value.tolist()]
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {k: _jsonify(v) for k, v in dataclasses.asdict(value).items()}
    if isinstance(value, Mapping):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(item) for item in value]
    if isinstance(value, Path):
        return str(value)
    if hasattr(value, "as_array"):  # SiteValues / Strategy
        return [float(x) for x in value.as_array()]
    return value


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment run.

    Attributes
    ----------
    name, description:
        Copied from the spec.
    seed:
        Base seed the per-task generators were spawned from; rerunning the
        same spec with the same seed reproduces ``rows`` bit-identically.
    n_tasks:
        Number of grid points executed.
    elapsed_seconds:
        Wall-clock duration of the run.
    rows:
        Flattened task outputs in grid order (scheduling-independent).
    metadata:
        Spec metadata plus runner information (worker count, chunk size).
    """

    name: str
    description: str
    seed: int
    n_tasks: int
    elapsed_seconds: float
    rows: tuple[Any, ...]
    metadata: Mapping[str, Any] = field(default_factory=dict)

    # -------------------------------------------------------------- selection
    def rows_of_type(self, row_type: type) -> list[Any]:
        """The subset of rows that are instances of ``row_type``."""
        return [row for row in self.rows if isinstance(row, row_type)]

    # ---------------------------------------------------------- serialisation
    def to_records(self) -> list[dict[str, Any]]:
        """Rows as plain dictionaries; dataclasses gain a ``row_type`` field."""
        records: list[dict[str, Any]] = []
        for row in self.rows:
            if dataclasses.is_dataclass(row) and not isinstance(row, type):
                record = {"row_type": type(row).__name__}
                record.update(_jsonify(row))
            elif isinstance(row, Mapping):
                record = {str(k): _jsonify(v) for k, v in row.items()}
            else:
                record = {"value": _jsonify(row)}
            records.append(record)
        return records

    def to_dict(self, *, timing: bool = True) -> dict[str, Any]:
        """Full JSON-ready view: provenance header plus row records.

        ``timing=False`` omits the wall-clock field and the scheduling-
        dependent ``runtime`` metadata (worker count, chunking), so that two
        runs with the same seed serialise bit-identically regardless of how
        they were executed (used by the CLI's ``--json``).
        """
        head: dict[str, Any] = {
            "experiment": self.name,
            "description": self.description,
            "seed": self.seed,
            "n_tasks": self.n_tasks,
        }
        metadata = dict(self.metadata)
        if timing:
            head["elapsed_seconds"] = self.elapsed_seconds
        else:
            metadata.pop("runtime", None)
        head["metadata"] = _jsonify(metadata)
        head["rows"] = self.to_records()
        return head

    def to_json(self, *, indent: int | None = 2, timing: bool = True) -> str:
        """Serialise :meth:`to_dict` as JSON text."""
        return json.dumps(self.to_dict(timing=timing), indent=indent, sort_keys=False)

    def write_json(self, path: str | Path) -> Path:
        """Write the JSON artifact to ``path`` and return the path."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(self.to_json() + "\n")
        return out

    def write_csv(self, path: str | Path) -> Path:
        """Write the rows as CSV (union of record fields; blanks for gaps)."""
        records = self.to_records()
        headers: list[str] = []
        for record in records:
            for key in record:
                if key not in headers:
                    headers.append(key)
        body: list[list[Any]] = []
        for record in records:
            body.append([_csv_cell(record.get(key, "")) for key in headers])
        return write_csv(path, headers, body)


def _csv_cell(value: Any) -> Any:
    """Flatten nested JSON values into a single CSV cell."""
    if isinstance(value, (list, tuple, Mapping)):
        return json.dumps(value)
    return value
