"""Executing experiment specs: seed spawning, chunking, process pools.

The runner turns an :class:`~repro.experiments.spec.ExperimentSpec` into an
:class:`~repro.experiments.result.ExperimentResult`:

* one child ``SeedSequence`` is spawned per task from the spec's base seed,
  so task randomness depends only on ``(seed, grid index)`` — never on
  scheduling, worker count or chunking;
* with ``max_workers <= 1`` tasks run serially in-process (the default:
  most grids are NumPy-bound and small enough that process start-up would
  dominate); with ``max_workers >= 2`` they run on a chunked
  ``ProcessPoolExecutor``;
* outputs are collected **in grid order** and flattened (a task may return a
  single row or a list of rows), so serial and parallel runs of the same
  spec produce identical results, bit for bit;
* each task runs under the spec's array backend (``spec.backend`` or the
  runner's ``backend=`` override): the backend *name* travels in the task
  payload and is activated with :func:`repro.backend.use_backend` inside the
  executing process, so worker processes honor the choice even though
  backend handles themselves are not picklable.
"""

from __future__ import annotations

import contextlib
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.backend import resolve_backend, use_backend
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec, TaskFunction
from repro.utils.envinfo import available_cpus
from repro.utils.rng import spawn_seed_sequences

__all__ = ["run_experiment", "coerce_seed", "spawn_task_seeds", "chunk_grid"]


def chunk_grid(cells: Sequence[Any], chunk_size: int) -> list[tuple[Any, ...]]:
    """Split a flat list of grid cells into runner-task-sized chunks.

    Spec builders whose natural unit of work is one *batched* call (e.g. a
    :class:`~repro.batch.dynamics.DynamicsEngine` run over many rows) use this
    to turn a long row list into one task per chunk: the runner then
    parallelises across chunks while each task keeps enough rows to amortise
    the batched kernels.  The last chunk may be shorter; order is preserved.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    items = list(cells)
    return [tuple(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def coerce_seed(rng: np.random.Generator | int | None) -> int:
    """Map a legacy ``rng`` argument (seed / generator / ``None``) to a base seed.

    The legacy experiment entry points accepted a ``numpy`` generator; the
    declarative spec wants one integer.  A generator is consumed for a single
    draw, so repeated calls with the same generator state stay deterministic.
    """
    if rng is None:
        return 0
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    return int(rng)


def spawn_task_seeds(seed: int, n_tasks: int) -> list[np.random.SeedSequence]:
    """Derive one independent child ``SeedSequence`` per task index.

    Thin alias of :func:`repro.utils.rng.spawn_seed_sequences`, which
    documents the library-wide seed-derivation policy (root seed -> per-task
    child streams keyed by grid index, stable under re-chunking).
    """
    return spawn_seed_sequences(int(seed), n_tasks)


def _execute_task(
    payload: tuple[
        TaskFunction, Mapping[str, Any], np.random.SeedSequence, str | None, str | None
    ],
) -> Any:
    """Worker entry point: activate the backend/device, rebuild the generator, run."""
    task, params, seed_seq, backend, device = payload
    if backend is None and device is None:
        scope: Any = contextlib.nullcontext()
    else:
        # Both travel by *name* (handles are not picklable); resolution —
        # including device availability checks — happens in the executing
        # process, so worker processes raise the same errors the parent would.
        scope = use_backend(resolve_backend(backend, device=device))
    with scope:
        return task(params, np.random.default_rng(seed_seq))


def _flatten(outputs: Iterable[Any]) -> tuple[Any, ...]:
    rows: list[Any] = []
    for output in outputs:
        if output is None:
            continue
        if isinstance(output, (list, tuple)):
            rows.extend(output)
        else:
            rows.append(output)
    return tuple(rows)


def resolve_workers(max_workers: int | None) -> int:
    """Normalise a worker-count request (``None``/0/1 mean serial)."""
    if max_workers is None:
        return 0
    workers = int(max_workers)
    if workers < 0:
        # Convention: -1 means "one worker per *available* CPU" — the
        # affinity mask, not the machine's core count, so container CPU
        # limits (cgroups, taskset) are respected.
        workers = available_cpus()
    return workers


def run_experiment(
    spec: ExperimentSpec,
    *,
    max_workers: int | None = 0,
    backend: str | None = None,
    device: str | None = None,
) -> ExperimentResult:
    """Execute every task of ``spec`` and assemble the structured result.

    Parameters
    ----------
    spec:
        The experiment to run.
    max_workers:
        ``<= 1`` (default) runs serially in-process; ``>= 2`` fans tasks out
        to that many worker processes in chunks of ``spec.chunk_size`` (or
        about four chunks per worker when unset); ``-1`` uses one worker per
        CPU.  The result is identical either way.
    backend:
        Array-backend name activated around every task (overrides
        ``spec.backend``; ``None`` falls back to it).  Travels by name into
        worker processes, so parallel runs honor the choice; the results are
        identical across backends by the batch layer's elementwise contract.
    device:
        Device name (``cpu`` / ``cuda`` / ``mps``) the backend is pinned to
        around every task (overrides ``spec.device``; ``None`` falls back to
        it).  Travels by name like ``backend`` and is resolved — including
        availability checks — inside each executing process.
    """
    workers = resolve_workers(max_workers)
    seeds = spawn_task_seeds(spec.seed, spec.n_tasks)
    task_backend = backend if backend is not None else spec.backend
    task_device = device if device is not None else spec.device
    payloads = [
        (spec.task, params, seed, task_backend, task_device)
        for params, seed in zip(spec.grid, seeds)
    ]

    start = time.perf_counter()
    if workers <= 1 or len(payloads) <= 1:
        outputs = [_execute_task(payload) for payload in payloads]
        used_workers = 0
        chunk_size = len(payloads) or 1
    else:
        workers = min(workers, len(payloads))
        chunk_size = spec.chunk_size or max(1, -(-len(payloads) // (workers * 4)))
        with ProcessPoolExecutor(max_workers=workers) as executor:
            # ``Executor.map`` preserves input order, so the assembled rows do
            # not depend on which worker finished first.
            outputs = list(executor.map(_execute_task, payloads, chunksize=chunk_size))
        used_workers = workers
    elapsed = time.perf_counter() - start

    # Execution details live under a separate "runtime" key so that
    # `to_dict(timing=False)` can strip everything scheduling-dependent and
    # keep the serialised artifact identical across worker counts.
    metadata = dict(spec.metadata)
    metadata["runtime"] = {
        "max_workers": used_workers,
        "chunk_size": chunk_size,
        "backend": task_backend or "default",
        "device": task_device or "default",
    }
    return ExperimentResult(
        name=spec.name,
        description=spec.description,
        seed=spec.seed,
        n_tasks=spec.n_tasks,
        elapsed_seconds=elapsed,
        rows=_flatten(outputs),
        metadata=metadata,
    )
