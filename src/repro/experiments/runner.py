"""Executing experiment specs: seed spawning, chunking, executor strategies.

The runner turns an :class:`~repro.experiments.spec.ExperimentSpec` into an
:class:`~repro.experiments.result.ExperimentResult`:

* one child ``SeedSequence`` is spawned per task from the spec's base seed,
  so task randomness depends only on ``(seed, grid index)`` — never on
  scheduling, worker count, chunking or execution strategy;
* execution is delegated to a pluggable **executor strategy**
  (:mod:`repro.experiments.executors`): ``serial`` (the ``max_workers <= 1``
  default), ``process`` (chunked process pool — the historical behavior,
  now with bounded fault-tolerant chunk retries), ``async`` (thread pool)
  or ``distributed`` (TCP worker pool across machines);
* results stream back **in arrival order** and are reassembled to grid
  order on finalize, so serial and parallel runs of the same spec produce
  identical results, bit for bit — across all strategies;
* with a ``store`` (:class:`~repro.experiments.store.ExperimentStore`),
  every finished cell is persisted under its content address as it arrives
  and already-finished cells are skipped up front, which makes sweeps
  interruptible, resumable and extendable;
* each task runs under the spec's array backend (``spec.backend`` or the
  runner's ``backend=`` override): the backend *name* travels in the task
  payload and is activated with :func:`repro.backend.use_backend` inside
  the executing process, so workers honor the choice even though backend
  handles themselves are not picklable.
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Sequence

import numpy as np

from repro.experiments.executors import (
    Executor,
    SerialExecutor,
    TaskPayload,
    make_executor,
)
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec
from repro.utils.envinfo import available_cpus
from repro.utils.rng import spawn_seed_sequences

__all__ = [
    "run_experiment",
    "coerce_seed",
    "spawn_task_seeds",
    "chunk_grid",
    "auto_chunk_size",
    "resolve_batch_rows",
    "resolve_workers",
]


def chunk_grid(cells: Sequence[Any], chunk_size: int) -> list[tuple[Any, ...]]:
    """Split a flat list of grid cells into runner-task-sized chunks.

    Spec builders whose natural unit of work is one *batched* call (e.g. a
    :class:`~repro.batch.dynamics.DynamicsEngine` run over many rows) use this
    to turn a long row list into one task per chunk: the runner then
    parallelises across chunks while each task keeps enough rows to amortise
    the batched kernels.  The last chunk may be shorter; order is preserved.
    """
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    items = list(cells)
    return [tuple(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


def auto_chunk_size(
    n_cells: int,
    workers: int | None = None,
    *,
    target_chunks_per_worker: int = 2,
    max_chunk: int = 256,
) -> int:
    """Pick a batch size for :func:`chunk_grid` from the grid and CPU count.

    Targets at least ``target_chunks_per_worker`` chunks per worker so a
    parallel run keeps every worker busy and the tail chunk does not
    dominate, capped at ``max_chunk`` rows so even huge grids stream results
    back incrementally.

    ``workers`` defaults to :func:`repro.utils.envinfo.available_cpus` — the
    *machine's* capacity, deliberately not the runner's ``max_workers``
    argument: per-task seeds are keyed by chunk index and tasks consume
    their generator sequentially across the chunk, so the chunking must not
    change with the worker count or the serial==parallel bit-identity
    contract would break.  (Pass an explicit batch size to spec builders to
    pin results across *machines* with different CPU counts.)

    >>> auto_chunk_size(1000, workers=4)
    125
    >>> auto_chunk_size(0, workers=4)
    1
    """
    if workers is None or workers < 1:
        workers = available_cpus()
    if n_cells < 1:
        return 1
    target = max(1, int(workers) * max(1, int(target_chunks_per_worker)))
    # Floor division: rounding the chunk *down* can only add chunks, so the
    # >= target_chunks_per_worker guarantee holds whenever the grid allows it.
    return max(1, min(int(max_chunk), int(n_cells) // target))


def resolve_batch_rows(batch_rows: int | None, n_cells: int) -> int:
    """Resolve a spec builder's ``batch_rows`` argument.

    ``None`` (the builders' default) auto-tunes via :func:`auto_chunk_size`;
    an explicit value is validated and used as is.  Spec builders record the
    resolved value in their metadata, and passing it back reproduces the
    same chunking — and therefore bit-identical results — on any machine.
    """
    if batch_rows is None:
        return auto_chunk_size(n_cells)
    from repro.utils.validation import check_positive_integer

    return check_positive_integer(batch_rows, "batch_rows")


def coerce_seed(rng: np.random.Generator | int | None) -> int:
    """Map a legacy ``rng`` argument (seed / generator / ``None``) to a base seed.

    The legacy experiment entry points accepted a ``numpy`` generator; the
    declarative spec wants one integer.  A generator is consumed for a single
    draw, so repeated calls with the same generator state stay deterministic.
    """
    if rng is None:
        return 0
    if isinstance(rng, np.random.Generator):
        return int(rng.integers(0, 2**63 - 1))
    return int(rng)


def spawn_task_seeds(seed: int, n_tasks: int) -> list[np.random.SeedSequence]:
    """Derive one independent child ``SeedSequence`` per task index.

    Thin alias of :func:`repro.utils.rng.spawn_seed_sequences`, which
    documents the library-wide seed-derivation policy (root seed -> per-task
    child streams keyed by grid index, stable under re-chunking).
    """
    return spawn_seed_sequences(int(seed), n_tasks)


def _flatten(outputs: Iterable[Any]) -> tuple[Any, ...]:
    rows: list[Any] = []
    for output in outputs:
        if output is None:
            continue
        if isinstance(output, (list, tuple)):
            rows.extend(output)
        else:
            rows.append(output)
    return tuple(rows)


def resolve_workers(max_workers: int | None) -> int:
    """Normalise a worker-count request (``None``/0/1 mean serial)."""
    if max_workers is None:
        return 0
    workers = int(max_workers)
    if workers < 0:
        # Convention: -1 means "one worker per *available* CPU" — the
        # affinity mask, not the machine's core count, so container CPU
        # limits (cgroups, taskset) are respected.
        workers = available_cpus()
    return workers


def _resolve_executor(
    executor: Executor | str | None, workers: int, n_payloads: int
) -> tuple[Executor, int]:
    """Map the (executor, max_workers) request to a strategy instance.

    ``None`` keeps the historical behavior: serial for ``workers <= 1`` or
    single-task grids, a process pool otherwise.  A string is resolved
    through the strategy registry; an :class:`Executor` instance is used as
    is.  Returns the strategy and the effective worker count recorded in
    the result metadata (0 for serial, matching the legacy convention).
    """
    if isinstance(executor, Executor):
        used = 0 if executor.name == "serial" else getattr(executor, "workers", workers)
        return executor, int(used or 0)
    if executor is None:
        if workers <= 1 or n_payloads <= 1:
            return SerialExecutor(), 0
        executor = "process"
    if executor == "serial":
        return make_executor("serial"), 0
    workers = workers if workers > 1 else available_cpus()
    workers = max(1, min(workers, n_payloads))
    return make_executor(executor, workers=workers), workers


def run_experiment(
    spec: ExperimentSpec,
    *,
    max_workers: int | None = 0,
    backend: str | None = None,
    device: str | None = None,
    executor: Executor | str | None = None,
    store: Any | None = None,
    resume: bool = True,
) -> ExperimentResult:
    """Execute every task of ``spec`` and assemble the structured result.

    Parameters
    ----------
    spec:
        The experiment to run.
    max_workers:
        ``<= 1`` (default) runs serially in-process; ``>= 2`` fans tasks out
        to that many workers in chunks of ``spec.chunk_size`` (or about four
        chunks per worker when unset); ``-1`` uses one worker per CPU.  The
        result is identical either way.
    backend:
        Array-backend name activated around every task (overrides
        ``spec.backend``; ``None`` falls back to it).  Travels by name into
        worker processes, so parallel runs honor the choice; the results are
        identical across backends by the batch layer's elementwise contract.
    device:
        Device name (``cpu`` / ``cuda`` / ``mps``) the backend is pinned to
        around every task (overrides ``spec.device``; ``None`` falls back to
        it).  Travels by name like ``backend`` and is resolved — including
        availability checks — inside each executing process.
    executor:
        Execution strategy: a registered name (``serial`` / ``process`` /
        ``async`` / ``distributed``), a ready-built
        :class:`~repro.experiments.executors.Executor` instance, or ``None``
        for the historical default (serial below two workers, process pool
        otherwise).  All strategies produce bit-identical results.
    store:
        An :class:`~repro.experiments.store.ExperimentStore` (or a path to
        create one at).  Finished cells are persisted under their content
        address as they stream in; with ``resume`` (the default) cells
        already in the store are read back instead of recomputed, so
        interrupted sweeps resume and widened grids only compute new cells.
    resume:
        Set ``False`` to ignore (but still refresh) existing store entries —
        every cell is recomputed and rewritten.
    """
    workers = resolve_workers(max_workers)
    seeds = spawn_task_seeds(spec.seed, spec.n_tasks)
    task_backend = backend if backend is not None else spec.backend
    task_device = device if device is not None else spec.device
    payloads = [
        TaskPayload(
            index=index,
            task=spec.task,
            params=params,
            seed=seed,
            backend=task_backend,
            device=task_device,
        )
        for index, (params, seed) in enumerate(zip(spec.grid, seeds))
    ]

    if store is not None and not hasattr(store, "put"):
        from repro.experiments.store import ExperimentStore

        store = ExperimentStore(store)

    start = time.perf_counter()
    outputs: list[Any] = [None] * len(payloads)

    # Resume pass: read finished cells straight out of the store and only
    # schedule the rest.  Keys digest everything a cell depends on, so a hit
    # is bit-identical to a recomputation by construction.
    hits = 0
    keys: list[str] | None = None
    pending = payloads
    if store is not None:
        from repro.experiments.store import cell_keys_for

        keys = cell_keys_for(spec)
        if resume:
            pending = []
            for payload in payloads:
                cached = store.get(keys[payload.index], _MISS)
                if cached is _MISS:
                    pending.append(payload)
                else:
                    outputs[payload.index] = cached
                    hits += 1
        else:
            pending = list(payloads)

    strategy, used_workers = _resolve_executor(executor, workers, len(pending))
    if pending and len(pending) <= 1 and not isinstance(executor, Executor):
        # Single pending cell: scheduling overhead can't pay for itself.
        strategy, used_workers = SerialExecutor(), 0
    chunk_size = spec.chunk_size or (
        max(1, -(-len(pending) // (used_workers * 4))) if used_workers > 1 else (len(pending) or 1)
    )

    # Streaming aggregation: results arrive in completion order, land in
    # their grid slot immediately, and — when a store is attached — are
    # persisted cell by cell, so an interrupted run keeps all finished work.
    for index, output in strategy.run(pending, chunk_size=chunk_size):
        outputs[index] = output
        if store is not None and keys is not None:
            store.put(keys[index], output)
    elapsed = time.perf_counter() - start

    # Execution details live under a separate "runtime" key so that
    # `to_dict(timing=False)` can strip everything scheduling-dependent and
    # keep the serialised artifact identical across worker counts.
    metadata = dict(spec.metadata)
    runtime: dict[str, Any] = {
        "max_workers": used_workers,
        "chunk_size": chunk_size,
        "backend": task_backend or "default",
        "device": task_device or "default",
        "executor": strategy.name,
    }
    if store is not None:
        runtime["store"] = {
            "path": str(getattr(store, "root", "")),
            "hits": hits,
            "misses": len(pending),
        }
    metadata["runtime"] = runtime
    return ExperimentResult(
        name=spec.name,
        description=spec.description,
        seed=spec.seed,
        n_tasks=spec.n_tasks,
        elapsed_seconds=elapsed,
        rows=_flatten(outputs),
        metadata=metadata,
    )


_MISS = object()
