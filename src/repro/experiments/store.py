"""Incremental on-disk experiment store: one file per finished grid cell.

The store is what makes sweeps *resumable* and *extendable*.  Every grid
cell of an :class:`~repro.experiments.spec.ExperimentSpec` gets a content
address (:func:`repro.utils.canonical.cell_key`: spec family + task
qualname + canonical params + seed + grid index → SHA-256), and the runner
writes each cell's output under its key **as it arrives** — not at the end.
The consequences:

* re-running a spec against the same store skips every finished cell
  (cache hits are read back instead of recomputed);
* an interrupted sweep (Ctrl-C, OOM kill, machine loss) keeps everything
  completed so far — writes are atomic (``os.replace`` of a same-directory
  temp file), so the store can only ever contain *complete* cells;
* a widened grid (more policies, more seeds, more parameter points) only
  computes the new cells — existing cells share their content address.

Because per-task randomness depends only on ``(seed, grid index)`` (see
:mod:`repro.utils.rng`) and results are backend-independent by the batch
layer's elementwise contract, a cached cell is bit-identical to a
recomputed one — so resumed, extended and cold runs all serialise to the
same artifact (``to_dict(timing=False)``).

Layout: ``root/<key[:2]>/<key>.pkl`` (two-hex-char shards keep directory
fan-out bounded for million-cell sweeps) plus a ``FORMAT`` version marker.
Values are pickled task outputs; a corrupt or truncated file is treated as
a cache miss and recomputed, never an error.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any, Iterator

from repro.experiments.spec import ExperimentSpec
from repro.utils.canonical import cell_key

__all__ = ["ExperimentStore", "cell_keys_for", "STORE_FORMAT"]

#: On-disk format version; bump on incompatible layout/encoding changes.
STORE_FORMAT = 1

_SENTINEL = object()


def _task_name(task: Any) -> str:
    """Qualified name of a task function — part of every cell's identity."""
    module = getattr(task, "__module__", "") or ""
    qualname = getattr(task, "__qualname__", None) or getattr(task, "__name__", repr(task))
    return f"{module}.{qualname}" if module else str(qualname)


def cell_keys_for(spec: ExperimentSpec) -> list[str]:
    """The content address of every grid cell of ``spec``, in grid order.

    Keys digest the spec *family* (name), the task function's qualified
    name, the canonicalised cell params, the base seed and the grid index —
    everything a cell's output depends on under the library's seed policy.
    Backend and device are deliberately excluded (results are
    backend-independent by contract), so a store warmed on one backend
    serves every other.
    """
    task = _task_name(spec.task)
    return [
        cell_key(spec.name, params, spec.seed, index, task=task)
        for index, params in enumerate(spec.grid)
    ]


class ExperimentStore:
    """Content-addressed, append-only store of finished experiment cells.

    Safe for concurrent writers (atomic same-directory rename; last write
    wins, and by construction every writer writes identical bytes for a
    given key).  Reads treat missing, corrupt or truncated entries as cache
    misses.

    >>> import tempfile
    >>> with tempfile.TemporaryDirectory() as root:
    ...     store = ExperimentStore(root)
    ...     store.put("ab" * 32, {"welfare": 1.0})
    ...     store.get("ab" * 32)
    {'welfare': 1.0}
    """

    def __init__(self, root: str | os.PathLike):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        marker = self.root / "FORMAT"
        if marker.exists():
            try:
                found = int(marker.read_text().strip())
            except ValueError:
                raise ValueError(f"{marker} is not a repro experiment store") from None
            if found != STORE_FORMAT:
                raise ValueError(
                    f"store format {found} at {self.root} is not supported "
                    f"(this version reads format {STORE_FORMAT})"
                )
        else:
            marker.write_text(f"{STORE_FORMAT}\n")

    # ------------------------------------------------------------------ paths
    def path_for(self, key: str) -> Path:
        """The shard path holding ``key`` (``root/<key[:2]>/<key>.pkl``)."""
        key = str(key)
        if len(key) < 3:
            raise ValueError(f"key too short to shard: {key!r}")
        return self.root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------ write
    def put(self, key: str, value: Any) -> None:
        """Persist one finished cell atomically.

        The value is pickled to a temp file in the final directory and
        ``os.replace``-d into place, so readers — and post-crash scans —
        only ever observe complete entries.
        """
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=4)
            os.replace(tmp_name, path)
        except BaseException:
            with contextlib.suppress(OSError):
                os.unlink(tmp_name)
            raise

    # ------------------------------------------------------------------- read
    def get(self, key: str, default: Any = None) -> Any:
        """Read one cell back; missing or corrupt entries return ``default``."""
        value = self._load(key)
        return default if value is _SENTINEL else value

    def _load(self, key: str) -> Any:
        path = self.path_for(key)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return _SENTINEL
        except Exception:
            # Truncated/corrupt entry (e.g. disk full, partial copy): treat
            # as a miss so the cell is recomputed, and clear the debris.
            self.discard(key)
            return _SENTINEL

    def __contains__(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def keys(self) -> Iterator[str]:
        """Iterate the content addresses of every stored cell."""
        for shard in sorted(self.root.iterdir()):
            if not shard.is_dir():
                continue
            for path in sorted(shard.glob("*.pkl")):
                yield path.stem

    # -------------------------------------------------------------- housekeep
    def discard(self, key: str) -> None:
        """Remove one cell if present (idempotent)."""
        with contextlib.suppress(OSError):
            os.unlink(self.path_for(key))

    def clear(self) -> None:
        """Remove every stored cell (the format marker survives)."""
        for key in list(self.keys()):
            self.discard(key)
