"""Name-based registry of experiment spec builders.

Experiment modules register a *builder* — a function mapping keyword options
to an :class:`~repro.experiments.spec.ExperimentSpec` — under a stable name::

    @register_experiment("observation1", "Check the (1 - 1/e) coverage bound")
    def build_observation1_spec(*, m_values=(5, 20, 100), seed=0) -> ExperimentSpec:
        ...

Clients (the CLI, tests, notebooks) then resolve experiments by name with
:func:`build_experiment` / :func:`run_registered` without importing the
experiment module directly.  The built-in experiments (the paper
reproductions plus the scenario sweeps) live in :mod:`repro.analysis` and
are registered when that package is imported; :func:`get_experiment` imports
it lazily so registry lookups work from a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.experiments.runner import run_experiment
from repro.experiments.result import ExperimentResult
from repro.experiments.spec import ExperimentSpec

__all__ = [
    "ExperimentDefinition",
    "register_experiment",
    "get_experiment",
    "experiment_names",
    "build_experiment",
    "run_registered",
]


@dataclass(frozen=True)
class ExperimentDefinition:
    """A named experiment: summary plus spec builder."""

    name: str
    summary: str
    build: Callable[..., ExperimentSpec]


_REGISTRY: dict[str, ExperimentDefinition] = {}
_BUILTIN_MODULES = (
    "repro.analysis.figure1",
    "repro.analysis.observation1",
    "repro.analysis.spoa_experiments",
    "repro.analysis.ess_experiments",
    "repro.analysis.sweeps",
    "repro.analysis.scenario_experiments",
    "repro.analysis.stochastic_experiments",
)


def register_experiment(name: str, summary: str):
    """Decorator registering a spec builder under ``name``.

    Re-registering the same name overwrites the previous definition (so
    module reloads in interactive sessions stay harmless).
    """

    def decorate(build: Callable[..., ExperimentSpec]):
        _REGISTRY[name] = ExperimentDefinition(name=name, summary=summary, build=build)
        return build

    return decorate


def _load_builtins() -> None:
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def get_experiment(name: str) -> ExperimentDefinition:
    """Resolve a registered experiment by name (loading built-ins on demand)."""
    if name not in _REGISTRY:
        _load_builtins()
    try:
        return _REGISTRY[name]
    except KeyError:
        available = ", ".join(sorted(_REGISTRY)) or "(none)"
        raise KeyError(f"unknown experiment {name!r}; available: {available}") from None


def experiment_names() -> tuple[str, ...]:
    """Sorted names of every registered experiment (built-ins included)."""
    _load_builtins()
    return tuple(sorted(_REGISTRY))


def build_experiment(name: str, **options: Any) -> ExperimentSpec:
    """Build the spec of a registered experiment with the given options."""
    return get_experiment(name).build(**options)


def run_registered(
    name: str, *, max_workers: int | None = 0, **options: Any
) -> ExperimentResult:
    """Convenience: build a registered experiment and run it immediately."""
    return run_experiment(build_experiment(name, **options), max_workers=max_workers)
