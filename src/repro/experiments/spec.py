"""Declarative experiment specifications.

An :class:`ExperimentSpec` fully describes an experiment: *what* to compute
(a task function), *where* (a grid of task parameter mappings) and *how
reproducibly* (a base seed).  Specs are plain data — building one performs no
computation, so they can be constructed, inspected, reseeded and serialised
cheaply before being handed to :func:`repro.experiments.runner.run_experiment`.

Task functions must be picklable (defined at module top level) because the
runner may ship them to worker processes; task parameters should be built
from plain Python scalars, strings and tuples for the same reason.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = ["ExperimentSpec", "TaskFunction"]

#: A task maps ``(params, rng)`` to one result row or a list of rows.  Rows
#: are typically small dataclasses (rendered by ``rows_to_table`` and
#: serialised by ``ExperimentResult``); the ``rng`` is derived from the spec
#: seed and the task's grid index, independently of every other task.
TaskFunction = Callable[[Mapping[str, Any], np.random.Generator], Any]


@dataclass(frozen=True)
class ExperimentSpec:
    """Complete, declarative description of one experiment.

    Attributes
    ----------
    name:
        Registry/report name of the experiment.
    description:
        One-line human-readable summary (quoted in reports and JSON output).
    task:
        Top-level (picklable) function executed once per grid point.
    grid:
        One parameter mapping per task, in deterministic order.
    seed:
        Base seed; per-task generators are spawned from it so a spec with the
        same seed always reproduces the same rows, bit for bit.
    chunk_size:
        Optional number of tasks per worker chunk; ``None`` lets the runner
        pick roughly four chunks per worker.
    backend:
        Optional array-backend name every task runs under (see
        :mod:`repro.backend`).  ``None`` inherits whatever is active in the
        executing process; a name is activated around each task by the
        runner — including inside worker processes, so a spec pinned to
        ``"torch"`` keeps running on torch when fanned out.
    device:
        Optional device name (``cpu`` / ``cuda`` / ``mps``) the backend is
        pinned to around each task (see
        :func:`repro.backend.with_device`).  Travels by name into worker
        processes alongside ``backend``; ``None`` keeps the backend's
        default placement.
    metadata:
        Free-form provenance (grid shape, solver options, ...) copied into
        the :class:`~repro.experiments.result.ExperimentResult`.
    """

    name: str
    description: str
    task: TaskFunction
    grid: tuple[Mapping[str, Any], ...]
    seed: int = 0
    chunk_size: int | None = None
    backend: str | None = None
    device: str | None = None
    metadata: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("experiment name must be non-empty")
        if not callable(self.task):
            raise TypeError("task must be callable")
        object.__setattr__(self, "grid", tuple(dict(params) for params in self.grid))
        object.__setattr__(self, "seed", int(self.seed))
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 when given")
        if self.backend is not None:
            object.__setattr__(self, "backend", str(self.backend))
        if self.device is not None:
            object.__setattr__(self, "device", str(self.device))
        object.__setattr__(self, "metadata", dict(self.metadata))

    @property
    def n_tasks(self) -> int:
        """Number of grid points (= tasks) in the spec."""
        return len(self.grid)

    def with_seed(self, seed: int) -> "ExperimentSpec":
        """Copy of the spec under a different base seed."""
        return dataclasses.replace(self, seed=int(seed))

    def with_backend(self, backend: str | None) -> "ExperimentSpec":
        """Copy of the spec pinned to (or freed from) an array backend."""
        return dataclasses.replace(self, backend=backend)

    def with_device(self, device: str | None) -> "ExperimentSpec":
        """Copy of the spec pinned to (or freed from) a device placement."""
        return dataclasses.replace(self, device=device)

    def subset(self, indices: Sequence[int]) -> "ExperimentSpec":
        """Copy of the spec restricted to the given grid indices."""
        return dataclasses.replace(self, grid=tuple(self.grid[i] for i in indices))
