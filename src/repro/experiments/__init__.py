"""Declarative, parallel experiment runner for the reproduction harness.

The subsystem splits an experiment into three orthogonal pieces:

* a **spec** (:class:`~repro.experiments.spec.ExperimentSpec`): a picklable
  task function plus a grid of task parameter mappings and a base seed — a
  complete, declarative description of the computation;
* a **runner** (:func:`~repro.experiments.runner.run_experiment`): expands the
  grid, derives one independent child seed per task with NumPy's
  ``SeedSequence`` spawning (deterministic in the base seed and the task
  index, so results are bit-identical regardless of scheduling), and executes
  the tasks on a pluggable **executor strategy**
  (:mod:`~repro.experiments.executors`): serial, chunked process pool,
  thread pool, or a distributed TCP worker pool — all bit-identical;
* a **result** (:class:`~repro.experiments.result.ExperimentResult`): the
  flattened task rows in grid order plus provenance metadata, serialisable to
  JSON and CSV via :mod:`repro.utils.io`.

Sweeps become *resumable* with an incremental
:class:`~repro.experiments.store.ExperimentStore`: every finished grid cell
is persisted under a content address (:func:`repro.utils.canonical.cell_key`)
as it streams in, so re-runs skip finished cells, interrupted sweeps resume
where they left off, and widened grids only compute the new cells.

Experiments register themselves by name in the
:mod:`~repro.experiments.registry` (the built-in experiments of
:mod:`repro.analysis` — paper reproductions and scenario sweeps — are
registered on import); the CLI resolves its sub-commands through the
registry, so ``repro-dispersal <name> --seed S`` reruns any experiment
bit-identically.
"""

from repro.experiments.spec import ExperimentSpec
from repro.experiments.result import ExperimentResult
from repro.experiments.runner import (
    auto_chunk_size,
    chunk_grid,
    coerce_seed,
    run_experiment,
)
from repro.experiments.executors import (
    AsyncExecutor,
    DistributedExecutor,
    Executor,
    ProcessExecutor,
    SerialExecutor,
    TaskPayload,
    executor_names,
    make_executor,
    register_executor,
)
from repro.experiments.store import ExperimentStore, cell_keys_for
from repro.experiments.registry import (
    ExperimentDefinition,
    build_experiment,
    experiment_names,
    get_experiment,
    register_experiment,
    run_registered,
)

__all__ = [
    "ExperimentSpec",
    "ExperimentResult",
    "run_experiment",
    "coerce_seed",
    "chunk_grid",
    "auto_chunk_size",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "DistributedExecutor",
    "TaskPayload",
    "make_executor",
    "executor_names",
    "register_executor",
    "ExperimentStore",
    "cell_keys_for",
    "ExperimentDefinition",
    "register_experiment",
    "get_experiment",
    "build_experiment",
    "experiment_names",
    "run_registered",
]
