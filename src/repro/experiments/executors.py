"""Pluggable execution strategies for the experiment runner.

The runner used to hard-code one ``ProcessPoolExecutor``; this module turns
*how* tasks are executed into a strategy behind a single interface so the
same :class:`~repro.experiments.spec.ExperimentSpec` can run serially, on a
local process pool, on a thread pool, or sharded across machines — with
bit-identical results, because per-task randomness depends only on the
spec's ``(seed, grid index)`` (see :mod:`repro.utils.rng`), never on which
strategy or worker executed the task.

**The strategy contract.**  An :class:`Executor`'s :meth:`~Executor.run`
consumes :class:`TaskPayload` objects and *yields* ``(grid_index, output)``
pairs in **arrival order** — streaming partial aggregation, not
collect-at-end.  The runner reassembles grid order on finalize and persists
finished cells to the :class:`~repro.experiments.store.ExperimentStore` as
they stream in, so an interrupted sweep keeps everything completed so far.

Four strategies ship built in (see :func:`make_executor`):

``serial``
    In-process loop; the default for small grids.
``process``
    Chunked ``ProcessPoolExecutor`` (the previous behavior), hardened with
    bounded chunk retries: a worker process dying mid-chunk re-executes that
    chunk on a fresh pool — same per-task seeds, bit-identical rows —
    instead of poisoning the whole run.
``async``
    Chunked thread pool for I/O-bound or GIL-releasing workloads (native
    NumPy/torch kernels, network-backed tasks).  Backend activation uses
    contextvars, so per-task backends stay isolated per thread.
``distributed``
    A dependency-free TCP coordinator: ``repro-dispersal worker --connect
    HOST:PORT`` processes (on this or other nodes) pull task chunks over a
    length-prefixed pickle protocol and push results back.  Dead
    connections requeue their in-flight chunk with the same bounded-retry
    policy.  The wire format is pickle — only run workers on hosts/networks
    you trust.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import socket
import struct
import subprocess
import sys
import threading
import time
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from queue import Empty, Queue
from typing import Any, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.backend import resolve_backend, use_backend
from repro.experiments.spec import TaskFunction
from repro.utils.envinfo import available_cpus

__all__ = [
    "TaskPayload",
    "Executor",
    "SerialExecutor",
    "ProcessExecutor",
    "AsyncExecutor",
    "DistributedExecutor",
    "ExecutorError",
    "execute_payload",
    "execute_chunk",
    "make_executor",
    "executor_names",
    "register_executor",
    "send_message",
    "recv_message",
]


class ExecutorError(RuntimeError):
    """An execution strategy could not complete the sweep (workers lost, retries exhausted)."""


@dataclass(frozen=True)
class TaskPayload:
    """One schedulable unit: a task, its parameters and its derived seed.

    The ``seed`` is the per-task ``SeedSequence`` child spawned from the
    spec's base seed by grid index, so a payload is self-contained: any
    worker, on any machine, on any attempt, reproduces the same output bit
    for bit.  ``backend``/``device`` travel by *name* (handles are not
    picklable) and are resolved in the executing process.
    """

    index: int
    task: TaskFunction
    params: Mapping[str, Any]
    seed: np.random.SeedSequence
    backend: str | None = None
    device: str | None = None


def execute_payload(payload: TaskPayload) -> Any:
    """Execute one payload: activate the backend/device, rebuild the generator, run."""
    if payload.backend is None and payload.device is None:
        scope: Any = contextlib.nullcontext()
    else:
        # Resolution — including device availability checks — happens in the
        # executing process, so workers raise the same errors the parent would.
        scope = use_backend(resolve_backend(payload.backend, device=payload.device))
    with scope:
        return payload.task(payload.params, np.random.default_rng(payload.seed))


def execute_chunk(chunk: Sequence[TaskPayload]) -> list[tuple[int, Any]]:
    """Execute a chunk of payloads sequentially, returning ``(index, output)`` pairs.

    This is the unit shipped to process-pool and distributed workers: big
    enough to amortise dispatch overhead, small enough that a sweep streams
    back incrementally.
    """
    return [(payload.index, execute_payload(payload)) for payload in chunk]


def _chunked(
    payloads: Sequence[TaskPayload], chunk_size: int
) -> list[tuple[TaskPayload, ...]]:
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    items = list(payloads)
    return [tuple(items[i : i + chunk_size]) for i in range(0, len(items), chunk_size)]


class Executor(ABC):
    """Strategy interface: stream ``(grid_index, output)`` pairs in arrival order.

    Implementations must not reorder, drop or duplicate indices; beyond that
    they are free to schedule however they like — the per-task seeds make
    the results placement-independent.
    """

    #: Registry name of the strategy (also recorded in result metadata).
    name: str = "abstract"

    @abstractmethod
    def run(
        self, payloads: Sequence[TaskPayload], *, chunk_size: int = 1
    ) -> Iterator[tuple[int, Any]]:
        """Execute every payload, yielding ``(grid_index, output)`` as results arrive."""


class SerialExecutor(Executor):
    """In-process, in-order execution (the ``max_workers <= 1`` default)."""

    name = "serial"

    def run(
        self, payloads: Sequence[TaskPayload], *, chunk_size: int = 1
    ) -> Iterator[tuple[int, Any]]:
        for payload in payloads:
            yield payload.index, execute_payload(payload)


class AsyncExecutor(Executor):
    """Chunked thread-pool execution for I/O-bound or GIL-releasing tasks.

    Threads share the interpreter, so this strategy shines when tasks spend
    their time in native kernels (NumPy, torch) or waiting on I/O; pure-
    Python-bound grids should prefer the ``process`` strategy.  Backend
    activation (:func:`repro.backend.use_backend`) is contextvar-based and
    therefore correctly scoped per worker thread.
    """

    name = "async"

    def __init__(self, workers: int | None = None):
        self.workers = int(workers) if workers else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")

    def run(
        self, payloads: Sequence[TaskPayload], *, chunk_size: int = 1
    ) -> Iterator[tuple[int, Any]]:
        chunks = _chunked(payloads, chunk_size)
        if not chunks:
            return
        with ThreadPoolExecutor(max_workers=min(self.workers, len(chunks))) as pool:
            futures = [pool.submit(execute_chunk, chunk) for chunk in chunks]
            try:
                for future in as_completed(futures):
                    yield from future.result()
            except BaseException:
                pool.shutdown(wait=False, cancel_futures=True)
                raise


class ProcessExecutor(Executor):
    """Chunked process-pool execution with bounded fault-tolerant retries.

    Matches the runner's historical ``ProcessPoolExecutor`` behavior, except
    that a worker process dying mid-chunk (OOM kill, segfault, ``os._exit``)
    no longer poisons the whole run: the broken pool is discarded, every
    unfinished chunk is resubmitted to a fresh pool, and each chunk gets at
    most ``max_retries`` re-executions before the run fails with
    :class:`ExecutorError`.  Retried chunks reuse their original payloads —
    same per-task seeds — so a retry is bit-identical to a first run.
    Exceptions *raised by the task itself* are deterministic and are
    propagated immediately, never retried.
    """

    name = "process"

    def __init__(self, workers: int | None = None, *, max_retries: int = 3):
        self.workers = int(workers) if workers else available_cpus()
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        self.max_retries = int(max_retries)

    def run(
        self, payloads: Sequence[TaskPayload], *, chunk_size: int = 1
    ) -> Iterator[tuple[int, Any]]:
        remaining = dict(enumerate(_chunked(payloads, chunk_size)))
        attempts = dict.fromkeys(remaining, 0)
        while remaining:
            workers = min(self.workers, len(remaining))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    pool.submit(execute_chunk, chunk): chunk_id
                    for chunk_id, chunk in remaining.items()
                }
                broken = False
                for future in as_completed(futures):
                    chunk_id = futures[future]
                    try:
                        results = future.result()
                    except BrokenProcessPool:
                        # A worker died; every unfinished future fails with
                        # the same error.  Leave the loop and retry them all
                        # on a fresh pool.
                        broken = True
                        break
                    except BaseException:
                        pool.shutdown(wait=False, cancel_futures=True)
                        raise
                    del remaining[chunk_id]
                    yield from results
            if broken:
                for chunk_id in remaining:
                    attempts[chunk_id] += 1
                    if attempts[chunk_id] > self.max_retries:
                        raise ExecutorError(
                            f"chunk {chunk_id} crashed its worker process "
                            f"{attempts[chunk_id]} times (max_retries={self.max_retries})"
                        )


# ---------------------------------------------------------------------------
# Distributed strategy: TCP coordinator + pull-based workers
# ---------------------------------------------------------------------------

_HEADER = struct.Struct("!Q")


def send_message(sock: socket.socket, message: Any) -> None:
    """Send one length-prefixed pickle message over ``sock``."""
    data = pickle.dumps(message, protocol=4)
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buffer = bytearray()
    while len(buffer) < n:
        part = sock.recv(n - len(buffer))
        if not part:
            raise EOFError("connection closed")
        buffer.extend(part)
    return bytes(buffer)


def recv_message(sock: socket.socket) -> Any:
    """Receive one length-prefixed pickle message from ``sock``.

    Raises ``EOFError`` when the peer closed the connection.
    """
    (length,) = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    return pickle.loads(_recv_exact(sock, length))


def _worker_command(address: tuple[str, int]) -> list[str]:
    return [
        sys.executable,
        "-m",
        "repro.cli",
        "worker",
        "--connect",
        f"{address[0]}:{address[1]}",
    ]


def _worker_env() -> dict[str, str]:
    """Environment for auto-spawned local workers.

    The worker's ``PYTHONPATH`` mirrors the coordinator's full ``sys.path``
    (plus the installed package root), so any task function the coordinator
    can import — including ones from scripts or test modules — unpickles in
    the worker too.
    """
    import repro

    env = dict(os.environ)
    package_root = str(Path(repro.__file__).resolve().parent.parent)
    paths = [package_root] + [entry for entry in sys.path if entry]
    existing = env.get("PYTHONPATH", "")
    paths += [entry for entry in existing.split(os.pathsep) if entry]
    seen: dict[str, None] = dict.fromkeys(paths)
    env["PYTHONPATH"] = os.pathsep.join(seen)
    return env


class DistributedExecutor(Executor):
    """TCP coordinator sharding chunks across pull-based worker processes.

    The coordinator binds ``host:port`` (port ``0`` picks an ephemeral one),
    and workers — started as ``repro-dispersal worker --connect HOST:PORT``
    anywhere that can reach the coordinator — pull task chunks and push back
    results over a length-prefixed pickle protocol.  Fault tolerance mirrors
    :class:`ProcessExecutor`: a connection dying mid-chunk requeues that
    chunk (bounded by ``max_retries``) for the surviving workers, and
    because payloads carry their own per-task seeds the re-execution is
    bit-identical.  Task-raised exceptions are reported back by the worker
    and fail the run immediately (they are deterministic).

    Parameters
    ----------
    host, port:
        Coordinator bind address.  The bound address is exposed as
        :attr:`address` while :meth:`run` is active (useful with ``port=0``).
    workers:
        Number of *local* workers to auto-spawn (``spawn`` mode); ``0``
        spawns none and relies on external workers connecting.
    spawn:
        ``"process"`` launches local ``repro-dispersal worker`` subprocesses,
        ``"thread"`` runs in-process worker threads (handy for tests and
        single-machine demos), ``None`` disables auto-spawn.
    max_retries:
        Re-executions allowed per chunk after connection failures.
    wait_timeout:
        Seconds the coordinator tolerates having no connected workers (and
        no results arriving) before failing the run.

    .. warning:: The wire format is pickle, which executes arbitrary code on
       unpickling.  Bind to loopback or a trusted network only.
    """

    name = "distributed"

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        spawn: str | None = "process",
        max_retries: int = 3,
        wait_timeout: float = 60.0,
    ):
        if spawn not in (None, "process", "thread"):
            raise ValueError("spawn must be 'process', 'thread' or None")
        self.host = str(host)
        self.port = int(port)
        self.spawn = spawn
        self.workers = (
            int(workers) if workers is not None else (available_cpus() if spawn else 0)
        )
        if spawn is not None and self.workers < 1:
            raise ValueError("workers must be >= 1 when auto-spawning")
        self.max_retries = int(max_retries)
        self.wait_timeout = float(wait_timeout)
        #: Bound ``(host, port)`` of the live coordinator (``None`` when idle).
        self.address: tuple[str, int] | None = None

    # ------------------------------------------------------------------ run
    def run(
        self, payloads: Sequence[TaskPayload], *, chunk_size: int = 1
    ) -> Iterator[tuple[int, Any]]:
        chunks = _chunked(payloads, chunk_size)
        if not chunks:
            return

        task_queue: Queue = Queue()
        results: Queue = Queue()
        for chunk_id, chunk in enumerate(chunks):
            task_queue.put((chunk_id, chunk, 0))

        done = threading.Event()
        handlers: set[threading.Thread] = set()
        handlers_lock = threading.Lock()

        server = socket.create_server((self.host, self.port))
        server.settimeout(0.1)
        self.address = server.getsockname()[:2]

        def handle(conn: socket.socket) -> None:
            try:
                conn.settimeout(None)
                while not done.is_set():
                    try:
                        item = task_queue.get_nowait()
                    except Empty:
                        time.sleep(0.02)
                        continue
                    chunk_id, chunk, attempt = item
                    try:
                        send_message(conn, ("chunk", chunk_id, chunk))
                        reply = recv_message(conn)
                    except (OSError, EOFError, pickle.PickleError) as error:
                        # The connection (or its worker) died mid-chunk:
                        # requeue with the same payloads — same seeds, so the
                        # retry is bit-identical — unless retries ran out.
                        if attempt + 1 > self.max_retries:
                            results.put(
                                (
                                    "fatal",
                                    chunk_id,
                                    f"chunk {chunk_id} lost its worker "
                                    f"{attempt + 1} times "
                                    f"(max_retries={self.max_retries}): {error}",
                                )
                            )
                        else:
                            task_queue.put((chunk_id, chunk, attempt + 1))
                        return
                    kind = reply[0]
                    if kind == "result":
                        results.put(("ok", reply[1], reply[2]))
                    else:  # ("error", chunk_id, traceback_text)
                        results.put(("task_error", reply[1], reply[2]))
                with contextlib.suppress(OSError):
                    send_message(conn, ("stop",))
            finally:
                conn.close()
                with handlers_lock:
                    handlers.discard(threading.current_thread())

        def accept_loop() -> None:
            while not done.is_set():
                try:
                    conn, _ = server.accept()
                except socket.timeout:
                    continue
                except OSError:
                    return
                thread = threading.Thread(target=handle, args=(conn,), daemon=True)
                with handlers_lock:
                    handlers.add(thread)
                thread.start()

        acceptor = threading.Thread(target=accept_loop, daemon=True)
        acceptor.start()
        spawned = self._spawn_workers()

        completed = 0
        last_progress = time.monotonic()
        try:
            while completed < len(chunks):
                try:
                    status, chunk_id, data = results.get(timeout=0.1)
                except Empty:
                    with handlers_lock:
                        live = len(handlers)
                    if live == 0 and time.monotonic() - last_progress > self.wait_timeout:
                        raise ExecutorError(
                            f"distributed run stalled: no workers connected to "
                            f"{self.address[0]}:{self.address[1]} for "
                            f"{self.wait_timeout:.0f}s with "
                            f"{len(chunks) - completed} chunks outstanding"
                        )
                    continue
                last_progress = time.monotonic()
                if status == "ok":
                    completed += 1
                    yield from data
                elif status == "task_error":
                    raise ExecutorError(
                        f"task in chunk {chunk_id} raised on a worker:\n{data}"
                    )
                else:  # fatal
                    raise ExecutorError(data)
        finally:
            done.set()
            server.close()
            acceptor.join(timeout=2.0)
            with handlers_lock:
                threads = list(handlers)
            for thread in threads:
                thread.join(timeout=2.0)
            for proc in spawned:
                if isinstance(proc, subprocess.Popen):
                    if proc.poll() is None:
                        proc.terminate()
                        with contextlib.suppress(subprocess.TimeoutExpired):
                            proc.wait(timeout=5.0)
                        if proc.poll() is None:  # pragma: no cover - stubborn worker
                            proc.kill()
                elif isinstance(proc, threading.Thread):
                    proc.join(timeout=2.0)
            self.address = None

    def _spawn_workers(self) -> list[Any]:
        if self.spawn is None or self.workers < 1:
            return []
        assert self.address is not None
        if self.spawn == "thread":
            from repro.experiments.worker import run_worker

            threads = []
            for _ in range(self.workers):
                thread = threading.Thread(
                    target=run_worker, args=(self.address,), daemon=True
                )
                thread.start()
                threads.append(thread)
            return threads
        command = _worker_command(self.address)
        env = _worker_env()
        return [
            subprocess.Popen(command, env=env, stdout=subprocess.DEVNULL)
            for _ in range(self.workers)
        ]


# ---------------------------------------------------------------------------
# Strategy registry
# ---------------------------------------------------------------------------

_EXECUTORS: dict[str, Callable[..., Executor]] = {
    "serial": lambda workers=None, **options: SerialExecutor(),
    "process": ProcessExecutor,
    "async": AsyncExecutor,
    "distributed": lambda workers=None, **options: DistributedExecutor(
        workers=workers, **options
    ),
}


def register_executor(name: str, factory: Callable[..., Executor]) -> None:
    """Register (or override) an executor strategy under ``name``.

    The factory is called as ``factory(workers=..., **options)`` by
    :func:`make_executor`.
    """
    _EXECUTORS[str(name)] = factory


def executor_names() -> tuple[str, ...]:
    """Sorted names of the registered execution strategies."""
    return tuple(sorted(_EXECUTORS))


def make_executor(name: str, *, workers: int | None = None, **options: Any) -> Executor:
    """Instantiate a registered execution strategy by name.

    ``workers`` of ``None``/``0`` lets parallel strategies default to
    :func:`repro.utils.envinfo.available_cpus`.
    """
    try:
        factory = _EXECUTORS[name]
    except KeyError:
        available = ", ".join(executor_names())
        raise ValueError(f"unknown executor {name!r}; available: {available}") from None
    return factory(workers=workers or None, **options)
