"""The ``repro-dispersal worker`` loop: pull chunks, push results.

A worker is the remote half of the
:class:`~repro.experiments.executors.DistributedExecutor` protocol.  It
connects to a coordinator (``repro-dispersal worker --connect HOST:PORT``),
then loops: receive a ``("chunk", chunk_id, payloads)`` message, execute the
payloads with the shared :func:`~repro.experiments.executors.execute_chunk`
(same code path as every other strategy, so results are bit-identical), and
send back ``("result", chunk_id, rows)``.  A task that raises is reported as
``("error", chunk_id, traceback_text)`` — the *worker* survives and keeps
pulling; the coordinator decides that deterministic task errors are fatal to
the run.  A ``("stop",)`` message or a closed connection ends the loop.

Workers need nothing but the Python standard library plus this package on
``PYTHONPATH``; there is no external message broker.
"""

from __future__ import annotations

import socket
import traceback

from repro.experiments.executors import execute_chunk, recv_message, send_message

__all__ = ["parse_address", "run_worker"]


def parse_address(address: str) -> tuple[str, int]:
    """Parse a ``HOST:PORT`` string (IPv6 hosts may be bracketed).

    >>> parse_address("127.0.0.1:5000")
    ('127.0.0.1', 5000)
    >>> parse_address("[::1]:5000")
    ('::1', 5000)
    """
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    host = host.strip("[]")
    return host, int(port)


def run_worker(
    address: tuple[str, int] | str, *, connect_timeout: float = 10.0
) -> int:
    """Connect to a coordinator and serve task chunks until told to stop.

    Returns the number of chunks executed (including ones whose task raised).
    """
    if isinstance(address, str):
        address = parse_address(address)
    executed = 0
    with socket.create_connection(address, timeout=connect_timeout) as conn:
        conn.settimeout(None)
        while True:
            try:
                message = recv_message(conn)
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "stop":
                break
            if kind != "chunk":  # pragma: no cover - protocol guard
                raise ValueError(f"unexpected message kind {kind!r}")
            _, chunk_id, chunk = message
            try:
                rows = execute_chunk(chunk)
            except BaseException:
                executed += 1
                send_message(conn, ("error", chunk_id, traceback.format_exc()))
                continue
            executed += 1
            send_message(conn, ("result", chunk_id, rows))
    return executed
