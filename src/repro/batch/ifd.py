"""Batched Ideal Free Distribution solver for arbitrary congestion policies.

The scalar :func:`repro.core.ifd.ideal_free_distribution` runs a nested
bisection per instance: an outer bisection on the equilibrium value ``v`` and
an inner vectorised bisection solving ``f(x) * g(q_x) = v`` over sites.  Here
the same algorithm runs over a whole instance batch at once — the outer
bisection tracks a *vector* of brackets (one per instance) and the inner
bisection solves all sites of all instances simultaneously, so the per-``k``
cost is a few hundred array passes regardless of the batch size.

The bisections are pure Array-API code on the backend resolved through
:mod:`repro.backend`; each ``k`` column of the grid is solved independently
and the columns are stacked at the end (no in-place column scatter), so the
same code path serves NumPy and standard-only namespaces.

The exclusive policy short-circuits to the closed form
:func:`repro.batch.solvers.sigma_star_batch`, exactly like the scalar solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import Backend, from_numpy, resolve_backend, take_along_axis, to_numpy
from repro.batch.padding import PaddedValues
from repro.batch.solvers import SigmaStarBatch, as_k_grid, as_padded, sigma_star_batch
from repro.core.policies import CongestionPolicy
from repro.utils.memo import cached_binomial_pmf_plan
from repro.utils.numerics import binomial_pmf_tensor

__all__ = ["IFDBatch", "ifd_batch"]


@dataclass(frozen=True)
class IFDBatch:
    """The IFD of every ``(instance, k)`` cell of a grid.

    Attributes
    ----------
    probabilities:
        ``(B, K, M_max)`` equilibrium strategies; padding columns are zero.
    values:
        ``(B, K)`` equilibrium payoffs (realised support values).
    support_sizes:
        ``(B, K)`` support sizes.
    converged:
        ``(B, K)`` convergence flags of the nested bisection (always ``True``
        on closed-form cells).
    k_grid, padded:
        Axes of the grid, as in :class:`~repro.batch.solvers.SigmaStarBatch`.

    All array attributes are host NumPy arrays whatever backend solved them.
    """

    probabilities: np.ndarray
    values: np.ndarray
    support_sizes: np.ndarray
    converged: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues


def _congestion_expectation(q, c_table, n_opponents: int, be: Backend):
    """``g(q) = E[C(1 + Binomial(n_opponents, q))]`` for a ``(B, M)`` matrix ``q``.

    ``c_table`` is the backend-resident ``(n_opponents + 1,)`` congestion
    table ``[C(1), ..., C(n+1)]``.

    The PMF combinatorics depend only on ``(n_opponents, B, backend)`` and
    this sits inside both bisection loops, so the staged plan comes from the
    cross-call memo (:mod:`repro.utils.memo`) — bit-identical to the
    plan-free call, a few thousand rebuilds cheaper per solve.
    """
    xp = be.xp
    plan = cached_binomial_pmf_plan(n_opponents, batch_size=q.shape[0], backend=be)
    pmf = binomial_pmf_tensor(n_opponents, xp.clip(q, 0.0, 1.0), backend=be, plan=plan)
    return xp.sum(pmf * c_table[None, None, :], axis=2)


def _ifd_fixed_k(
    F,
    mask,
    k: int,
    c_table_host: np.ndarray,
    be: Backend,
    *,
    tol: float,
    max_outer_iter: int,
    max_inner_iter: int,
):
    """Vectorised nested bisection: all instances of the batch, one ``k``."""
    xp = be.xp
    fdt = be.float_dtype
    g_at_one = float(c_table_host[-1])  # g(1) = C(k)
    c_table = from_numpy(be, c_table_host, dtype=fdt)
    zero = xp.asarray(0.0, dtype=fdt)
    one = xp.asarray(1.0, dtype=fdt)

    def site_probabilities(v):
        """Solve ``f(x) * g(q_x) = v_b`` for every site of every instance."""
        v_col = v[:, None]
        active = mask & (F > v_col)
        saturated = active & (F * g_at_one >= v_col)
        solve = active & ~saturated
        q = xp.where(saturated, one, zero)
        if bool(xp.any(solve)):
            lo = xp.zeros_like(F)
            hi = xp.ones_like(F)
            for _ in range(max_inner_iter):
                mid = 0.5 * (lo + hi)
                residual = F * _congestion_expectation(mid, c_table, k - 1, be) - v_col
                go_right = residual > 0  # g is non-increasing in q
                lo = xp.where(go_right, mid, lo)
                hi = xp.where(go_right, hi, mid)
                if bool(xp.all(hi - lo <= 1e-15)):
                    break
            q = xp.where(solve, 0.5 * (lo + hi), q)
        return q

    # Outer bisection on the per-instance equilibrium value v: the total
    # probability mass is non-increasing in v.
    sizes = xp.sum(xp.astype(mask, be.int_dtype), axis=1)
    last = take_along_axis(be, F, (sizes - 1)[:, None], axis=1)[:, 0]
    hi = xp.asarray(F[:, 0], copy=True)
    # g(1) may be negative (aggressive policies), so bracket from below with
    # both endpoints of f * g(1) as well as zero.
    lo = xp.minimum(xp.minimum(last * g_at_one, F[:, 0] * g_at_one), zero)
    degenerate = lo == hi
    lo = xp.where(degenerate, hi - 1.0, lo)
    for _ in range(max_outer_iter):
        mid = 0.5 * (lo + hi)
        totals = xp.sum(site_probabilities(mid), axis=1)
        grow = totals >= 1.0
        lo = xp.where(grow, mid, lo)
        hi = xp.where(grow, hi, mid)
        if bool(xp.all(hi - lo <= tol * xp.maximum(one, xp.abs(hi)))):
            break

    probabilities = site_probabilities(0.5 * (lo + hi))
    totals = xp.sum(probabilities, axis=1)
    if bool(xp.any(totals <= 0)):
        raise RuntimeError("batched IFD solver failed: zero total probability mass")
    converged = np.isclose(to_numpy(totals), 1.0, atol=1e-6)
    probabilities = probabilities / totals[:, None]
    return probabilities, converged


def ifd_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    tol: float = 1e-12,
    max_outer_iter: int = 120,
    max_inner_iter: int = 80,
    use_closed_form: bool = True,
    closed_form: SigmaStarBatch | None = None,
    backend: Backend | str | None = None,
) -> IFDBatch:
    """Compute the IFD of every ``(instance, k)`` cell for one congestion policy.

    Matches the scalar :func:`repro.core.ifd.ideal_free_distribution`
    elementwise (property-tested to ``~1e-6`` total variation).  The batch
    axis never appears in a Python loop; only the (small) ``k`` grid does,
    because the congestion expectation ``g`` depends on ``k``.

    ``closed_form`` may supply an already-computed
    :func:`~repro.batch.solvers.sigma_star_batch` over the *same* instances
    and ``k`` grid, which the exclusive-policy fast path then reuses instead
    of solving again (:func:`repro.batch.spoa.spoa_batch` does this).
    """
    be = resolve_backend(backend)
    xp = be.xp
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    B, M = padded.batch_size, padded.width
    F = padded.values_for(be)
    mask = padded.mask_for(be)
    F_host = padded.values

    closed_columns = np.array(
        [bool(use_closed_form) and policy.is_exclusive(int(k)) and k > 1 for k in ks]
    )
    star: SigmaStarBatch | None = None
    if np.any(closed_columns):
        if (
            closed_form is not None
            and closed_form.padded is padded
            and np.array_equal(closed_form.k_grid, ks)
        ):
            star = closed_form
            star_columns = {
                int(index): int(index) for index in np.nonzero(closed_columns)[0]
            }
        else:
            star = sigma_star_batch(padded, ks[closed_columns], backend=be)
            star_columns = {
                int(index): position
                for position, index in enumerate(np.nonzero(closed_columns)[0])
            }

    # Per-column results (host NumPy), stacked along the k axis at the end —
    # no in-place column scatter, so the assembly is backend-agnostic.
    prob_columns: list[np.ndarray] = []
    value_columns: list[np.ndarray] = []
    support_columns: list[np.ndarray] = []
    converged_columns: list[np.ndarray] = []

    for k_index, k in enumerate(ks):
        k = int(k)
        if closed_columns[k_index]:
            star_col = star_columns[k_index]
            prob_columns.append(star.probabilities[:, star_col, :])
            value_columns.append(star.equilibrium_values[:, star_col])
            support_columns.append(star.support_sizes[:, star_col])
            converged_columns.append(np.ones(B, dtype=bool))
            continue
        policy.validate(k)
        if k == 1:
            column = np.zeros((B, M))
            column[:, 0] = 1.0
            prob_columns.append(column)
            value_columns.append(F_host[:, 0].copy())
            support_columns.append(np.ones(B, dtype=np.int64))
            converged_columns.append(np.ones(B, dtype=bool))
            continue
        c_table_host = policy.table(k)
        if np.allclose(c_table_host, c_table_host[0], atol=1e-12):
            # No congestion cost: mass spreads over the maximum-value sites.
            top_dev = (xp.abs(F - F[:, :1]) <= 1e-12) & mask
            topf = xp.astype(top_dev, be.float_dtype)
            probs = topf / xp.sum(topf, axis=1, keepdims=True)
            prob_columns.append(to_numpy(probs))
            value_columns.append(F_host[:, 0] * float(c_table_host[0]))
            support_columns.append(to_numpy(xp.sum(xp.astype(top_dev, be.int_dtype), axis=1)).astype(np.int64))
            converged_columns.append(np.ones(B, dtype=bool))
            continue
        probs, ok = _ifd_fixed_k(
            F,
            mask,
            k,
            c_table_host,
            be,
            tol=tol,
            max_outer_iter=max_outer_iter,
            max_inner_iter=max_inner_iter,
        )
        support = probs > 1e-12
        supportf = xp.astype(support, be.float_dtype)
        counts = xp.sum(supportf, axis=1)
        # Realised equilibrium value: mean site value over the support.
        c_table = from_numpy(be, c_table_host, dtype=be.float_dtype)
        nu = F * _congestion_expectation(probs, c_table, k - 1, be)
        masked = xp.where(support, nu, xp.asarray(0.0, dtype=be.float_dtype))
        eq = xp.sum(masked, axis=1) / xp.maximum(counts, xp.asarray(1.0, dtype=be.float_dtype))
        prob_columns.append(to_numpy(probs))
        value_columns.append(to_numpy(eq))
        support_columns.append(to_numpy(xp.sum(xp.astype(support, be.int_dtype), axis=1)).astype(np.int64))
        converged_columns.append(to_numpy(ok).astype(bool))

    return IFDBatch(
        probabilities=np.stack(prob_columns, axis=1),
        values=np.stack(value_columns, axis=1),
        support_sizes=np.stack(support_columns, axis=1).astype(np.int64),
        converged=np.stack(converged_columns, axis=1),
        k_grid=ks,
        padded=padded,
    )
