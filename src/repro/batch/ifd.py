"""Batched Ideal Free Distribution solver for arbitrary congestion policies.

The scalar :func:`repro.core.ifd.ideal_free_distribution` runs a nested
bisection per instance: an outer bisection on the equilibrium value ``v`` and
an inner vectorised bisection solving ``f(x) * g(q_x) = v`` over sites.  Here
the same algorithm runs over a whole instance batch at once — the outer
bisection tracks a *vector* of brackets (one per instance) and the inner
bisection solves all sites of all instances simultaneously, so the per-``k``
cost is a few hundred NumPy passes regardless of the batch size.

The exclusive policy short-circuits to the closed form
:func:`repro.batch.solvers.sigma_star_batch`, exactly like the scalar solver.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.padding import PaddedValues
from repro.batch.solvers import SigmaStarBatch, as_k_grid, as_padded, sigma_star_batch
from repro.core.policies import CongestionPolicy
from repro.utils.numerics import binomial_pmf_matrix

__all__ = ["IFDBatch", "ifd_batch"]


@dataclass(frozen=True)
class IFDBatch:
    """The IFD of every ``(instance, k)`` cell of a grid.

    Attributes
    ----------
    probabilities:
        ``(B, K, M_max)`` equilibrium strategies; padding columns are zero.
    values:
        ``(B, K)`` equilibrium payoffs (realised support values).
    support_sizes:
        ``(B, K)`` support sizes.
    converged:
        ``(B, K)`` convergence flags of the nested bisection (always ``True``
        on closed-form cells).
    k_grid, padded:
        Axes of the grid, as in :class:`~repro.batch.solvers.SigmaStarBatch`.
    """

    probabilities: np.ndarray
    values: np.ndarray
    support_sizes: np.ndarray
    converged: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues


def _congestion_expectation(
    q: np.ndarray, c_table: np.ndarray, n_opponents: int
) -> np.ndarray:
    """``g(q) = E[C(1 + Binomial(n_opponents, q))]`` for an arbitrary-shape ``q``."""
    flat = np.clip(q.ravel(), 0.0, 1.0)
    pmf = binomial_pmf_matrix(n_opponents, flat)
    return (pmf @ c_table).reshape(q.shape)


def _ifd_fixed_k(
    F: np.ndarray,
    mask: np.ndarray,
    k: int,
    policy: CongestionPolicy,
    *,
    tol: float,
    max_outer_iter: int,
    max_inner_iter: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised nested bisection: all instances of the batch, one ``k``."""
    B, M = F.shape
    c_table = policy.table(k)
    g_at_one = float(c_table[-1])  # g(1) = C(k)

    def site_probabilities(v: np.ndarray) -> np.ndarray:
        """Solve ``f(x) * g(q_x) = v_b`` for every site of every instance."""
        v_col = v[:, None]
        active = mask & (F > v_col)
        saturated = active & (F * g_at_one >= v_col)
        solve = active & ~saturated
        q = np.zeros_like(F)
        q[saturated] = 1.0
        if np.any(solve):
            lo = np.zeros_like(F)
            hi = np.ones_like(F)
            for _ in range(max_inner_iter):
                mid = 0.5 * (lo + hi)
                residual = F * _congestion_expectation(mid, c_table, k - 1) - v_col
                go_right = residual > 0  # g is non-increasing in q
                lo = np.where(go_right, mid, lo)
                hi = np.where(go_right, hi, mid)
                if np.all(hi - lo <= 1e-15):
                    break
            q = np.where(solve, 0.5 * (lo + hi), q)
        return q

    # Outer bisection on the per-instance equilibrium value v: the total
    # probability mass is non-increasing in v.
    last = np.take_along_axis(F, (mask.sum(axis=1) - 1)[:, None], axis=1)[:, 0]
    hi = F[:, 0].astype(float).copy()
    # g(1) may be negative (aggressive policies), so bracket from below with
    # both endpoints of f * g(1) as well as zero.
    lo = np.minimum(np.minimum(last * g_at_one, F[:, 0] * g_at_one), 0.0)
    degenerate = lo == hi
    lo[degenerate] = hi[degenerate] - 1.0
    for _ in range(max_outer_iter):
        mid = 0.5 * (lo + hi)
        totals = site_probabilities(mid).sum(axis=1)
        grow = totals >= 1.0
        lo = np.where(grow, mid, lo)
        hi = np.where(grow, hi, mid)
        if np.all(hi - lo <= tol * np.maximum(1.0, np.abs(hi))):
            break

    probabilities = site_probabilities(0.5 * (lo + hi))
    totals = probabilities.sum(axis=1)
    if np.any(totals <= 0):
        raise RuntimeError("batched IFD solver failed: zero total probability mass")
    converged = np.isclose(totals, 1.0, atol=1e-6)
    probabilities /= totals[:, None]
    return probabilities, converged


def ifd_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    tol: float = 1e-12,
    max_outer_iter: int = 120,
    max_inner_iter: int = 80,
    use_closed_form: bool = True,
    closed_form: SigmaStarBatch | None = None,
) -> IFDBatch:
    """Compute the IFD of every ``(instance, k)`` cell for one congestion policy.

    Matches the scalar :func:`repro.core.ifd.ideal_free_distribution`
    elementwise (property-tested to ``~1e-6`` total variation).  The batch
    axis never appears in a Python loop; only the (small) ``k`` grid does,
    because the congestion expectation ``g`` depends on ``k``.

    ``closed_form`` may supply an already-computed
    :func:`~repro.batch.solvers.sigma_star_batch` over the *same* instances
    and ``k`` grid, which the exclusive-policy fast path then reuses instead
    of solving again (:func:`repro.batch.spoa.spoa_batch` does this).
    """
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    B, M, K = padded.batch_size, padded.width, ks.size
    F = padded.values
    mask = padded.mask

    probabilities = np.zeros((B, K, M), dtype=float)
    eq_values = np.zeros((B, K), dtype=float)
    support_sizes = np.zeros((B, K), dtype=np.int64)
    converged = np.ones((B, K), dtype=bool)

    closed_columns = np.array(
        [bool(use_closed_form) and policy.is_exclusive(int(k)) and k > 1 for k in ks]
    )
    if np.any(closed_columns):
        if (
            closed_form is not None
            and closed_form.padded is padded
            and np.array_equal(closed_form.k_grid, ks)
        ):
            star = closed_form
            probabilities[:, closed_columns, :] = star.probabilities[:, closed_columns, :]
            eq_values[:, closed_columns] = star.equilibrium_values[:, closed_columns]
            support_sizes[:, closed_columns] = star.support_sizes[:, closed_columns]
        else:
            star = sigma_star_batch(padded, ks[closed_columns])
            probabilities[:, closed_columns, :] = star.probabilities
            eq_values[:, closed_columns] = star.equilibrium_values
            support_sizes[:, closed_columns] = star.support_sizes

    for k_index, k in enumerate(ks):
        if closed_columns[k_index]:
            continue
        k = int(k)
        policy.validate(k)
        if k == 1:
            probabilities[:, k_index, 0] = 1.0
            eq_values[:, k_index] = F[:, 0]
            support_sizes[:, k_index] = 1
            continue
        c_table = policy.table(k)
        if np.allclose(c_table, c_table[0], atol=1e-12):
            # No congestion cost: mass spreads over the maximum-value sites.
            top = np.isclose(F, F[:, :1], rtol=0.0, atol=1e-12) & mask
            probs = top / top.sum(axis=1, keepdims=True)
            probabilities[:, k_index, :] = probs
            eq_values[:, k_index] = F[:, 0] * float(c_table[0])
            support_sizes[:, k_index] = top.sum(axis=1)
            continue
        probs, ok = _ifd_fixed_k(
            F,
            mask,
            k,
            policy,
            tol=tol,
            max_outer_iter=max_outer_iter,
            max_inner_iter=max_inner_iter,
        )
        probabilities[:, k_index, :] = probs
        converged[:, k_index] = ok
        support = probs > 1e-12
        support_sizes[:, k_index] = support.sum(axis=1)
        # Realised equilibrium value: mean site value over the support.
        nu = F * _congestion_expectation(probs, c_table, k - 1)
        masked = np.where(support, nu, 0.0)
        counts = np.maximum(support.sum(axis=1), 1)
        eq_values[:, k_index] = masked.sum(axis=1) / counts

    return IFDBatch(
        probabilities=probabilities,
        values=eq_values,
        support_sizes=support_sizes,
        converged=converged,
        k_grid=ks,
        padded=padded,
    )
