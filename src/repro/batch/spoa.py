"""Batched symmetric price of anarchy over whole instance grids.

``SPoA(C, f, k) = Cover(p_star) / Cover(IFD)`` per instance; this module
evaluates the ratio for every cell of an ``(instances x k-grid)`` in a few
tensor passes: one :func:`~repro.batch.solvers.sigma_star_batch` call for the
coverage optimum (Theorem 4), one :func:`~repro.batch.ifd.ifd_batch` call for
the equilibria, and one :func:`~repro.batch.solvers.coverage_batch` call each.

This is an orchestration layer: the heavy tensor work happens inside the
sub-kernels on whichever backend is resolved (the ``backend`` keyword is
forwarded), and the final ratio assembly runs on the host results they
return.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import Backend, resolve_backend
from repro.batch.ifd import ifd_batch
from repro.batch.padding import PaddedValues
from repro.batch.solvers import as_k_grid, as_padded, coverage_batch, sigma_star_batch
from repro.core.policies import CongestionPolicy
from repro.core.spoa import SPoAInstance

__all__ = ["SPoABatch", "spoa_batch"]


@dataclass(frozen=True)
class SPoABatch:
    """Per-instance SPoA for every ``(instance, k)`` cell of a grid.

    Attributes
    ----------
    ratios:
        ``(B, K)`` matrix ``Cover(p_star) / Cover(IFD)`` (``inf`` when the
        equilibrium coverage is non-positive).
    optimal_coverages, equilibrium_coverages:
        The two coverages entering each ratio.
    k_grid, padded:
        Axes of the grid.
    """

    ratios: np.ndarray
    optimal_coverages: np.ndarray
    equilibrium_coverages: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues

    def instance(self, index: int, k_index: int) -> SPoAInstance:
        """Hydrate one grid cell into the scalar :class:`SPoAInstance`."""
        return SPoAInstance(
            ratio=float(self.ratios[index, k_index]),
            optimal_coverage=float(self.optimal_coverages[index, k_index]),
            equilibrium_coverage=float(self.equilibrium_coverages[index, k_index]),
            k=int(self.k_grid[k_index]),
            m=int(self.padded.sizes[index]),
        )

    def argmax(self) -> tuple[int, int]:
        """Grid indices ``(instance, k_index)`` of the largest ratio."""
        flat = int(np.argmax(self.ratios))
        return flat // self.ratios.shape[1], flat % self.ratios.shape[1]


def spoa_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    backend: Backend | str | None = None,
    **ifd_kwargs,
) -> SPoABatch:
    """Per-instance SPoA of ``policy`` on every ``(instance, k)`` cell.

    Elementwise equivalent to looping :func:`repro.core.spoa.spoa_instance`
    over the grid; extra keyword arguments are forwarded to
    :func:`~repro.batch.ifd.ifd_batch`, and the ``backend`` choice to every
    sub-kernel.
    """
    be = resolve_backend(backend)
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    star = sigma_star_batch(padded, ks, backend=be)
    optimal = coverage_batch(padded, star.probabilities, ks, backend=be)
    # Reuse the closed-form solve for the equilibria of exclusive columns
    # instead of solving the same grid twice.
    equilibrium = ifd_batch(padded, ks, policy, closed_form=star, backend=be, **ifd_kwargs)
    eq_coverage = coverage_batch(padded, equilibrium.probabilities, ks, backend=be)
    positive = eq_coverage > 0
    ratios = np.where(positive, optimal / np.where(positive, eq_coverage, 1.0), np.inf)
    return SPoABatch(
        ratios=ratios,
        optimal_coverages=optimal,
        equilibrium_coverages=eq_coverage,
        k_grid=ks,
        padded=padded,
    )
