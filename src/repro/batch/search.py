"""Batched Bayesian search: closed forms and whole-search simulation per batch.

The scalar :mod:`repro.search.simulator` evaluates one ``(prior, strategy,
k)`` triple per call; sweeping the Korman-Rodeh "treasure in M boxes"
connection over experiment grids therefore re-enters Python per cell.  The
kernels here evaluate whole ``(B,)`` batches of search problems at once:

* :func:`success_probability_batch` — the single-round success probability
  ``sum_x q(x) (1 - (1 - p(x))**k)`` as one ``(B,)`` tensor pass (pure
  Array-API on the active backend);
* :func:`expected_discovery_time_batch` — the geometric-rounds closed form
  ``sum_x q(x) / (1 - (1 - p(x))**k)``, with rows in which some possible box
  is never searched **where-masked to ``inf``** instead of tripping
  divide-by-zero warnings;
* :func:`simulate_search_batch` — a Monte-Carlo simulator of complete
  searches for all ``(B, n_trials)`` cells.  The default ``"geometric"``
  method inverts the conditional geometric law in one pass (the scalar
  simulator's approach, vectorised over the batch); the ``"lockstep"``
  method plays every round explicitly — all still-active searches across all
  rows step together, found searches are masked out per row, and the loop
  exits early once every treasure is found (mirroring the
  :class:`~repro.batch.dynamics.DynamicsEngine` convergence masking).

Priors and strategies ride on zero-padded ``(B, M_max)`` matrices (ragged
box counts allowed); padding columns carry zero prior mass and zero search
probability, so they can never hold or hide a treasure.  Randomness comes
from the host generator under the seed policy of :mod:`repro.utils.rng`;
public results are host NumPy arrays.

Every kernel agrees with its scalar counterpart (the scalar entry points of
:mod:`repro.search.simulator` are thin ``B = 1`` wrappers; property-tested
in ``tests/test_batch_search.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backend import (
    Backend,
    ensure_numpy,
    expected_transfer,
    from_numpy,
    resolve_backend,
    to_numpy,
)
from repro.utils.rng import as_generator
from repro.utils.sampling import STACK_SPACING, stacked_flat_cdfs
from repro.utils.validation import check_positive_integer

__all__ = [
    "SearchSimulationBatch",
    "as_prior_batch",
    "as_search_strategy_batch",
    "expected_discovery_time_batch",
    "simulate_search_batch",
    "success_probability_batch",
]

# --------------------------------------------------------------------------
# staging helpers
# --------------------------------------------------------------------------


def as_prior_batch(priors: np.ndarray | Sequence[Any]) -> np.ndarray:
    """Validate a batch of box priors into a host ``(B, M_max)`` matrix.

    Parameters
    ----------
    priors:
        A ``(B, M_max)`` probability matrix, or a length-``B`` sequence of
        :class:`~repro.search.boxes.BayesianSearchProblem` objects / 1-D
        prior vectors (ragged box counts allowed).  Rows are normalised but
        **not** re-sorted — strategies must follow the same box order the
        caller used (problem objects come pre-sorted).

    Returns
    -------
    numpy.ndarray
        Host ``(B, M_max)`` float matrix; short rows are zero-padded (a
        padding box can never hold the treasure) and every row sums to one.
    """
    if isinstance(priors, np.ndarray) or hasattr(priors, "__array_namespace__"):
        matrix = np.asarray(ensure_numpy(priors), dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ValueError("priors must form a non-empty (B, M) matrix")
    else:
        rows = [
            np.asarray(
                ensure_numpy(getattr(row, "prior", row)), dtype=float
            ).ravel()
            for row in priors
        ]
        if not rows:
            raise ValueError("cannot pack an empty batch of priors")
        width = max(row.size for row in rows)
        matrix = np.zeros((len(rows), width))
        for index, row in enumerate(rows):
            matrix[index, : row.size] = row
    if np.any(matrix < 0) or not np.all(np.isfinite(matrix)):
        raise ValueError("priors must be finite and non-negative")
    sums = matrix.sum(axis=1)
    if np.any(sums <= 0):
        raise ValueError("every prior row must have positive mass")
    return matrix / sums[:, None]


def as_search_strategy_batch(
    strategies: np.ndarray | Sequence[Any], priors: np.ndarray
) -> np.ndarray:
    """Validate per-row round strategies against a packed prior batch.

    Accepts a ``(B, M_max)`` matrix or a length-``B`` sequence of
    :class:`~repro.core.strategy.Strategy` objects / 1-D vectors; ragged
    rows are zero-padded to the priors' width.  Every row must be a
    distribution over its problem's boxes (same order as the prior row).
    """
    b, m = priors.shape
    if isinstance(strategies, np.ndarray) or hasattr(strategies, "__array_namespace__"):
        matrix = np.asarray(ensure_numpy(strategies), dtype=float)
        if matrix.shape != (b, m):
            raise ValueError(
                f"strategies must form a ({b}, {m}) matrix over the problems' "
                f"boxes, got {matrix.shape}"
            )
    else:
        rows = [np.asarray(ensure_numpy(row), dtype=float).ravel() for row in strategies]
        if len(rows) != b:
            raise ValueError(f"expected {b} strategies, got {len(rows)}")
        matrix = np.zeros((b, m))
        for index, row in enumerate(rows):
            if row.size > m:
                raise ValueError(
                    f"strategy {index} covers {row.size} boxes; problem has {m}"
                )
            matrix[index, : row.size] = row
    if np.any(matrix < 0):
        raise ValueError("strategy probabilities must be non-negative")
    sums = matrix.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        bad = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"every strategy row must sum to one; row {bad} sums to {sums[bad]!r}"
        )
    return matrix


def _as_searcher_counts(k: Sequence[int] | np.ndarray | int, batch_size: int) -> np.ndarray:
    """Validate a scalar or per-row searcher-count roster (clear ``k <= 0`` error)."""
    ks = np.atleast_1d(np.asarray(ensure_numpy(k)))
    if ks.ndim != 1 or ks.size == 0:
        raise ValueError("k must be a positive integer or a (B,) roster of them")
    if not np.issubdtype(ks.dtype, np.integer):
        rounded = np.rint(np.asarray(ks, dtype=float)).astype(np.int64)
        if not np.allclose(ks, rounded):
            raise ValueError(f"searcher counts k must be integers, got {ks!r}")
        ks = rounded
    ks = ks.astype(np.int64)
    if np.any(ks < 1):
        raise ValueError(
            f"searcher counts k must be >= 1 (a search needs at least one "
            f"searcher); got {int(ks.min())}"
        )
    if ks.size == 1:
        return np.full(batch_size, int(ks[0]), dtype=np.int64)
    if ks.size != batch_size:
        raise ValueError(
            f"per-row k roster has {ks.size} entries for a batch of {batch_size}"
        )
    return ks


# --------------------------------------------------------------------------
# closed forms
# --------------------------------------------------------------------------


def success_probability_batch(
    priors: np.ndarray | Sequence[Any],
    strategies: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Single-round success probability of every search of a batch.

    The batch counterpart of
    :func:`repro.search.simulator.single_round_success_probability`:
    ``sum_x q_b(x) * (1 - (1 - p_b(x))**k_b)`` computed as one ``(B, M)``
    tensor pass (this is exactly the coverage of ``p_b`` with the prior as
    value function).

    Returns
    -------
    numpy.ndarray
        Host ``(B,)`` vector of probabilities.
    """
    be = resolve_backend(backend)
    xp = be.xp
    q_host = as_prior_batch(priors)
    p_host = as_search_strategy_batch(strategies, q_host)
    ks = _as_searcher_counts(k, q_host.shape[0])
    with expected_transfer():  # input staging
        q = from_numpy(be, q_host, dtype=be.float_dtype)
        p = from_numpy(be, p_host, dtype=be.float_dtype)
        kcol = from_numpy(be, ks.astype(float), dtype=be.float_dtype)[:, None]
    hit = 1.0 - (1.0 - p) ** kcol
    total = xp.sum(q * hit, axis=1)
    with expected_transfer():  # result materialisation
        return to_numpy(total)


def expected_discovery_time_batch(
    priors: np.ndarray | Sequence[Any],
    strategies: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Expected rounds until discovery for every search of a batch.

    The batch counterpart of
    :func:`repro.search.simulator.expected_discovery_time`.  Conditionally on
    the treasure's box the round count is geometric, so the expectation is
    ``sum_x q_b(x) / (1 - (1 - p_b(x))**k_b)``.  Rows in which some box with
    positive prior mass is never searched are **where-masked** to ``inf`` —
    the division never touches the zero per-round probabilities, so no
    overflow or invalid-value warnings are emitted on any backend.

    Returns
    -------
    numpy.ndarray
        Host ``(B,)`` vector; ``inf`` rows mark searches that may never end.
    """
    be = resolve_backend(backend)
    xp = be.xp
    q_host = as_prior_batch(priors)
    p_host = as_search_strategy_batch(strategies, q_host)
    ks = _as_searcher_counts(k, q_host.shape[0])
    with expected_transfer():  # input staging
        q = from_numpy(be, q_host, dtype=be.float_dtype)
        p = from_numpy(be, p_host, dtype=be.float_dtype)
        kcol = from_numpy(be, ks.astype(float), dtype=be.float_dtype)[:, None]
        one = from_numpy(be, np.asarray(1.0), dtype=be.float_dtype)
        zero = from_numpy(be, np.asarray(0.0), dtype=be.float_dtype)
        inf = from_numpy(be, np.asarray(np.inf), dtype=be.float_dtype)
    per_round = 1.0 - (1.0 - p) ** kcol
    possible = q > 0
    findable = per_round > 0
    never_found = xp.any(possible & ~findable, axis=1)
    safe = xp.where(findable, per_round, one)
    total = xp.sum(xp.where(possible & findable, q / safe, zero), axis=1)
    result = xp.where(never_found, inf, total)
    with expected_transfer():  # result materialisation
        return to_numpy(result)


# --------------------------------------------------------------------------
# whole-search simulation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SearchSimulationBatch:
    """Empirical summary of simulated searches, one row per problem.

    ``rounds[b, t] == max_rounds + 1`` marks a **censored** trial (the
    treasure was not found within ``max_rounds`` rounds); all success and
    round statistics condition on the uncensored trials, so
    ``mean_rounds_when_found`` under-estimates the true expected discovery
    time whenever ``success_rates[b] < 1``.  All attributes are host NumPy
    arrays.

    Attributes
    ----------
    n_trials, max_rounds, method:
        Simulation parameters (``method`` is ``"geometric"`` or
        ``"lockstep"``).
    k:
        ``(B,)`` ``int64`` searcher counts.
    success_rates:
        ``(B,)`` fraction of trials in which the treasure was found.
    mean_rounds_when_found:
        ``(B,)`` mean discovery round over the found trials (``nan`` rows
        where nothing was found).
    round_one_success_rates:
        ``(B,)`` fraction of trials decided in the first round.
    censored_counts:
        ``(B,)`` ``int64`` number of censored trials per row
        (``n_trials - n_trials * success_rates``, exactly) — nonzero rows
        mark conditional statistics that must not be compared against
        unconditional closed forms.
    rounds:
        ``(B, n_trials)`` ``int64`` per-trial discovery rounds
        (``max_rounds + 1`` = censored).
    """

    n_trials: int
    max_rounds: int
    method: str
    k: np.ndarray
    success_rates: np.ndarray
    mean_rounds_when_found: np.ndarray
    round_one_success_rates: np.ndarray
    censored_counts: np.ndarray
    rounds: np.ndarray


def simulate_search_batch(
    priors: np.ndarray | Sequence[Any],
    strategies: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    n_trials: int,
    *,
    max_rounds: int = 200,
    rng: np.random.Generator | int | None = None,
    method: str = "geometric",
    backend: Backend | str | None = None,
) -> SearchSimulationBatch:
    """Simulate complete searches for every problem of a batch at once.

    Each trial hides a treasure according to its row's prior, then plays
    rounds in which ``k_b`` searchers independently sample boxes from the
    row's strategy until the treasure is found or ``max_rounds`` is
    exhausted.

    Parameters
    ----------
    priors, strategies, k:
        The packed search batch (see :func:`as_prior_batch`,
        :func:`as_search_strategy_batch`, and the ``k <= 0`` roster
        validation of the closed-form kernels).
    n_trials:
        Independent searches per row.
    max_rounds:
        Censoring horizon; unfinished searches report ``max_rounds + 1``.
    rng:
        Seed or host generator.
    method:
        ``"geometric"`` (default) inverts the conditional geometric round
        law in one vectorised pass — statistically identical to playing
        every round, at a per-trial (not per-round) cost; the scalar
        :func:`repro.search.simulator.simulate_search` wraps this path.
        ``"lockstep"`` plays every round explicitly: all still-active
        ``(B, n_trials)`` searches draw their ``k_b`` box choices together,
        found searches are masked out of the next round per row, and the
        loop exits as soon as every search has ended (rows whose strategy
        cannot reach the treasure keep their trials active until
        ``max_rounds``).
    backend:
        Array backend for the geometric path's inverse-CDF ``searchsorted``
        passes.  The lockstep stepper is host-side by design (its active-set
        masking is fancy-indexing-shaped); results never depend on the
        choice.

    Returns
    -------
    SearchSimulationBatch
        The two methods draw different streams from ``rng`` but agree in
        distribution (property-tested against each other and the closed
        forms).
    """
    n_trials = check_positive_integer(n_trials, "n_trials")
    max_rounds = check_positive_integer(max_rounds, "max_rounds")
    if method not in ("geometric", "lockstep"):
        raise ValueError(f"method must be 'geometric' or 'lockstep', got {method!r}")
    be = resolve_backend(backend)
    generator = as_generator(rng)
    q = as_prior_batch(priors)
    p = as_search_strategy_batch(strategies, q)
    b, m = q.shape
    ks = _as_searcher_counts(k, b)

    # Hide the treasures: one stacked inverse-CDF pass over the B priors.
    # The geometric path runs that pass (and everything after it) on the
    # active backend's device; the lockstep stepper is host-by-design.
    flat_prior = stacked_flat_cdfs(q)
    offsets = np.arange(b, dtype=np.int64)
    u_hide = generator.random((b, n_trials))

    if method == "geometric":
        rounds = _geometric_rounds(p, ks, flat_prior, u_hide, max_rounds, generator, be)
    else:
        positions = np.searchsorted(
            flat_prior, u_hide + STACK_SPACING * offsets[:, None], side="right"
        )
        treasure = np.minimum(positions - (offsets * m)[:, None], m - 1)
        rounds = _lockstep_rounds(p, ks, treasure, max_rounds, generator)

    found = rounds <= max_rounds
    counts = found.sum(axis=1)
    sums = (rounds * found).sum(axis=1)
    mean_rounds = np.where(counts > 0, sums / np.maximum(counts, 1), np.nan)
    return SearchSimulationBatch(
        n_trials=n_trials,
        max_rounds=max_rounds,
        method=method,
        k=ks,
        success_rates=found.mean(axis=1),
        mean_rounds_when_found=mean_rounds,
        round_one_success_rates=(rounds == 1).mean(axis=1),
        censored_counts=(n_trials - counts).astype(np.int64),
        rounds=rounds.astype(np.int64),
    )


def _geometric_rounds(
    p: np.ndarray,
    ks: np.ndarray,
    flat_prior: np.ndarray,
    u_hide: np.ndarray,
    max_rounds: int,
    generator: np.random.Generator,
    be: Backend,
) -> np.ndarray:
    """Invert the conditional geometric round law for all ``(B, n_trials)`` cells.

    Device-resident end-to-end: the treasure-hiding ``searchsorted``, the
    per-treasure strategy gather and the geometric inversion all run on the
    backend; the one upload (staging + both host uniform blocks) and the one
    download (the finished round matrix) are the documented boundaries.
    """
    xp = be.xp
    fdt, idt = be.float_dtype, be.int_dtype
    b, n_trials = u_hide.shape
    m = p.shape[1]
    offsets = np.arange(b, dtype=np.int64)
    u = generator.random((b, n_trials))
    with expected_transfer():  # staging + per-call draw placement
        hide_dev = from_numpy(
            be, u_hide + STACK_SPACING * offsets[:, None], dtype=fdt
        )
        flat_prior_dev = from_numpy(be, flat_prior, dtype=fdt)
        p_flat_dev = from_numpy(be, p.reshape(-1), dtype=fdt)
        k_col_dev = from_numpy(be, ks.astype(float)[:, None], dtype=fdt)
        row_off_dev = from_numpy(be, (offsets * m)[:, None], dtype=idt)
        limit_dev = from_numpy(be, np.asarray(m - 1, dtype=np.int64), dtype=idt)
        u_dev = from_numpy(be, u, dtype=fdt)
        half = from_numpy(be, np.asarray(0.5), dtype=fdt)
        one = from_numpy(be, np.asarray(1.0), dtype=fdt)
        inf = from_numpy(be, np.asarray(np.inf), dtype=fdt)
        censored = from_numpy(be, np.asarray(float(max_rounds + 1)), dtype=fdt)
    positions = xp.searchsorted(flat_prior_dev, xp.reshape(hide_dev, (-1,)), side="right")
    treasure = xp.minimum(xp.reshape(positions, (b, n_trials)) - row_off_dev, limit_dev)
    p_at_treasure = xp.reshape(
        xp.take(p_flat_dev, xp.reshape(treasure + row_off_dev, (-1,))), (b, n_trials)
    )
    per_round = 1.0 - (1.0 - p_at_treasure) ** k_col_dev
    # Inverse-CDF sampling of the geometric distribution, where-masked so the
    # log of the unfindable cells (per-round probability 0) is never taken.
    findable = per_round > 0
    clipped = xp.clip(xp.where(findable, per_round, half), 1e-300, 1.0 - 1e-16)
    drawn = xp.ceil(xp.log1p(-u_dev) / xp.log1p(-clipped))
    rounds = xp.where(findable, xp.maximum(drawn, one), inf)
    rounds = xp.where(rounds > float(max_rounds), censored, rounds)
    with expected_transfer():  # result materialisation
        return np.asarray(to_numpy(rounds)).astype(np.int64)


def _lockstep_rounds(
    p: np.ndarray,
    ks: np.ndarray,
    treasure: np.ndarray,
    max_rounds: int,
    generator: np.random.Generator,
) -> np.ndarray:
    """Play every round explicitly with per-search masking and early exit."""
    b, n_trials = treasure.shape
    m = p.shape[1]
    k_max = int(ks.max())
    flat_strategy = stacked_flat_cdfs(p)
    searcher_mask = np.arange(k_max)[None, :] < ks[:, None]  # (B, k_max)

    rounds = np.full((b, n_trials), max_rounds + 1, dtype=np.int64)
    active = np.ones(b * n_trials, dtype=bool)
    row_of = np.repeat(np.arange(b, dtype=np.int64), n_trials)
    treasure_flat = treasure.ravel()
    rounds_flat = rounds.ravel()

    for round_index in range(1, max_rounds + 1):
        index = np.nonzero(active)[0]
        if index.size == 0:
            break  # every search has ended: early exit
        rows = row_of[index]
        u = generator.random((index.size, k_max))
        positions = np.searchsorted(
            flat_strategy,
            (u + STACK_SPACING * rows[:, None]).ravel(),
            side="right",
        ).reshape(index.size, k_max)
        choices = np.minimum(positions - (rows * m)[:, None], m - 1)
        hit = (choices == treasure_flat[index][:, None]) & searcher_mask[rows]
        found = hit.any(axis=1)
        rounds_flat[index[found]] = round_index
        active[index[found]] = False
    return rounds_flat.reshape(b, n_trials)
