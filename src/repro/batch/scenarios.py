"""Batched kernels for the Section-5 scenario extensions and mechanism sweeps.

The scalar scenario code of :mod:`repro.extensions` (travel costs, two-group
competition, repeated dispersal) and :mod:`repro.mechanism.policy_design`
(Theorems 4-6 policy sweeps) evaluates one instance per call; experiment
grids re-enter it per cell and are dominated by Python-loop overhead.  This
module evaluates the same models for whole instance batches at once:

* :func:`cost_adjusted_ifd_batch` — the nested-bisection equilibrium of the
  travel-cost game for ``B`` instances with per-row cost vectors and per-row
  player counts (the batch counterpart of
  :func:`repro.extensions.travel_costs.cost_adjusted_ifd`);
* :func:`two_group_competition_batch` — both waves of the sequential
  two-group competition vectorised over a ``(B,)`` roster of policy pairs,
  reusing :func:`~repro.batch.ifd.ifd_batch` for the equilibria of each wave;
* :func:`repeated_dispersal_batch` — a ``T``-step depletion loop over
  ``(B, M)`` expected-value tensors under the constant and adaptive
  ``sigma_star`` schedules, with the per-round visit probabilities taken from
  :func:`~repro.utils.numerics.binomial_pmf_tensor`;
* :func:`compare_policies_batch` / :func:`best_two_level_batch` — the
  mechanism-design sweeps of a congestion-policy roster, re-exported from
  their new home :mod:`repro.batch.mechanism` (they grew a batched
  reward-design counterpart and moved in with it).

Conventions match the rest of :mod:`repro.batch`: instance batches ride on a
host-canonical :class:`~repro.batch.padding.PaddedValues` (rows sorted
non-increasing, padding masked out of every result), kernel bodies are pure
Array-API code on the backend resolved through :mod:`repro.backend`, and
public results come back as host NumPy arrays.  Because padded rows are
sorted, **per-site inputs (costs) align with the sorted site order** — cost
``costs[b, j]`` belongs to the ``j``-th most valuable site of row ``b``.

Every kernel agrees elementwise with its scalar counterpart (property-tested
in ``tests/test_batch_scenarios.py``, including under ``array_api_strict``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import (
    Backend,
    ensure_numpy,
    from_numpy,
    resolve_backend,
    to_numpy,
)
from repro.batch.ifd import ifd_batch
from repro.batch.padding import PaddedValues, sorted_padded, unsort_rows
from repro.batch.payoffs import as_k_vector, congestion_table_batch
from repro.batch.solvers import as_padded, sigma_star_batch
from repro.core.policies import CongestionPolicy
from repro.utils.memo import cached_binomial_pmf_plan
from repro.utils.numerics import binomial_pmf_tensor
from repro.utils.validation import check_positive_integer

__all__ = [
    "CostAdjustedIFDBatch",
    "as_costs_batch",
    "cost_adjusted_site_values_batch",
    "cost_adjusted_ifd_batch",
    "TwoGroupCompetitionBatch",
    "two_group_competition_batch",
    "RepeatedDispersalBatch",
    "repeated_dispersal_batch",
    "PolicyComparisonBatch",
    "compare_policies_batch",
    "BestTwoLevelBatch",
    "best_two_level_batch",
]


# --------------------------------------------------------------------------
# shared staging helpers
# --------------------------------------------------------------------------


def _solve_columns(ks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Distinct player counts to solve as one grid, plus each row's column."""
    unique_ks = np.unique(ks)
    return unique_ks, np.searchsorted(unique_ks, ks)


# --------------------------------------------------------------------------
# travel costs
# --------------------------------------------------------------------------


def as_costs_batch(
    costs: np.ndarray | Sequence | float, padded: PaddedValues
) -> np.ndarray:
    """Validate visiting costs into a host ``(B, M_max)`` float matrix.

    Parameters
    ----------
    costs:
        A scalar (every site of every row), an ``(M_max,)`` vector (shared by
        every row) or a full ``(B, M_max)`` matrix.  Entries must be finite
        and non-negative on real (non-padding) sites; padding columns are
        forced to zero so they can never enter a support.
    padded:
        The instance batch the costs ride on.  Padded rows are sorted
        non-increasing, so per-site costs must follow the same order.

    Returns
    -------
    numpy.ndarray
        Host ``(B, M_max)`` cost matrix with zeroed padding columns.
    """
    arr = np.asarray(ensure_numpy(costs), dtype=float)
    b, m = padded.batch_size, padded.width
    if arr.ndim == 0:
        arr = np.full((b, m), float(arr))
    elif arr.ndim == 1:
        if arr.shape != (m,):
            raise ValueError(f"per-site costs must have length {m}, got {arr.shape[0]}")
        arr = np.broadcast_to(arr, (b, m)).copy()
    elif arr.shape != (b, m):
        raise ValueError(
            f"costs must be scalar, ({m},) or ({b}, {m}); got {arr.shape}"
        )
    else:
        arr = arr.copy()
    real = arr[padded.mask]
    if np.any(real < 0) or not np.all(np.isfinite(real)):
        raise ValueError("costs must be finite and non-negative")
    arr[~padded.mask] = 0.0
    return arr


@dataclass(frozen=True)
class CostAdjustedIFDBatch:
    """The cost-adjusted equilibrium of every instance of a batch.

    Attributes
    ----------
    probabilities:
        ``(B, M_max)`` equilibrium strategies; padding columns are zero.
    values:
        ``(B,)`` common net payoffs on the support (may be negative when
        every site is expensive).
    support_sizes:
        ``(B,)`` number of sites visited with positive probability.
    converged:
        ``(B,)`` convergence flags of the outer bisection (always ``True``
        on closed-form rows).
    k:
        ``(B,)`` per-row player counts.
    costs:
        The validated host ``(B, M_max)`` cost matrix the solve used.
    padded:
        The instance batch of the ``B`` axis.

    All array attributes are host NumPy arrays whatever backend solved them.
    """

    probabilities: np.ndarray
    values: np.ndarray
    support_sizes: np.ndarray
    converged: np.ndarray
    k: np.ndarray
    costs: np.ndarray
    padded: PaddedValues


def _per_row_congestion(q, tables, ks: np.ndarray, be: Backend):
    """``g_b(q) = E[C(1 + Binomial(k_b - 1, q))]`` for a ``(B, M)`` matrix ``q``.

    ``tables`` is the backend-resident ``(B, k_max)`` matrix of per-row
    congestion tables ``[C(1), ..., C(k_b)]`` zero-padded on the right, so the
    zero-padded PMF tensor contracts against it for any mix of per-row ``k``.
    """
    xp = be.xp
    plan = cached_binomial_pmf_plan(ks - 1, backend=be)
    pmf = binomial_pmf_tensor(ks - 1, xp.clip(q, 0.0, 1.0), backend=be, plan=plan)
    return xp.sum(pmf * tables[:, None, :], axis=2)


def cost_adjusted_site_values_batch(
    values: PaddedValues | Sequence | np.ndarray,
    costs: np.ndarray | Sequence | float,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Batched net site values ``nu_p(x) = f(x) * g(p(x)) - d(x)``.

    The batch counterpart of
    :func:`repro.extensions.travel_costs.cost_adjusted_site_values`: one
    ``(B, M_max)`` pass for the whole batch, with per-row player counts.
    Padding columns come back exactly zero.

    Returns
    -------
    numpy.ndarray
        Host ``(B, M_max)`` matrix of net values.
    """
    be = resolve_backend(backend)
    xp = be.xp
    padded = as_padded(values)
    ks = as_k_vector(k, padded.batch_size)
    d_host = as_costs_batch(costs, padded)
    p = from_numpy(be, np.asarray(ensure_numpy(strategies), dtype=float), dtype=be.float_dtype)
    if tuple(p.shape) != padded.values.shape:
        raise ValueError(
            f"strategies shape {tuple(p.shape)} must match the padded batch "
            f"{padded.values.shape}"
        )
    tables = from_numpy(be, congestion_table_batch(policy, ks - 1), dtype=be.float_dtype)
    d = from_numpy(be, d_host, dtype=be.float_dtype)
    nu = padded.values_for(be) * _per_row_congestion(p, tables, ks, be) - d
    return to_numpy(nu * padded.fmask_for(be))


def cost_adjusted_ifd_batch(
    values: PaddedValues | Sequence | np.ndarray,
    costs: np.ndarray | Sequence | float,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    tol: float = 1e-12,
    max_outer_iter: int = 200,
    max_inner_iter: int = 80,
    backend: Backend | str | None = None,
) -> CostAdjustedIFDBatch:
    """Cost-adjusted symmetric equilibrium for a whole instance batch.

    Runs the same nested bisection as the scalar
    :func:`repro.extensions.travel_costs.cost_adjusted_ifd` — an outer
    bisection on the per-row equilibrium value ``v`` and an inner, fully
    vectorised bisection solving ``f(x) * g(q_x) - d(x) = v`` over all sites
    of all instances at once.  Because the net payoff ``f - d`` is not
    monotone in the site index, the support search is where-masked rather
    than prefix-based.

    Parameters
    ----------
    values:
        Instance batch (ragged ``M`` allowed; see
        :func:`~repro.batch.solvers.as_padded`).
    costs:
        Visiting costs: scalar, ``(M_max,)`` or per-row ``(B, M_max)``,
        aligned with the **sorted** site order of the padded rows (see
        :func:`as_costs_batch`).
    k:
        Player count — scalar or per-row ``(B,)`` vector; one batch can mix
        instances of different ``k``.
    policy:
        Congestion policy shared by every row.
    tol, max_outer_iter, max_inner_iter:
        Bisection controls, defaults matching the scalar solver.
    backend:
        Array backend to compute on (``None`` = active backend).

    Returns
    -------
    CostAdjustedIFDBatch
        Elementwise equal (to solver tolerance, property-tested at ``1e-6``)
        to looping the scalar ``cost_adjusted_ifd`` over the rows.  Rows with
        ``k_b = 1`` (point mass on ``argmax(f - d)``) and rows whose
        congestion table restricted to ``{1..k_b}`` is constant (mass spread
        over the argmax set of ``f - d``) are resolved in closed form,
        exactly like the scalar solver.
    """
    be = resolve_backend(backend)
    xp = be.xp
    fdt = be.float_dtype
    padded = as_padded(values)
    b, m = padded.batch_size, padded.width
    ks = as_k_vector(k, padded.batch_size)
    k_max = int(ks.max())
    policy.validate(k_max)
    d_host = as_costs_batch(costs, padded)

    # Host staging: per-row tables [C(1)..C(k_b)] (zero-padded), g(1) = C(k_b),
    # and the closed-form row classes.
    tables_host = congestion_table_batch(policy, ks - 1)  # (B, k_max)
    full_table = policy.table(k_max)
    g_at_one_host = full_table[ks - 1]  # C(k_b) per row
    solo_host = ks == 1
    width_mask = np.arange(k_max)[None, :] < ks[:, None]
    # Mirror the scalar's np.allclose(c_table, c_table[0], atol=1e-12), whose
    # default rtol=1e-5 also forgives near-constant tables.
    flat_tol = 1e-12 + 1e-05 * np.abs(tables_host[:, :1])
    flat_host = (
        np.all(
            np.where(width_mask, np.abs(tables_host - tables_host[:, :1]) - flat_tol, 0.0) <= 0.0,
            axis=1,
        )
        & ~solo_host
    )
    bisect_host = ~solo_host & ~flat_host

    F = padded.values_for(be)
    mask = padded.mask_for(be)
    fmask = padded.fmask_for(be)
    D = from_numpy(be, d_host, dtype=fdt)
    tables = from_numpy(be, tables_host, dtype=fdt)
    g1 = from_numpy(be, g_at_one_host, dtype=fdt)
    zero = xp.asarray(0.0, dtype=fdt)
    one = xp.asarray(1.0, dtype=fdt)
    neg_inf = xp.asarray(-xp.inf, dtype=fdt)
    pos_inf = xp.asarray(xp.inf, dtype=fdt)

    net_solo = F - D
    net_solo_masked = xp.where(mask, net_solo, neg_inf)
    saturated_net = F * g1[:, None] - D  # payoff of a site visited by everyone

    def site_probabilities(v):
        """Solve ``f(x) * g(q_x) - d(x) = v_b`` for every site of every row."""
        v_col = v[:, None]
        active = mask & (net_solo > v_col)
        saturated = active & (saturated_net >= v_col)
        solve = active & ~saturated
        q = xp.where(saturated, one, zero)
        if bool(xp.any(solve)):
            lo_q = xp.zeros_like(F)
            hi_q = xp.ones_like(F)
            for _ in range(max_inner_iter):
                mid = 0.5 * (lo_q + hi_q)
                residual = F * _per_row_congestion(mid, tables, ks, be) - D - v_col
                go_right = residual > 0  # g is non-increasing in q
                lo_q = xp.where(go_right, mid, lo_q)
                hi_q = xp.where(go_right, hi_q, mid)
                if bool(xp.all(hi_q - lo_q <= 1e-15)):
                    break
            q = xp.where(solve, 0.5 * (lo_q + hi_q), q)
        return q

    # Outer bisection on the per-row equilibrium value v (total probability
    # mass is non-increasing in v).  Closed-form rows get a degenerate bracket
    # so they never hold the convergence check hostage.
    v_high = xp.max(net_solo_masked, axis=1)
    floor_term = xp.min(xp.where(mask, saturated_net, pos_inf), axis=1)
    lo = xp.minimum(xp.minimum(floor_term, zero), v_high - 1.0)
    bisect = from_numpy(be, bisect_host)
    hi = xp.asarray(v_high, copy=True)
    lo = xp.where(bisect, lo, hi)
    for _ in range(max_outer_iter):
        mid = 0.5 * (lo + hi)
        totals = xp.sum(site_probabilities(mid), axis=1)
        grow = totals >= 1.0
        lo = xp.where(grow, mid, lo)
        hi = xp.where(grow, hi, mid)
        if bool(xp.all(hi - lo <= tol * xp.maximum(one, xp.abs(hi)))):
            break

    probabilities = site_probabilities(0.5 * (lo + hi))

    # Closed-form merges, mirroring the scalar branches exactly.
    positions = xp.arange(m, dtype=be.int_dtype)
    solo = from_numpy(be, solo_host)
    flat = from_numpy(be, flat_host)
    best_index = xp.argmax(net_solo_masked, axis=1)
    onehot = xp.astype(positions[None, :] == best_index[:, None], fdt)
    # The scalar uses np.isclose(net_solo, max, atol=1e-12) with its default
    # relative tolerance; replicate the formula for elementwise agreement.
    top = mask & (
        xp.abs(net_solo - v_high[:, None])
        <= 1e-12 + 1e-05 * xp.abs(v_high[:, None])
    )
    topf = xp.astype(top, fdt)
    # The row maximum is always attained, so every row's top set is non-empty.
    flat_probs = topf / xp.sum(topf, axis=1, keepdims=True)
    probabilities = xp.where(solo[:, None], onehot, probabilities)
    probabilities = xp.where(flat[:, None], flat_probs, probabilities)

    totals = xp.sum(probabilities, axis=1)
    if bool(xp.any(totals <= 0)):
        raise RuntimeError(
            "batched cost-adjusted IFD solver failed to allocate probability mass"
        )
    closed = solo | flat
    converged = np.isclose(to_numpy(totals), 1.0, atol=1e-6) | to_numpy(closed)
    probabilities = probabilities / totals[:, None]

    # Realised equilibrium values: closed-form rows report max(f - d); the
    # generic rows average the net value over their support.
    nu = (F * _per_row_congestion(probabilities, tables, ks, be) - D) * fmask
    support = probabilities > 1e-12
    supportf = xp.astype(support, fdt)
    counts = xp.sum(supportf, axis=1)
    mean_nu = xp.sum(xp.where(support, nu, zero), axis=1) / xp.maximum(counts, one)
    fallback = xp.max(xp.where(mask, nu, neg_inf), axis=1)
    realised = xp.where(counts > 0, mean_nu, fallback)
    values_out = xp.where(closed, v_high, realised)
    support_sizes = xp.where(
        solo,
        xp.ones_like(counts),
        xp.where(flat, xp.sum(topf, axis=1), counts),
    )

    return CostAdjustedIFDBatch(
        probabilities=to_numpy(probabilities),
        values=to_numpy(values_out),
        support_sizes=to_numpy(support_sizes).astype(np.int64),
        converged=np.asarray(converged, dtype=bool),
        k=ks,
        costs=d_host,
        padded=padded,
    )


# --------------------------------------------------------------------------
# two-group competition
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TwoGroupCompetitionBatch:
    """Outcomes of a batch of sequential two-group competitions.

    Attributes
    ----------
    first_consumption, second_consumption:
        ``(B,)`` expected total value consumed by each group.
    first_strategies, second_strategies:
        ``(B, M_max)`` equilibrium dispersal distributions (the second
        group's equilibrium is computed on the expected leftovers and
        reported in the original site order).
    first_individual_payoffs, second_individual_payoffs:
        ``(B,)`` expected equilibrium payoffs per group member.
    leftover_values:
        ``(B,)`` expected value remaining after both groups fed.
    k_first, k_second:
        ``(B,)`` group sizes.
    padded:
        The instance batch of the ``B`` axis.

    All array attributes are host NumPy arrays.
    """

    first_consumption: np.ndarray
    second_consumption: np.ndarray
    first_strategies: np.ndarray
    second_strategies: np.ndarray
    first_individual_payoffs: np.ndarray
    second_individual_payoffs: np.ndarray
    leftover_values: np.ndarray
    k_first: np.ndarray
    k_second: np.ndarray
    padded: PaddedValues

    @property
    def first_shares(self) -> np.ndarray:
        """``(B,)`` fraction of the consumed value captured by the first group."""
        total = self.first_consumption + self.second_consumption
        return np.where(total > 0, self.first_consumption / np.where(total > 0, total, 1.0), np.nan)


def _policy_roster(
    policies: CongestionPolicy | Sequence[CongestionPolicy], batch_size: int, name: str
) -> list[CongestionPolicy]:
    """Broadcast a single policy (or validate a per-row roster) to ``B`` rows."""
    if isinstance(policies, CongestionPolicy):
        return [policies] * batch_size
    roster = list(policies)
    if len(roster) != batch_size:
        raise ValueError(
            f"{name} roster has {len(roster)} policies for a batch of {batch_size}"
        )
    for policy in roster:
        if not isinstance(policy, CongestionPolicy):
            raise TypeError(f"{name} roster entries must be CongestionPolicy instances")
    return roster


def _grouped_ifd(
    padded: PaddedValues,
    ks: np.ndarray,
    roster: list[CongestionPolicy],
    be: Backend,
    **ifd_kwargs,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-row IFD for a per-row policy roster, grouped into ``ifd_batch`` calls.

    Rows sharing a policy object are solved together (the grids a roster
    sweep builds repeat a handful of policy objects many times), each group
    solving its distinct ``k`` values as one :func:`ifd_batch` grid.
    """
    groups: dict[int, list[int]] = {}
    policies: dict[int, CongestionPolicy] = {}
    for row, policy in enumerate(roster):
        groups.setdefault(id(policy), []).append(row)
        policies[id(policy)] = policy
    probabilities = np.zeros(padded.values.shape)
    equilibrium_values = np.zeros(padded.batch_size)
    for key, rows in groups.items():
        rows_arr = np.asarray(rows, dtype=np.int64)
        sub = PaddedValues(padded.values[rows_arr], padded.sizes[rows_arr])
        unique_ks, columns = _solve_columns(ks[rows_arr])
        batch = ifd_batch(sub, unique_ks, policies[key], backend=be, **ifd_kwargs)
        take = np.arange(rows_arr.size)
        probabilities[rows_arr] = batch.probabilities[take, columns, :]
        equilibrium_values[rows_arr] = batch.values[take, columns]
    return probabilities, equilibrium_values


def two_group_competition_batch(
    values: PaddedValues | Sequence | np.ndarray,
    first_policies: CongestionPolicy | Sequence[CongestionPolicy],
    second_policies: CongestionPolicy | Sequence[CongestionPolicy],
    k_first: Sequence[int] | np.ndarray | int,
    k_second: Sequence[int] | np.ndarray | int | None = None,
    *,
    backend: Backend | str | None = None,
    **ifd_kwargs,
) -> TwoGroupCompetitionBatch:
    """Sequential two-group competition for a whole batch of matchups.

    The batch counterpart of
    :func:`repro.extensions.group_competition.two_group_competition`: row
    ``b`` plays ``first_policies[b]`` against ``second_policies[b]`` on
    instance ``b`` with group sizes ``k_first[b]`` / ``k_second[b]``.  Both
    waves are solved through :func:`~repro.batch.ifd.ifd_batch` (rows are
    grouped by policy object, so a roster built from a handful of policies
    costs a handful of batched solves, not ``B`` scalar ones), and the
    expected-leftover bookkeeping between the waves is vectorised over the
    batch.

    Parameters
    ----------
    values:
        Instance batch (ragged ``M`` allowed).
    first_policies, second_policies:
        One policy for every row, or a ``(B,)`` roster of policy objects.
    k_first, k_second:
        Group sizes — scalars or per-row ``(B,)`` vectors (``k_second``
        defaults to ``k_first``).
    backend:
        Array backend forwarded to the wave solvers.
    **ifd_kwargs:
        Extra solver options forwarded to :func:`ifd_batch`.

    Returns
    -------
    TwoGroupCompetitionBatch
        Elementwise equal (to solver tolerance) to looping the scalar
        ``two_group_competition`` over the rows.
    """
    be = resolve_backend(backend)
    padded = as_padded(values)
    b, m = padded.batch_size, padded.width
    ks1 = as_k_vector(k_first, b)
    ks2 = ks1 if k_second is None else as_k_vector(k_second, b)
    first = _policy_roster(first_policies, b, "first_policies")
    second = _policy_roster(second_policies, b, "second_policies")

    f_host = padded.values
    mask = padded.mask

    # First wave on the full values.
    p1, v1 = _grouped_ifd(padded, ks1, first, be, **ifd_kwargs)
    visit1 = 1.0 - (1.0 - p1) ** ks1[:, None].astype(float)
    first_consumption = np.sum(f_host * visit1 * mask, axis=1)

    # Expected leftovers define the second wave's game; clamp to the scalar
    # model's tiny floor (the solver needs positive values) and re-sort each
    # row non-increasing so the padded batch honours the solver convention.
    leftovers = np.maximum(f_host * (1.0 - visit1), 1e-12)
    padded2, order = sorted_padded(leftovers, padded)
    p2_sorted, v2 = _grouped_ifd(padded2, ks2, second, be, **ifd_kwargs)
    p2 = unsort_rows(p2_sorted, order)

    visit2 = 1.0 - (1.0 - p2) ** ks2[:, None].astype(float)
    second_consumption = np.sum(leftovers * visit2 * mask, axis=1)
    leftover_values = np.sum(leftovers * (1.0 - visit2) * mask, axis=1)

    return TwoGroupCompetitionBatch(
        first_consumption=first_consumption,
        second_consumption=second_consumption,
        first_strategies=p1,
        second_strategies=p2,
        first_individual_payoffs=v1,
        second_individual_payoffs=v2,
        leftover_values=leftover_values,
        k_first=ks1,
        k_second=ks2,
        padded=padded,
    )


# --------------------------------------------------------------------------
# repeated dispersal with depletion
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RepeatedDispersalBatch:
    """Expected outcomes of a batch of repeated-dispersal horizons.

    Attributes
    ----------
    per_round_consumption:
        ``(B, T)`` expected group consumption per round.
    cumulative_consumption:
        ``(B,)`` expected total consumption across the horizon.
    remaining_values:
        ``(B,)`` expected value left in the environment after the last round.
    final_strategies:
        ``(B, M_max)`` strategy played in the last round.
    rounds:
        Horizon length ``T``.
    k, depletion:
        ``(B,)`` per-row player counts and depletion factors.
    schedule:
        The schedule mode the batch ran (``"constant"`` or ``"adaptive"``).
    padded:
        The instance batch.
    """

    per_round_consumption: np.ndarray
    cumulative_consumption: np.ndarray
    remaining_values: np.ndarray
    final_strategies: np.ndarray
    rounds: int
    k: np.ndarray
    depletion: np.ndarray
    schedule: str
    padded: PaddedValues


def _as_depletion_vector(depletion, batch_size: int) -> np.ndarray:
    """Validate a scalar or ``(B,)`` depletion argument into ``[0, 1)``."""
    arr = np.atleast_1d(np.asarray(ensure_numpy(depletion), dtype=float))
    if arr.size == 1:
        arr = np.full(batch_size, float(arr[0]))
    if arr.shape != (batch_size,):
        raise ValueError(
            f"depletion must be a scalar or a ({batch_size},) vector, got {arr.shape}"
        )
    if np.any(~np.isfinite(arr)) or np.any(arr < 0.0) or np.any(arr >= 1.0):
        raise ValueError(
            f"depletion must lie in [0, 1) — 0 means a visited patch is fully "
            f"consumed; got {arr}"
        )
    return arr


def _sigma_star_rows(remaining: np.ndarray, padded: PaddedValues, ks: np.ndarray, be: Backend, floor: float) -> np.ndarray:
    """Per-row ``sigma_star`` on the current expected remaining values.

    Mirrors :func:`repro.extensions.repeated.adaptive_sigma_star_schedule`
    for every row at once: clamp to ``floor``, sort non-increasing, solve the
    closed form, un-sort.  Mixed per-row ``k`` is handled by solving the
    distinct player counts as one ``sigma_star_batch`` grid and gathering
    each row's column.
    """
    clamped = np.maximum(remaining, floor)
    clamped_padded, order = sorted_padded(clamped, padded)
    unique_ks, columns = _solve_columns(ks)
    star = sigma_star_batch(clamped_padded, unique_ks, backend=be)
    solved = star.probabilities[np.arange(padded.batch_size), columns, :]
    return unsort_rows(solved, order)


def repeated_dispersal_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    *,
    rounds: int = 5,
    depletion: np.ndarray | Sequence | float = 0.0,
    schedule: str = "adaptive",
    strategies: np.ndarray | None = None,
    floor: float = 1e-9,
    backend: Backend | str | None = None,
) -> RepeatedDispersalBatch:
    """Expected ``T``-round depletion dynamics for a whole instance batch.

    Evolves the deterministic *expected* remaining-value tensor that the
    scalar simulator's schedules condition on (see
    :func:`repro.extensions.repeated.expected_repeated_dispersal`): per round,
    every patch is visited with probability ``1 - P[Binomial(k_b, p) = 0]``
    (taken from the zeroth column of
    :func:`~repro.utils.numerics.binomial_pmf_tensor`), consumed values are
    accumulated and remaining values decay by the per-row ``depletion``
    factor.  Because consumption is linear in the remaining values and round
    choices are independent, this expected track is exact — it equals the
    ``n_trials -> inf`` limit of the Monte-Carlo simulator.

    Parameters
    ----------
    values, k:
        Instance batch and per-row (or scalar) player counts.
    rounds:
        Horizon length ``T``.
    depletion:
        Fraction of a visited patch's value that survives a visit — scalar or
        per-row ``(B,)`` vector in ``[0, 1)`` (``0`` = fully consumed).
    schedule:
        ``"adaptive"`` re-solves ``sigma_star`` on the expected remaining
        values before every round (the greedy multi-round extension of the
        paper's analysis); ``"constant"`` plays one fixed strategy every
        round.
    strategies:
        The fixed ``(B, M_max)`` strategy matrix of the ``"constant"``
        schedule; ``None`` solves ``sigma_star`` on the initial values once
        and holds it fixed.
    floor:
        Clamp applied to depleted values before the adaptive re-solve,
        matching the scalar schedule's default.
    backend:
        Array backend the per-round kernels run on.

    Returns
    -------
    RepeatedDispersalBatch
        Elementwise equal to looping the scalar expected-track recursion
        (property-tested, including the ``depletion == 0`` full-consumption
        case).
    """
    be = resolve_backend(backend)
    xp = be.xp
    fdt = be.float_dtype
    padded = as_padded(values)
    b = padded.batch_size
    ks = as_k_vector(k, b)
    rounds = check_positive_integer(rounds, "rounds")
    depletion_vec = _as_depletion_vector(depletion, b)
    if schedule not in ("adaptive", "constant"):
        raise ValueError(f"schedule must be 'adaptive' or 'constant', got {schedule!r}")

    fixed = None
    if schedule == "constant":
        if strategies is None:
            fixed = _sigma_star_rows(padded.values, padded, ks, be, floor)
        else:
            fixed = np.asarray(ensure_numpy(strategies), dtype=float)
            if fixed.shape != padded.values.shape:
                raise ValueError(
                    f"strategies shape {fixed.shape} must match the padded batch "
                    f"{padded.values.shape}"
                )
    elif strategies is not None:
        raise ValueError("strategies is only meaningful with schedule='constant'")

    fmask = padded.fmask_for(be)
    # ``depletion`` is the fraction that survives a visit, so a visited
    # patch's value is consumed at rate (1 - depletion).
    consumed_fraction = from_numpy(be, 1.0 - depletion_vec, dtype=fdt)
    remaining = xp.asarray(padded.values_for(be), copy=True)
    per_round = np.zeros((b, rounds))
    last_probabilities = np.zeros(padded.values.shape)

    for round_index in range(rounds):
        if schedule == "adaptive":
            probabilities = _sigma_star_rows(to_numpy(remaining), padded, ks, be, floor)
        else:
            probabilities = fixed
        last_probabilities = probabilities
        p_dev = from_numpy(be, probabilities, dtype=fdt)
        # One memoized plan serves every round: (ks, B, backend) are loop
        # invariants, only the probabilities change.
        pmf = binomial_pmf_tensor(
            ks, p_dev, backend=be, plan=cached_binomial_pmf_plan(ks, backend=be)
        )
        visit = (1.0 - pmf[:, :, 0]) * fmask
        consumed = xp.sum(remaining * visit, axis=1) * consumed_fraction
        per_round[:, round_index] = to_numpy(consumed)
        remaining = remaining * (1.0 - visit * consumed_fraction[:, None])

    remaining_host = to_numpy(remaining)
    return RepeatedDispersalBatch(
        per_round_consumption=per_round,
        cumulative_consumption=per_round.sum(axis=1),
        remaining_values=np.sum(remaining_host * padded.mask, axis=1),
        final_strategies=np.asarray(last_probabilities),
        rounds=rounds,
        k=ks,
        depletion=depletion_vec,
        schedule=schedule,
        padded=padded,
    )


# --------------------------------------------------------------------------
# mechanism-design sweeps (Theorems 4-6) — moved to repro.batch.mechanism
# --------------------------------------------------------------------------

# Re-exported for backward compatibility: the congestion-policy roster sweeps
# grew a reward-design counterpart and now live with it in
# :mod:`repro.batch.mechanism`.
from repro.batch.mechanism import (  # noqa: E402  (re-export)
    BestTwoLevelBatch,
    PolicyComparisonBatch,
    best_two_level_batch,
    compare_policies_batch,
)
