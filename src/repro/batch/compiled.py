"""Opt-in compiled dynamics stepping (``torch.compile`` graph cache).

:class:`~repro.batch.dynamics.DynamicsEngine` steps are small elementwise
pipelines repeated thousands of times per trajectory; on the torch backend
that makes them ideal ``torch.compile`` targets — kernel fusion removes the
per-op dispatch overhead that dominates narrow batches.  This module keeps
the compilation machinery out of the engine:

* :func:`compiled_step_for` returns a compiled step callable for an engine,
  or ``None`` whenever compilation is unavailable (non-torch backend, torch
  without ``torch.compile``, or a compiler probe failure).  The engine
  treats ``None`` as "eager", so ``compile=True`` is always safe to pass —
  the fallback is silent and the results are the eager results.
* Graphs are cached per **rule class** and **power-of-two width bucket**
  (:func:`width_bucket`): two engines stepping ``logit`` batches of width
  12 and 16 share one graph, while a width-40 batch compiles its own.
  Compilation runs with ``dynamic=True`` so batch size and exact width stay
  symbolic within a bucket; rule hyper-parameters are plain Python floats
  and are baked in by Dynamo's own guards.
* The compiled callable has the signature ``(rule, states, t) -> (new,
  payoffs)`` and simply dispatches to ``rule.step(states, t, None)`` — the
  full-batch step used by the engine's device-resident loop, which performs
  no host transfers and therefore traces without graph breaks (see
  :func:`repro.utils.numerics.make_binomial_pmf_plan`).

Agreement with eager stepping is elementwise-tolerance tested in
``tests/test_device.py`` over the full rule grid on ragged widths.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["compiled_step_for", "width_bucket", "clear_graph_cache"]

#: Compiled step callables keyed by (rule module, rule qualname, width bucket).
_GRAPH_CACHE: dict[tuple[str, str, int], Callable[..., Any]] = {}


def width_bucket(width: int) -> int:
    """Round a padded batch width up to the next power of two.

    Bucketing keeps the graph cache small: recompilation is triggered per
    doubling of the state width, not per distinct width.
    """
    w = int(width)
    if w < 1:
        return 1
    return 1 << (w - 1).bit_length()


def clear_graph_cache() -> None:
    """Drop every cached compiled step (mainly for tests)."""
    _GRAPH_CACHE.clear()


def _rule_step_dispatch(rule: Any, states: Any, t: int) -> Any:
    """The traced entry point: one full-batch step of ``rule``."""
    return rule.step(states, t, None)


def compiled_step_for(engine: Any) -> Callable[..., Any] | None:
    """Compiled ``(rule, states, t) -> (new, payoffs)`` step for ``engine``.

    Returns ``None`` — meaning "step eagerly" — unless the engine runs on
    the torch backend and ``torch.compile`` is importable and functional.
    """
    if engine.backend.name != "torch":
        return None
    try:
        import torch
    except Exception:  # pragma: no cover - torch vanished after resolution
        return None
    if not hasattr(torch, "compile"):
        return None
    rule_type = type(engine.rule)
    key = (
        rule_type.__module__,
        rule_type.__qualname__,
        width_bucket(engine.padded.width),
    )
    fn = _GRAPH_CACHE.get(key)
    if fn is None:
        try:
            fn = torch.compile(_rule_step_dispatch, dynamic=True)
        except Exception:  # pragma: no cover - compiler unavailable/broken
            return None
        _GRAPH_CACHE[key] = fn
    return fn
