"""Exact coverage-time distributions: batched Von Schelling kernels.

When ``k`` searchers each sample one site per round, i.i.d. from a
site-visit distribution ``p`` over ``M`` sites, the number of rounds ``T``
until every site has been visited at least once is the *generalized coupon
collector* time.  Von Schelling's inclusion-exclusion formula
(arXiv:1703.01886) gives its law exactly: for any subset ``J`` of sites the
probability that ``J`` is still untouched after ``t`` rounds is
``(1 - P(J))**(k*t)`` with ``P(J) = sum_{i in J} p_i``, so

* ``P(T <= t) = sum_J (-1)**|J| * (1 - P(J))**(k*t)``  (over all subsets,
  including the empty one);
* ``E[T]      = sum_{J != {}} (-1)**(|J|+1) / (1 - (1 - P(J))**k)``;
* the time ``T_j`` to cover any ``j`` of the ``M`` sites satisfies
  ``E[T_j] = sum_{|A| <= j-1} (-1)**(j-1-|A|) * C(M-|A|-1, j-1-|A|)
  / (1 - P(A)**k)`` (sum over the subsets ``A`` that may remain unvisited).

The kernels here evaluate those alternating sums for whole ``(B, M_max)``
batches of (ragged, zero-padded) visit distributions with per-row ``k``:

* :func:`coverage_time_cdf_batch` / :func:`expected_coverage_time_batch` /
  :func:`partial_coverage_time_batch` — the exact laws, Array-API-pure on
  the active backend.  Subset sums are built by iterative doubling (no
  ``(2**M, M)`` membership matrix), the alternating sums are evaluated as
  **signed log-sum-exp** (positive and negative subset terms are reduced in
  log space separately, so large ``M`` cannot overflow on the way to a
  finite answer), rows with a zero-probability real site are **where-masked
  to ``inf``** (CDF ``0``) without touching any divide, and exactly-uniform
  rows (including every ``M = 1`` row) take an ``O(M)`` closed-form merge —
  subset terms depend only on ``|J|``, with binomial weights — instead of
  the ``O(2**M)`` enumeration (``k = 1`` uniform expectations short-circuit
  further, to the classical harmonic values ``M * H_M`` and
  ``M * (H_M - H_{M-j})``, exact at any ``M``; the alternating forms are
  cancellation-limited in double precision around ``M ~ 50``);
* :func:`estimate_coverage_time_mc` — the Monte-Carlo cross-validator: the
  first-visit time of a subset ``J`` is exactly the discovery time of a
  merged two-box search problem (prior ``[1, 0]``, per-round box
  probabilities ``[P(J), 1 - P(J)]``), so one
  :func:`~repro.batch.search.simulate_search_batch` call over all
  ``(row, subset)`` merged problems yields unbiased estimates of ``E[T]``
  and the CDF by recombining the empirical subset statistics with the same
  inclusion-exclusion signs.  Censored trials are counted per row and
  poison the row's estimate to ``nan`` (a censored mean is biased low), so
  conformance tests can flag and exclude them explicitly.

The non-uniform enumeration is capped at ``max_sites`` real sites per row
(default :data:`DEFAULT_MAX_EXACT_SITES`) — both work and memory grow as
``2**M`` — while uniform rows merge in ``O(M)`` at any size.  Inputs are
validated host-side (:func:`as_visit_distribution_batch`); results are host
NumPy arrays, agreeing with the scalar ``B = 1`` wrappers of
:mod:`repro.search.coverage_times` and property-tested against a
brute-force subset-state dynamic program and the Monte-Carlo stack in
``tests/test_coverage_times.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Any, Sequence

import numpy as np

from repro.backend import (
    Backend,
    ensure_numpy,
    expected_transfer,
    from_numpy,
    resolve_backend,
    to_numpy,
)
from repro.batch.search import _as_searcher_counts, simulate_search_batch
from repro.utils.validation import check_positive_integer

__all__ = [
    "DEFAULT_MAX_EXACT_SITES",
    "CoverageTimeEstimate",
    "as_visit_distribution_batch",
    "coverage_time_cdf_batch",
    "expected_coverage_time_batch",
    "partial_coverage_time_batch",
    "estimate_coverage_time_mc",
]

#: Default cap on the number of real sites a *non-uniform* row may have:
#: the inclusion-exclusion enumerates ``2**M`` subset sums per row, so both
#: work and memory are exponential in ``M``.  Uniform rows are exempt (their
#: closed-form merge is ``O(M)``); raise ``max_sites`` explicitly to enumerate
#: larger non-uniform rows.
DEFAULT_MAX_EXACT_SITES = 16

#: Clip bounds keeping every logarithm finite: subset probabilities are
#: confined to ``[_TINY, 1 - _EDGE]`` before ``log``/``log1p``, which leaves
#: the degenerate endpoints (``P = 0``: never-visited, ``P = 1``: the full
#: set) with exactly the limit values the formulas require.
_TINY = 1e-300
_EDGE = 1e-16


# --------------------------------------------------------------------------
# staging
# --------------------------------------------------------------------------


def as_visit_distribution_batch(
    distributions: np.ndarray | Sequence[Any],
    sizes: Sequence[int] | np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Validate a batch of site-visit distributions into host matrix + sizes.

    Parameters
    ----------
    distributions:
        A ``(B, M_max)`` probability matrix, or a length-``B`` sequence of
        1-D vectors / :class:`~repro.core.strategy.Strategy`-like objects
        (anything with ``as_array()`` or a ``prior`` attribute); ragged site
        counts allowed.
    sizes:
        Optional per-row real-site counts.  With matrix input the default is
        the full width; explicit sizes must not cut off positive mass
        (columns at or beyond a row's size are padding and must be zero).
        With ragged sequence input the sizes are inferred from the row
        lengths — a trailing zero *inside* a row therefore counts as a real
        zero-probability site (the degenerate-row contract), not padding.

    Returns
    -------
    (numpy.ndarray, numpy.ndarray)
        A host ``(B, M_max)`` float matrix whose rows each sum to one over
        their real sites (padding columns exactly zero), and the ``(B,)``
        ``int64`` real-site counts.
    """
    if isinstance(distributions, np.ndarray) or hasattr(
        distributions, "__array_namespace__"
    ):
        matrix = np.array(ensure_numpy(distributions), dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ValueError("distributions must form a non-empty (B, M) matrix")
    else:
        rows = []
        for row in distributions:
            if hasattr(row, "as_array"):
                row = row.as_array()
            rows.append(np.asarray(ensure_numpy(getattr(row, "prior", row)), dtype=float).ravel())
        if not rows:
            raise ValueError("cannot pack an empty batch of visit distributions")
        if sizes is not None:
            raise ValueError(
                "sizes are inferred from ragged sequence input; pass sizes only "
                "with matrix input"
            )
        sizes = np.asarray([row.size for row in rows], dtype=np.int64)
        width = max(int(size) for size in sizes)
        matrix = np.zeros((len(rows), width))
        for index, row in enumerate(rows):
            matrix[index, : row.size] = row
    b, m = matrix.shape
    if sizes is None:
        counts = np.full(b, m, dtype=np.int64)
    else:
        counts = np.atleast_1d(np.asarray(ensure_numpy(sizes)))
        if counts.shape == (1,) and b > 1:
            counts = np.full(b, int(counts[0]), dtype=np.int64)
        if counts.shape != (b,):
            raise ValueError(f"sizes must be a ({b},) roster, got shape {counts.shape}")
        counts = counts.astype(np.int64)
        if np.any(counts < 1) or np.any(counts > m):
            raise ValueError(f"sizes must lie in [1, {m}]")
    if np.any(matrix < 0) or not np.all(np.isfinite(matrix)):
        raise ValueError("visit probabilities must be finite and non-negative")
    padding = np.arange(m)[None, :] >= counts[:, None]
    if np.any(matrix[padding] != 0):
        raise ValueError("columns at or beyond a row's size must carry zero mass")
    sums = matrix.sum(axis=1)
    if np.any(sums <= 0):
        raise ValueError("every visit distribution must have positive mass")
    return matrix / sums[:, None], counts


def _as_times(times: Sequence[int] | np.ndarray | int) -> tuple[np.ndarray, bool]:
    """Validate a round-count grid (non-negative integers); report scalarness."""
    scalar = np.ndim(times) == 0
    grid = np.atleast_1d(np.asarray(ensure_numpy(times)))
    if grid.ndim != 1 or grid.size == 0:
        raise ValueError("times must be a non-negative integer or a 1-D grid of them")
    values = np.asarray(grid, dtype=float)
    if not np.all(np.isfinite(values)) or np.any(values < 0) or np.any(values != np.rint(values)):
        raise ValueError(f"times must be non-negative integers, got {grid!r}")
    return values.astype(np.int64), scalar


@lru_cache(maxsize=32)
def _subset_sizes(m: int) -> np.ndarray:
    """Popcounts of all ``2**m`` subset indices (doubling construction)."""
    sizes = np.zeros(1, dtype=np.int64)
    for _ in range(m):
        sizes = np.concatenate([sizes, sizes + 1])
    return sizes


@lru_cache(maxsize=128)
def _log_factorials(n: int) -> np.ndarray:
    """``log(i!)`` for ``i = 0..n`` (host, for binomial weights)."""
    return np.concatenate([[0.0], np.cumsum(np.log(np.arange(1, n + 1, dtype=float)))])


def _log_binomial(n: int, j: np.ndarray) -> np.ndarray:
    """``log C(n, j)`` elementwise (``j`` within ``[0, n]``)."""
    lf = _log_factorials(n)
    j = np.asarray(j, dtype=np.int64)
    return lf[n] - lf[j] - lf[n - j]


def _resolve_max_sites(max_sites: int | None) -> int:
    if max_sites is None:
        return DEFAULT_MAX_EXACT_SITES
    return check_positive_integer(max_sites, "max_sites")


def _group_rows(
    probs: np.ndarray, counts: np.ndarray, max_sites: int
) -> list[tuple[int, bool, np.ndarray]]:
    """Partition rows by (real-site count, exactly-uniform?) for shared math.

    Exactly-uniform rows (all real entries equal — every ``M = 1`` row is)
    take the ``O(M)`` merge; the rest enumerate subsets, gated by
    ``max_sites``.
    """
    b, m_max = probs.shape
    columns = np.arange(m_max)[None, :]
    real = columns < counts[:, None]
    first = probs[:, :1]
    uniform = np.all(np.where(real, probs == first, True), axis=1)
    groups: list[tuple[int, bool, np.ndarray]] = []
    for m in np.unique(counts):
        of_size = counts == m
        for is_uniform in (True, False):
            rows = np.nonzero(of_size & (uniform == is_uniform))[0]
            if rows.size == 0:
                continue
            if not is_uniform and int(m) > max_sites:
                raise ValueError(
                    f"non-uniform rows with {int(m)} sites exceed max_sites="
                    f"{max_sites}: the Von Schelling enumeration is O(2**M); "
                    f"raise max_sites explicitly (memory grows as 2**M) or "
                    f"reduce the row"
                )
            groups.append((int(m), is_uniform, rows))
    return groups


# --------------------------------------------------------------------------
# device-side building blocks
# --------------------------------------------------------------------------


def _logsumexp(xp, logs, *, axis: int):
    """Plain log-sum-exp along ``axis`` (entries known finite)."""
    peak = xp.max(logs, axis=axis, keepdims=True)
    total = xp.sum(xp.exp(logs - peak), axis=axis)
    return xp.squeeze(peak, axis=axis) + xp.log(total)


def _subset_log_complements(xp, p_rows, m: int):
    """``log(1 - P(J))`` for all ``2**m`` subsets by iterative doubling.

    ``p_rows`` is a device ``(G, m)`` slice; the result is ``(G, 2**m)``
    with subset ``s``'s bit ``i`` marking membership of site ``i``.  Sums
    are clipped into ``[0, 1 - _EDGE]`` so the ``log1p`` stays finite even
    at the full set (where ``P = 1``).
    """
    sums = p_rows[:, :1] * 0.0  # (G, 1) zeros in the backend's dtype
    for index in range(m):
        sums = xp.concat([sums, sums + p_rows[:, index : index + 1]], axis=1)
    return xp.log1p(-xp.clip(sums, 0.0, 1.0 - _EDGE))


def _subset_log_sums(xp, p_rows, m: int):
    """``log(P(A))`` for all subsets (clipped into ``[_TINY, 1 - _EDGE]``)."""
    sums = p_rows[:, :1] * 0.0
    for index in range(m):
        sums = xp.concat([sums, sums + p_rows[:, index : index + 1]], axis=1)
    return xp.log(xp.clip(sums, _TINY, 1.0 - _EDGE))


def _log_denominators(xp, k_col, log_survive):
    """``log(1 - exp(k * log_survive))`` — the per-subset geometric rates.

    ``-expm1`` keeps tiny rates accurate; the clip keeps the outer ``log``
    finite when a rate underflows to zero.
    """
    return xp.log(xp.clip(-xp.expm1(k_col * log_survive), _TINY, None))


def _take_columns(xp, be, matrix, indices: np.ndarray):
    """Gather host-selected columns of a device ``(G, S)`` matrix."""
    with expected_transfer():  # static subset-index upload
        idx = from_numpy(be, indices.astype(np.int64), dtype=be.int_dtype)
    return xp.take(matrix, idx, axis=1)


# --------------------------------------------------------------------------
# exact kernels
# --------------------------------------------------------------------------


def expected_coverage_time_batch(
    distributions: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    *,
    sizes: Sequence[int] | np.ndarray | None = None,
    max_sites: int | None = None,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Exact expected full-coverage time ``E[T]`` for every row of a batch.

    ``E[T] = sum_{J != {}} (-1)**(|J|+1) / (1 - (1 - P(J))**k)`` per Von
    Schelling; rows with a zero-probability real site are where-masked to
    ``inf`` (coverage never completes), exactly-uniform rows (and every
    ``M = 1`` row) merge the subset sum by size into ``O(M)`` binomial
    terms, and the alternating sum is evaluated as a signed log-sum-exp.

    Parameters
    ----------
    distributions, sizes:
        The packed visit-distribution batch
        (see :func:`as_visit_distribution_batch`).
    k:
        Scalar or ``(B,)`` roster of per-round searcher counts (``>= 1``).
    max_sites:
        Cap on non-uniform rows' site counts
        (default :data:`DEFAULT_MAX_EXACT_SITES`); the enumeration is
        ``O(2**M)`` per row.

    Returns
    -------
    numpy.ndarray
        Host ``(B,)`` vector of expected rounds (``inf`` degenerate rows).
    """
    be = resolve_backend(backend)
    probs, counts = as_visit_distribution_batch(distributions, sizes)
    ks = _as_searcher_counts(k, probs.shape[0])
    result = np.full(probs.shape[0], np.inf)
    coverable = _positive_site_counts(probs) >= counts
    for m, is_uniform, rows in _group_rows(probs, counts, _resolve_max_sites(max_sites)):
        live = rows[coverable[rows]]
        if live.size == 0:
            continue
        if is_uniform:
            result[live] = _uniform_expected(be, m, ks[live])
        else:
            result[live] = _enumerated_expected(be, probs[live, :m], ks[live], m)
    return result


def coverage_time_cdf_batch(
    distributions: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    times: Sequence[int] | np.ndarray | int,
    *,
    sizes: Sequence[int] | np.ndarray | None = None,
    max_sites: int | None = None,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Exact full-coverage CDF ``P(T <= t)`` on a grid of round counts.

    ``P(T <= t) = sum_J (-1)**|J| * (1 - P(J))**(k*t)`` over *all* subsets
    (``t`` rounds of ``k`` i.i.d. draws are exactly ``k*t`` single draws).
    Degenerate rows (a zero-probability real site) report ``0`` at every
    horizon; results are clipped into ``[0, 1]``.

    Parameters
    ----------
    times:
        A non-negative integer or a 1-D grid of them.

    Returns
    -------
    numpy.ndarray
        Host ``(B,)`` for scalar ``times``, else ``(B, len(times))``.
    """
    be = resolve_backend(backend)
    probs, counts = as_visit_distribution_batch(distributions, sizes)
    ks = _as_searcher_counts(k, probs.shape[0])
    grid, scalar = _as_times(times)
    result = np.zeros((probs.shape[0], grid.size))
    coverable = _positive_site_counts(probs) >= counts
    for m, is_uniform, rows in _group_rows(probs, counts, _resolve_max_sites(max_sites)):
        live = rows[coverable[rows]]
        if live.size == 0:
            continue
        if is_uniform:
            result[live, :] = _uniform_cdf(be, m, ks[live], grid)
        else:
            result[live, :] = _enumerated_cdf(be, probs[live, :m], ks[live], m, grid)
    return result[:, 0] if scalar else result


def partial_coverage_time_batch(
    distributions: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    j: Sequence[int] | np.ndarray | int,
    *,
    sizes: Sequence[int] | np.ndarray | None = None,
    max_sites: int | None = None,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Exact expected time ``E[T_j]`` to cover any ``j`` of a row's sites.

    ``E[T_j] = sum_{|A| <= j-1} (-1)**(j-1-|A|) * C(M-|A|-1, j-1-|A|)
    / (1 - P(A)**k)`` — the sum runs over the candidate *unvisited* subsets
    ``A``.  Rows with fewer than ``j`` positive-probability sites are
    where-masked to ``inf``; ``j = M`` recovers
    :func:`expected_coverage_time_batch` and ``j = 1`` is identically ``1``.

    Parameters
    ----------
    j:
        Scalar or ``(B,)`` roster of coverage targets, ``1 <= j <= M_row``.

    Returns
    -------
    numpy.ndarray
        Host ``(B,)`` vector of expected rounds (``inf`` degenerate rows).
    """
    be = resolve_backend(backend)
    probs, counts = as_visit_distribution_batch(distributions, sizes)
    b = probs.shape[0]
    ks = _as_searcher_counts(k, b)
    js = np.atleast_1d(np.asarray(ensure_numpy(j)))
    if js.size == 1:
        js = np.full(b, int(js[0]), dtype=np.int64)
    if js.shape != (b,):
        raise ValueError(f"j must be an integer or a ({b},) roster, got shape {js.shape}")
    if np.any(js != np.rint(np.asarray(js, dtype=float))):
        raise ValueError(f"coverage targets j must be integers, got {js!r}")
    js = js.astype(np.int64)
    if np.any(js < 1) or np.any(js > counts):
        raise ValueError("coverage targets j must satisfy 1 <= j <= row size")
    result = np.full(b, np.inf)
    coverable = _positive_site_counts(probs) >= js
    for m, is_uniform, rows in _group_rows(probs, counts, _resolve_max_sites(max_sites)):
        live = rows[coverable[rows]]
        if live.size == 0:
            continue
        if is_uniform:
            result[live] = _uniform_partial(be, m, ks[live], js[live])
        else:
            result[live] = _enumerated_partial(be, probs[live, :m], ks[live], js[live], m)
    return result


def _positive_site_counts(probs: np.ndarray) -> np.ndarray:
    """Number of positive-probability sites per row (padding is zero)."""
    return (probs > 0).sum(axis=1)


# --------------------------------------------------------------------------
# enumerated (non-uniform) paths
# --------------------------------------------------------------------------


def _stage_group(be, p_rows: np.ndarray, ks: np.ndarray):
    with expected_transfer():  # group staging
        p_dev = from_numpy(be, p_rows, dtype=be.float_dtype)
        k_col = from_numpy(be, ks.astype(float)[:, None], dtype=be.float_dtype)
    return p_dev, k_col


def _enumerated_expected(be, p_rows: np.ndarray, ks: np.ndarray, m: int) -> np.ndarray:
    xp = be.xp
    p_dev, k_col = _stage_group(be, p_rows, ks)
    log_survive = _subset_log_complements(xp, p_dev, m)
    sizes = _subset_sizes(m)
    log_terms = -_log_denominators(xp, k_col, log_survive)
    positive = np.nonzero(sizes % 2 == 1)[0]
    negative = np.nonzero((sizes % 2 == 0) & (sizes > 0))[0]
    total = xp.exp(_logsumexp(xp, _take_columns(xp, be, log_terms, positive), axis=1))
    if negative.size:
        total = total - xp.exp(
            _logsumexp(xp, _take_columns(xp, be, log_terms, negative), axis=1)
        )
    with expected_transfer():  # result materialisation
        return np.asarray(to_numpy(total), dtype=float)


def _enumerated_cdf(
    be, p_rows: np.ndarray, ks: np.ndarray, m: int, grid: np.ndarray
) -> np.ndarray:
    xp = be.xp
    p_dev, k_col = _stage_group(be, p_rows, ks)
    log_survive = _subset_log_complements(xp, p_dev, m)
    sizes = _subset_sizes(m)
    positive = np.nonzero(sizes % 2 == 0)[0]  # includes the empty set
    negative = np.nonzero(sizes % 2 == 1)[0]
    pos_logs = _take_columns(xp, be, log_survive, positive)
    neg_logs = _take_columns(xp, be, log_survive, negative)
    out = np.zeros((p_rows.shape[0], grid.size))
    for column, t in enumerate(grid):
        kt = k_col * float(t)
        value = xp.exp(_logsumexp(xp, kt * pos_logs, axis=1)) - xp.exp(
            _logsumexp(xp, kt * neg_logs, axis=1)
        )
        with expected_transfer():  # per-horizon materialisation
            out[:, column] = np.asarray(to_numpy(value), dtype=float)
    return np.clip(out, 0.0, 1.0)


def _enumerated_partial(
    be, p_rows: np.ndarray, ks: np.ndarray, js: np.ndarray, m: int
) -> np.ndarray:
    xp = be.xp
    p_dev, k_col = _stage_group(be, p_rows, ks)
    log_sums = _subset_log_sums(xp, p_dev, m)
    log_terms = -_log_denominators(xp, k_col, log_sums)
    sizes = _subset_sizes(m)
    # Host-side signed binomial weights: w_j(a) = (-1)**(j-1-a) C(m-a-1, j-1-a)
    # for a <= j-1 (zero beyond), with the per-row j making the sign pattern
    # row-dependent — so the positive/negative split is staged as two
    # log-weight matrices (log 0 = -inf marks excluded subsets).
    g = p_rows.shape[0]
    log_w_pos = np.full((g, 2**m), -np.inf)
    log_w_neg = np.full((g, 2**m), -np.inf)
    for row, j in enumerate(js.astype(int)):
        allowed = sizes <= j - 1
        a = sizes[allowed]
        log_weight = _partial_log_weights(m, j, a)
        positive = (j - 1 - a) % 2 == 0
        cols = np.nonzero(allowed)[0]
        log_w_pos[row, cols[positive]] = log_weight[positive]
        log_w_neg[row, cols[~positive]] = log_weight[~positive]
    with expected_transfer():  # weight staging
        w_pos = from_numpy(be, log_w_pos, dtype=be.float_dtype)
        w_neg = from_numpy(be, log_w_neg, dtype=be.float_dtype)
    total = xp.exp(_masked_logsumexp(xp, be, log_terms + w_pos, axis=1))
    total = total - xp.exp(_masked_logsumexp(xp, be, log_terms + w_neg, axis=1))
    with expected_transfer():  # result materialisation
        return np.asarray(to_numpy(total), dtype=float)


def _partial_log_weights(m: int, j: int, a: np.ndarray) -> np.ndarray:
    """``log C(m-a-1, j-1-a)`` for the partial-coverage weights."""
    return np.asarray(
        [
            float(_log_binomial(m - int(ai) - 1, np.asarray([j - 1 - int(ai)]))[0])
            for ai in a
        ]
    )


def _masked_logsumexp(xp, be, logs, *, axis: int):
    """Log-sum-exp tolerating ``-inf`` entries and all-``-inf`` rows."""
    peak = xp.max(logs, axis=axis, keepdims=True)
    finite = xp.isfinite(peak)
    with expected_transfer():  # scalar constants
        zero = from_numpy(be, np.asarray(0.0), dtype=be.float_dtype)
        neg_inf = from_numpy(be, np.asarray(-np.inf), dtype=be.float_dtype)
    safe_peak = xp.where(finite, peak, zero)
    total = xp.sum(xp.exp(logs - safe_peak), axis=axis)
    safe_total = xp.clip(total, _TINY, None)
    return xp.where(
        xp.squeeze(finite, axis=axis),
        xp.squeeze(safe_peak, axis=axis) + xp.log(safe_total),
        neg_inf,
    )


# --------------------------------------------------------------------------
# uniform / M=1 closed-form merges
# --------------------------------------------------------------------------


def _uniform_staging(be, m: int, ks: np.ndarray):
    """Host constants of the uniform merge: subset terms depend only on |J|."""
    j = np.arange(m + 1, dtype=np.int64)
    log_choose = _log_binomial(m, j)
    log_survive = np.log1p(-np.clip(j / m, 0.0, 1.0 - _EDGE))
    with expected_transfer():  # group staging
        k_col = from_numpy(be, ks.astype(float)[:, None], dtype=be.float_dtype)
        choose = from_numpy(be, log_choose[None, :], dtype=be.float_dtype)
        survive = from_numpy(be, log_survive[None, :], dtype=be.float_dtype)
    return k_col, choose, survive


def _harmonic(m: int) -> float:
    """The ``m``-th harmonic number (host, for the ``k = 1`` merges)."""
    return float(np.sum(1.0 / np.arange(1, m + 1)))


def _uniform_expected(be, m: int, ks: np.ndarray) -> np.ndarray:
    # k = 1 rows take the classical coupon-collector value m * H_m — exact
    # and cancellation-free at any M (the alternating form below loses all
    # precision around M ~ 50).
    out = np.full(ks.size, m * _harmonic(m))
    general = ks != 1
    if not np.any(general):
        return out
    xp = be.xp
    k_col, choose, survive = _uniform_staging(be, m, ks[general])
    log_terms = choose - _log_denominators(xp, k_col, survive)
    j = np.arange(m + 1)
    positive = np.nonzero(j % 2 == 1)[0]
    negative = np.nonzero((j % 2 == 0) & (j > 0))[0]
    total = xp.exp(_logsumexp(xp, _take_columns(xp, be, log_terms, positive), axis=1))
    if negative.size:
        total = total - xp.exp(
            _logsumexp(xp, _take_columns(xp, be, log_terms, negative), axis=1)
        )
    with expected_transfer():  # result materialisation
        out[general] = np.asarray(to_numpy(total), dtype=float)
    return out


def _uniform_cdf(be, m: int, ks: np.ndarray, grid: np.ndarray) -> np.ndarray:
    xp = be.xp
    k_col, choose, survive = _uniform_staging(be, m, ks)
    j = np.arange(m + 1)
    positive = np.nonzero(j % 2 == 0)[0]
    negative = np.nonzero(j % 2 == 1)[0]
    out = np.zeros((ks.size, grid.size))
    for column, t in enumerate(grid):
        logs = choose + (k_col * float(t)) * survive
        value = xp.exp(_logsumexp(xp, _take_columns(xp, be, logs, positive), axis=1))
        value = value - xp.exp(
            _logsumexp(xp, _take_columns(xp, be, logs, negative), axis=1)
        )
        with expected_transfer():  # per-horizon materialisation
            out[:, column] = np.asarray(to_numpy(value), dtype=float)
    return np.clip(out, 0.0, 1.0)


def _uniform_partial(be, m: int, ks: np.ndarray, js: np.ndarray) -> np.ndarray:
    # k = 1 rows: the first-j-coupons time is a sum of independent
    # geometrics, E[T_j] = m * (H_m - H_{m-j}) — exact at any M.
    out = np.asarray(
        [m * (_harmonic(m) - _harmonic(m - int(j))) for j in js], dtype=float
    )
    general = ks != 1
    if not np.any(general):
        return out
    ks, js = ks[general], js[general]
    xp = be.xp
    a = np.arange(m, dtype=np.int64)  # candidate unvisited-set sizes 0..m-1
    log_sums = np.log(np.clip(a / m, _TINY, 1.0 - _EDGE))
    g = ks.size
    log_w_pos = np.full((g, m), -np.inf)
    log_w_neg = np.full((g, m), -np.inf)
    for row, j in enumerate(js.astype(int)):
        allowed = a <= j - 1
        aa = a[allowed]
        log_weight = _partial_log_weights(m, j, aa) + _log_binomial(m, aa)
        positive = (j - 1 - aa) % 2 == 0
        cols = np.nonzero(allowed)[0]
        log_w_pos[row, cols[positive]] = log_weight[positive]
        log_w_neg[row, cols[~positive]] = log_weight[~positive]
    with expected_transfer():  # group staging
        k_col = from_numpy(be, ks.astype(float)[:, None], dtype=be.float_dtype)
        sums = from_numpy(be, log_sums[None, :], dtype=be.float_dtype)
        w_pos = from_numpy(be, log_w_pos, dtype=be.float_dtype)
        w_neg = from_numpy(be, log_w_neg, dtype=be.float_dtype)
    log_terms = -_log_denominators(xp, k_col, sums)
    total = xp.exp(_masked_logsumexp(xp, be, log_terms + w_pos, axis=1))
    total = total - xp.exp(_masked_logsumexp(xp, be, log_terms + w_neg, axis=1))
    with expected_transfer():  # result materialisation
        out[general] = np.asarray(to_numpy(total), dtype=float)
    return out


# --------------------------------------------------------------------------
# Monte-Carlo cross-validation through the search stack
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CoverageTimeEstimate:
    """Monte-Carlo coverage-time estimates recombined from merged searches.

    Attributes
    ----------
    n_trials, max_rounds, k:
        Simulation parameters (``k`` is the ``(B,)`` per-round draw roster).
    means, sems:
        ``(B,)`` inclusion-exclusion-combined estimates of ``E[T]`` and
        their standard errors (subset estimates are independent, so
        variances add in quadrature).  ``nan`` rows are either degenerate
        (coverage is impossible) or had censored trials — a censored mean is
        biased low, so flagged rows must be excluded from exact-vs-MC
        comparisons rather than averaged in.
    censored_counts:
        ``(B,)`` ``int64`` total censored trials across a row's merged
        subset problems (degenerate rows report ``n_trials``: their
        impossible full-set subproblem would censor every trial).
    times, cdfs, cdf_sems:
        When a ``times`` grid was supplied: the grid and the combined
        ``(B, T)`` CDF estimates with pointwise standard errors (``nan``
        rows as above); all three are ``None`` otherwise.
    """

    n_trials: int
    max_rounds: int
    k: np.ndarray
    means: np.ndarray
    sems: np.ndarray
    censored_counts: np.ndarray
    times: np.ndarray | None
    cdfs: np.ndarray | None
    cdf_sems: np.ndarray | None


def estimate_coverage_time_mc(
    distributions: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    n_trials: int,
    *,
    sizes: Sequence[int] | np.ndarray | None = None,
    times: Sequence[int] | np.ndarray | None = None,
    max_rounds: int = 100_000,
    rng: np.random.Generator | int | None = None,
    method: str = "geometric",
    backend: Backend | str | None = None,
) -> CoverageTimeEstimate:
    """Estimate coverage-time laws with :func:`simulate_search_batch`.

    The first time any site of a subset ``J`` is visited is distributed as
    the discovery time of a two-box search problem whose round strategy
    searches box 0 with probability ``P(J)`` (prior ``[1, 0]``): merging
    each nonempty subset of every row into such a problem and simulating
    them all in **one** batched search call yields unbiased estimates of
    every subset statistic, which recombine into ``E[T]`` and ``P(T <= t)``
    with the Von Schelling signs.  This estimator is the conformance layer
    the exact kernels are tested against — and the slow equal-precision
    baseline the ``BENCH_covertime.json`` speedup gate times.

    The per-row cost is ``2**M - 1`` merged problems, so keep ``M`` small
    (the default ``"geometric"`` method makes ``max_rounds`` nearly free —
    censoring can be pushed arbitrarily low).  Censored or degenerate rows
    are flagged: see :class:`CoverageTimeEstimate`.
    """
    n_trials = check_positive_integer(n_trials, "n_trials")
    max_rounds = check_positive_integer(max_rounds, "max_rounds")
    probs, counts = as_visit_distribution_batch(distributions, sizes)
    b = probs.shape[0]
    ks = _as_searcher_counts(k, b)
    grid = None
    if times is not None:
        grid, _ = _as_times(times)
    coverable = _positive_site_counts(probs) >= counts

    merged_priors: list[np.ndarray] = []
    merged_strategies: list[np.ndarray] = []
    merged_k: list[int] = []
    merged_signs: list[np.ndarray] = []
    merged_rows: list[np.ndarray] = []
    for row in np.nonzero(coverable)[0]:
        m = int(counts[row])
        subset_mass = _all_subset_sums(probs[row, :m])
        sizes_of = _subset_sizes(m)
        mass = np.clip(subset_mass[1:], 0.0, 1.0)  # nonempty subsets
        merged_priors.append(np.tile([1.0, 0.0], (mass.size, 1)))
        merged_strategies.append(np.stack([mass, 1.0 - mass], axis=1))
        merged_k.extend([int(ks[row])] * mass.size)
        merged_signs.append(np.where(sizes_of[1:] % 2 == 1, 1.0, -1.0))
        merged_rows.append(np.full(mass.size, row, dtype=np.int64))

    means = np.full(b, np.nan)
    sems = np.full(b, np.nan)
    censored = np.where(coverable, 0, n_trials).astype(np.int64)
    cdfs = cdf_sems = None
    if grid is not None:
        cdfs = np.full((b, grid.size), np.nan)
        cdf_sems = np.full((b, grid.size), np.nan)

    if merged_rows:
        priors = np.concatenate(merged_priors, axis=0)
        strategies = np.concatenate(merged_strategies, axis=0)
        signs = np.concatenate(merged_signs)
        owners = np.concatenate(merged_rows)
        simulated = simulate_search_batch(
            priors,
            strategies,
            np.asarray(merged_k, dtype=np.int64),
            n_trials,
            max_rounds=max_rounds,
            rng=rng,
            method=method,
            backend=backend,
        )
        rounds = simulated.rounds.astype(float)
        per_problem_censored = (simulated.rounds > max_rounds).sum(axis=1)
        np.add.at(censored, owners, per_problem_censored.astype(np.int64))
        subset_means = rounds.mean(axis=1)
        subset_vars = rounds.var(axis=1, ddof=1) if n_trials > 1 else np.zeros(len(rounds))
        combined_mean = np.zeros(b)
        combined_var = np.zeros(b)
        np.add.at(combined_mean, owners, signs * subset_means)
        np.add.at(combined_var, owners, subset_vars / n_trials)
        clean = coverable & (censored == 0)
        means[clean] = combined_mean[clean]
        sems[clean] = np.sqrt(combined_var[clean])
        if grid is not None:
            for column, t in enumerate(grid):
                tail = (simulated.rounds > t).mean(axis=1)
                tail_var = tail * (1.0 - tail) / n_trials
                survival = np.zeros(b)
                variance = np.zeros(b)
                np.add.at(survival, owners, signs * tail)
                np.add.at(variance, owners, tail_var)
                cdfs[clean, column] = 1.0 - survival[clean]
                cdf_sems[clean, column] = np.sqrt(variance[clean])
    return CoverageTimeEstimate(
        n_trials=n_trials,
        max_rounds=max_rounds,
        k=ks,
        means=means,
        sems=sems,
        censored_counts=censored,
        times=grid,
        cdfs=cdfs,
        cdf_sems=cdf_sems,
    )


def _all_subset_sums(p_row: np.ndarray) -> np.ndarray:
    """Host subset sums of one row by iterative doubling (``(2**m,)``)."""
    sums = np.zeros(1)
    for value in p_row:
        sums = np.concatenate([sums, sums + value])
    return sums
