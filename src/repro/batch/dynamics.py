"""Unified batched dynamics engine: one stepping loop for every update rule.

Before this module, each dynamics flavour (discrete/Euler replicator, logit,
smoothed best response, resident-vs-mutant invasion) carried its own copy of
the same loop: evaluate the payoff kernel, apply an update, measure the L1
step, record at strides, stop on tolerance or iteration cap.  The
:class:`DynamicsEngine` hoists that loop out once and evolves a whole
``(B, M)`` population of game states simultaneously:

* **pluggable rules** — an :class:`UpdateRule` maps ``(states, t)`` to new
  states; the bundled rules cover the replicator variants, logit response,
  smoothed best response and the invasion share dynamic;
* **one ``nu`` per step** — payoff-driven rules receive the batched
  ``site_values`` evaluation exactly once per iteration and derive mean
  payoff, best response and update direction from it;
* **per-row convergence masking** — rows that meet the tolerance (or a rule's
  own halting condition) are frozen and dropped from subsequent kernel
  evaluations, and the loop exits early once every row is done;
* **strided trajectory recording** — full-batch snapshots are taken every
  ``record_every`` steps; :meth:`DynamicsBatchResult.trajectory` slices them
  back into exactly the per-row trajectories the scalar loops used to build.

The stepping math is pure Array-API code on the backend resolved at engine
construction (:mod:`repro.backend`).  On NumPy the engine steps only the
active row subset and scatters back in place — byte-identical to the
pre-backend engine.  On every other backend the run is *device-resident*:
all constants (padded values, masks, congestion tables, the binomial-PMF
plan, rule-specific shifts) are staged once at construction under an
expected-transfer boundary, the full batch is stepped each iteration with
finished rows frozen by ``where``, and the convergence mask, iteration
counters and trajectory snapshots live on the device until one documented
host materialisation at the end of :meth:`DynamicsEngine.run`.  The only
per-iteration host contact is a scalar ``any(active)`` early-exit check, so
``repro.backend.track_transfers`` observes zero mid-kernel crossings.
With ``compile=True`` the per-rule step is additionally wrapped in
``torch.compile`` on the torch backend (see :mod:`repro.batch.compiled`).

The scalar entry points in :mod:`repro.dynamics` are thin ``B = 1`` wrappers
around this engine, so batched and scalar runs share one implementation and
agree elementwise (property-tested in ``tests/test_batch_dynamics.py``).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backend import (
    Backend,
    ensure_numpy,
    expected_transfer,
    from_numpy,
    resolve_backend,
    scatter_rows,
    take_rows,
    to_numpy,
)
from repro.batch.compiled import compiled_step_for
from repro.batch.padding import PaddedValues
from repro.batch.payoffs import (
    as_k_vector,
    congestion_table_batch,
    occupancy_congestion_factor_batch,
)
from repro.batch.solvers import as_padded
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.utils.numerics import make_binomial_pmf_plan
from repro.utils.validation import check_positive_integer, check_probability

__all__ = [
    "UpdateRule",
    "PayoffRule",
    "DiscreteReplicatorRule",
    "EulerReplicatorRule",
    "LogitRule",
    "SmoothedBestResponseRule",
    "InvasionRule",
    "DynamicsBatchResult",
    "DynamicsEngine",
    "make_rule",
    "replicator_batch",
    "logit_batch",
    "best_response_batch",
    "invasion_batch",
]


# --------------------------------------------------------------------- rules
class UpdateRule(abc.ABC):
    """One step of a batched dynamic: ``states -> new states`` on active rows.

    A rule is bound to a :class:`DynamicsEngine` before the run; the engine
    exposes the padded value batch, per-row player counts, the validity mask
    and a precomputed congestion table, so rules never re-tabulate anything
    inside the loop.  ``states`` are arrays of the engine's backend; per-row
    constants a rule precomputes in :meth:`bind` should be staged on the host
    and transferred once via ``engine.device``.
    """

    #: Registry/report name of the rule.
    name: str = "rule"

    def bind(self, engine: "DynamicsEngine") -> None:
        """Attach the rule to an engine and precompute per-row constants."""
        self.engine = engine

    @abc.abstractmethod
    def step(
        self, states: Any, t: int, rows: np.ndarray | None
    ) -> tuple[Any, Any | None]:
        """Advance the given (already row-sliced) states one iteration.

        ``rows`` is a host index vector of the rows being stepped, or ``None``
        when the full batch is stepped (the non-scatter backend path).
        Returns the new states plus, for rules that track it, the mean payoff
        of the *pre-update* states (used for strided payoff recording) —
        ``None`` otherwise.
        """

    def finished(self, states: Any, rows: np.ndarray | None) -> Any | None:
        """Optional extra halting condition (e.g. threshold crossing).

        Evaluated on the *post-update* states of the stepped rows; ``None``
        (the default) means only the engine's tolerance stops a row.
        """
        return None

    def final_payoffs(self, states: Any) -> Any | None:
        """Mean payoff of every row's final state (``None`` if not tracked)."""
        return None


class PayoffRule(UpdateRule):
    """Base for rules driven by the batched payoff kernel.

    ``step`` evaluates ``nu`` exactly once and hands it to :meth:`respond`;
    subclasses derive best responses, mean payoffs and update directions from
    that single evaluation instead of re-entering the kernel.
    """

    #: Whether the engine should keep a mean-payoff history for this rule.
    records_payoffs: bool = False

    def step(
        self, states: Any, t: int, rows: np.ndarray | None
    ) -> tuple[Any, Any | None]:
        xp = self.engine.xp
        nu = self.engine.site_values(states, rows)
        payoffs = xp.sum(states * nu, axis=1) if self.records_payoffs else None
        return self.respond(states, nu, t, rows), payoffs

    def final_payoffs(self, states: Any) -> Any | None:
        if not self.records_payoffs:
            return None
        xp = self.engine.xp
        nu = self.engine.site_values(states, None)
        return xp.sum(states * nu, axis=1)

    @abc.abstractmethod
    def respond(
        self, states: Any, nu: Any, t: int, rows: np.ndarray | None
    ) -> Any:
        """New states given the (single) ``nu`` evaluation of this step."""


class DiscreteReplicatorRule(PayoffRule):
    """Maynard Smith discrete replicator ``p' ~ p * (nu + shift)``.

    The per-row ``shift`` makes fitnesses positive even for aggressive
    (negative-payoff) policies, exactly as the scalar loop did.
    """

    name = "discrete"
    records_payoffs = True

    def bind(self, engine: "DynamicsEngine") -> None:
        super().bind(engine)
        # min over the zero-padded table equals min(table(k_b), 0); the shift
        # formula only reacts to negative congestion, so the padding zeros
        # are harmless.  Staged on the host once, shipped to the backend once.
        worst_congestion = engine.tables.min(axis=1)
        f_max = engine.values.max(axis=1)
        shift = np.maximum(0.0, -worst_congestion * f_max) + 1e-3 * f_max
        self.shift = engine.device(shift)

    def respond(
        self, states: Any, nu: Any, t: int, rows: np.ndarray | None
    ) -> Any:
        xp = self.engine.xp
        fitness = nu + self.engine.rows_of(self.shift, rows)[:, None]
        denominator = xp.sum(states * fitness, axis=1, keepdims=True)
        return states * fitness / denominator


class EulerReplicatorRule(PayoffRule):
    """Euler discretisation of the continuous replicator equation."""

    name = "euler"
    records_payoffs = True

    def __init__(self, step_size: float = 0.2):
        if step_size <= 0:
            raise ValueError("step_size must be positive")
        self.step_size = float(step_size)

    def respond(
        self, states: Any, nu: Any, t: int, rows: np.ndarray | None
    ) -> Any:
        xp = self.engine.xp
        mean = xp.sum(states * nu, axis=1, keepdims=True)
        new = xp.clip(states + self.step_size * states * (nu - mean), 0.0, None)
        totals = xp.sum(new, axis=1, keepdims=True)
        if bool(xp.any(totals <= 0)):
            raise RuntimeError("euler replicator step annihilated the population state")
        return new / totals


class LogitRule(PayoffRule):
    """Damped logit (smooth fictitious play) response with decaying step."""

    name = "logit"

    def __init__(
        self,
        rationality: float = 50.0,
        damping: float = 0.5,
        step_decay: float = 0.01,
    ):
        if rationality <= 0:
            raise ValueError("rationality must be positive")
        if not 0 < damping <= 1:
            raise ValueError("damping must lie in (0, 1]")
        if step_decay < 0:
            raise ValueError("step_decay must be non-negative")
        self.rationality = float(rationality)
        self.damping = float(damping)
        self.step_decay = float(step_decay)

    def respond(
        self, states: Any, nu: Any, t: int, rows: np.ndarray | None
    ) -> Any:
        xp = self.engine.xp
        # Padding sites get -inf logits so the softmax never leaks mass onto
        # them (their nu of zero could otherwise beat negative real payoffs).
        mask = self.engine.rows_of(self.engine.mask_dev, rows)
        logits = xp.where(mask, self.rationality * nu, self.engine.neg_inf_dev)
        logits = logits - xp.max(logits, axis=1, keepdims=True)
        weights = xp.exp(logits)
        response = weights / xp.sum(weights, axis=1, keepdims=True)
        gamma = self.damping / (1.0 + self.step_decay * t)
        return (1.0 - gamma) * states + gamma * response


class SmoothedBestResponseRule(PayoffRule):
    """Damped best response mixing uniformly over near-maximal sites."""

    name = "best-response"

    def __init__(
        self,
        step_size: float = 0.5,
        step_decay: float = 0.01,
        tie_atol: float = 1e-12,
    ):
        if step_size <= 0 or not (0 <= step_decay):
            raise ValueError("step_size must be positive and step_decay non-negative")
        self.step_size = float(step_size)
        self.step_decay = float(step_decay)
        self.tie_atol = float(tie_atol)

    def respond(
        self, states: Any, nu: Any, t: int, rows: np.ndarray | None
    ) -> Any:
        xp = self.engine.xp
        fdt = self.engine.backend.float_dtype
        mask = self.engine.rows_of(self.engine.mask_dev, rows)
        masked_nu = xp.where(mask, nu, self.engine.neg_inf_dev)
        best = masked_nu >= xp.max(masked_nu, axis=1, keepdims=True) - self.tie_atol
        bestf = xp.astype(best, fdt)
        response = bestf / xp.sum(bestf, axis=1, keepdims=True)
        gamma = self.step_size / (1.0 + self.step_decay * t)
        return (1.0 - gamma) * states + gamma * response


class InvasionRule(UpdateRule):
    """Two-type replicator on the mutant share (state width 1 per row).

    The state is the ``(B, 1)`` mutant-share vector; every step builds the
    per-row population mixture, evaluates its ``nu`` **once**, and derives
    both the resident and the mutant payoff from it — the scalar loop used to
    evaluate the kernel twice per step, once inside each ``mixture_payoff``.
    """

    name = "invasion"

    def __init__(
        self,
        resident: np.ndarray,
        mutant: np.ndarray,
        *,
        selection_strength: float = 0.5,
        extinction_threshold: float = 1e-6,
        fixation_threshold: float = 1.0 - 1e-6,
    ):
        if selection_strength <= 0:
            raise ValueError("selection_strength must be positive")
        self._resident_host = np.asarray(ensure_numpy(resident), dtype=float)
        self._mutant_host = np.asarray(ensure_numpy(mutant), dtype=float)
        self.selection_strength = float(selection_strength)
        self.extinction_threshold = float(extinction_threshold)
        self.fixation_threshold = float(fixation_threshold)

    def bind(self, engine: "DynamicsEngine") -> None:
        super().bind(engine)
        shape = engine.values.shape
        if self._resident_host.shape != shape or self._mutant_host.shape != shape:
            raise ValueError(
                "resident and mutant strategy matrices must match the padded "
                f"batch shape {shape}"
            )
        self.resident = engine.device(self._resident_host)
        self.mutant = engine.device(self._mutant_host)
        # Payoff differences are normalised by the largest site value so the
        # share step is dimensionless (values are positive, so max == max|.|).
        self.scale = engine.device(engine.values.max(axis=1))

    def step(
        self, states: Any, t: int, rows: np.ndarray | None
    ) -> tuple[Any, Any | None]:
        xp = self.engine.xp
        share = states[:, 0]
        resident = self.engine.rows_of(self.resident, rows)
        mutant = self.engine.rows_of(self.mutant, rows)
        mixed = (1.0 - share)[:, None] * resident + share[:, None] * mutant
        nu = self.engine.site_values(mixed, rows)  # one kernel pass per step
        scale = self.engine.rows_of(self.scale, rows)
        delta = xp.sum((mutant - resident) * nu, axis=1) / scale
        new = share + self.selection_strength * share * (1.0 - share) * delta
        return xp.clip(new, 0.0, 1.0)[:, None], None

    def finished(self, states: Any, rows: np.ndarray | None) -> Any:
        share = states[:, 0]
        return (share <= self.extinction_threshold) | (share >= self.fixation_threshold)


# -------------------------------------------------------------------- result
@dataclass(frozen=True)
class DynamicsBatchResult:
    """Outcome of one :class:`DynamicsEngine` run over a ``(B, M)`` batch.

    Attributes
    ----------
    states:
        ``(B, M)`` final (raw, un-renormalised) states.
    converged:
        ``(B,)`` booleans — ``True`` where the tolerance (or the rule's own
        halting condition) was met before the iteration cap.
    iterations:
        ``(B,)`` number of update steps each row actually performed (frozen
        rows stop counting; unconverged rows show the cap).
    record_times:
        ``(R,)`` iteration numbers of the snapshots (``0`` first).
    records:
        ``(R, B, M)`` state snapshots (``records[0]`` is the initial batch).
    payoff_records:
        ``(R - 1, B)`` mean payoffs at the recorded iterations (empty when the
        rule does not track payoffs).
    final_payoffs:
        ``(B,)`` mean payoffs of the final states (``None`` when untracked).
    sizes:
        ``(B,)`` true (unpadded) site counts.
    rule_name:
        Name of the update rule that produced the run.

    All array attributes are host NumPy arrays regardless of the backend the
    engine stepped on (snapshots are materialised on the host as they are
    recorded).
    """

    states: np.ndarray
    converged: np.ndarray
    iterations: np.ndarray
    record_times: np.ndarray
    records: np.ndarray
    payoff_records: np.ndarray
    final_payoffs: np.ndarray | None
    sizes: np.ndarray
    rule_name: str

    @property
    def batch_size(self) -> int:
        """Number of rows ``B``."""
        return int(self.states.shape[0])

    def strategy(self, row: int) -> Strategy:
        """Final state of ``row`` as a normalised :class:`Strategy` (padding trimmed)."""
        size = int(self.sizes[row])
        p = self.states[row, :size]
        return Strategy(np.clip(p, 0.0, None) / p.sum())

    def trajectory(self, row: int) -> np.ndarray:
        """Per-row recorded trajectory, exactly as the scalar loops built it.

        The rows are the initial state, every stride snapshot taken while the
        row was still active, and the final state when it differs from the
        last snapshot.
        """
        size = int(self.sizes[row])
        limit = int(self.iterations[row])
        states = [
            self.records[index, row, :size]
            for index, t in enumerate(self.record_times)
            if t <= limit
        ]
        final = self.states[row, :size]
        if not np.array_equal(states[-1], final):
            states.append(final)
        return np.asarray(states)

    def payoff_history(self, row: int) -> np.ndarray:
        """Recorded mean payoffs of ``row`` plus the final-state payoff."""
        if self.final_payoffs is None:
            raise ValueError(f"rule {self.rule_name!r} does not track payoffs")
        limit = int(self.iterations[row])
        history = [
            self.payoff_records[index, row]
            for index, t in enumerate(self.record_times[1:])
            if t <= limit
        ]
        history.append(self.final_payoffs[row])
        return np.asarray(history)


# -------------------------------------------------------------------- engine
class DynamicsEngine:
    """Evolve a whole batch of game states under one pluggable update rule.

    Parameters
    ----------
    values:
        Instance batch: a :class:`~repro.batch.padding.PaddedValues`, a 2-D
        matrix of equal-width profiles, or any iterable of profiles (ragged
        ``M`` allowed).
    k:
        Player count — a scalar for the whole batch or a per-row ``(B,)``
        vector.
    policy:
        Congestion policy shared by every row (validated once per distinct
        ``k``).
    rule:
        The :class:`UpdateRule` to iterate.
    max_iter, tol:
        Iteration cap and per-row L1 convergence tolerance.  ``tol=None``
        disables tolerance-based stopping (rules with their own
        :meth:`UpdateRule.finished` condition, e.g. invasion, run until they
        halt or hit the cap).
    record_every:
        Snapshot stride of the trajectory recording.
    backend:
        Array backend the stepping runs on — a name, a resolved
        :class:`~repro.backend.Backend`, or ``None`` for the active one.
    compile:
        Opt-in compiled stepping: on the torch backend the per-rule step is
        wrapped in ``torch.compile`` (graphs cached per rule and
        power-of-two width bucket, see :mod:`repro.batch.compiled`); on any
        other backend — or when compilation is unavailable — the flag
        silently falls back to eager stepping.
    """

    def __init__(
        self,
        values: PaddedValues | Sequence | np.ndarray,
        k: Sequence[int] | np.ndarray | int,
        policy: CongestionPolicy,
        rule: UpdateRule,
        *,
        max_iter: int = 20_000,
        tol: float | None = 1e-12,
        record_every: int = 100,
        backend: Backend | str | None = None,
        compile: bool = False,
    ) -> None:
        self.backend = resolve_backend(backend)
        self.xp = self.backend.xp
        self.padded = as_padded(values)
        #: Host-side views (rules stage their per-row constants from these).
        self.values = self.padded.values
        self.mask = self.padded.mask
        self.sizes = self.padded.sizes
        self.ks = as_k_vector(k, self.padded.batch_size)
        self.policy = policy
        for distinct_k in np.unique(self.ks):
            policy.validate(int(distinct_k))
        self.max_iter = check_positive_integer(max_iter, "max_iter")
        self.tol = None if tol is None else float(tol)
        self.record_every = check_positive_integer(record_every, "record_every")
        #: (B, n_max + 1) host congestion tables, computed once per run.
        self.tables = congestion_table_batch(policy, self.ks - 1)
        # Everything the loop touches is staged on the backend exactly once,
        # under one expected-transfer boundary: per-step work never crosses
        # the host/device seam again.
        with expected_transfer():
            #: Backend-resident copies used by every step.
            self.values_dev = self.padded.values_for(self.backend)
            self.mask_dev = self.padded.mask_for(self.backend)
            self.fmask_dev = self.padded.fmask_for(self.backend)
            self.tables_dev = self.device(self.tables)
            self.sizes_dev = from_numpy(
                self.backend, self.sizes, dtype=self.backend.int_dtype
            )
            #: Device scalars shared by rules (a per-step ``asarray`` would
            #: land on the default device, not the engine's).
            self.neg_inf_dev = self.device(np.asarray(-np.inf))
            self.zero_dev = self.device(np.asarray(0.0))
            #: Precomputed binomial-PMF constants for full-batch stepping
            #: (the NumPy subset path keeps its original plan-free kernel).
            self._pmf_plan = (
                None
                if self.backend.is_numpy
                else make_binomial_pmf_plan(self.ks - 1, backend=self.backend)
            )
            self.rule = rule
            rule.bind(self)
        self.compile = bool(compile)
        self._compiled_step = compiled_step_for(self) if self.compile else None

    @property
    def batch_size(self) -> int:
        """Number of rows ``B``."""
        return self.padded.batch_size

    # --------------------------------------------------------- backend plumbing
    def device(self, array: np.ndarray) -> Any:
        """Ship a host float array to the engine's backend (no-op on NumPy)."""
        return from_numpy(self.backend, np.asarray(array, dtype=float),
                          dtype=self.backend.float_dtype)

    def rows_of(self, array: Any, rows: np.ndarray | None) -> Any:
        """Slice backend-resident per-row constants to the stepped rows."""
        return take_rows(self.backend, array, rows)

    # ------------------------------------------------------------ payoff kernel
    def site_values(self, states: Any, rows: np.ndarray | None) -> Any:
        """Batched ``nu`` for the given rows, reusing the precomputed tables.

        ``states`` is an array of the engine's backend; the result stays on
        the backend (rules consume it in place).
        """
        values = self.rows_of(self.values_dev, rows)
        fmask = self.rows_of(self.fmask_dev, rows)
        tables = self.rows_of(self.tables_dev, rows)
        n = (self.ks - 1) if rows is None else (self.ks[rows] - 1)
        factor = occupancy_congestion_factor_batch(
            self.policy,
            states,
            n,
            tables=tables,
            backend=self.backend,
            plan=self._pmf_plan if rows is None else None,
        )
        return values * factor * fmask

    def initial_states(self) -> Any:
        """Per-row uniform distributions (zero on padding columns), backend-resident."""
        xp = self.xp
        fdt = self.backend.float_dtype
        uniform = 1.0 / xp.astype(self.sizes_dev, fdt)[:, None]
        return xp.where(self.mask_dev, uniform, self.zero_dev)

    # -------------------------------------------------------------------- loop
    def run(self, initial: np.ndarray | None = None) -> DynamicsBatchResult:
        """Iterate the rule until every row converges, halts, or hits the cap."""
        if initial is None:
            states = self.initial_states()
        else:
            host = np.array(ensure_numpy(initial), dtype=float, copy=True)
            if host.ndim == 1:
                host = host[None, :]
            if host.shape[0] != self.batch_size:
                raise ValueError(
                    f"initial states have {host.shape[0]} rows for a batch "
                    f"of {self.batch_size}"
                )
            with expected_transfer():
                states = self.device(host)
        if self.backend.is_numpy:
            return self._run_host(states)
        return self._run_device(states)

    def _run_host(self, states: Any) -> DynamicsBatchResult:
        """NumPy path: step only the active row subset, scatter back in place.

        Byte-identical to the pre-backend engine; control flow (masks,
        counters) is host NumPy like the data, so there is nothing to
        transfer.
        """
        xp = self.xp
        be = self.backend
        batch = self.batch_size
        converged = np.zeros(batch, dtype=bool)
        iterations = np.full(batch, self.max_iter, dtype=np.int64)
        active = np.arange(batch)
        record_times = [0]
        records = [np.array(to_numpy(states), copy=True)]
        payoff_records: list[np.ndarray] = []
        current_payoffs = np.zeros(batch)

        for t in range(1, self.max_iter + 1):
            sub = take_rows(be, states, active)
            new_sub, payoffs = self.rule.step(sub, t, active)
            change = to_numpy(xp.sum(xp.abs(new_sub - sub), axis=1))
            scatter_rows(be, states, active, new_sub)
            post = new_sub
            payoffs_host = None if payoffs is None else to_numpy(payoffs)
            halted = self.rule.finished(post, active)
            halted_host = None if halted is None else to_numpy(halted)

            recording = t % self.record_every == 0
            if recording and payoffs_host is not None:
                current_payoffs[active] = payoffs_host

            done = (
                np.zeros(active.size, dtype=bool)
                if self.tol is None
                else change <= self.tol
            )
            if halted_host is not None:
                done |= halted_host
            if done.any():
                finished_rows = active[done]
                converged[finished_rows] = True
                iterations[finished_rows] = t
                active = active[~done]

            if recording:
                record_times.append(t)
                records.append(np.array(to_numpy(states), copy=True))
                payoff_records.append(current_payoffs.copy())
            if active.size == 0:
                break

        final = self.rule.final_payoffs(states)
        return DynamicsBatchResult(
            states=np.array(to_numpy(states), copy=True),
            converged=converged,
            iterations=iterations,
            record_times=np.asarray(record_times, dtype=np.int64),
            records=np.asarray(records),
            payoff_records=np.asarray(payoff_records).reshape(
                len(payoff_records), batch
            ),
            final_payoffs=None if final is None else to_numpy(final),
            sizes=self.sizes,
            rule_name=self.rule.name,
        )

    def _run_device(self, states: Any) -> DynamicsBatchResult:
        """Device path (every non-NumPy backend): the whole loop stays native.

        The full batch is stepped every iteration and finished rows are
        frozen with ``where`` (bit-exact pass-through, no scatter); the
        convergence mask, iteration counters, payoff carries and trajectory
        snapshots are all device tensors.  The only per-iteration host
        contact is one scalar ``any(active)`` synchronisation deciding the
        early exit — no array ever crosses the seam until the single
        expected-transfer materialisation at the end.
        """
        xp = self.xp
        be = self.backend
        batch = self.batch_size
        with expected_transfer():  # loop-state staging, once per run
            active = from_numpy(be, np.ones(batch, dtype=bool), dtype=be.bool_dtype)
            converged = from_numpy(be, np.zeros(batch, dtype=bool), dtype=be.bool_dtype)
            iterations = from_numpy(
                be, np.full(batch, self.max_iter, dtype=np.int64), dtype=be.int_dtype
            )
            current_payoffs = from_numpy(be, np.zeros(batch), dtype=be.float_dtype)
            step_one = from_numpy(be, np.asarray(1, dtype=np.int64), dtype=be.int_dtype)
            step_index = from_numpy(
                be, np.asarray(0, dtype=np.int64), dtype=be.int_dtype
            )

        step_fn = self._compiled_step
        record_times = [0]
        records = [states]
        payoff_records: list[Any] = []

        for t in range(1, self.max_iter + 1):
            step_index = step_index + step_one  # device-side iteration counter
            if step_fn is None:
                new_full, payoffs = self.rule.step(states, t, None)
            else:
                new_full, payoffs = step_fn(self.rule, states, t)
            change = xp.sum(xp.abs(new_full - states), axis=1)
            states = xp.where(active[:, None], new_full, states)
            halted = self.rule.finished(states, None)

            recording = t % self.record_every == 0
            if recording and payoffs is not None:
                current_payoffs = xp.where(active, payoffs, current_payoffs)

            done = None
            if self.tol is not None:
                done = active & (change <= self.tol)
            if halted is not None:
                extra = active & halted
                done = extra if done is None else (done | extra)
            if done is not None:
                converged = converged | done
                iterations = xp.where(done, step_index, iterations)
                active = active & ~done

            if recording:
                record_times.append(t)
                records.append(states)
                payoff_records.append(current_payoffs)
            # Deliberate scalar synchronisation: one bool per iteration
            # decides the early exit; no array payload crosses the seam.
            if not bool(xp.any(active)):
                break

        final = self.rule.final_payoffs(states)
        with expected_transfer():  # the single documented host materialisation
            states_host = np.array(to_numpy(states), dtype=np.float64, copy=True)
            converged_host = np.asarray(to_numpy(converged), dtype=bool)
            iterations_host = np.asarray(to_numpy(iterations), dtype=np.int64)
            records_host = np.asarray(to_numpy(xp.stack(records)), dtype=np.float64)
            payoffs_host = (
                np.asarray(to_numpy(xp.stack(payoff_records)), dtype=np.float64)
                if payoff_records
                else np.zeros((0, batch))
            )
            final_host = (
                None if final is None else np.asarray(to_numpy(final), dtype=np.float64)
            )
        return DynamicsBatchResult(
            states=states_host,
            converged=converged_host,
            iterations=iterations_host,
            record_times=np.asarray(record_times, dtype=np.int64),
            records=records_host,
            payoff_records=payoffs_host,
            final_payoffs=final_host,
            sizes=self.sizes,
            rule_name=self.rule.name,
        )


# ------------------------------------------------------------- entry points
_REPLICATOR_METHODS = ("discrete", "euler")


def make_rule(rule: str | UpdateRule, **options) -> UpdateRule:
    """Resolve a rule name (``discrete`` / ``euler`` / ``logit`` /
    ``best-response``) into an :class:`UpdateRule` instance."""
    if isinstance(rule, UpdateRule):
        return rule
    factories = {
        "discrete": DiscreteReplicatorRule,
        "euler": EulerReplicatorRule,
        "logit": LogitRule,
        "best-response": SmoothedBestResponseRule,
    }
    if rule not in factories:
        raise ValueError(
            f"unknown dynamics rule {rule!r}; available: {', '.join(sorted(factories))}"
        )
    return factories[rule](**options)


def replicator_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    initial: np.ndarray | None = None,
    method: str = "discrete",
    step_size: float = 0.2,
    max_iter: int = 20_000,
    tol: float = 1e-12,
    record_every: int = 100,
    backend: Backend | str | None = None,
    compile: bool = False,
) -> DynamicsBatchResult:
    """Replicator dynamics for a whole batch (see :func:`repro.dynamics.replicator_dynamics`)."""
    if method not in _REPLICATOR_METHODS:
        raise ValueError("method must be 'discrete' or 'euler'")
    if step_size <= 0:
        raise ValueError("step_size must be positive")
    rule: UpdateRule = (
        DiscreteReplicatorRule() if method == "discrete" else EulerReplicatorRule(step_size)
    )
    engine = DynamicsEngine(
        values, k, policy, rule, max_iter=max_iter, tol=tol,
        record_every=record_every, backend=backend, compile=compile,
    )
    return engine.run(initial)


def logit_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    rationality: float = 50.0,
    damping: float = 0.5,
    step_decay: float = 0.01,
    initial: np.ndarray | None = None,
    max_iter: int = 50_000,
    tol: float = 1e-13,
    record_every: int = 500,
    backend: Backend | str | None = None,
    compile: bool = False,
) -> DynamicsBatchResult:
    """Logit dynamics for a whole batch (see :func:`repro.dynamics.logit_dynamics`)."""
    rule = LogitRule(rationality=rationality, damping=damping, step_decay=step_decay)
    engine = DynamicsEngine(
        values, k, policy, rule, max_iter=max_iter, tol=tol,
        record_every=record_every, backend=backend, compile=compile,
    )
    return engine.run(initial)


def best_response_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    initial: np.ndarray | None = None,
    step_size: float = 0.5,
    step_decay: float = 0.01,
    max_iter: int = 10_000,
    tol: float = 1e-10,
    record_every: int = 100,
    tie_atol: float = 1e-12,
    backend: Backend | str | None = None,
    compile: bool = False,
) -> DynamicsBatchResult:
    """Damped best-response dynamics for a whole batch
    (see :func:`repro.dynamics.best_response_dynamics`)."""
    rule = SmoothedBestResponseRule(
        step_size=step_size, step_decay=step_decay, tie_atol=tie_atol
    )
    engine = DynamicsEngine(
        values, k, policy, rule, max_iter=max_iter, tol=tol,
        record_every=record_every, backend=backend, compile=compile,
    )
    return engine.run(initial)


def invasion_batch(
    values: PaddedValues | Sequence | np.ndarray,
    residents: np.ndarray,
    mutants: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    initial_shares: np.ndarray | float = 0.05,
    selection_strength: float = 0.5,
    max_iter: int = 5_000,
    extinction_threshold: float = 1e-6,
    fixation_threshold: float = 1.0 - 1e-6,
    backend: Backend | str | None = None,
    compile: bool = False,
) -> DynamicsBatchResult:
    """Mutant-share dynamics for a whole batch of resident/mutant pairs.

    ``residents`` and ``mutants`` are ``(B, M_max)`` strategy matrices aligned
    with the padded value batch; the returned result's states are the
    ``(B, 1)`` final shares (``trajectory(row)`` recovers each row's full
    share history, recorded every step like the scalar loop).
    """
    padded = as_padded(values)
    rule = InvasionRule(
        residents,
        mutants,
        selection_strength=selection_strength,
        extinction_threshold=extinction_threshold,
        fixation_threshold=fixation_threshold,
    )
    engine = DynamicsEngine(
        padded, k, policy, rule, max_iter=max_iter, tol=None,
        record_every=1, backend=backend, compile=compile,
    )
    shares = np.broadcast_to(
        np.asarray(initial_shares, dtype=float), (padded.batch_size,)
    )
    for share in np.unique(shares):
        check_probability(float(share), "initial_share")
    return engine.run(shares[:, None])
