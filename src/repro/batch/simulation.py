"""Batched Monte-Carlo dispersal: whole instance batches of trials per draw.

The scalar :class:`repro.simulation.engine.DispersalSimulator` simulates one
``(f, k, policy)`` instance per call; a Monte-Carlo calibration sweep over an
experiment grid therefore re-enters Python once per cell and loops
``np.bincount`` once per trial batch.  The kernels here simulate **all**
instances of a padded batch at once:

* one ``(n_chunk, B, k_max)`` inverse-CDF draw per memory chunk, inverting
  every row's strategy CDF in a single ``searchsorted`` pass over a stacked
  CDF layout (the :mod:`repro.utils.sampling` trick extended to the batch
  axis);
* per-trial occupancy counts and per-row occupancy histograms through the
  :func:`repro.backend.batched_bincount` segment-sum adapter — one flat
  ``bincount`` per chunk instead of one Python call per trial;
* coverage / payoff / collision statistics and their standard errors
  accumulated as ``(B,)`` tensors.

Memory is bounded by ``max_chunk_draws`` (default ``2**22`` = ~4M uniforms,
about 32 MB of doubles): requests whose ``B * n_trials * k_max`` exceeds the
cap are split into trial chunks and the statistics are accumulated across
chunks.  Chunk draws are laid out trial-major, so the sampled site choices —
and with them every integer statistic (occupancy histograms, collision
counts, visit frequencies) — are **bit-identical for every chunk size** (see
the seed policy in :mod:`repro.utils.rng`); the accumulated floating-point
means and standard errors agree to summation rounding (``~1e-15``
relative).

Backend note: under a non-NumPy backend the whole chunk pipeline is
**device-resident**: uniforms are placed on the device once per chunk (a
documented :func:`~repro.backend.expected_transfer` boundary, like the input
staging), the inverse-CDF inversion, occupancy counts, histograms and all
statistic sums stay native, and the host is touched exactly once — when the
accumulated sums are materialised into the result dataclass.  Wrap a call in
:func:`repro.backend.track_transfers` to assert the zero-mid-kernel-transfer
property.  The NumPy path is bit-identical to the pre-backend code; every
public result is a plain host NumPy array with documented dtypes (``int64``
occupancy histograms, ``float64`` frequencies and statistics), whatever
backend was active.

Every kernel agrees with its scalar counterpart (the scalar engine is a thin
``B = 1`` wrapper over this module; property-tested in
``tests/test_batch_simulation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.backend import (
    Backend,
    batched_bincount,
    ensure_numpy,
    expected_transfer,
    from_numpy,
    random_uniform,
    resolve_backend,
    take_along_axis,
    to_numpy,
)
from repro.batch.padding import PaddedValues
from repro.batch.payoffs import as_k_vector, congestion_table_batch
from repro.batch.solvers import as_padded
from repro.core.policies import CongestionPolicy
from repro.utils.rng import as_generator
from repro.utils.sampling import STACK_SPACING, stacked_flat_cdfs
from repro.utils.validation import check_positive_integer

__all__ = [
    "DEFAULT_MAX_CHUNK_DRAWS",
    "DispersalSimulationBatch",
    "ProfileSimulationBatch",
    "as_strategy_batch",
    "simulate_dispersal_batch",
    "simulate_profile_batch",
]

#: Default ceiling on the number of uniform draws materialised per chunk
#: (``B * k_max`` draws per trial).  2**22 doubles is ~32 MB — the whole
#: chunk pipeline (choices, occupancies, payoffs) peaks at a small multiple
#: of that, so even thousand-row sweeps stay within a few hundred MB.
DEFAULT_MAX_CHUNK_DRAWS = 1 << 22

# --------------------------------------------------------------------------
# staging helpers
# --------------------------------------------------------------------------


def as_strategy_batch(
    strategies: np.ndarray | Sequence[Any], padded: PaddedValues
) -> np.ndarray:
    """Validate a batch of strategies into a host ``(B, M_max)`` matrix.

    Parameters
    ----------
    strategies:
        A full ``(B, M_max)`` probability matrix, or a length-``B`` sequence
        of per-row strategies (:class:`~repro.core.strategy.Strategy`
        objects or 1-D vectors, ragged lengths allowed as long as each row
        matches its instance's site count).
    padded:
        The instance batch the strategies ride on.  Padded rows are sorted
        non-increasing, so strategy entries must follow the same site order.

    Returns
    -------
    numpy.ndarray
        Host ``(B, M_max)`` float matrix; padding columns are exactly zero
        and every row sums to one over its real sites.
    """
    b, m = padded.batch_size, padded.width
    arr = strategies
    if not isinstance(arr, np.ndarray):
        if hasattr(arr, "__array_namespace__"):
            arr = ensure_numpy(arr)
        else:
            rows = list(arr)
            if len(rows) != b:
                raise ValueError(f"expected {b} strategies, got {len(rows)}")
            out = np.zeros((b, m))
            for index, row in enumerate(rows):
                vec = np.asarray(ensure_numpy(row), dtype=float).ravel()
                size = int(padded.sizes[index])
                if vec.size not in (size, m):
                    raise ValueError(
                        f"strategy {index} has {vec.size} entries; instance has "
                        f"{size} sites (padded width {m})"
                    )
                out[index, : vec.size] = vec
            arr = out
    arr = np.asarray(arr, dtype=float)
    if arr.shape != (b, m):
        raise ValueError(f"strategies must form a ({b}, {m}) matrix, got {arr.shape}")
    if np.any(arr < 0):
        raise ValueError("strategy probabilities must be non-negative")
    if np.any(np.abs(arr * ~padded.mask) > 1e-12):
        raise ValueError("strategies must place zero probability on padding columns")
    arr = np.where(padded.mask, arr, 0.0)
    sums = arr.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        bad = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"every strategy row must sum to one; row {bad} sums to {sums[bad]!r}"
        )
    return arr


def _draw_choices(
    flat_cdfs_dev: Any,
    shifts_dev: Any,
    n_trials: int,
    rng: np.random.Generator,
    be: Backend,
) -> Any:
    """One trial-major ``(n_trials, B, k_max)`` inverse-CDF draw.

    ``shifts_dev`` is the device ``(B, k_max)`` matrix of stacked-CDF row
    shifts (symmetric draws repeat each row's shift across the player axis;
    profile draws give every player their own row).  The uniforms always come
    from the host ``rng`` — trial-major, so chunked draws concatenate to the
    unchunked stream — and are placed on the device once per chunk (the
    documented draw boundary); the ``searchsorted`` inversion runs on the
    active backend.  Returns **device** choices (columns are *global*
    stacked-row positions; the caller subtracts the row offsets and clamps,
    also on the device).
    """
    xp = be.xp
    b, k_max = shifts_dev.shape
    with expected_transfer():
        u = random_uniform(be, rng, (n_trials, int(b), int(k_max)))
    flat = xp.reshape(u + shifts_dev[None, :, :], (-1,))
    positions = xp.searchsorted(flat_cdfs_dev, flat, side="right")
    return xp.reshape(positions, (n_trials, int(b), int(k_max)))


def _chunk_trials(n_trials: int, batch_size: int, k_max: int, max_chunk_draws: int) -> int:
    """Trials per chunk under the ``max_chunk_draws`` memory cap (at least 1)."""
    max_chunk_draws = check_positive_integer(max_chunk_draws, "max_chunk_draws")
    return max(1, min(n_trials, max_chunk_draws // max(1, batch_size * k_max)))


def _sem_vector(sq_sum: np.ndarray, mean: np.ndarray, n_trials: int) -> np.ndarray:
    """Standard errors of per-trial means; ``nan`` rows when ``n_trials == 1``."""
    if n_trials == 1:
        return np.full(mean.shape, np.nan)
    var = np.maximum(sq_sum / n_trials - mean**2, 0.0)
    return np.sqrt(var / n_trials)


# --------------------------------------------------------------------------
# symmetric-profile simulation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class DispersalSimulationBatch:
    """Summary statistics of a symmetric-profile simulation, one row per instance.

    All "mean" quantities are per-trial averages and the matching ``*_sems``
    entries are standard errors of those means; every ``*_sems`` entry is
    ``nan`` when ``n_trials == 1`` (a single trial carries no spread
    information).  Every attribute is a plain host NumPy array with the
    documented dtype, whatever array backend ran the draw inversion.

    Attributes
    ----------
    n_trials:
        Trials simulated per instance.
    k:
        ``(B,)`` ``int64`` per-row player counts.
    coverage_means, coverage_sems:
        ``(B,)`` ``float64`` per-trial coverage statistics.
    payoff_means, payoff_sems:
        ``(B,)`` ``float64`` per-player average payoff statistics.
    collision_rates:
        ``(B,)`` ``float64`` fraction of ``(trial, player)`` pairs that
        shared their site.
    sites_visited_means:
        ``(B,)`` ``float64`` mean number of distinct sites visited per trial.
    occupancy_histograms:
        ``(B, k_max + 1)`` ``int64``; entry ``[b, l]`` counts the
        ``(trial, site)`` pairs of row ``b`` with exactly ``l`` visitors
        (real sites only; columns beyond ``k_b`` are zero).
    site_visit_frequencies:
        ``(B, M_max)`` ``float64`` fraction of trials in which each site
        received at least one visitor; padding columns are zero.
    padded:
        The instance batch of the ``B`` axis.
    """

    n_trials: int
    k: np.ndarray
    coverage_means: np.ndarray
    coverage_sems: np.ndarray
    payoff_means: np.ndarray
    payoff_sems: np.ndarray
    collision_rates: np.ndarray
    sites_visited_means: np.ndarray
    occupancy_histograms: np.ndarray
    site_visit_frequencies: np.ndarray
    padded: PaddedValues


def simulate_dispersal_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    *,
    max_chunk_draws: int = DEFAULT_MAX_CHUNK_DRAWS,
    backend: Backend | str | None = None,
) -> DispersalSimulationBatch:
    """Simulate ``n_trials`` symmetric-profile games for every instance at once.

    The batch counterpart of :class:`repro.simulation.engine.DispersalSimulator.run`
    (which is a thin ``B = 1`` wrapper over this kernel): row ``b`` plays
    ``k_b`` i.i.d. players drawing sites from ``strategies[b]`` on instance
    ``b``, and all rows share each trial-major uniform block.

    Parameters
    ----------
    values:
        Instance batch (ragged ``M`` allowed; see
        :func:`~repro.batch.solvers.as_padded`).
    strategies:
        Per-row strategies (see :func:`as_strategy_batch`).
    k:
        Player count — scalar or per-row ``(B,)`` vector.
    policy:
        Congestion policy shared by every row (validated at the largest
        ``k_b``).
    n_trials:
        Trials per instance.
    rng:
        Seed or host generator (see :func:`repro.utils.rng.as_generator`).
    max_chunk_draws:
        Memory cap: at most this many uniforms (= ``B * k_max`` per trial)
        are materialised per chunk.  The sampled choices (and all integer
        statistics) are bit-identical for every cap value; accumulated float
        statistics agree to summation rounding.
    backend:
        Array backend running the ``searchsorted`` inversion (``None`` =
        active backend).  Statistics are host-side; results never depend on
        the choice.
    """
    n_trials = check_positive_integer(n_trials, "n_trials")
    be = resolve_backend(backend)
    generator = as_generator(rng)
    padded = as_padded(values)
    b, m = padded.batch_size, padded.width
    ks = as_k_vector(k, b)
    k_max = int(ks.max())
    policy.validate(k_max)
    probabilities = as_strategy_batch(strategies, padded)

    row_offsets = np.broadcast_to(np.arange(b, dtype=np.int64)[:, None], (b, k_max))
    with expected_transfer():  # input staging: one upload per kernel call
        flat_cdfs = from_numpy(be, stacked_flat_cdfs(probabilities), dtype=be.float_dtype)
        shifts = from_numpy(be, STACK_SPACING * row_offsets, dtype=be.float_dtype)
        offsets = from_numpy(be, row_offsets * m, dtype=be.int_dtype)
        limits = from_numpy(be, (padded.sizes - 1)[None, :, None], dtype=be.int_dtype)
    accum = _Accumulators(padded, ks, policy, profile=False, backend=be)

    xp = be.xp
    chunk = _chunk_trials(n_trials, b, k_max, max_chunk_draws)
    remaining = n_trials
    while remaining > 0:
        batch = min(remaining, chunk)
        positions = _draw_choices(flat_cdfs, shifts, batch, generator, be)
        choices = xp.minimum(positions - offsets[None, :, :], limits)
        accum.update(choices)
        remaining -= batch

    return accum.dispersal_result(n_trials)


# --------------------------------------------------------------------------
# heterogeneous-profile simulation
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ProfileSimulationBatch:
    """Summary of simulations in which each player may use a different strategy.

    As in :class:`DispersalSimulationBatch`, all attributes are host NumPy
    arrays and every ``*_sems`` entry is ``nan`` when ``n_trials == 1``.
    ``player_payoff_means`` / ``player_payoff_sems`` are ``(B, k_max)``
    ``float64`` matrices; columns beyond a row's ``k_b`` are zero
    (respectively ``nan``), since those player slots do not exist.
    """

    n_trials: int
    k: np.ndarray
    coverage_means: np.ndarray
    coverage_sems: np.ndarray
    player_payoff_means: np.ndarray
    player_payoff_sems: np.ndarray
    padded: PaddedValues


def simulate_profile_batch(
    values: PaddedValues | Sequence | np.ndarray,
    profiles: np.ndarray | Sequence[Sequence[Any]],
    k: Sequence[int] | np.ndarray | int | None,
    policy: CongestionPolicy,
    n_trials: int,
    rng: np.random.Generator | int | None = None,
    *,
    max_chunk_draws: int = DEFAULT_MAX_CHUNK_DRAWS,
    backend: Backend | str | None = None,
) -> ProfileSimulationBatch:
    """Simulate asymmetric strategy profiles for every instance at once.

    The batch counterpart of
    :class:`repro.simulation.engine.DispersalSimulator.run_profile`.  Player
    ``i`` of row ``b`` draws from ``profiles[b][i]``; one stacked CDF over
    all ``B * k_max`` player slots inverts the whole profile draw in a single
    ``searchsorted`` pass per chunk.

    Parameters
    ----------
    values, policy, n_trials, rng, max_chunk_draws, backend:
        As in :func:`simulate_dispersal_batch`.
    profiles:
        ``(B, k_max, M_max)`` probability tensor, or a length-``B`` sequence
        of per-row strategy sequences (each of length ``k_b``).
    k:
        Per-row player counts; ``None`` infers ``k_b`` from the profile
        sequence lengths (a tensor input then means ``k_b = k_max`` for every
        row).  Rows with ``k_b < k_max`` ignore the surplus player slots.
    """
    n_trials = check_positive_integer(n_trials, "n_trials")
    be = resolve_backend(backend)
    generator = as_generator(rng)
    padded = as_padded(values)
    b, m = padded.batch_size, padded.width

    if isinstance(profiles, np.ndarray) or hasattr(profiles, "__array_namespace__"):
        tensor = np.asarray(ensure_numpy(profiles), dtype=float)
        if tensor.ndim != 3 or tensor.shape[0] != b or tensor.shape[2] != m:
            raise ValueError(
                f"profiles must form a ({b}, k_max, {m}) tensor, got {tensor.shape}"
            )
        ks = as_k_vector(tensor.shape[1] if k is None else k, b)
    else:
        rows = [list(row) for row in profiles]
        if len(rows) != b:
            raise ValueError(f"expected {b} profile rows, got {len(rows)}")
        ks = as_k_vector([len(row) for row in rows] if k is None else k, b)
        for index, row in enumerate(rows):
            if len(row) != int(ks[index]):
                raise ValueError(
                    f"profile row {index} has {len(row)} strategies for k={int(ks[index])}"
                )
        tensor = np.zeros((b, int(ks.max()), m))
        for index, row in enumerate(rows):
            tensor[index, : len(row), :] = as_strategy_batch(
                row, PaddedValues(np.tile(padded.values[index], (len(row), 1)),
                                  np.full(len(row), padded.sizes[index])),
            )
    k_max = int(ks.max())
    if tensor.shape[1] < k_max:
        raise ValueError(f"profiles provide {tensor.shape[1]} player slots for k_max={k_max}")
    tensor = tensor[:, :k_max, :]
    policy.validate(k_max)

    # Validate every *real* player slot; give the surplus slots a valid dummy
    # CDF (their draws are overwritten with the sentinel site anyway).
    player_mask = np.arange(k_max)[None, :] < ks[:, None]
    dummy = np.zeros(m)
    dummy[0] = 1.0
    flat_rows = np.where(
        player_mask.reshape(-1)[:, None],
        tensor.reshape(b * k_max, m),
        dummy[None, :],
    )
    expanded_sizes = np.repeat(padded.sizes, k_max)
    expanded = PaddedValues(np.repeat(padded.values, k_max, axis=0), expanded_sizes)
    flat_rows = as_strategy_batch(flat_rows, expanded)

    row_offsets = (
        np.arange(b, dtype=np.int64)[:, None] * k_max
        + np.arange(k_max, dtype=np.int64)[None, :]
    )
    with expected_transfer():  # input staging: one upload per kernel call
        flat_cdfs = from_numpy(be, stacked_flat_cdfs(flat_rows), dtype=be.float_dtype)
        shifts = from_numpy(be, STACK_SPACING * row_offsets, dtype=be.float_dtype)
        offsets = from_numpy(be, row_offsets * m, dtype=be.int_dtype)
        limits = from_numpy(be, (padded.sizes - 1)[None, :, None], dtype=be.int_dtype)
    accum = _Accumulators(padded, ks, policy, profile=True, backend=be)

    xp = be.xp
    chunk = _chunk_trials(n_trials, b, k_max, max_chunk_draws)
    remaining = n_trials
    while remaining > 0:
        batch = min(remaining, chunk)
        positions = _draw_choices(flat_cdfs, shifts, batch, generator, be)
        choices = xp.minimum(positions - offsets[None, :, :], limits)
        accum.update(choices)
        remaining -= batch

    return accum.profile_result(n_trials)


# --------------------------------------------------------------------------
# chunk statistics
# --------------------------------------------------------------------------


class _Accumulators:
    """Chunk-wise statistics shared by the two simulation kernels.

    Two bodies behind one interface: the NumPy path is the original host
    arithmetic, bit for bit, while non-NumPy backends accumulate every sum
    **on the device** (per-chunk heavy lifting through the
    :func:`~repro.backend.batched_bincount` segment-sum adapter either way).
    The device sums cross to the host exactly once, inside
    :meth:`_materialise`, as the documented result boundary.
    """

    def __init__(
        self,
        padded: PaddedValues,
        ks: np.ndarray,
        policy: CongestionPolicy,
        *,
        profile: bool,
        backend: Backend,
    ) -> None:
        b, m = padded.batch_size, padded.width
        k_max = int(ks.max())
        self.padded = padded
        self.ks = ks
        self.k_max = k_max
        self.profile = profile
        self.be = backend
        self.mask = padded.mask
        # Values extended with a zero sentinel column: padding players point
        # their choices at site M_max and earn exactly nothing.
        self.values_ext = np.concatenate(
            [padded.values * padded.mask, np.zeros((b, 1))], axis=1
        )
        self.tables = congestion_table_batch(policy, ks - 1)  # (B, k_max), zero-padded
        self.pad_players = np.arange(k_max)[None, :] >= ks[:, None]  # (B, k_max)
        self.rows_3d = np.arange(b)[None, :, None]

        self.coverage_sum = np.zeros(b)
        self.coverage_sq_sum = np.zeros(b)
        self.sites_visited_sum = np.zeros(b)
        self.collisions = np.zeros(b, dtype=np.int64)
        self.occupancy_histogram = np.zeros((b, k_max + 1), dtype=np.int64)
        self.site_visits = np.zeros((b, m), dtype=np.int64)
        if profile:
            self.payoff_sum = np.zeros((b, k_max))
            self.payoff_sq_sum = np.zeros((b, k_max))
        else:
            self.payoff_sum = np.zeros(b)
            self.payoff_sq_sum = np.zeros(b)
        if not backend.is_numpy:
            self._init_device()

    def _init_device(self) -> None:
        """Stage the per-batch constants and zeroed sums on the device."""
        be, b, m, k_max = self.be, self.padded.batch_size, self.padded.width, self.k_max
        xp = be.xp
        fdt, idt = be.float_dtype, be.int_dtype
        with expected_transfer():  # input staging: one upload per kernel call
            self.values_ext_dev = from_numpy(be, self.values_ext, dtype=fdt)
            self.tables_flat_dev = from_numpy(be, self.tables.reshape(-1), dtype=fdt)
            self.pad_players_dev = from_numpy(be, self.pad_players)
            self.mask_dev = from_numpy(be, self.mask)
            self.ks_f_dev = from_numpy(be, np.asarray(self.ks, dtype=float), dtype=fdt)
            self.sentinel_dev = from_numpy(be, np.asarray(m, dtype=np.int64), dtype=idt)
            self.hist_sentinel_dev = from_numpy(
                be, np.asarray(k_max + 1, dtype=np.int64), dtype=idt
            )
            # Flat-gather row offsets: ``xp.take`` over a raveled matrix
            # replaces NumPy's 2-D fancy indexing on standard namespaces.
            self.val_rows_dev = from_numpy(
                be, (np.arange(b, dtype=np.int64) * (m + 1))[None, :, None], dtype=idt
            )
            self.table_rows_dev = from_numpy(
                be, (np.arange(b, dtype=np.int64) * k_max)[None, :, None], dtype=idt
            )
        self.values_flat_dev = xp.reshape(self.values_ext_dev, (-1,))
        self.values_m_dev = self.values_ext_dev[:, :m]
        self.coverage_sum = xp.zeros((b,), dtype=fdt)
        self.coverage_sq_sum = xp.zeros((b,), dtype=fdt)
        self.sites_visited_sum = xp.zeros((b,), dtype=idt)
        self.collisions = xp.zeros((b,), dtype=idt)
        self.occupancy_histogram = xp.zeros((b, k_max + 1), dtype=idt)
        self.site_visits = xp.zeros((b, m), dtype=idt)
        shape = (b, k_max) if self.profile else (b,)
        self.payoff_sum = xp.zeros(shape, dtype=fdt)
        self.payoff_sq_sum = xp.zeros(shape, dtype=fdt)
        self._materialised = False

    def update(self, choices: Any) -> None:
        """Fold one ``(n_chunk, B, k_max)`` chunk of site choices into the sums."""
        if self.be.is_numpy:
            self._update_host(np.asarray(choices))
        else:
            self._update_device(choices)

    def _update_host(self, choices: np.ndarray) -> None:
        """Original host accumulation (bit-identical NumPy fast path)."""
        n_chunk, b, k_max = choices.shape
        m = self.padded.width
        if self.pad_players.any():
            choices = np.where(self.pad_players[None, :, :], m, choices)

        occ3 = batched_bincount(choices.reshape(n_chunk * b, k_max), m + 1)
        occ3 = occ3.reshape(n_chunk, b, m + 1)
        occ = occ3[:, :, :m]

        visited = occ > 0
        coverage = np.einsum("tbm,bm->tb", visited, self.values_ext[:, :m])
        self.coverage_sum += coverage.sum(axis=0)
        self.coverage_sq_sum += (coverage**2).sum(axis=0)
        self.sites_visited_sum += visited.sum(axis=2).sum(axis=0)
        self.site_visits += visited.sum(axis=0)

        player_occ = np.take_along_axis(occ3, choices, axis=2)
        payoffs = (
            self.values_ext[self.rows_3d, choices]
            * self.tables[self.rows_3d, player_occ - 1]
        )
        if self.profile:
            self.payoff_sum += payoffs.sum(axis=0)
            self.payoff_sq_sum += (payoffs**2).sum(axis=0)
        else:
            per_trial = payoffs.sum(axis=2) / self.ks[None, :]
            self.payoff_sum += per_trial.sum(axis=0)
            self.payoff_sq_sum += (per_trial**2).sum(axis=0)
        self.collisions += ((player_occ > 1) & ~self.pad_players[None, :, :]).sum(
            axis=(0, 2)
        )

        # Per-row occupancy histogram over real (trial, site) pairs: padding
        # sites are diverted to a sentinel bin and dropped; offsetting by the
        # row index turns the whole chunk into one flat segment-sum bincount.
        bins = self.k_max + 2
        occ_h = np.where(self.mask[None, :, :], occ, self.k_max + 1)
        occ_h += bins * np.arange(b, dtype=occ_h.dtype)[None, :, None]
        counts = np.bincount(occ_h.ravel(), minlength=b * bins).reshape(b, bins)
        self.occupancy_histogram += counts[:, : self.k_max + 1]

    def _update_device(self, choices: Any) -> None:
        """Device-resident accumulation: same sums, zero host crossings."""
        be = self.be
        xp = be.xp
        fdt, idt = be.float_dtype, be.int_dtype
        n_chunk, b, k_max = (int(s) for s in choices.shape)
        m = self.padded.width
        if bool(self.pad_players.any()):  # host-known at staging time
            choices = xp.where(self.pad_players_dev[None, :, :], self.sentinel_dev, choices)

        occ3 = batched_bincount(
            xp.reshape(choices, (n_chunk * b, k_max)), m + 1, backend=be
        )
        occ3 = xp.reshape(occ3, (n_chunk, b, m + 1))
        occ = occ3[:, :, :m]

        visited = occ > 0
        visited_f = xp.astype(visited, fdt)
        if be.supports_einsum:
            coverage = xp.einsum("tbm,bm->tb", visited_f, self.values_m_dev)
        else:
            coverage = xp.sum(visited_f * self.values_m_dev[None, :, :], axis=2)
        self.coverage_sum = self.coverage_sum + xp.sum(coverage, axis=0)
        self.coverage_sq_sum = self.coverage_sq_sum + xp.sum(coverage * coverage, axis=0)
        visited_i = xp.astype(visited, idt)
        self.sites_visited_sum = self.sites_visited_sum + xp.sum(visited_i, axis=(0, 2))
        self.site_visits = self.site_visits + xp.sum(visited_i, axis=0)

        player_occ = take_along_axis(be, occ3, choices, axis=2)
        site_vals = xp.reshape(
            xp.take(self.values_flat_dev, xp.reshape(choices + self.val_rows_dev, (-1,))),
            choices.shape,
        )
        factors = xp.reshape(
            xp.take(
                self.tables_flat_dev,
                xp.reshape(player_occ - 1 + self.table_rows_dev, (-1,)),
            ),
            choices.shape,
        )
        payoffs = site_vals * factors
        if self.profile:
            self.payoff_sum = self.payoff_sum + xp.sum(payoffs, axis=0)
            self.payoff_sq_sum = self.payoff_sq_sum + xp.sum(payoffs * payoffs, axis=0)
        else:
            per_trial = xp.sum(payoffs, axis=2) / self.ks_f_dev[None, :]
            self.payoff_sum = self.payoff_sum + xp.sum(per_trial, axis=0)
            self.payoff_sq_sum = self.payoff_sq_sum + xp.sum(per_trial * per_trial, axis=0)
        colliding = (player_occ > 1) & ~self.pad_players_dev[None, :, :]
        self.collisions = self.collisions + xp.sum(xp.astype(colliding, idt), axis=(0, 2))

        # Per-row occupancy histogram: padding sites go to a sentinel bin
        # that is sliced off; transposing to (B, n_chunk * M) makes each row
        # one segment of the batched bincount, all on the device.
        bins = self.k_max + 2
        occ_h = xp.where(self.mask_dev[None, :, :], occ, self.hist_sentinel_dev)
        occ_rows = xp.reshape(xp.permute_dims(occ_h, (1, 0, 2)), (b, n_chunk * m))
        counts = batched_bincount(occ_rows, bins, backend=be)
        self.occupancy_histogram = self.occupancy_histogram + counts[:, : self.k_max + 1]

    def _materialise(self) -> None:
        """The single documented device→host crossing of the result boundary."""
        if self.be.is_numpy or self._materialised:
            return
        with expected_transfer():
            self.coverage_sum = np.asarray(to_numpy(self.coverage_sum), dtype=np.float64)
            self.coverage_sq_sum = np.asarray(
                to_numpy(self.coverage_sq_sum), dtype=np.float64
            )
            self.sites_visited_sum = np.asarray(
                to_numpy(self.sites_visited_sum), dtype=np.float64
            )
            self.collisions = np.asarray(to_numpy(self.collisions), dtype=np.int64)
            self.occupancy_histogram = np.asarray(
                to_numpy(self.occupancy_histogram), dtype=np.int64
            )
            self.site_visits = np.asarray(to_numpy(self.site_visits), dtype=np.int64)
            self.payoff_sum = np.asarray(to_numpy(self.payoff_sum), dtype=np.float64)
            self.payoff_sq_sum = np.asarray(to_numpy(self.payoff_sq_sum), dtype=np.float64)
        self._materialised = True

    # ------------------------------------------------------------- results
    def dispersal_result(self, n_trials: int) -> DispersalSimulationBatch:
        self._materialise()
        coverage_means = self.coverage_sum / n_trials
        payoff_means = self.payoff_sum / n_trials
        return DispersalSimulationBatch(
            n_trials=n_trials,
            k=self.ks,
            coverage_means=coverage_means,
            coverage_sems=_sem_vector(self.coverage_sq_sum, coverage_means, n_trials),
            payoff_means=payoff_means,
            payoff_sems=_sem_vector(self.payoff_sq_sum, payoff_means, n_trials),
            collision_rates=self.collisions / (n_trials * self.ks),
            sites_visited_means=self.sites_visited_sum / n_trials,
            occupancy_histograms=self.occupancy_histogram,
            site_visit_frequencies=np.asarray(
                self.site_visits / n_trials, dtype=np.float64
            ),
            padded=self.padded,
        )

    def profile_result(self, n_trials: int) -> ProfileSimulationBatch:
        self._materialise()
        coverage_means = self.coverage_sum / n_trials
        payoff_means = self.payoff_sum / n_trials
        payoff_sems = _sem_vector(self.payoff_sq_sum, payoff_means, n_trials)
        # Surplus player slots do not exist: zero means, nan spreads.
        payoff_means = np.where(self.pad_players, 0.0, payoff_means)
        payoff_sems = np.where(self.pad_players, np.nan, payoff_sems)
        return ProfileSimulationBatch(
            n_trials=n_trials,
            k=self.ks,
            coverage_means=coverage_means,
            coverage_sems=_sem_vector(self.coverage_sq_sum, coverage_means, n_trials),
            player_payoff_means=payoff_means,
            player_payoff_sems=payoff_sems,
            padded=self.padded,
        )
