"""Batched payoff kernel: ``nu``, best responses and exploitability for whole batches.

The scalar payoff calculus of :mod:`repro.core.payoffs` evaluates one
``(f, p, k)`` triple per call; dynamics sweeps re-enter it thousands of times
per trajectory, so grids of trajectories are dominated by Python-call
overhead.  The kernel here evaluates the same formulas for ``B`` game states
at once:

* strategies are ``(B, M_max)`` matrices riding on a
  :class:`~repro.batch.padding.PaddedValues` value batch (ragged ``M``
  allowed; padding columns carry zero probability and are zeroed in ``nu``);
* the player count is a scalar or a per-row ``(B,)`` vector, so one batch can
  mix instances of different ``k`` (the binomial occupancy laws are expanded
  with one shared log-factorial table via
  :func:`~repro.utils.numerics.binomial_pmf_tensor`);
* the congestion policy enters through a per-row table
  ``[C(1), ..., C(k_b)]`` broadcast as a ``(B, n_max + 1)`` matrix
  (:func:`congestion_table_batch`), which callers stepping many times — the
  :class:`~repro.batch.dynamics.DynamicsEngine` — precompute once.

Every kernel body is pure Array-API code on the backend resolved through
:mod:`repro.backend`; the occupancy contraction (``einsum`` on NumPy) and the
policy tabulation are isolated behind backend adapters.  Backend-native
strategy inputs produce backend-native ``nu`` outputs (the engine's hot
path); host inputs produce host NumPy outputs.

Every ``*_batch`` function agrees elementwise with its scalar counterpart
(property-tested in ``tests/test_batch_dynamics.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import (
    Backend,
    asarray_float,
    contract_occupancy,
    ensure_numpy,
    from_numpy,
    is_native,
    resolve_backend,
    to_numpy,
)
from repro.batch.padding import PaddedValues
from repro.batch.solvers import as_k_grid, as_padded
from repro.core.policies import CongestionPolicy
from repro.utils.memo import cached_binomial_pmf_plan
from repro.utils.numerics import BinomialPmfPlan, binomial_pmf_tensor

__all__ = [
    "as_k_vector",
    "congestion_table_batch",
    "occupancy_congestion_factor_batch",
    "site_values_batch",
    "expected_payoff_batch",
    "best_response_value_batch",
    "exploitability_batch",
]


def as_k_vector(k: Sequence[int] | np.ndarray | int, batch_size: int) -> np.ndarray:
    """Coerce a player-count argument into a validated per-row ``(B,)`` vector.

    A scalar is broadcast to every row; a vector must have one entry per row.
    Player counts are host-side (they steer table widths and chunking).
    """
    ks = as_k_grid(k)
    if ks.size == 1:
        return np.full(batch_size, int(ks[0]), dtype=np.int64)
    if ks.size != batch_size:
        raise ValueError(
            f"per-row k vector has {ks.size} entries for a batch of {batch_size}"
        )
    return ks


def congestion_table_batch(
    policy: CongestionPolicy, n_opponents: np.ndarray | int
) -> np.ndarray:
    """Per-row congestion tables ``[C(1), ..., C(n_b + 1)]`` as a ``(B, n_max + 1)`` matrix.

    Row ``b`` holds the table a player facing ``n_opponents[b]`` co-players
    needs; entries beyond its own width are exactly zero, matching the
    zero-padding of :func:`~repro.utils.numerics.binomial_pmf_tensor` so the
    two can be contracted along the occupancy axis for any mix of per-row
    player counts.

    Tabulating a policy is host-side staging (policies are Python objects);
    steppers transfer the result to their backend once and reuse it.
    """
    n = np.atleast_1d(np.asarray(ensure_numpy(n_opponents), dtype=np.int64))
    if np.any(n < 0):
        raise ValueError("n_opponents must be non-negative")
    n_max = int(n.max())
    table = policy.table(n_max + 1)  # C(1), ..., C(n_max + 1)
    out = np.tile(table, (n.size, 1))
    out[np.arange(n_max + 1)[None, :] > n[:, None]] = 0.0
    return out


def occupancy_congestion_factor_batch(
    policy: CongestionPolicy,
    opponent_probabilities: np.ndarray,
    n_opponents: np.ndarray | int,
    *,
    tables: np.ndarray | None = None,
    backend: Backend | str | None = None,
    plan: "BinomialPmfPlan | None" = None,
) -> np.ndarray:
    """Expected congestion factors ``E[C(1 + Binomial(n_b, q))]`` for a whole batch.

    Parameters
    ----------
    policy:
        Congestion policy supplying ``C``.
    opponent_probabilities:
        ``(B, M)`` matrix; entry ``[b, x]`` is the probability that one
        opponent of row ``b`` selects site ``x``.
    n_opponents:
        Number of independent opponents per row (scalar or ``(B,)``).
    tables:
        Optional precomputed :func:`congestion_table_batch` output (at least
        as wide as the occupancy axis; host or backend-native); steppers
        reuse one table across thousands of calls instead of re-tabulating
        the policy.
    backend:
        Array backend to compute on (``None`` = active backend).
    plan:
        Optional :class:`~repro.utils.numerics.BinomialPmfPlan` built for the
        same ``n_opponents`` and backend; hot loops pass one so the PMF step
        performs no host transfers or synchronisations.

    Returns
    -------
    ``(B, M)`` matrix; multiplying by ``f`` yields the batched ``nu``.
    Backend-native when ``opponent_probabilities`` was backend-native, host
    NumPy otherwise.
    """
    be = resolve_backend(backend)
    native = is_native(be, opponent_probabilities)
    q = asarray_float(be, opponent_probabilities)
    if q.ndim != 2:
        raise ValueError("opponent_probabilities must be a 2-D (B, M) matrix")
    n = np.broadcast_to(np.asarray(ensure_numpy(n_opponents), dtype=np.int64), (q.shape[0],))
    if np.any(n < 0):
        raise ValueError("n_opponents must be non-negative")
    if plan is None:
        # Steppers that do not stage their own plan still reuse the staged
        # combinatorics across calls via the process-wide memo; the plan
        # path clips probabilities exactly like the plan-free path and is
        # elementwise identical to it (see repro.utils.memo).
        plan = cached_binomial_pmf_plan(n, backend=be)
    pmf = binomial_pmf_tensor(n, q, backend=be, plan=plan)  # (B, M, n_sub_max + 1)
    if not is_native(be, pmf):
        pmf = from_numpy(be, pmf, dtype=be.float_dtype)
    if tables is None:
        tables = congestion_table_batch(policy, n)
    if not is_native(be, tables):
        tables = from_numpy(be, np.asarray(tables, dtype=float), dtype=be.float_dtype)
    width = pmf.shape[2]
    if tables.shape[1] < width:
        raise ValueError(
            f"congestion tables of width {tables.shape[1]} are too narrow for "
            f"occupancies up to {width}"
        )
    factor = contract_occupancy(be, pmf, tables[:, :width])
    return factor if native else to_numpy(factor)


def site_values_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    tables: np.ndarray | None = None,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Batched Eq. (2): ``nu_p(x)`` for every row's ``(f_b, p_b, k_b)`` at once.

    Padding columns come back exactly zero; callers that need a best response
    under negative payoffs must therefore mask with ``padded.mask`` rather
    than rely on the zeros (see :func:`best_response_value_batch`).
    """
    be = resolve_backend(backend)
    native = is_native(be, strategies)
    padded = as_padded(values)
    ks = as_k_vector(k, padded.batch_size)
    P = asarray_float(be, strategies)
    if tuple(P.shape) != padded.values.shape:
        raise ValueError(
            f"strategies shape {tuple(P.shape)} must match the padded batch "
            f"{padded.values.shape}"
        )
    factor = occupancy_congestion_factor_batch(
        policy, P, ks - 1, tables=tables, backend=be
    )
    if not is_native(be, factor):
        factor = from_numpy(be, factor, dtype=be.float_dtype)
    nu = padded.values_for(be) * factor * padded.fmask_for(be)
    return nu if native else to_numpy(nu)


def expected_payoff_batch(
    values: PaddedValues | Sequence | np.ndarray,
    focal: np.ndarray,
    opponents: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Batched ``E(focal; opponents^(k-1))``: one expected payoff per row."""
    be = resolve_backend(backend)
    xp = be.xp
    native = is_native(be, focal)
    rho = asarray_float(be, focal)
    nu = site_values_batch(values, asarray_float(be, opponents), k, policy, backend=be)
    if tuple(rho.shape) != tuple(nu.shape):
        raise ValueError("focal strategies must match the padded batch shape")
    out = xp.sum(rho * nu, axis=1)
    return out if native else to_numpy(out)


def best_response_value_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Per-row best-response value ``max_x nu_p(x)`` (maximum over real sites only)."""
    be = resolve_backend(backend)
    xp = be.xp
    native = is_native(be, strategies)
    padded = as_padded(values)
    P = asarray_float(be, strategies)
    nu = site_values_batch(padded, P, k, policy, backend=be)
    neg_inf = xp.asarray(-xp.inf, dtype=be.float_dtype)
    best = xp.max(xp.where(padded.mask_for(be), nu, neg_inf), axis=1)
    return best if native else to_numpy(best)


def exploitability_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Per-row deviation gain ``max_x nu_p(x) - sum_x p(x) nu_p(x)``.

    One ``nu`` evaluation serves both terms (the batch analogue of the
    "compute ``nu`` once, derive best response *and* mean payoff from it"
    rule the dynamics steppers follow).  Zero exactly on the rows whose state
    is a symmetric equilibrium.
    """
    be = resolve_backend(backend)
    xp = be.xp
    native = is_native(be, strategies)
    padded = as_padded(values)
    P = asarray_float(be, strategies)
    nu = site_values_batch(padded, P, k, policy, backend=be)
    neg_inf = xp.asarray(-xp.inf, dtype=be.float_dtype)
    best = xp.max(xp.where(padded.mask_for(be), nu, neg_inf), axis=1)
    gap = best - xp.sum(P * nu, axis=1)
    return gap if native else to_numpy(gap)