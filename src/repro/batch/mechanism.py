"""Batched mechanism design: policy-roster sweeps and reward (grant) design.

The paper's mechanism lever fixes rewards at the social values and designs
the congestion rule (Theorems 4-6); the Kleinberg-Oren baseline fixes the
rule and re-prices the sites.  The scalar implementations in
:mod:`repro.mechanism` evaluate one instance per call; this module evaluates
whole ``(instances x k x policy)`` grids at once:

* :func:`compare_policies_batch` — a congestion-policy roster over every
  ``(instance, k)`` cell: one :func:`~repro.batch.solvers.sigma_star_batch`
  call fixes all coverage optima, one :func:`~repro.batch.ifd.ifd_batch`
  call per policy solves all equilibria;
* :func:`best_two_level_batch` — the Theorem-6 sweep of the one-parameter
  family ``C_c`` over a whole grid;
* :func:`design_rewards_batch` — reward vectors making per-row target
  distributions the IFD of the design policy (the batch counterpart of
  :func:`repro.mechanism.kleinberg_oren.design_rewards_for_target`), one
  batched congestion-factor pass for all rows;
* :func:`optimal_grant_design_batch` — the full reward-design pipeline
  (coverage-optimal targets, designed grants, induced equilibria of the
  re-priced games, deviations) for a whole instance batch with mixed per-row
  player counts.

Conventions match the rest of :mod:`repro.batch`: instance batches ride on
:class:`~repro.batch.padding.PaddedValues`, kernel bodies run on the backend
resolved through :mod:`repro.backend`, and public results are host NumPy
arrays.  Derived value matrices (the designed rewards) are re-sorted through
:func:`~repro.batch.padding.sorted_padded` before re-entering the IFD solver
and un-sorted on the way out, so results stay in the caller's site order.

The scalar entry points of :mod:`repro.mechanism` are thin ``B = 1``
wrappers over these kernels (property-tested elementwise in
``tests/test_batch_mechanism.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Sequence

import numpy as np

from repro.backend import Backend, ensure_numpy, resolve_backend
from repro.batch.ifd import ifd_batch
from repro.batch.padding import PaddedValues, sorted_padded, unsort_rows
from repro.batch.payoffs import as_k_vector, occupancy_congestion_factor_batch
from repro.batch.solvers import as_k_grid, as_padded, coverage_batch, sigma_star_batch
from repro.core.policies import CongestionPolicy, SharingPolicy, TwoLevelPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scalar -> batch)
    from repro.mechanism.kleinberg_oren import GrantDesign
    from repro.mechanism.policy_design import PolicyComparison

__all__ = [
    "PolicyComparisonBatch",
    "compare_policies_batch",
    "BestTwoLevelBatch",
    "best_two_level_batch",
    "GrantDesignBatch",
    "design_rewards_batch",
    "optimal_grant_design_batch",
]


# --------------------------------------------------------------------------
# congestion-policy roster sweeps (Theorems 4-6)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class PolicyComparisonBatch:
    """Equilibrium outcomes of a policy roster on every ``(instance, k)`` cell.

    Attributes
    ----------
    policy_names:
        Display names of the ``P`` policies, in roster order.
    equilibrium_coverages:
        ``(P, B, K)`` equilibrium (IFD) coverages.
    optimal_coverages:
        ``(B, K)`` coverage optima (policy-independent, computed once).
    spoa:
        ``(P, B, K)`` per-cell symmetric price of anarchy (``inf`` where the
        equilibrium coverage is non-positive).
    equilibrium_payoffs, support_sizes:
        ``(P, B, K)`` equilibrium payoffs and support sizes.
    k_grid, padded:
        Axes of the grid.
    """

    policy_names: tuple[str, ...]
    equilibrium_coverages: np.ndarray
    optimal_coverages: np.ndarray
    spoa: np.ndarray
    equilibrium_payoffs: np.ndarray
    support_sizes: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues

    def comparison(self, policy_index: int, instance: int, k_index: int) -> "PolicyComparison":
        """Hydrate one grid cell into the scalar :class:`~repro.mechanism.policy_design.PolicyComparison`."""
        from repro.mechanism.policy_design import PolicyComparison

        return PolicyComparison(
            policy_name=self.policy_names[policy_index],
            equilibrium_coverage=float(self.equilibrium_coverages[policy_index, instance, k_index]),
            optimal_coverage=float(self.optimal_coverages[instance, k_index]),
            spoa=float(self.spoa[policy_index, instance, k_index]),
            equilibrium_payoff=float(self.equilibrium_payoffs[policy_index, instance, k_index]),
            support_size=int(self.support_sizes[policy_index, instance, k_index]),
        )


def compare_policies_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k_grid: Sequence[int] | np.ndarray | int,
    policies: Sequence[CongestionPolicy],
    *,
    backend: Backend | str | None = None,
    **ifd_kwargs,
) -> PolicyComparisonBatch:
    """Evaluate a congestion-policy roster over a whole ``(instances x k)`` grid.

    The batch counterpart of
    :func:`repro.mechanism.policy_design.compare_policies`: one
    :func:`~repro.batch.solvers.sigma_star_batch` call fixes the coverage
    optimum of every cell (Theorem 4), then each policy's equilibria come
    from one :func:`~repro.batch.ifd.ifd_batch` call (reusing the
    closed-form solve on exclusive policies) and one coverage pass.

    Returns
    -------
    PolicyComparisonBatch
        Elementwise equal (to solver tolerance) to looping the scalar
        ``compare_policies`` over instances and ``k`` values.
    """
    be = resolve_backend(backend)
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    roster = list(policies)
    if not roster:
        raise ValueError("policies roster must not be empty")
    star = sigma_star_batch(padded, ks, backend=be)
    optimal = coverage_batch(padded, star.probabilities, ks, backend=be)

    eq_coverages, payoffs, supports = [], [], []
    for policy in roster:
        equilibrium = ifd_batch(padded, ks, policy, closed_form=star, backend=be, **ifd_kwargs)
        eq_coverages.append(coverage_batch(padded, equilibrium.probabilities, ks, backend=be))
        payoffs.append(equilibrium.values)
        supports.append(equilibrium.support_sizes)
    eq = np.stack(eq_coverages, axis=0)
    positive = eq > 0
    spoa = np.where(positive, optimal[None, :, :] / np.where(positive, eq, 1.0), np.inf)
    return PolicyComparisonBatch(
        policy_names=tuple(policy.name for policy in roster),
        equilibrium_coverages=eq,
        optimal_coverages=optimal,
        spoa=spoa,
        equilibrium_payoffs=np.stack(payoffs, axis=0),
        support_sizes=np.stack(supports, axis=0),
        k_grid=ks,
        padded=padded,
    )


@dataclass(frozen=True)
class BestTwoLevelBatch:
    """The ``C_c`` family sweep of Theorem 6 over a whole instance grid.

    Attributes
    ----------
    c_grid:
        The swept collision payoffs.
    best_c:
        ``(B, K)`` collision payoff maximising the equilibrium coverage of
        each cell (first maximiser in grid order, like the scalar sweep).
    best_coverages:
        ``(B, K)`` the equilibrium coverage at ``best_c``.
    comparisons:
        The full :class:`PolicyComparisonBatch` of the sweep (one roster
        entry per ``c``).
    """

    c_grid: np.ndarray
    best_c: np.ndarray
    best_coverages: np.ndarray
    comparisons: PolicyComparisonBatch


def best_two_level_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    c_grid: np.ndarray | Sequence[float] | None = None,
    backend: Backend | str | None = None,
    **ifd_kwargs,
) -> BestTwoLevelBatch:
    """Sweep the two-level family ``C_c`` over a whole ``(instances x k)`` grid.

    The batch counterpart of
    :func:`repro.mechanism.policy_design.best_two_level_policy`: every
    ``(instance, k)`` cell reports the collision payoff with the best
    equilibrium coverage.  Theorem 6 predicts the maximiser sits at ``c = 0``
    (the exclusive policy) whenever the exclusive support differs from the
    alternatives'.

    Returns
    -------
    BestTwoLevelBatch
        ``best_c`` agrees with the scalar sweep cell by cell (first-argmax
        tie-breaking in grid order).
    """
    if c_grid is None:
        c_grid = np.linspace(-0.5, 0.5, 41)
    c_values = np.asarray(c_grid, dtype=float)
    if c_values.ndim != 1 or c_values.size == 0:
        raise ValueError("c_grid must be a non-empty 1-D sequence")
    roster = [TwoLevelPolicy(float(c)) for c in c_values]
    comparisons = compare_policies_batch(
        values, k_grid, roster, backend=backend, **ifd_kwargs
    )
    best_index = np.argmax(comparisons.equilibrium_coverages, axis=0)  # (B, K)
    best_c = c_values[best_index]
    best_coverages = np.take_along_axis(
        comparisons.equilibrium_coverages, best_index[None, :, :], axis=0
    )[0]
    return BestTwoLevelBatch(
        c_grid=c_values,
        best_c=best_c,
        best_coverages=best_coverages,
        comparisons=comparisons,
    )


# --------------------------------------------------------------------------
# reward (grant) design — the Kleinberg-Oren baseline, batched
# --------------------------------------------------------------------------


def _as_target_batch(targets: np.ndarray | Sequence[Any]) -> np.ndarray:
    """Validate a batch of target distributions into a host ``(B, M_max)`` matrix."""
    if isinstance(targets, np.ndarray) or hasattr(targets, "__array_namespace__"):
        matrix = np.asarray(ensure_numpy(targets), dtype=float)
        if matrix.ndim != 2 or matrix.size == 0:
            raise ValueError("targets must form a non-empty (B, M) matrix")
    else:
        rows = [np.asarray(ensure_numpy(row), dtype=float).ravel() for row in targets]
        if not rows:
            raise ValueError("cannot pack an empty batch of targets")
        width = max(row.size for row in rows)
        matrix = np.zeros((len(rows), width))
        for index, row in enumerate(rows):
            matrix[index, : row.size] = row
    if np.any(matrix < 0):
        raise ValueError("target probabilities must be non-negative")
    sums = matrix.sum(axis=1)
    if not np.allclose(sums, 1.0, atol=1e-6):
        bad = int(np.argmax(np.abs(sums - 1.0)))
        raise ValueError(
            f"every target row must sum to one; row {bad} sums to {sums[bad]!r}"
        )
    return matrix


def design_rewards_batch(
    targets: np.ndarray | Sequence[Any],
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy | None = None,
    *,
    equilibrium_value: float = 1.0,
    off_support_fraction: float = 0.5,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Rewards making each row's ``target`` the IFD of the game under ``policy``.

    The batch counterpart of
    :func:`repro.mechanism.kleinberg_oren.design_rewards_for_target`.  The
    IFD condition under rewards ``r`` is ``r(x) * g_b(p(x)) = v`` on the
    support (where ``g_b(q) = E[C(1 + Binomial(k_b - 1, q))]``) and
    ``r(x) <= v`` outside it; fixing the equilibrium value ``v`` gives
    ``r(x) = v / g_b(target_b(x))`` on the support and
    ``off_support_fraction * v`` elsewhere.  All congestion factors come
    from one :func:`~repro.batch.payoffs.occupancy_congestion_factor_batch`
    pass with per-row player counts.

    Parameters
    ----------
    targets:
        Per-row target distributions — a ``(B, M)`` matrix or a sequence of
        :class:`~repro.core.strategy.Strategy` vectors (ragged rows are
        zero-padded; a padding column is off-support by construction).
    k:
        Player count — scalar or per-row ``(B,)`` vector.
    policy:
        Design policy (default: the sharing policy, the ecological baseline).
    equilibrium_value, off_support_fraction:
        The designed common payoff ``v > 0`` (grants are scale free) and the
        off-support reward fraction in ``(0, 1)``.
    backend:
        Array backend for the congestion-factor pass.

    Returns
    -------
    numpy.ndarray
        Host ``(B, M)`` reward matrix.

    Raises
    ------
    ValueError
        When any row's target is not implementable with positive rewards
        (non-positive congestion factor on its support — e.g. aggressive
        policies at high occupancy probabilities); the error names the
        offending rows.
    """
    be = resolve_backend(backend)
    if policy is None:
        policy = SharingPolicy()
    if equilibrium_value <= 0:
        raise ValueError("equilibrium_value must be positive")
    if not 0 < off_support_fraction < 1:
        raise ValueError("off_support_fraction must lie in (0, 1)")
    matrix = _as_target_batch(targets)
    ks = as_k_vector(k, matrix.shape[0])
    policy.validate(int(ks.max()))

    g = occupancy_congestion_factor_batch(policy, matrix, ks - 1, backend=be)
    g = np.asarray(ensure_numpy(g), dtype=float)
    support = matrix > 0
    infeasible = np.any(support & (g <= 0), axis=1)
    if np.any(infeasible):
        rows = np.nonzero(infeasible)[0].tolist()
        raise ValueError(
            "target not implementable: non-positive congestion factor on its "
            f"support (rows {rows})"
        )
    safe_g = np.where(support & (g > 0), g, 1.0)
    return np.where(
        support,
        equilibrium_value / safe_g,
        off_support_fraction * equilibrium_value,
    )


@dataclass(frozen=True)
class GrantDesignBatch:
    """Designed reward vectors and the equilibria they induce, per instance.

    Attributes
    ----------
    rewards:
        ``(B, M_max)`` designed grants, in the instances' (sorted) site
        order.
    induced_strategies:
        ``(B, M_max)`` IFDs of the re-priced games under the design policy.
    induced_coverages:
        ``(B,)`` coverage of the induced equilibria measured with the
        *original* social values (the planner cares about ``f``, not the
        grants).
    target_strategies:
        ``(B, M_max)`` distributions the designs aimed for (the coverage
        optima of the original values).
    max_deviations:
        ``(B,)`` worst per-site gaps ``max_x |induced(x) - target(x)|``.
    k:
        ``(B,)`` per-row player counts.
    padded:
        The instance batch of the ``B`` axis.

    All array attributes are host NumPy arrays whatever backend solved them.
    """

    rewards: np.ndarray
    induced_strategies: np.ndarray
    induced_coverages: np.ndarray
    target_strategies: np.ndarray
    max_deviations: np.ndarray
    k: np.ndarray
    padded: PaddedValues

    def design(self, index: int) -> "GrantDesign":
        """Hydrate one row into the scalar :class:`~repro.mechanism.kleinberg_oren.GrantDesign`."""
        from repro.core.strategy import Strategy
        from repro.mechanism.kleinberg_oren import GrantDesign

        size = int(self.padded.sizes[index])
        return GrantDesign(
            rewards=np.asarray(self.rewards[index, :size]),
            induced_strategy=Strategy(self.induced_strategies[index, :size]),
            induced_coverage=float(self.induced_coverages[index]),
            target_strategy=Strategy(self.target_strategies[index, :size]),
            max_deviation=float(self.max_deviations[index]),
        )


def optimal_grant_design_batch(
    values: PaddedValues | Sequence | np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    policy: CongestionPolicy | None = None,
    *,
    backend: Backend | str | None = None,
    **solver_kwargs,
) -> GrantDesignBatch:
    """Design grants steering every instance's IFD to its coverage optimum.

    The batch counterpart of
    :func:`repro.mechanism.kleinberg_oren.optimal_grant_design`: the targets
    are the ``sigma_star`` of each row's social values (solved once per
    distinct ``k`` through :func:`~repro.batch.solvers.sigma_star_batch`),
    the grants come from :func:`design_rewards_batch`, and the induced
    equilibria of the re-priced games are solved by
    :func:`~repro.batch.ifd.ifd_batch` with the closed form disabled (the
    designed rewards are a genuinely different game, exactly like the scalar
    pipeline).  Designed rewards are re-sorted through
    :func:`~repro.batch.padding.sorted_padded` for the solver and un-sorted
    on the way out.

    Parameters
    ----------
    values, k:
        Instance batch (ragged ``M`` allowed) and scalar or per-row player
        counts.
    policy:
        Design policy (default: sharing).
    backend:
        Array backend forwarded to every kernel.
    **solver_kwargs:
        Extra options for the induced-IFD solve (``tol``, iteration caps).

    Returns
    -------
    GrantDesignBatch
        Elementwise equal (to solver tolerance) to looping the scalar
        ``optimal_grant_design`` over the rows.
    """
    be = resolve_backend(backend)
    if policy is None:
        policy = SharingPolicy()
    padded = as_padded(values)
    b = padded.batch_size
    ks = as_k_vector(k, b)
    unique_ks = np.unique(ks)
    columns = np.searchsorted(unique_ks, ks)
    take = np.arange(b)

    star = sigma_star_batch(padded, unique_ks, backend=be)
    targets = star.probabilities[take, columns, :]
    # Padding columns of sigma_star are exactly zero, so they read as
    # off-support sites and receive the (positive) off-support grant — which
    # keeps the re-priced PaddedValues valid.
    rewards = design_rewards_batch(targets, ks, policy, backend=be)

    # The induced-IFD solve is the expensive part: group rows by their player
    # count so exactly B cells are solved (a full (B, K) ifd_batch grid would
    # discard every off-diagonal cell).
    reward_padded, order = sorted_padded(rewards, padded)
    induced_sorted = np.zeros(reward_padded.values.shape)
    for k_value in unique_ks:
        rows = np.nonzero(ks == k_value)[0]
        sub = PaddedValues(reward_padded.values[rows], reward_padded.sizes[rows])
        equilibrium = ifd_batch(
            sub, [int(k_value)], policy, use_closed_form=False, backend=be, **solver_kwargs
        )
        induced_sorted[rows] = equilibrium.probabilities[:, 0, :]
    induced_strategies = unsort_rows(induced_sorted, order)
    induced_coverages = coverage_batch(padded, induced_strategies, unique_ks, backend=be)[
        take, columns
    ]
    max_deviations = np.max(np.abs(induced_strategies - targets), axis=1)
    return GrantDesignBatch(
        rewards=rewards,
        induced_strategies=induced_strategies,
        induced_coverages=induced_coverages,
        target_strategies=targets,
        max_deviations=max_deviations,
        k=ks,
        padded=padded,
    )
