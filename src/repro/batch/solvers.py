"""Closed-form batch solvers for the exclusive policy and the coverage functional.

The scalar :func:`repro.core.sigma_star.sigma_star` spends its time in a few
small vector operations; looping it over an experiment grid is dominated by
per-call Python overhead.  The solvers here evaluate the same closed forms as
``(B, K, M)`` tensor passes: ``B`` instances (ragged site counts padded by
:class:`~repro.batch.padding.PaddedValues`), ``K`` player counts, ``M`` sites.

The support computation is shared across the ``k`` grid: one cumulative sum of
``f(x)^(-1/(k-1))`` per ``k`` column yields both the support condition
``h(y) <= 1`` and the normalisation constant ``alpha`` for every instance
simultaneously — no per-instance Python loops anywhere.

Every kernel body is pure Array-API code against the namespace resolved by
:func:`repro.backend.resolve_backend` (``numpy`` by default; see
:mod:`repro.backend`): the compute runs on whichever backend is active, and
the public results come back as host NumPy arrays — grid artifacts are host
objects by convention.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.backend import (
    Backend,
    asarray_float,
    ensure_numpy,
    from_numpy,
    resolve_backend,
    take_along_axis,
    to_numpy,
)
from repro.batch.padding import PaddedValues
from repro.core.sigma_star import SigmaStarResult
from repro.core.strategy import Strategy
from repro.core.values import SiteValues

__all__ = [
    "SigmaStarBatch",
    "sigma_star_batch",
    "support_size_batch",
    "coverage_batch",
    "optimal_coverage_batch",
]

#: Numerical slack of the support condition; identical to the scalar solver's.
_SUPPORT_ATOL = 1e-12

#: Default ceiling on the number of (B, K, M) tensor elements materialised at
#: once; larger batches are processed in chunks of instances.
_DEFAULT_MAX_ELEMENTS = 1 << 24


def as_padded(values: PaddedValues | Sequence | np.ndarray) -> PaddedValues:
    """Coerce a batch argument into :class:`~repro.batch.padding.PaddedValues`.

    Arrays native to a non-NumPy backend are brought back to the host first —
    the padded container is host-canonical and re-ships device copies on
    demand (:meth:`~repro.batch.padding.PaddedValues.values_for`).
    """
    if isinstance(values, PaddedValues):
        return values
    if not isinstance(values, np.ndarray) and hasattr(values, "__array_namespace__"):
        values = ensure_numpy(values)
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return PaddedValues(values, np.full(values.shape[0], values.shape[1], dtype=np.int64))
    if isinstance(values, (SiteValues, np.ndarray)):
        return PaddedValues.from_instances([values])
    return PaddedValues.from_instances(values)


def as_k_grid(k_grid: Sequence[int] | np.ndarray | int) -> np.ndarray:
    """Validate and coerce a player-count grid into a host 1-D integer array.

    Player counts steer control flow (chunking, table widths), so they are
    host-side by design regardless of the active backend.
    """
    if hasattr(k_grid, "__array_namespace__") and not isinstance(k_grid, np.ndarray):
        k_grid = ensure_numpy(k_grid)
    ks = np.atleast_1d(np.asarray(k_grid))
    if ks.ndim != 1 or ks.size == 0:
        raise ValueError("k_grid must be a non-empty 1-D sequence of integers")
    if not np.issubdtype(ks.dtype, np.integer):
        rounded = np.rint(np.asarray(ks, dtype=float)).astype(np.int64)
        if not np.allclose(ks, rounded):
            raise ValueError("k_grid entries must be integers")
        ks = rounded
    if np.any(ks < 1):
        raise ValueError("k_grid entries must be >= 1")
    return ks.astype(np.int64)


@dataclass(frozen=True)
class SigmaStarBatch:
    """Closed-form ``sigma_star`` for every ``(instance, k)`` pair of a grid.

    Attributes
    ----------
    probabilities:
        ``(B, K, M_max)`` strategy tensor; padding columns are exactly zero.
    support_sizes:
        ``(B, K)`` integer matrix of support prefix lengths ``W``.
    alpha:
        ``(B, K)`` normalisation constants.
    equilibrium_values:
        ``(B, K)`` equilibrium payoffs (``alpha**(k-1)``; ``f(1)`` for
        ``k = 1``; ``0`` for a single-site instance with several players).
    k_grid:
        The player counts of the ``K`` axis.
    padded:
        The packed instance batch of the ``B`` axis.

    All array attributes are host NumPy arrays whatever backend computed
    them (converted once at the kernel boundary).
    """

    probabilities: np.ndarray
    support_sizes: np.ndarray
    alpha: np.ndarray
    equilibrium_values: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues

    def result(self, instance: int, k_index: int) -> SigmaStarResult:
        """Hydrate one grid cell into the scalar :class:`SigmaStarResult`."""
        size = int(self.padded.sizes[instance])
        return SigmaStarResult(
            strategy=Strategy(self.probabilities[instance, k_index, :size]),
            support_size=int(self.support_sizes[instance, k_index]),
            alpha=float(self.alpha[instance, k_index]),
            equilibrium_value=float(self.equilibrium_values[instance, k_index]),
            k=int(self.k_grid[k_index]),
        )


def _int_power_column(xp, base, exponent: int):
    """``base ** exponent`` for an integer ``exponent >= 0`` by binary exponentiation.

    Plain multiplies are correctly rounded on every backend, so unlike ``**``
    — whose inner-loop dispatch (and last-ulp rounding) can depend on how the
    operands are shaped and strided — the result is independent of the batch
    shape.  The serving layer's bit-identity contract relies on this for the
    equilibrium values.
    """
    result = None
    while exponent:
        if exponent & 1:
            result = base if result is None else result * base
        exponent >>= 1
        if exponent:
            base = base * base
    return xp.ones_like(base) if result is None else result


def _sigma_star_chunk(F, mask, ks_dev, ks_host: np.ndarray, be: Backend):
    """Solve one chunk of instances for the whole k grid (pure Array-API body)."""
    xp = be.xp
    fdt = be.float_dtype
    B, M = F.shape
    # Exponent 1/(k-1); the k = 1 columns are overwritten at the end.
    exponents = 1.0 / xp.astype(xp.maximum(ks_dev - 1, xp.ones_like(ks_dev)), fdt)  # (K,)
    # One log of the (B, M) value matrix is shared by the whole k grid, and
    # f^(1/(k-1)) is recovered as the reciprocal of f^(-1/(k-1)) — a single
    # transcendental pass over the (B, K, M) tensor instead of 2 K of them.
    log_f = xp.log(F)
    inv_pow = xp.exp(log_f[:, None, :] * (-exponents)[None, :, None])  # f^(-1/(k-1))
    cumulative = xp.cumulative_sum(inv_pow, axis=2)
    positions = xp.arange(1, M + 1, dtype=fdt)
    # h(y) = y - f(y)^(1/(k-1)) * sum_{x<=y} f(x)^(-1/(k-1))
    h = positions[None, None, :] - cumulative / inv_pow
    admissible = (h <= 1.0 + _SUPPORT_ATOL) & mask[:, None, :]
    reversed_adm = xp.flip(admissible, axis=2)
    any_admissible = xp.any(reversed_adm, axis=2)
    last_admissible = (M - 1) - xp.argmax(xp.astype(reversed_adm, xp.int8), axis=2)
    support = xp.astype(
        xp.where(any_admissible, last_admissible + 1, xp.ones_like(last_admissible)),
        be.int_dtype,
    )  # (B, K)

    denom = take_along_axis(be, cumulative, (support - 1)[:, :, None], axis=2)[:, :, 0]
    alpha = xp.astype(support - 1, fdt) / denom

    prefix = xp.arange(M, dtype=be.int_dtype)[None, None, :] < support[:, :, None]
    probabilities = xp.clip(1.0 - alpha[:, :, None] * inv_pow, 0.0, None)
    probabilities = probabilities * xp.astype(prefix, fdt)
    totals = xp.sum(probabilities, axis=2)
    probabilities = probabilities / xp.where(totals > 0, totals, xp.ones_like(totals))[:, :, None]

    equilibrium = xp.stack(
        [
            _int_power_column(xp, alpha[:, column], int(k) - 1)
            for column, k in enumerate(ks_host)
        ],
        axis=1,
    )

    # Single-site supports: all mass on the top site; several colliding players
    # earn zero under the exclusive policy.
    onehot = xp.astype(xp.arange(M, dtype=be.int_dtype) == 0, fdt)  # (M,)
    single = support == 1
    probabilities = xp.where(single[:, :, None], onehot[None, None, :], probabilities)
    equilibrium = xp.where(single, xp.zeros_like(equilibrium), equilibrium)

    # k = 1 columns: one player exploits the most valuable site.
    solo = (ks_dev == 1)[None, :]  # (1, K)
    probabilities = xp.where(solo[:, :, None], onehot[None, None, :], probabilities)
    support = xp.where(solo, xp.ones_like(support), support)
    alpha = xp.where(solo, xp.zeros_like(alpha), alpha)
    equilibrium = xp.where(solo, F[:, :1], equilibrium)

    return probabilities, support, alpha, equilibrium


def sigma_star_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    max_elements: int = _DEFAULT_MAX_ELEMENTS,
    backend: Backend | str | None = None,
) -> SigmaStarBatch:
    """Solve ``sigma_star`` for a whole ``(instances x k-grid)`` in tensor passes.

    Parameters
    ----------
    values:
        A :class:`~repro.batch.padding.PaddedValues`, a 2-D matrix of equal-
        length profiles, or any iterable of profiles (ragged ``M`` allowed).
    k_grid:
        Player counts to solve for (each ``>= 1``).
    max_elements:
        Peak-memory knob: instances are processed in chunks so no intermediate
        tensor exceeds roughly this many elements.
    backend:
        Array backend to compute on — a name, a resolved
        :class:`~repro.backend.Backend`, or ``None`` for the active one
        (see :func:`repro.backend.use_backend`).

    Returns
    -------
    SigmaStarBatch
        Strategies, supports, normalisation constants and equilibrium values
        for every ``(instance, k)`` cell, elementwise identical (up to
        float round-off in the final renormalisation) to looping the scalar
        :func:`repro.core.sigma_star.sigma_star`.
    """
    be = resolve_backend(backend)
    xp = be.xp
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    B, M, K = padded.batch_size, padded.width, ks.size

    F = padded.values_for(be)
    mask = padded.mask_for(be)
    ks_dev = from_numpy(be, ks, dtype=be.int_dtype)

    chunk = max(1, int(max_elements // max(K * M, 1)))
    parts = []
    for start in range(0, B, chunk):
        stop = min(start + chunk, B)
        parts.append(_sigma_star_chunk(F[start:stop, :], mask[start:stop, :], ks_dev, ks, be))

    if len(parts) == 1:
        p, w, a, eq = parts[0]
    else:
        p = xp.concat([part[0] for part in parts], axis=0)
        w = xp.concat([part[1] for part in parts], axis=0)
        a = xp.concat([part[2] for part in parts], axis=0)
        eq = xp.concat([part[3] for part in parts], axis=0)

    return SigmaStarBatch(
        probabilities=to_numpy(p),
        support_sizes=to_numpy(w).astype(np.int64),
        alpha=to_numpy(a),
        equilibrium_values=to_numpy(eq),
        k_grid=ks,
        padded=padded,
    )


def support_size_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """The ``(B, K)`` matrix of ``sigma_star`` support sizes ``W``."""
    return sigma_star_batch(values, k_grid, backend=backend).support_sizes


def coverage_batch(
    values: PaddedValues | Sequence,
    strategies: np.ndarray,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Weighted coverage of every ``(instance, k)`` cell in one pass.

    Parameters
    ----------
    values:
        Instance batch (see :func:`sigma_star_batch`).
    strategies:
        Either a ``(B, K, M_max)`` tensor (one strategy per grid cell, e.g.
        ``SigmaStarBatch.probabilities``) or a ``(B, M_max)`` matrix (one
        strategy per instance, evaluated at every ``k``).
    k_grid:
        Player counts of the ``K`` axis.
    backend:
        Array backend to compute on (``None`` = active backend).

    Returns
    -------
    numpy.ndarray
        ``(B, K)`` matrix ``Cover(p) = sum_x f(x) * (1 - (1 - p(x))**k)``.
    """
    be = resolve_backend(backend)
    xp = be.xp
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    P = asarray_float(be, strategies)
    if P.ndim == 2:
        P = P[:, None, :]
    if P.shape[0] != padded.batch_size or P.shape[2] != padded.width:
        raise ValueError(
            f"strategies shape {tuple(P.shape)} incompatible with batch "
            f"({padded.batch_size}, {ks.size}, {padded.width})"
        )
    ksf = from_numpy(be, ks.astype(float), dtype=be.float_dtype)
    missed = (1.0 - P) ** ksf[None, :, None]
    weighted = (1.0 - missed) * padded.values_for(be)[:, None, :]
    weighted = weighted * padded.fmask_for(be)[:, None, :]
    return to_numpy(xp.sum(weighted, axis=2))


def optimal_coverage_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    max_elements: int = _DEFAULT_MAX_ELEMENTS,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """``Cover(p_star)`` for every grid cell: the batched Theorem 4 optimum.

    Equivalent to (but much faster than) looping the scalar
    :func:`repro.core.optimal_coverage.optimal_coverage`.
    """
    be = resolve_backend(backend)
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    star = sigma_star_batch(padded, ks, max_elements=max_elements, backend=be)
    return coverage_batch(padded, star.probabilities, ks, backend=be)
