"""Closed-form batch solvers for the exclusive policy and the coverage functional.

The scalar :func:`repro.core.sigma_star.sigma_star` spends its time in a few
small vector operations; looping it over an experiment grid is dominated by
per-call Python overhead.  The solvers here evaluate the same closed forms as
``(B, K, M)`` tensor passes: ``B`` instances (ragged site counts padded by
:class:`~repro.batch.padding.PaddedValues`), ``K`` player counts, ``M`` sites.

The support computation is shared across the ``k`` grid: one cumulative sum of
``f(x)^(-1/(k-1))`` per ``k`` column yields both the support condition
``h(y) <= 1`` and the normalisation constant ``alpha`` for every instance
simultaneously — no per-instance Python loops anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.padding import PaddedValues
from repro.core.sigma_star import SigmaStarResult
from repro.core.strategy import Strategy
from repro.core.values import SiteValues

__all__ = [
    "SigmaStarBatch",
    "sigma_star_batch",
    "support_size_batch",
    "coverage_batch",
    "optimal_coverage_batch",
]

#: Numerical slack of the support condition; identical to the scalar solver's.
_SUPPORT_ATOL = 1e-12

#: Default ceiling on the number of (B, K, M) tensor elements materialised at
#: once; larger batches are processed in chunks of instances.
_DEFAULT_MAX_ELEMENTS = 1 << 24


def as_padded(values: PaddedValues | Sequence | np.ndarray) -> PaddedValues:
    """Coerce a batch argument into :class:`~repro.batch.padding.PaddedValues`."""
    if isinstance(values, PaddedValues):
        return values
    if isinstance(values, np.ndarray) and values.ndim == 2:
        return PaddedValues(values, np.full(values.shape[0], values.shape[1], dtype=np.int64))
    if isinstance(values, (SiteValues, np.ndarray)):
        return PaddedValues.from_instances([values])
    return PaddedValues.from_instances(values)


def as_k_grid(k_grid: Sequence[int] | np.ndarray | int) -> np.ndarray:
    """Validate and coerce a player-count grid into a 1-D integer array."""
    ks = np.atleast_1d(np.asarray(k_grid))
    if ks.ndim != 1 or ks.size == 0:
        raise ValueError("k_grid must be a non-empty 1-D sequence of integers")
    if not np.issubdtype(ks.dtype, np.integer):
        rounded = np.rint(np.asarray(ks, dtype=float)).astype(np.int64)
        if not np.allclose(ks, rounded):
            raise ValueError("k_grid entries must be integers")
        ks = rounded
    if np.any(ks < 1):
        raise ValueError("k_grid entries must be >= 1")
    return ks.astype(np.int64)


@dataclass(frozen=True)
class SigmaStarBatch:
    """Closed-form ``sigma_star`` for every ``(instance, k)`` pair of a grid.

    Attributes
    ----------
    probabilities:
        ``(B, K, M_max)`` strategy tensor; padding columns are exactly zero.
    support_sizes:
        ``(B, K)`` integer matrix of support prefix lengths ``W``.
    alpha:
        ``(B, K)`` normalisation constants.
    equilibrium_values:
        ``(B, K)`` equilibrium payoffs (``alpha**(k-1)``; ``f(1)`` for
        ``k = 1``; ``0`` for a single-site instance with several players).
    k_grid:
        The player counts of the ``K`` axis.
    padded:
        The packed instance batch of the ``B`` axis.
    """

    probabilities: np.ndarray
    support_sizes: np.ndarray
    alpha: np.ndarray
    equilibrium_values: np.ndarray
    k_grid: np.ndarray
    padded: PaddedValues

    def result(self, instance: int, k_index: int) -> SigmaStarResult:
        """Hydrate one grid cell into the scalar :class:`SigmaStarResult`."""
        size = int(self.padded.sizes[instance])
        return SigmaStarResult(
            strategy=Strategy(self.probabilities[instance, k_index, :size]),
            support_size=int(self.support_sizes[instance, k_index]),
            alpha=float(self.alpha[instance, k_index]),
            equilibrium_value=float(self.equilibrium_values[instance, k_index]),
            k=int(self.k_grid[k_index]),
        )


def _sigma_star_chunk(
    F: np.ndarray, mask: np.ndarray, ks: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Solve one chunk of instances for the whole k grid (no Python loops)."""
    B, M = F.shape
    K = ks.size
    # Exponent 1/(k-1); the k = 1 columns are overwritten at the end.
    exponents = 1.0 / np.maximum(ks - 1, 1).astype(float)  # (K,)
    # One log of the (B, M) value matrix is shared by the whole k grid, and
    # f^(1/(k-1)) is recovered as the reciprocal of f^(-1/(k-1)) — a single
    # transcendental pass over the (B, K, M) tensor instead of 2 K of them.
    log_f = np.log(F)
    inv_pow = np.exp(log_f[:, None, :] * -exponents[None, :, None])  # f^(-1/(k-1))
    cumulative = np.cumsum(inv_pow, axis=2)
    positions = np.arange(1, M + 1, dtype=float)
    # h(y) = y - f(y)^(1/(k-1)) * sum_{x<=y} f(x)^(-1/(k-1))
    h = positions[None, None, :] - cumulative / inv_pow
    admissible = (h <= 1.0 + _SUPPORT_ATOL) & mask[:, None, :]
    reversed_adm = admissible[:, :, ::-1]
    any_admissible = reversed_adm.any(axis=2)
    last_admissible = M - 1 - reversed_adm.argmax(axis=2)
    support = np.where(any_admissible, last_admissible + 1, 1).astype(np.int64)  # (B, K)

    denom = np.take_along_axis(cumulative, (support - 1)[:, :, None], axis=2)[:, :, 0]
    alpha = (support - 1) / denom

    prefix = np.arange(M)[None, None, :] < support[:, :, None]
    probabilities = np.clip(1.0 - alpha[:, :, None] * inv_pow, 0.0, None)
    probabilities *= prefix
    totals = probabilities.sum(axis=2)
    probabilities /= np.where(totals > 0, totals, 1.0)[:, :, None]

    equilibrium = np.power(alpha, (ks - 1).astype(float)[None, :])

    # Single-site supports: all mass on the top site; several colliding players
    # earn zero under the exclusive policy.
    single = support == 1
    if np.any(single):
        probabilities[single] = 0.0
        probabilities[single, 0] = 1.0
        equilibrium = np.where(single, 0.0, equilibrium)

    # k = 1 columns: one player exploits the most valuable site.
    solo = ks == 1
    if np.any(solo):
        probabilities[:, solo, :] = 0.0
        probabilities[:, solo, 0] = 1.0
        support[:, solo] = 1
        alpha[:, solo] = 0.0
        equilibrium = np.where(solo[None, :], F[:, :1], equilibrium)

    return probabilities, support, alpha, equilibrium


def sigma_star_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    max_elements: int = _DEFAULT_MAX_ELEMENTS,
) -> SigmaStarBatch:
    """Solve ``sigma_star`` for a whole ``(instances x k-grid)`` in NumPy passes.

    Parameters
    ----------
    values:
        A :class:`~repro.batch.padding.PaddedValues`, a 2-D matrix of equal-
        length profiles, or any iterable of profiles (ragged ``M`` allowed).
    k_grid:
        Player counts to solve for (each ``>= 1``).
    max_elements:
        Peak-memory knob: instances are processed in chunks so no intermediate
        tensor exceeds roughly this many elements.

    Returns
    -------
    SigmaStarBatch
        Strategies, supports, normalisation constants and equilibrium values
        for every ``(instance, k)`` cell, elementwise identical (up to
        float round-off in the final renormalisation) to looping the scalar
        :func:`repro.core.sigma_star.sigma_star`.
    """
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    B, M, K = padded.batch_size, padded.width, ks.size
    mask = padded.mask

    probabilities = np.zeros((B, K, M), dtype=float)
    support = np.empty((B, K), dtype=np.int64)
    alpha = np.empty((B, K), dtype=float)
    equilibrium = np.empty((B, K), dtype=float)

    chunk = max(1, int(max_elements // max(K * M, 1)))
    for start in range(0, B, chunk):
        stop = min(start + chunk, B)
        p, w, a, eq = _sigma_star_chunk(padded.values[start:stop], mask[start:stop], ks)
        probabilities[start:stop] = p
        support[start:stop] = w
        alpha[start:stop] = a
        equilibrium[start:stop] = eq

    return SigmaStarBatch(
        probabilities=probabilities,
        support_sizes=support,
        alpha=alpha,
        equilibrium_values=equilibrium,
        k_grid=ks,
        padded=padded,
    )


def support_size_batch(
    values: PaddedValues | Sequence, k_grid: Sequence[int] | np.ndarray | int
) -> np.ndarray:
    """The ``(B, K)`` matrix of ``sigma_star`` support sizes ``W``."""
    return sigma_star_batch(values, k_grid).support_sizes


def coverage_batch(
    values: PaddedValues | Sequence,
    strategies: np.ndarray,
    k_grid: Sequence[int] | np.ndarray | int,
) -> np.ndarray:
    """Weighted coverage of every ``(instance, k)`` cell in one pass.

    Parameters
    ----------
    values:
        Instance batch (see :func:`sigma_star_batch`).
    strategies:
        Either a ``(B, K, M_max)`` tensor (one strategy per grid cell, e.g.
        ``SigmaStarBatch.probabilities``) or a ``(B, M_max)`` matrix (one
        strategy per instance, evaluated at every ``k``).
    k_grid:
        Player counts of the ``K`` axis.

    Returns
    -------
    numpy.ndarray
        ``(B, K)`` matrix ``Cover(p) = sum_x f(x) * (1 - (1 - p(x))**k)``.
    """
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    P = np.asarray(strategies, dtype=float)
    if P.ndim == 2:
        P = P[:, None, :]
    if P.shape[0] != padded.batch_size or P.shape[2] != padded.width:
        raise ValueError(
            f"strategies shape {P.shape} incompatible with batch "
            f"({padded.batch_size}, {ks.size}, {padded.width})"
        )
    missed = np.power(1.0 - P, ks.astype(float)[None, :, None])
    weighted = (1.0 - missed) * padded.values[:, None, :]
    weighted *= padded.mask[:, None, :]
    return weighted.sum(axis=2)


def optimal_coverage_batch(
    values: PaddedValues | Sequence,
    k_grid: Sequence[int] | np.ndarray | int,
    *,
    max_elements: int = _DEFAULT_MAX_ELEMENTS,
) -> np.ndarray:
    """``Cover(p_star)`` for every grid cell: the batched Theorem 4 optimum.

    Equivalent to (but much faster than) looping the scalar
    :func:`repro.core.optimal_coverage.optimal_coverage`.
    """
    padded = as_padded(values)
    ks = as_k_grid(k_grid)
    star = sigma_star_batch(padded, ks, max_elements=max_elements)
    return coverage_batch(padded, star.probabilities, ks)
