"""Batched kernels for the model extensions: capacity-constrained coverage.

First batched entry point of the :mod:`repro.extensions` layer.  The scalar
:func:`repro.extensions.capacity.capacity_coverage` evaluates one
``(f, p, k, r)`` quadruple per call; sweeps over requirement profiles or
strategy populations re-enter it per cell.  :func:`capacity_coverage_batch`
evaluates the same functional for a whole ``(B, M)`` batch of strategy
profiles in one pass through the shared
:func:`~repro.utils.numerics.binomial_pmf_tensor` — with per-row player
counts and per-row (or shared) visitor requirements — and
:func:`capacity_coverage_gradient_batch` returns the exact gradient for every
row, the building block of a future batched projected-gradient ascent.

Like every batch kernel, the bodies are pure Array-API code on the backend
resolved through :mod:`repro.backend`, and results come back as host NumPy
arrays (kernels are property-tested elementwise against the scalar
implementation in ``tests/test_backend.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.backend import (
    Backend,
    asarray_float,
    ensure_numpy,
    from_numpy,
    is_native,
    resolve_backend,
    to_numpy,
)
from repro.batch.padding import PaddedValues
from repro.batch.payoffs import as_k_vector
from repro.batch.solvers import as_padded
from repro.utils.numerics import binomial_pmf_tensor

__all__ = [
    "as_requirements_batch",
    "capacity_coverage_batch",
    "capacity_payoff_batch",
    "capacity_coverage_gradient_batch",
]


def as_requirements_batch(
    requirements: np.ndarray | Sequence | int, batch_size: int, width: int
) -> np.ndarray:
    """Validate requirements into a host ``(B, M_max)`` integer matrix.

    Accepts a scalar (every site of every row), an ``(M_max,)`` vector
    (shared by every row) or a full ``(B, M_max)`` matrix.  Padding columns
    may carry any requirement ``>= 1``; they never contribute (their strategy
    mass is zero).
    """
    arr = np.asarray(ensure_numpy(requirements))
    if arr.ndim == 0:
        arr = np.full((batch_size, width), int(arr))
    elif arr.ndim == 1:
        if arr.shape != (width,):
            raise ValueError(
                f"per-site requirements must have length {width}, got {arr.shape[0]}"
            )
        arr = np.broadcast_to(arr, (batch_size, width))
    elif arr.shape != (batch_size, width):
        raise ValueError(
            f"requirements must be scalar, ({width},) or ({batch_size}, {width}); "
            f"got {arr.shape}"
        )
    arr = arr.astype(np.int64)
    if np.any(arr < 1):
        raise ValueError("requirements must be >= 1 visitor per site")
    return arr


def capacity_coverage_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    requirements: np.ndarray | Sequence | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Capacity-constrained coverage for a whole batch of symmetric profiles.

    ``CapCover_b = sum_x f_b(x) * E[min(1, N_x / r_b(x))]`` with
    ``N_x ~ Binomial(k_b, p_b(x))`` — the batched
    :func:`repro.extensions.capacity.capacity_coverage`.

    Parameters
    ----------
    values:
        Instance batch (ragged ``M`` allowed; see
        :func:`~repro.batch.solvers.as_padded`).
    strategies:
        ``(B, M_max)`` strategy matrix riding on the padded batch (padding
        columns must carry zero probability).
    k:
        Player count — scalar or per-row ``(B,)`` vector.
    requirements:
        Visitors needed to fully consume each site: scalar, ``(M_max,)`` or
        ``(B, M_max)``.  ``r == 1`` recovers the paper's coverage exactly.
    backend:
        Array backend to compute on (``None`` = active backend).

    Returns
    -------
    numpy.ndarray
        ``(B,)`` coverage vector, elementwise equal to looping the scalar
        ``capacity_coverage`` over the rows.
    """
    be = resolve_backend(backend)
    xp = be.xp
    native = is_native(be, strategies)
    padded = as_padded(values)
    ks = as_k_vector(k, padded.batch_size)
    P = asarray_float(be, strategies)
    if tuple(P.shape) != padded.values.shape:
        raise ValueError(
            f"strategies shape {tuple(P.shape)} must match the padded batch "
            f"{padded.values.shape}"
        )
    r = as_requirements_batch(requirements, padded.batch_size, padded.width)
    r_dev = from_numpy(be, r.astype(float), dtype=be.float_dtype)

    pmf = binomial_pmf_tensor(ks, P, backend=be)  # (B, M, k_max + 1)
    counts = xp.astype(xp.arange(pmf.shape[2], dtype=be.int_dtype), be.float_dtype)
    fractions = xp.minimum(
        xp.asarray(1.0, dtype=be.float_dtype), counts[None, None, :] / r_dev[:, :, None]
    )
    consumed = xp.sum(pmf * fractions, axis=2)  # (B, M)
    covered = xp.sum(padded.values_for(be) * consumed * padded.fmask_for(be), axis=1)
    return covered if native else to_numpy(covered)


#: The issue-facing alias: capacity coverage *is* the extensions layer's
#: batched payoff functional.
capacity_payoff_batch = capacity_coverage_batch


def capacity_coverage_gradient_batch(
    values: PaddedValues | Sequence | np.ndarray,
    strategies: np.ndarray,
    k: Sequence[int] | np.ndarray | int,
    requirements: np.ndarray | Sequence | int,
    *,
    backend: Backend | str | None = None,
) -> np.ndarray:
    """Exact per-row gradient of :func:`capacity_coverage_batch` w.r.t. ``p``.

    Uses the binomial identity ``d/dp E[h(Bin(k, p))] = k * E[h(Bin(k-1, p)
    + 1) - h(Bin(k-1, p))]`` evaluated from the ``Binomial(k_b - 1, p_b)``
    PMFs — one tensor pass for the whole batch.  Rows with ``k_b = 1`` reduce
    to the deterministic single-visitor gradient, exactly like the scalar
    :func:`repro.extensions.capacity.capacity_coverage_gradient`.

    Returns the ``(B, M_max)`` gradient matrix (zero on padding columns).
    """
    be = resolve_backend(backend)
    xp = be.xp
    fdt = be.float_dtype
    native = is_native(be, strategies)
    padded = as_padded(values)
    ks = as_k_vector(k, padded.batch_size)
    P = asarray_float(be, strategies)
    if tuple(P.shape) != padded.values.shape:
        raise ValueError(
            f"strategies shape {tuple(P.shape)} must match the padded batch "
            f"{padded.values.shape}"
        )
    r = as_requirements_batch(requirements, padded.batch_size, padded.width)
    r_dev = from_numpy(be, r.astype(float), dtype=fdt)

    # Binomial(k_b - 1, p) PMFs, zero-padded per row (k_b = 1 rows collapse to
    # the deterministic j = 0 column).
    pmf = binomial_pmf_tensor(ks - 1, P, backend=be)  # (B, M, J)
    counts = xp.astype(xp.arange(pmf.shape[2], dtype=be.int_dtype), fdt)
    one = xp.asarray(1.0, dtype=fdt)
    h_plus = xp.minimum(one, (counts[None, None, :] + 1.0) / r_dev[:, :, None])
    h = xp.minimum(one, counts[None, None, :] / r_dev[:, :, None])
    increment = xp.sum(pmf * (h_plus - h), axis=2)  # (B, M)
    ksf = from_numpy(be, ks.astype(float), dtype=fdt)
    grad = ksf[:, None] * padded.values_for(be) * increment * padded.fmask_for(be)
    return grad if native else to_numpy(grad)
