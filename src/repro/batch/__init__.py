"""Batched instance solvers: whole ``(instances x k-grid)`` grids per call.

The scalar solvers of :mod:`repro.core` operate on one ``(f, k)`` instance at
a time, which makes large experiment grids dominated by Python-loop overhead.
This subpackage solves entire grids in a handful of NumPy passes:

* :class:`~repro.batch.padding.PaddedValues` — a ragged collection of value
  profiles packed into one padded ``(B, M_max)`` matrix plus a validity mask;
* :func:`~repro.batch.solvers.sigma_star_batch` /
  :func:`~repro.batch.solvers.support_size_batch` — the closed-form
  exclusive-policy equilibrium for every instance and every ``k`` at once
  (shared cumulative-sum support computation across the ``k`` grid);
* :func:`~repro.batch.solvers.coverage_batch` /
  :func:`~repro.batch.solvers.optimal_coverage_batch` — the coverage
  functional and its optimum over the same grid;
* :func:`~repro.batch.ifd.ifd_batch` — the general nested-bisection IFD
  solver vectorised over instances (outer bisection on a *vector* of
  equilibrium values, inner bisection over all sites of all instances);
* :func:`~repro.batch.spoa.spoa_batch` — per-instance symmetric price of
  anarchy over the grid;
* :mod:`repro.batch.payoffs` — the batched payoff kernel: ``nu``, expected
  payoffs, best-response values and exploitability for ``(B, M)`` strategy
  matrices with per-row player counts;
* :mod:`repro.batch.dynamics` — the unified :class:`DynamicsEngine` stepping
  whole populations of game states under pluggable update rules (replicator,
  logit, smoothed best response, invasion), with per-row convergence masking
  and strided trajectory recording;
* :mod:`repro.batch.extensions` — batched kernels for the model extensions
  (capacity-constrained coverage and its exact gradient over ``(B, M)``
  profile batches);
* :mod:`repro.batch.scenarios` — batched kernels for the Section-5 scenario
  extensions: cost-adjusted IFDs with per-row cost vectors, two-group
  competition over ``(B,)`` policy-pair rosters, and repeated dispersal with
  depletion;
* :mod:`repro.batch.mechanism` — batched mechanism design: the Theorems 4-6
  congestion-policy roster sweeps (``compare_policies_batch`` /
  ``best_two_level_batch``) and the Kleinberg-Oren reward-design pipeline
  (``design_rewards_batch`` / ``optimal_grant_design_batch``) over whole
  ``(instances x k x policy)`` grids;
* :mod:`repro.batch.simulation` — batched Monte-Carlo dispersal: one
  ``(n_trials, B, k)`` inverse-CDF draw and one segment-sum ``bincount`` per
  memory chunk simulates every instance of a batch at once, with a
  ``max_chunk_draws`` cap bounding peak memory;
* :mod:`repro.batch.search` — batched Bayesian search: closed-form success
  probabilities and (where-masked, ``inf``-aware) expected discovery times,
  plus a whole-search Monte-Carlo simulator with geometric and lockstep
  round-stepping methods;
* :mod:`repro.batch.coverage_times` — exact coverage-time laws (Von
  Schelling generalized coupon collector): full-coverage CDF and
  expectation plus partial (``j``-of-``M``) coverage expectations via
  signed log-sum-exp inclusion-exclusion, with a Monte-Carlo
  cross-validator recombining merged two-box search simulations.

Every kernel body is pure Array-API code against the backend resolved by
:mod:`repro.backend` (``numpy`` by default; ``array_api_strict`` / ``torch``
/ ``cupy`` when installed): activate an alternative with
``repro.backend.use_backend(...)``, the ``REPRO_BACKEND`` environment
variable, or the CLI's ``--backend`` flag.  Public results always come back
as host NumPy arrays; intermediates between kernels stay backend-native.

Every ``*_batch`` function agrees elementwise with its scalar counterpart
(property-tested in ``tests/test_batch.py`` and
``tests/test_batch_dynamics.py``); the batch layer is what the experiment
runner of :mod:`repro.experiments` builds on.
"""

from repro.batch.padding import PaddedValues
from repro.batch.solvers import (
    SigmaStarBatch,
    coverage_batch,
    optimal_coverage_batch,
    sigma_star_batch,
    support_size_batch,
)
from repro.batch.ifd import IFDBatch, ifd_batch
from repro.batch.spoa import SPoABatch, spoa_batch
from repro.batch.payoffs import (
    best_response_value_batch,
    congestion_table_batch,
    exploitability_batch,
    expected_payoff_batch,
    occupancy_congestion_factor_batch,
    site_values_batch,
)
from repro.batch.dynamics import (
    DynamicsBatchResult,
    DynamicsEngine,
    best_response_batch,
    invasion_batch,
    logit_batch,
    make_rule,
    replicator_batch,
)
from repro.batch.extensions import (
    capacity_coverage_batch,
    capacity_coverage_gradient_batch,
    capacity_payoff_batch,
)
from repro.batch.scenarios import (
    CostAdjustedIFDBatch,
    RepeatedDispersalBatch,
    TwoGroupCompetitionBatch,
    cost_adjusted_ifd_batch,
    cost_adjusted_site_values_batch,
    repeated_dispersal_batch,
    two_group_competition_batch,
)
from repro.batch.mechanism import (
    BestTwoLevelBatch,
    GrantDesignBatch,
    PolicyComparisonBatch,
    best_two_level_batch,
    compare_policies_batch,
    design_rewards_batch,
    optimal_grant_design_batch,
)
from repro.batch.simulation import (
    DispersalSimulationBatch,
    ProfileSimulationBatch,
    as_strategy_batch,
    simulate_dispersal_batch,
    simulate_profile_batch,
)
from repro.batch.search import (
    SearchSimulationBatch,
    as_prior_batch,
    as_search_strategy_batch,
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.batch.coverage_times import (
    DEFAULT_MAX_EXACT_SITES,
    CoverageTimeEstimate,
    as_visit_distribution_batch,
    coverage_time_cdf_batch,
    estimate_coverage_time_mc,
    expected_coverage_time_batch,
    partial_coverage_time_batch,
)

__all__ = [
    "PaddedValues",
    "SigmaStarBatch",
    "sigma_star_batch",
    "support_size_batch",
    "coverage_batch",
    "optimal_coverage_batch",
    "IFDBatch",
    "ifd_batch",
    "SPoABatch",
    "spoa_batch",
    "congestion_table_batch",
    "occupancy_congestion_factor_batch",
    "site_values_batch",
    "expected_payoff_batch",
    "best_response_value_batch",
    "exploitability_batch",
    "DynamicsEngine",
    "DynamicsBatchResult",
    "make_rule",
    "replicator_batch",
    "logit_batch",
    "best_response_batch",
    "invasion_batch",
    "capacity_coverage_batch",
    "capacity_coverage_gradient_batch",
    "capacity_payoff_batch",
    "CostAdjustedIFDBatch",
    "cost_adjusted_site_values_batch",
    "cost_adjusted_ifd_batch",
    "TwoGroupCompetitionBatch",
    "two_group_competition_batch",
    "RepeatedDispersalBatch",
    "repeated_dispersal_batch",
    "PolicyComparisonBatch",
    "compare_policies_batch",
    "BestTwoLevelBatch",
    "best_two_level_batch",
    "GrantDesignBatch",
    "design_rewards_batch",
    "optimal_grant_design_batch",
    "DispersalSimulationBatch",
    "ProfileSimulationBatch",
    "as_strategy_batch",
    "simulate_dispersal_batch",
    "simulate_profile_batch",
    "SearchSimulationBatch",
    "as_prior_batch",
    "as_search_strategy_batch",
    "success_probability_batch",
    "expected_discovery_time_batch",
    "simulate_search_batch",
    "DEFAULT_MAX_EXACT_SITES",
    "CoverageTimeEstimate",
    "as_visit_distribution_batch",
    "coverage_time_cdf_batch",
    "expected_coverage_time_batch",
    "partial_coverage_time_batch",
    "estimate_coverage_time_mc",
]
