"""Packing ragged collections of value profiles into padded matrices.

A batch of game instances rarely shares one site count ``M``.  The batch
solvers therefore operate on a :class:`PaddedValues`: all profiles stacked
into a single ``(B, M_max)`` matrix, short rows padded with their own smallest
value (so logarithms and negative powers stay finite) and a boolean mask
marking the real entries.  Padding never leaks into results — every solver
masks it out of support computations and zeroes it in returned strategies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.core.values import SiteValues

__all__ = ["PaddedValues"]


@dataclass(frozen=True)
class PaddedValues:
    """A batch of ``B`` value profiles padded to a common width ``M_max``.

    Attributes
    ----------
    values:
        ``(B, M_max)`` float matrix; row ``b`` holds the ``sizes[b]`` site
        values in non-increasing order, then copies of its smallest value.
    sizes:
        ``(B,)`` integer vector of true site counts.
    """

    values: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        values = np.ascontiguousarray(np.asarray(self.values, dtype=float))
        sizes = np.ascontiguousarray(np.asarray(self.sizes, dtype=np.int64))
        if values.ndim != 2:
            raise ValueError("values must be a 2-D (B, M_max) matrix")
        if sizes.shape != (values.shape[0],):
            raise ValueError("sizes must be a (B,) vector matching values")
        if np.any(sizes < 1) or np.any(sizes > values.shape[1]):
            raise ValueError("sizes must lie in [1, M_max]")
        if np.any(values <= 0):
            raise ValueError("site values (including padding) must be strictly positive")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "sizes", sizes)
        self.values.setflags(write=False)
        self.sizes.setflags(write=False)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_instances(
        cls, instances: Iterable[SiteValues | Sequence[float] | np.ndarray]
    ) -> "PaddedValues":
        """Pack an iterable of value profiles (ragged ``M`` allowed).

        Raw arrays are routed through :class:`~repro.core.values.SiteValues`
        so they inherit its validation and non-increasing sort.
        """
        rows = [
            item if isinstance(item, SiteValues) else SiteValues.from_values(np.asarray(item))
            for item in instances
        ]
        if not rows:
            raise ValueError("cannot pack an empty batch of instances")
        sizes = np.array([row.m for row in rows], dtype=np.int64)
        width = int(sizes.max())
        values = np.empty((len(rows), width), dtype=float)
        for index, row in enumerate(rows):
            arr = row.as_array()
            values[index, : arr.size] = arr
            values[index, arr.size :] = arr[-1]
        return cls(values, sizes)

    # ----------------------------------------------------------------- basics
    @property
    def batch_size(self) -> int:
        """Number of instances ``B``."""
        return int(self.values.shape[0])

    @property
    def width(self) -> int:
        """Padded width ``M_max``."""
        return int(self.values.shape[1])

    @property
    def mask(self) -> np.ndarray:
        """Boolean ``(B, M_max)`` matrix; ``True`` on real (non-padding) sites."""
        return np.arange(self.width)[None, :] < self.sizes[:, None]

    def row(self, index: int) -> SiteValues:
        """Recover instance ``index`` as a :class:`~repro.core.values.SiteValues`."""
        size = int(self.sizes[index])
        return SiteValues.from_values(self.values[index, :size])

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaddedValues(B={self.batch_size}, M_max={self.width})"
