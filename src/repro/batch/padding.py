"""Packing ragged collections of value profiles into padded matrices.

A batch of game instances rarely shares one site count ``M``.  The batch
solvers therefore operate on a :class:`PaddedValues`: all profiles stacked
into a single ``(B, M_max)`` matrix, short rows padded with their own smallest
value (so logarithms and negative powers stay finite) and a boolean mask
marking the real entries.  Padding never leaks into results — every solver
masks it out of support computations and zeroes it in returned strategies.

``PaddedValues`` is deliberately a **host-side** container: packing ragged
Python iterables, validating positivity and sorting rows is staging work, not
kernel work, so the canonical storage is NumPy.  Kernels running on another
backend fetch device copies through :meth:`PaddedValues.values_for` /
:meth:`PaddedValues.mask_for`, which cache one transfer per backend so a grid
of kernel calls ships the batch to the device exactly once.

Thread-safety of the transfer cache
-----------------------------------
The per-backend cache is a plain dict keyed by ``(backend name, device, field)``.
The canonical host arrays are immutable (read-only flags), cached transfers
are pure functions of them, and dict get/set are single atomic bytecode
operations under the GIL — so concurrent readers (worker threads, or
requests held across asyncio event-loop turns by the serving coalescer) can
race at worst into building the *same* transfer twice, with last-writer-wins
on the slot; never into observing a partially built entry.  Long-lived
holders that migrate a batch off an accelerator can drop the cached copies
with :meth:`clear_device_cache`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from repro.backend import Backend, ensure_numpy, from_numpy
from repro.core.values import SiteValues

__all__ = ["PaddedValues", "sorted_padded", "unsort_rows"]


@dataclass(frozen=True)
class PaddedValues:
    """A batch of ``B`` value profiles padded to a common width ``M_max``.

    Attributes
    ----------
    values:
        ``(B, M_max)`` float matrix; row ``b`` holds the ``sizes[b]`` site
        values in non-increasing order, then copies of its smallest value.
    sizes:
        ``(B,)`` integer vector of true site counts.
    """

    values: np.ndarray
    sizes: np.ndarray

    def __post_init__(self) -> None:
        values = np.ascontiguousarray(np.asarray(ensure_numpy(self.values), dtype=float))
        sizes = np.ascontiguousarray(np.asarray(ensure_numpy(self.sizes), dtype=np.int64))
        if values.ndim != 2:
            raise ValueError("values must be a 2-D (B, M_max) matrix")
        if sizes.shape != (values.shape[0],):
            raise ValueError("sizes must be a (B,) vector matching values")
        if np.any(sizes < 1) or np.any(sizes > values.shape[1]):
            raise ValueError("sizes must lie in [1, M_max]")
        if np.any(values <= 0):
            raise ValueError("site values (including padding) must be strictly positive")
        object.__setattr__(self, "values", values)
        object.__setattr__(self, "sizes", sizes)
        object.__setattr__(self, "_device_cache", {})
        self.values.setflags(write=False)
        self.sizes.setflags(write=False)

    # ----------------------------------------------------------- constructors
    @classmethod
    def from_instances(
        cls,
        instances: Iterable[SiteValues | Sequence[float] | np.ndarray],
        *,
        width: int | None = None,
    ) -> "PaddedValues":
        """Pack an iterable of value profiles (ragged ``M`` allowed).

        Raw arrays are routed through :class:`~repro.core.values.SiteValues`
        so they inherit its validation and non-increasing sort.  ``width``
        forces a padded width beyond the longest row: reduction trees over
        the site axis depend on the padded length, so callers that must get
        bit-identical results across different batchings of the same row
        (the serving coalescer) pin the width per request instead of letting
        it float with the batch.
        """
        rows = [
            item if isinstance(item, SiteValues) else SiteValues.from_values(np.asarray(item))
            for item in instances
        ]
        if not rows:
            raise ValueError("cannot pack an empty batch of instances")
        sizes = np.array([row.m for row in rows], dtype=np.int64)
        if width is None:
            width = int(sizes.max())
        elif width < int(sizes.max()):
            raise ValueError(
                f"width={width} is narrower than the longest instance ({int(sizes.max())})"
            )
        values = np.empty((len(rows), width), dtype=float)
        for index, row in enumerate(rows):
            arr = row.as_array()
            values[index, : arr.size] = arr
            values[index, arr.size :] = arr[-1]
        return cls(values, sizes)

    # ----------------------------------------------------------------- basics
    @property
    def batch_size(self) -> int:
        """Number of instances ``B``."""
        return int(self.values.shape[0])

    @property
    def width(self) -> int:
        """Padded width ``M_max``."""
        return int(self.values.shape[1])

    @property
    def mask(self) -> np.ndarray:
        """Boolean ``(B, M_max)`` matrix; ``True`` on real (non-padding) sites."""
        return np.arange(self.width)[None, :] < self.sizes[:, None]

    # --------------------------------------------------------- device copies
    def _cached(self, backend: Backend, key: str, build) -> Any:
        """One transfer per ``(backend, device, field)``; NumPy short-circuits entirely."""
        cache = self._device_cache
        slot_key = (backend.name, str(backend.device), key)
        slot = cache.get(slot_key)
        if slot is None:
            slot = build()
            cache[slot_key] = slot
        return slot

    def values_for(self, backend: Backend) -> Any:
        """The ``(B, M_max)`` value matrix in ``backend``'s namespace (cached)."""
        if backend.is_numpy:
            return self.values
        return self._cached(
            backend, "values", lambda: from_numpy(backend, self.values, dtype=backend.float_dtype)
        )

    def mask_for(self, backend: Backend) -> Any:
        """The boolean validity mask in ``backend``'s namespace (cached)."""
        if backend.is_numpy:
            return self.mask
        return self._cached(backend, "mask", lambda: from_numpy(backend, self.mask))

    def fmask_for(self, backend: Backend) -> Any:
        """The validity mask as a float ``0/1`` matrix (cached; used as a multiplier)."""
        return self._cached(
            backend,
            "fmask",
            lambda: from_numpy(backend, self.mask.astype(float), dtype=backend.float_dtype),
        )

    def sizes_for(self, backend: Backend) -> Any:
        """The ``(B,)`` site-count vector in ``backend``'s namespace (cached)."""
        if backend.is_numpy:
            return self.sizes
        return self._cached(
            backend, "sizes", lambda: from_numpy(backend, self.sizes, dtype=backend.int_dtype)
        )

    def clear_device_cache(self) -> None:
        """Drop every cached per-backend transfer (host arrays are untouched).

        The cache repopulates lazily on the next ``*_for`` call; clearing is
        only needed by long-lived holders (e.g. a serving process) that want
        to release device memory for batches they are done with.
        """
        self._device_cache.clear()

    def row(self, index: int) -> SiteValues:
        """Recover instance ``index`` as a :class:`~repro.core.values.SiteValues`."""
        size = int(self.sizes[index])
        return SiteValues.from_values(self.values[index, :size])

    def __len__(self) -> int:
        return self.batch_size

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"PaddedValues(B={self.batch_size}, M_max={self.width})"


def sorted_padded(
    values_matrix: np.ndarray, padded: PaddedValues
) -> tuple[PaddedValues, np.ndarray]:
    """Re-sort each row of a (strictly positive) value matrix non-increasing.

    Solvers assume padded rows are sorted; kernels that derive new per-site
    values mid-computation (expected leftovers, designed rewards, depleted
    tracks) re-pack them through this helper before re-entering a solver.
    Returns the re-padded batch (padding columns overwritten with each row's
    last real value, so :class:`PaddedValues` validation holds) plus the
    ``(B, M)`` sort permutation; :func:`unsort_rows` inverts it.  Padding
    positions sort last (their key is ``-inf``).
    """
    mask = padded.mask
    sort_key = np.where(mask, values_matrix, -np.inf)
    order = np.argsort(-sort_key, axis=1, kind="stable")
    sorted_vals = np.take_along_axis(values_matrix, order, axis=1)
    last_real = sorted_vals[np.arange(padded.batch_size), padded.sizes - 1]
    sorted_vals = np.where(mask, sorted_vals, last_real[:, None])
    return PaddedValues(sorted_vals, padded.sizes), order


def unsort_rows(sorted_matrix: np.ndarray, order: np.ndarray) -> np.ndarray:
    """Scatter per-row results back to the pre-:func:`sorted_padded` order."""
    out = np.zeros_like(sorted_matrix)
    np.put_along_axis(out, order, sorted_matrix, axis=1)
    return out
