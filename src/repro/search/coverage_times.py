"""Exact coverage-time laws for one site-visit distribution (``B = 1``).

The Von Schelling generalized coupon-collector machinery lives in
:mod:`repro.batch.coverage_times`, evaluated for whole ``(B, M)`` batches of
visit distributions at once; the entry points here are thin ``B = 1``
wrappers with scalar signatures, mirroring how
:mod:`repro.search.simulator` wraps :mod:`repro.batch.search`.

A "visit distribution" is the per-draw law of the site each of the ``k``
searchers samples every round — any :class:`~repro.core.strategy.Strategy`
(``sigma_star``, uniform, proportional, ...) or plain probability vector.
A strategy that skips a site can never complete coverage, so the expected
times are ``inf`` and the CDF is identically ``0`` for such inputs (the
same where-masked contract as the batched kernels).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.batch.coverage_times import (
    coverage_time_cdf_batch,
    expected_coverage_time_batch,
    partial_coverage_time_batch,
)
from repro.utils.validation import check_positive_integer

__all__ = [
    "expected_coverage_time",
    "coverage_time_cdf",
    "partial_coverage_time",
]


def _as_row(distribution) -> np.ndarray:
    if hasattr(distribution, "as_array"):
        distribution = distribution.as_array()
    row = np.asarray(getattr(distribution, "prior", distribution), dtype=float).ravel()
    if row.size == 0:
        raise ValueError("the visit distribution must cover at least one site")
    return row[None, :]


def expected_coverage_time(distribution, k: int) -> float:
    """Exact expected rounds until all sites have been visited.

    ``k`` searchers draw one site each per round, i.i.d. from
    ``distribution``; returns ``inf`` when some site has zero visit
    probability.  Thin ``B = 1`` wrapper over
    :func:`repro.batch.coverage_times.expected_coverage_time_batch`.
    """
    k = check_positive_integer(k, "k")
    return float(expected_coverage_time_batch(_as_row(distribution), k)[0])


def coverage_time_cdf(
    distribution, k: int, times: Sequence[int] | np.ndarray | int
) -> float | np.ndarray:
    """Exact ``P(T <= t)`` of the full-coverage time on a round grid.

    Returns a float for scalar ``times`` and a ``(len(times),)`` vector for
    a grid.  Thin ``B = 1`` wrapper over
    :func:`repro.batch.coverage_times.coverage_time_cdf_batch`.
    """
    k = check_positive_integer(k, "k")
    values = coverage_time_cdf_batch(_as_row(distribution), k, times)
    if values.ndim == 1:
        return float(values[0])
    return np.asarray(values[0], dtype=float)


def partial_coverage_time(distribution, k: int, j: int) -> float:
    """Exact expected rounds until any ``j`` distinct sites are visited.

    ``inf`` when fewer than ``j`` sites have positive visit probability.
    Thin ``B = 1`` wrapper over
    :func:`repro.batch.coverage_times.partial_coverage_time_batch`.
    """
    k = check_positive_integer(k, "k")
    j = check_positive_integer(j, "j")
    return float(partial_coverage_time_batch(_as_row(distribution), k, j)[0])
