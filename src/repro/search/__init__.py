"""Bayesian parallel search: the Korman-Rodeh connection.

Section 2.1 of the paper notes that ``sigma_star`` coincides with the first
round of the ``A*`` algorithm of Korman & Rodeh (SIROCCO 2017) for the setting
in which ``k`` searchers, unable to coordinate, look for a treasure hidden in
one of ``M`` boxes according to a known prior.  This subpackage implements
that substrate: the search problem, round strategies (including the
``sigma_star``-derived one), the exact success/discovery-time formulas for
memoryless strategies, a Monte-Carlo search simulator, and the exact
coverage-time laws (Von Schelling generalized coupon collector) of a round
strategy replayed until every site has been visited.
"""

from repro.search.boxes import BayesianSearchProblem
from repro.search.strategies import (
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    uniform_strategy,
)
from repro.search.simulator import (
    SearchOutcome,
    compare_search_strategies,
    expected_discovery_time,
    simulate_search,
    single_round_success_probability,
)
from repro.search.coverage_times import (
    coverage_time_cdf,
    expected_coverage_time,
    partial_coverage_time,
)

__all__ = [
    "BayesianSearchProblem",
    "sigma_star_strategy",
    "uniform_strategy",
    "proportional_strategy",
    "greedy_top_k_strategy",
    "SearchOutcome",
    "single_round_success_probability",
    "expected_discovery_time",
    "simulate_search",
    "compare_search_strategies",
    "expected_coverage_time",
    "coverage_time_cdf",
    "partial_coverage_time",
]
