"""The "treasure in M boxes" Bayesian search problem.

``k`` searchers look for a single treasure hidden in one of ``M`` boxes; the
hiding place follows a known prior ``q``.  Searchers act in parallel rounds
and cannot coordinate — exactly the informational setting of the dispersal
game, with the prior playing the role of the value function.  The problem
object stores the prior, samples treasure locations, and exposes the sorted
view needed by the strategy constructors.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.values import SiteValues
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer, check_probability_vector

__all__ = ["BayesianSearchProblem"]


@dataclass(frozen=True)
class BayesianSearchProblem:
    """A prior over boxes, sorted so that box 0 is the most likely hiding place."""

    prior: np.ndarray

    def __post_init__(self) -> None:
        arr = check_probability_vector(self.prior, "prior", normalize=True)
        order = np.argsort(-arr, kind="stable")
        object.__setattr__(self, "prior", np.ascontiguousarray(arr[order]))
        self.prior.setflags(write=False)

    @property
    def m(self) -> int:
        """Number of boxes."""
        return int(self.prior.size)

    def as_site_values(self) -> SiteValues:
        """View the prior as site values (dropping zero-probability boxes).

        The dispersal game requires strictly positive values; boxes the prior
        rules out can never hold the treasure, so removing them changes
        neither the optimal strategies nor any success probability.
        """
        positive = self.prior[self.prior > 0]
        return SiteValues.from_values(positive)

    @property
    def n_possible_boxes(self) -> int:
        """Number of boxes with strictly positive prior probability."""
        return int(np.count_nonzero(self.prior > 0))

    def sample_treasure(
        self, n_trials: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Sample ``n_trials`` independent treasure locations from the prior."""
        n_trials = check_positive_integer(n_trials, "n_trials")
        generator = as_generator(rng)
        return generator.choice(self.m, size=n_trials, p=self.prior)

    # ------------------------------------------------------------ constructors
    @staticmethod
    def from_weights(weights: np.ndarray) -> "BayesianSearchProblem":
        """Build a problem from non-negative (unnormalised) weights."""
        arr = np.asarray(weights, dtype=float)
        if np.any(arr < 0):
            raise ValueError("weights must be non-negative")
        total = arr.sum()
        if total <= 0:
            raise ValueError("weights must have positive mass")
        return BayesianSearchProblem(arr / total)

    @staticmethod
    def zipf(m: int, exponent: float = 1.0) -> "BayesianSearchProblem":
        """Zipf-like prior: box ``x`` has weight ``1 / x**exponent``."""
        values = SiteValues.zipf(m, exponent=exponent)
        return BayesianSearchProblem.from_weights(values.as_array())

    @staticmethod
    def uniform(m: int) -> "BayesianSearchProblem":
        """Uniform prior over ``m`` boxes."""
        m = check_positive_integer(m, "m")
        return BayesianSearchProblem(np.full(m, 1.0 / m))
