"""Round strategies for parallel Bayesian search.

A *round strategy* is a distribution over boxes from which each searcher
samples independently in every round (memoryless searchers — the regime in
which the dispersal-game analysis applies round by round).  The strategies
provided here are the natural baselines plus the ``sigma_star``-derived one,
which maximises the single-round success probability (Theorem 4 applied with
the prior as the value function).
"""

from __future__ import annotations

import numpy as np

from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.search.boxes import BayesianSearchProblem
from repro.utils.validation import check_positive_integer

__all__ = [
    "sigma_star_strategy",
    "uniform_strategy",
    "proportional_strategy",
    "greedy_top_k_strategy",
]


def _expand_to_all_boxes(problem: BayesianSearchProblem, positive_probs: np.ndarray) -> Strategy:
    """Lift a distribution over the positive-prior boxes back to all boxes."""
    probs = np.zeros(problem.m)
    positive_indices = np.nonzero(problem.prior > 0)[0]
    probs[positive_indices] = positive_probs
    return Strategy(probs)


def sigma_star_strategy(problem: BayesianSearchProblem, k: int) -> Strategy:
    """The first round of the Korman-Rodeh ``A*`` algorithm.

    Computes ``sigma_star`` with the prior as the value function; this is the
    round strategy maximising the probability that *some* searcher opens the
    treasure box in a single round.
    """
    k = check_positive_integer(k, "k")
    values = problem.as_site_values()
    result = sigma_star(values, k)
    return _expand_to_all_boxes(problem, result.strategy.as_array())


def uniform_strategy(problem: BayesianSearchProblem) -> Strategy:
    """Uniform sampling over the boxes with positive prior probability."""
    positive = problem.prior > 0
    probs = positive / positive.sum()
    return Strategy(probs)


def proportional_strategy(problem: BayesianSearchProblem) -> Strategy:
    """Sampling proportional to the prior (a common greedy-in-expectation baseline)."""
    return Strategy(problem.prior.copy())


def greedy_top_k_strategy(problem: BayesianSearchProblem, k: int) -> Strategy:
    """Uniform over the ``k`` most likely boxes (the coordination-free analogue of 'split the top k')."""
    k = check_positive_integer(k, "k")
    width = min(k, problem.n_possible_boxes)
    probs = np.zeros(problem.m)
    probs[:width] = 1.0 / width
    return Strategy(probs)
