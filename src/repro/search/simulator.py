"""Success probabilities, discovery times, and Monte-Carlo search simulation.

For memoryless round strategies the relevant quantities have closed forms:

* the single-round success probability of a round strategy ``p`` is exactly
  the coverage of ``p`` with the prior as value function;
* when the same round strategy is replayed until the treasure is found, the
  number of rounds is geometric conditionally on the treasure location, so the
  expected discovery time is ``sum_x q(x) / (1 - (1 - p(x))**k)`` (infinite if
  some possible box is never searched).

Since the batched stochastic layer landed, the formulas and the simulator
live in :mod:`repro.batch.search` — one tensor pass (or one vectorised
whole-search simulation) per ``(B,)`` batch of problems — and the public
entry points here are thin ``B = 1`` wrappers with their original
signatures.  The simulator plays whole searches (censored at ``max_rounds``)
and reports the empirical distribution of discovery times, which tests
compare against the closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from repro.batch.search import (
    expected_discovery_time_batch,
    simulate_search_batch,
    success_probability_batch,
)
from repro.core.strategy import Strategy
from repro.search.boxes import BayesianSearchProblem
from repro.search.strategies import (
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    uniform_strategy,
)
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = [
    "SearchOutcome",
    "single_round_success_probability",
    "expected_discovery_time",
    "simulate_search",
    "compare_search_strategies",
]


@dataclass(frozen=True)
class SearchOutcome:
    """Empirical summary of a batch of simulated searches.

    ``rounds`` holds one entry per trial; ``max_rounds + 1`` marks a
    **censored** trial whose treasure was not found within ``max_rounds``
    rounds, and ``n_censored`` counts them explicitly.
    ``mean_rounds_when_found`` conditions on the uncensored trials
    only, so it under-estimates the true
    :func:`expected_discovery_time` whenever ``success_rate < 1`` (and in
    particular whenever the closed form is infinite) — exact-vs-empirical
    comparisons must skip outcomes with ``n_censored > 0``.
    """

    n_trials: int
    k: int
    max_rounds: int
    success_rate: float
    mean_rounds_when_found: float
    round_one_success_rate: float
    n_censored: int
    rounds: np.ndarray


def _check_strategy(problem: BayesianSearchProblem, strategy: Strategy) -> np.ndarray:
    p = strategy.as_array()
    if p.size != problem.prior.size:
        raise ValueError("strategy must be over the problem's boxes")
    return p


def single_round_success_probability(
    problem: BayesianSearchProblem, strategy: Strategy, k: int
) -> float:
    """Probability that at least one of ``k`` searchers opens the treasure box in one round.

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.search.success_probability_batch`.
    """
    k = check_positive_integer(k, "k")
    p = _check_strategy(problem, strategy)
    return float(
        success_probability_batch(problem.prior[None, :], p[None, :], k)[0]
    )


def expected_discovery_time(
    problem: BayesianSearchProblem, strategy: Strategy, k: int
) -> float:
    """Expected number of rounds until discovery for a memoryless round strategy.

    Returns ``inf`` when some box with positive prior probability is never
    searched (the treasure might be there forever); the unreachable boxes are
    where-masked out of the division, so no floating-point warnings are
    emitted on the way to ``inf``.  Thin ``B = 1`` wrapper over
    :func:`repro.batch.search.expected_discovery_time_batch`.
    """
    k = check_positive_integer(k, "k")
    p = _check_strategy(problem, strategy)
    return float(
        expected_discovery_time_batch(problem.prior[None, :], p[None, :], k)[0]
    )


def simulate_search(
    problem: BayesianSearchProblem,
    strategy: Strategy,
    k: int,
    n_trials: int,
    *,
    max_rounds: int = 200,
    rng: np.random.Generator | int | None = None,
) -> SearchOutcome:
    """Simulate complete searches with a memoryless round strategy.

    Each trial hides the treasure according to the prior, then repeats rounds
    in which each of the ``k`` searchers independently samples a box from
    ``strategy``, until the treasure is found or ``max_rounds`` is exhausted.
    The per-trial round counts are returned (``max_rounds + 1`` marks a
    censored, unfound trial — see :class:`SearchOutcome`).

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.search.simulate_search_batch` with the default
    ``"geometric"`` method (each trial's round count is geometric
    conditionally on the treasure's box, so inverting that law is equivalent
    to simulating every individual box opening).
    """
    k = check_positive_integer(k, "k")
    p = _check_strategy(problem, strategy)
    batch = simulate_search_batch(
        problem.prior[None, :],
        p[None, :],
        k,
        n_trials,
        max_rounds=max_rounds,
        rng=as_generator(rng),
    )
    return SearchOutcome(
        n_trials=batch.n_trials,
        k=k,
        max_rounds=batch.max_rounds,
        success_rate=float(batch.success_rates[0]),
        mean_rounds_when_found=float(batch.mean_rounds_when_found[0]),
        round_one_success_rate=float(batch.round_one_success_rates[0]),
        n_censored=int(batch.censored_counts[0]),
        rounds=np.asarray(batch.rounds[0], dtype=int),
    )


def compare_search_strategies(
    problem: BayesianSearchProblem,
    k: int,
    *,
    extra_strategies: Mapping[str, Strategy] | None = None,
) -> dict[str, dict[str, float]]:
    """Closed-form comparison of the standard round strategies on one problem.

    Returns a mapping ``name -> {"success_probability", "expected_rounds"}``
    covering ``sigma_star``, uniform, prior-proportional and greedy-top-k
    (plus any extra strategies supplied by the caller).  Both quantities for
    all strategies come from one batched pass each
    (:func:`~repro.batch.search.success_probability_batch` /
    :func:`~repro.batch.search.expected_discovery_time_batch` with the
    strategy roster as the batch axis).
    """
    k = check_positive_integer(k, "k")
    strategies: dict[str, Strategy] = {
        "sigma_star": sigma_star_strategy(problem, k),
        "uniform": uniform_strategy(problem),
        "proportional": proportional_strategy(problem),
        "greedy_top_k": greedy_top_k_strategy(problem, k),
    }
    if extra_strategies:
        strategies.update(extra_strategies)
    names = list(strategies)
    priors = np.tile(problem.prior, (len(names), 1))
    matrix = np.stack([_check_strategy(problem, strategies[name]) for name in names])
    successes = success_probability_batch(priors, matrix, k)
    rounds = expected_discovery_time_batch(priors, matrix, k)
    return {
        name: {
            "success_probability": float(successes[index]),
            "expected_rounds": float(rounds[index]),
        }
        for index, name in enumerate(names)
    }
