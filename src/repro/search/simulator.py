"""Success probabilities, discovery times, and Monte-Carlo search simulation.

For memoryless round strategies the relevant quantities have closed forms:

* the single-round success probability of a round strategy ``p`` is exactly
  the coverage of ``p`` with the prior as value function;
* when the same round strategy is replayed until the treasure is found, the
  number of rounds is geometric conditionally on the treasure location, so the
  expected discovery time is ``sum_x q(x) / (1 - (1 - p(x))**k)`` (infinite if
  some possible box is never searched).

The simulator plays whole searches (bounded by ``max_rounds``) and reports the
empirical distribution of discovery times, which tests compare against the
closed forms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from repro.core.coverage import coverage
from repro.core.strategy import Strategy
from repro.search.boxes import BayesianSearchProblem
from repro.search.strategies import (
    greedy_top_k_strategy,
    proportional_strategy,
    sigma_star_strategy,
    uniform_strategy,
)
from repro.simulation.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = [
    "SearchOutcome",
    "single_round_success_probability",
    "expected_discovery_time",
    "simulate_search",
    "compare_search_strategies",
]


@dataclass(frozen=True)
class SearchOutcome:
    """Empirical summary of a batch of simulated searches."""

    n_trials: int
    k: int
    max_rounds: int
    success_rate: float
    mean_rounds_when_found: float
    round_one_success_rate: float
    rounds: np.ndarray


def single_round_success_probability(
    problem: BayesianSearchProblem, strategy: Strategy, k: int
) -> float:
    """Probability that at least one of ``k`` searchers opens the treasure box in one round."""
    check_positive_integer(k, "k")
    q = problem.prior
    p = strategy.as_array()
    if p.size != q.size:
        raise ValueError("strategy must be over the problem's boxes")
    return float(np.dot(q, 1.0 - (1.0 - p) ** k))


def expected_discovery_time(
    problem: BayesianSearchProblem, strategy: Strategy, k: int
) -> float:
    """Expected number of rounds until discovery for a memoryless round strategy.

    Returns ``inf`` when some box with positive prior probability is never
    searched (the treasure might be there forever).
    """
    check_positive_integer(k, "k")
    q = problem.prior
    p = strategy.as_array()
    per_round = 1.0 - (1.0 - p) ** k
    possible = q > 0
    if np.any(per_round[possible] <= 0):
        return float("inf")
    return float(np.sum(q[possible] / per_round[possible]))


def simulate_search(
    problem: BayesianSearchProblem,
    strategy: Strategy,
    k: int,
    n_trials: int,
    *,
    max_rounds: int = 200,
    rng: np.random.Generator | int | None = None,
) -> SearchOutcome:
    """Simulate complete searches with a memoryless round strategy.

    Each trial hides the treasure according to the prior, then repeats rounds
    in which each of the ``k`` searchers independently samples a box from
    ``strategy``, until the treasure is found or ``max_rounds`` is exhausted.
    The per-trial round counts are returned (``max_rounds + 1`` marks failure).
    """
    k = check_positive_integer(k, "k")
    n_trials = check_positive_integer(n_trials, "n_trials")
    max_rounds = check_positive_integer(max_rounds, "max_rounds")
    generator = as_generator(rng)

    treasure = problem.sample_treasure(n_trials, generator)
    p = strategy.as_array()
    # Probability that one round finds the treasure, per trial (depends only on
    # the treasure's box), so each trial's round count is geometric: simulate it
    # directly, which is equivalent to simulating every individual box opening.
    per_round = 1.0 - (1.0 - p[treasure]) ** k
    uniforms = generator.random(n_trials)
    rounds = np.full(n_trials, max_rounds + 1, dtype=int)
    findable = per_round > 0
    # Inverse-CDF sampling of the geometric distribution.
    rounds[findable] = np.ceil(
        np.log1p(-uniforms[findable]) / np.log1p(-np.clip(per_round[findable], 1e-300, 1 - 1e-16))
    ).astype(int)
    rounds[findable] = np.clip(rounds[findable], 1, None)
    rounds = np.where(rounds > max_rounds, max_rounds + 1, rounds)

    found = rounds <= max_rounds
    mean_rounds = float(rounds[found].mean()) if np.any(found) else float("nan")
    return SearchOutcome(
        n_trials=n_trials,
        k=k,
        max_rounds=max_rounds,
        success_rate=float(found.mean()),
        mean_rounds_when_found=mean_rounds,
        round_one_success_rate=float((rounds == 1).mean()),
        rounds=rounds,
    )


def compare_search_strategies(
    problem: BayesianSearchProblem,
    k: int,
    *,
    extra_strategies: Mapping[str, Strategy] | None = None,
) -> dict[str, dict[str, float]]:
    """Closed-form comparison of the standard round strategies on one problem.

    Returns a mapping ``name -> {"success_probability", "expected_rounds"}``
    covering ``sigma_star``, uniform, prior-proportional and greedy-top-k
    (plus any extra strategies supplied by the caller).
    """
    k = check_positive_integer(k, "k")
    strategies: dict[str, Strategy] = {
        "sigma_star": sigma_star_strategy(problem, k),
        "uniform": uniform_strategy(problem),
        "proportional": proportional_strategy(problem),
        "greedy_top_k": greedy_top_k_strategy(problem, k),
    }
    if extra_strategies:
        strategies.update(extra_strategies)
    report: dict[str, dict[str, float]] = {}
    for name, strategy in strategies.items():
        report[name] = {
            "success_probability": single_round_success_probability(problem, strategy, k),
            "expected_rounds": expected_discovery_time(problem, strategy, k),
        }
    return report
