"""Two-group competition over the same patches (Section 5.2 discussion).

The paper's informal discussion asks: if two species (or groups) exploit the
same patch set but differ in how aggressively individuals treat conspecifics,
which one wins?  The apparent waste of within-group aggression (collisions
destroy value) must be weighed against the better *coverage* it induces, which
leaves less food for the competitor.

Model implemented here: the patch set is exploited in two waves (e.g. the two
species feed at different times of day).  The first group disperses according
to the symmetric equilibrium (IFD) of *its own* congestion rule and removes the
value of every patch it visits; the second group then disperses — again at the
IFD of its own rule — over what is left.  The group-level score is the expected
total value consumed; the individual-level score is the expected equilibrium
payoff of a group member.

This makes the paper's qualitative prediction testable: the group whose
internal rule is the exclusive policy consumes the optimal-coverage share of
the environment, so it weakly dominates any other internal rule when playing
first, and loses the least when playing second.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import site_coverage_probabilities
from repro.core.ifd import ideal_free_distribution
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["GroupCompetitionResult", "two_group_competition"]


@dataclass(frozen=True)
class GroupCompetitionResult:
    """Outcome of a sequential two-group competition.

    Attributes
    ----------
    first_consumption, second_consumption:
        Expected total value consumed by each group.
    first_strategy, second_strategy:
        The equilibrium dispersal distribution each group uses (the second
        group's equilibrium is computed on the expected leftover values).
    first_individual_payoff, second_individual_payoff:
        Expected equilibrium payoff per group member under each group's own
        congestion rule (the within-group "selfish" score).
    leftover_value:
        Expected value remaining after both groups fed.
    """

    first_consumption: float
    second_consumption: float
    first_strategy: Strategy
    second_strategy: Strategy
    first_individual_payoff: float
    second_individual_payoff: float
    leftover_value: float

    @property
    def first_share(self) -> float:
        """Fraction of the consumed value captured by the first group."""
        total = self.first_consumption + self.second_consumption
        return float(self.first_consumption / total) if total > 0 else float("nan")


def two_group_competition(
    values: SiteValues | np.ndarray,
    first_policy: CongestionPolicy,
    second_policy: CongestionPolicy,
    k_first: int,
    k_second: int | None = None,
    **solver_kwargs,
) -> GroupCompetitionResult:
    """Sequential competition: ``first`` group feeds, then ``second`` feeds on leftovers.

    Both groups play the symmetric equilibrium of their own within-group
    congestion rule; the second group's equilibrium is computed on the expected
    leftover values ``f(x) * (1 - p_visit_first(x))``.

    Parameters
    ----------
    values:
        Patch values.
    first_policy, second_policy:
        Within-group congestion rules of the two groups.
    k_first, k_second:
        Group sizes (``k_second`` defaults to ``k_first``).
    """
    k_first = check_positive_integer(k_first, "k_first")
    k_second = k_first if k_second is None else check_positive_integer(k_second, "k_second")
    f = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)

    # First wave: equilibrium of the first group's rule on the full values.
    first_eq = ideal_free_distribution(f, k_first, first_policy, **solver_kwargs)
    visit_first = site_coverage_probabilities(first_eq.strategy, k_first)
    first_consumption = float(np.dot(f, visit_first))

    # Expected leftovers define the second wave's game.  Clamp to a tiny floor:
    # the solver requires positive values, and a patch visited with probability
    # one contributes (numerically) nothing either way.
    leftovers = np.maximum(f * (1.0 - visit_first), 1e-12)
    order = np.argsort(-leftovers, kind="stable")
    second_eq_sorted = ideal_free_distribution(
        leftovers[order], k_second, second_policy, **solver_kwargs
    )
    second_probs = np.empty_like(leftovers)
    second_probs[order] = second_eq_sorted.strategy.as_array()
    second_strategy = Strategy(second_probs)
    visit_second = site_coverage_probabilities(second_strategy, k_second)
    second_consumption = float(np.dot(leftovers, visit_second))

    leftover_value = float(np.dot(leftovers, 1.0 - visit_second))
    return GroupCompetitionResult(
        first_consumption=first_consumption,
        second_consumption=second_consumption,
        first_strategy=first_eq.strategy,
        second_strategy=second_strategy,
        first_individual_payoff=float(first_eq.value),
        second_individual_payoff=float(second_eq_sorted.value),
        leftover_value=leftover_value,
    )
