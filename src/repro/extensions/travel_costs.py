"""Dispersal with per-site visiting costs (Section 5.1 future work).

The extended reward of a player that selects site ``x`` together with ``l - 1``
others is ``f(x) * C(l) - d(x)``, where ``d(x) >= 0`` is the cost of visiting
``x`` (travel energy, risk, entry fee).  Costs do not affect the coverage
functional — the group still collects ``f(x)`` from every visited site — but
they shift the equilibrium: expensive sites are visited less, so coverage at
equilibrium generally drops below the cost-free optimum even under the
exclusive policy.

With ``d == 0`` everything reduces to the core model, which the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.payoffs import occupancy_congestion_factor
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer

__all__ = ["CostAdjustedEquilibrium", "cost_adjusted_site_values", "cost_adjusted_ifd"]


@dataclass(frozen=True)
class CostAdjustedEquilibrium:
    """Symmetric equilibrium of the cost-adjusted dispersal game.

    Attributes
    ----------
    strategy:
        Equilibrium distribution over sites.
    value:
        Common net payoff (reward minus cost) on the support.
    support_size:
        Number of sites visited with positive probability.
    converged:
        Whether the outer bisection met its tolerance.
    """

    strategy: Strategy
    value: float
    support_size: int
    converged: bool


def _costs_array(costs: np.ndarray | float, m: int) -> np.ndarray:
    arr = np.asarray(costs, dtype=float)
    if arr.ndim == 0:
        arr = np.full(m, float(arr))
    if arr.shape != (m,):
        raise ValueError(f"costs must be a scalar or a length-{m} vector")
    if np.any(arr < 0) or not np.all(np.isfinite(arr)):
        raise ValueError("costs must be finite and non-negative")
    return arr


def cost_adjusted_site_values(
    values: SiteValues | np.ndarray,
    costs: np.ndarray | float,
    strategy: Strategy | np.ndarray,
    k: int,
    policy: CongestionPolicy,
) -> np.ndarray:
    """Net site values ``nu_p(x) = f(x) * g(p(x)) - d(x)`` of the extended game."""
    k = check_positive_integer(k, "k")
    f = values_array(values)
    d = _costs_array(costs, f.size)
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    return f * occupancy_congestion_factor(policy, p, k - 1) - d


def cost_adjusted_ifd(
    values: SiteValues | np.ndarray,
    costs: np.ndarray | float,
    k: int,
    policy: CongestionPolicy,
    *,
    tol: float = 1e-12,
    max_outer_iter: int = 200,
    max_inner_iter: int = 80,
) -> CostAdjustedEquilibrium:
    """Symmetric equilibrium of the dispersal game with visiting costs.

    Same nested-bisection (water-filling) structure as
    :func:`repro.core.ifd.ideal_free_distribution`, applied to the net payoff
    ``f(x) * g(q) - d(x)``.  Players must pick some site (no staying-home
    option), so the equilibrium net payoff may be negative when every site is
    expensive.

    Notes
    -----
    * ``k = 1``: the single player picks the site with the largest ``f - d``.
    * Requires the congestion table restricted to ``{1..k}`` to be non-constant
      (otherwise net payoffs do not respond to congestion and the equilibrium
      concentrates on ``argmax (f - d)``, which is what the solver returns).
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    m = f.size
    d = _costs_array(costs, m)
    policy.validate(k)

    net_solo = f - d  # payoff of visiting x alone
    if k == 1:
        best = int(np.argmax(net_solo))
        return CostAdjustedEquilibrium(Strategy.point_mass(m, best), float(net_solo[best]), 1, True)

    c_table = policy.table(k)
    if np.allclose(c_table, c_table[0], atol=1e-12):
        top = np.isclose(net_solo, net_solo.max(), atol=1e-12)
        probs = top / top.sum()
        return CostAdjustedEquilibrium(Strategy(probs), float(net_solo.max()), int(top.sum()), True)

    def g(q: np.ndarray) -> np.ndarray:
        return occupancy_congestion_factor(policy, q, k - 1)

    g_at_one = float(g(np.array([1.0]))[0])

    def site_probabilities(v: float) -> np.ndarray:
        q = np.zeros(m)
        active = net_solo > v
        if not np.any(active):
            return q
        saturated = active & (f * g_at_one - d >= v)
        q[saturated] = 1.0
        solve_mask = active & ~saturated
        if np.any(solve_mask):
            lo = np.zeros(int(solve_mask.sum()))
            hi = np.ones(int(solve_mask.sum()))
            f_sub, d_sub = f[solve_mask], d[solve_mask]
            for _ in range(max_inner_iter):
                mid = 0.5 * (lo + hi)
                residual = f_sub * g(mid) - d_sub - v
                go_right = residual > 0
                lo = np.where(go_right, mid, lo)
                hi = np.where(go_right, hi, mid)
            q[solve_mask] = 0.5 * (lo + hi)
        return q

    v_high = float(net_solo.max())
    v_low = float(min((f * g_at_one - d).min(), 0.0, v_high - 1.0))
    lo, hi = v_low, v_high
    for _ in range(max_outer_iter):
        mid = 0.5 * (lo + hi)
        if site_probabilities(mid).sum() >= 1.0:
            lo = mid
        else:
            hi = mid
        if hi - lo <= tol * max(1.0, abs(hi)):
            break

    value = 0.5 * (lo + hi)
    probs = site_probabilities(value)
    total = probs.sum()
    if total <= 0:
        raise RuntimeError("cost-adjusted IFD solver failed to allocate probability mass")
    converged = bool(np.isclose(total, 1.0, atol=1e-6))
    strategy = Strategy(probs / total)
    nu = cost_adjusted_site_values(f, d, strategy, k, policy)
    support = strategy.as_array() > 1e-12
    realised = float(nu[support].mean()) if np.any(support) else float(nu.max())
    return CostAdjustedEquilibrium(strategy, realised, int(support.sum()), converged)
