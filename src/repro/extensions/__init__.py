"""Extensions beyond the paper's core model.

Section 5.1 of the paper lists several generalisations left for future work;
this subpackage implements the ones that stay within laptop-scale numerics so
that they can be explored with the same tooling as the core model:

* :mod:`repro.extensions.travel_costs` — per-site visiting costs (the
  "energetic cost consumed while traveling to x" the paper explicitly defers);
* :mod:`repro.extensions.capacity` — per-individual consumption capacity,
  i.e. a site may need several visitors to be fully exploited (a relaxation of
  the "a single player suffices to consume f(x)" assumption);
* :mod:`repro.extensions.repeated` — multi-round dispersal with depletion
  (a concrete "other form of repetition");
* :mod:`repro.extensions.group_competition` — two groups with different
  internal congestion rules competing over the same patches (the
  aggressive-vs-peaceful-species thought experiment of Section 5.2).

Each module documents how its model reduces to the paper's when the new
parameter is switched off, and the test-suite verifies those reductions.

Every scenario here also has a batched, backend-agnostic entry point:
:func:`repro.batch.extensions.capacity_coverage_batch` (and its exact
gradient) evaluates whole ``(B, M)`` profile batches, and
:mod:`repro.batch.scenarios` provides ``cost_adjusted_ifd_batch``,
``two_group_competition_batch`` and ``repeated_dispersal_batch`` — whole
instance batches per call through the Array-API backend layer of
:mod:`repro.backend`, elementwise equal to the scalar models in this
subpackage.  The registered ``travel-costs`` / ``group-competition`` /
``repeated`` experiments (and the matching ``repro-dispersal`` CLI
sub-commands) run on those batched paths.
"""

from repro.extensions.travel_costs import (
    CostAdjustedEquilibrium,
    cost_adjusted_ifd,
    cost_adjusted_site_values,
)
from repro.extensions.capacity import (
    capacity_coverage,
    capacity_coverage_gradient,
    maximize_capacity_coverage,
)
from repro.extensions.repeated import (
    ExpectedDispersalResult,
    RepeatedDispersalResult,
    adaptive_sigma_star_schedule,
    constant_schedule,
    expected_repeated_dispersal,
    simulate_repeated_dispersal,
)
from repro.extensions.group_competition import (
    GroupCompetitionResult,
    two_group_competition,
)

__all__ = [
    "CostAdjustedEquilibrium",
    "cost_adjusted_site_values",
    "cost_adjusted_ifd",
    "capacity_coverage",
    "capacity_coverage_gradient",
    "maximize_capacity_coverage",
    "ExpectedDispersalResult",
    "RepeatedDispersalResult",
    "simulate_repeated_dispersal",
    "expected_repeated_dispersal",
    "adaptive_sigma_star_schedule",
    "constant_schedule",
    "GroupCompetitionResult",
    "two_group_competition",
]
