"""Capacity-constrained coverage (Section 5.1 future work).

The paper's coverage measure assumes a single visitor suffices to consume the
full value of a site.  Here each individual can consume at most a fraction
``1 / r(x)`` of site ``x`` (equivalently, site ``x`` needs ``r(x)`` visitors to
be fully exploited), so the group extracts

    CapCover(p) = sum_x f(x) * E[ min(1, N_x / r(x)) ],      N_x ~ Binomial(k, p(x)).

With ``r == 1`` this reduces exactly to the paper's coverage, which the tests
verify.  The functional is still concave in each ``p(x)`` (it is a
non-decreasing concave transform of a binomial mean), so projected gradient
ascent finds the global optimum; there is no closed form in general.
"""

from __future__ import annotations

import numpy as np

from repro.core.optimal_coverage import CoverageOptimum
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.numerics import binomial_pmf_matrix, simplex_projection
from repro.utils.validation import check_positive_integer

__all__ = ["capacity_coverage", "capacity_coverage_gradient", "maximize_capacity_coverage"]


def _requirements_array(requirements: np.ndarray | int, m: int) -> np.ndarray:
    arr = np.asarray(requirements)
    if arr.ndim == 0:
        arr = np.full(m, int(arr))
    if arr.shape != (m,):
        raise ValueError(f"requirements must be a scalar or a length-{m} vector")
    arr = arr.astype(int)
    if np.any(arr < 1):
        raise ValueError("requirements must be >= 1 visitor per site")
    return arr


def _consumption_fractions(k: int, probabilities: np.ndarray, requirements: np.ndarray) -> np.ndarray:
    """``E[min(1, N_x / r(x))]`` per site, ``N_x ~ Binomial(k, p(x))``."""
    pmf = binomial_pmf_matrix(k, probabilities)  # (M, k + 1)
    counts = np.arange(k + 1)[None, :]
    fractions = np.minimum(1.0, counts / requirements[:, None])
    return (pmf * fractions).sum(axis=1)


def capacity_coverage(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    requirements: np.ndarray | int,
) -> float:
    """Capacity-constrained coverage of a symmetric strategy.

    Parameters
    ----------
    values:
        Site values ``f``.
    strategy:
        Symmetric strategy ``p``.
    k:
        Number of players.
    requirements:
        Number of visitors ``r(x)`` needed to fully consume site ``x`` (scalar
        or per-site vector).  ``r == 1`` recovers the paper's coverage.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    r = _requirements_array(requirements, f.size)
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    return float(np.dot(f, _consumption_fractions(k, p, r)))


def capacity_coverage_gradient(
    values: SiteValues | np.ndarray,
    strategy: Strategy | np.ndarray,
    k: int,
    requirements: np.ndarray | int,
) -> np.ndarray:
    """Exact gradient of :func:`capacity_coverage` with respect to ``p``.

    Uses the binomial identity ``d/dp E[h(Bin(k, p))] = k * E[h(Bin(k-1, p) + 1)
    - h(Bin(k-1, p))]``, evaluated exactly from the ``Binomial(k-1, p)`` pmf.
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    r = _requirements_array(requirements, f.size)
    p = strategy.as_array() if isinstance(strategy, Strategy) else np.asarray(strategy, dtype=float)
    pmf = binomial_pmf_matrix(k - 1, p) if k > 1 else np.ones((f.size, 1))
    counts = np.arange(pmf.shape[1])[None, :]
    h_plus = np.minimum(1.0, (counts + 1) / r[:, None])
    h = np.minimum(1.0, counts / r[:, None])
    return k * f * ((pmf * (h_plus - h)).sum(axis=1))


def maximize_capacity_coverage(
    values: SiteValues | np.ndarray,
    k: int,
    requirements: np.ndarray | int,
    *,
    step_size: float | None = None,
    max_iter: int = 5_000,
    tol: float = 1e-12,
    initial: Strategy | None = None,
) -> CoverageOptimum:
    """Maximise the capacity-constrained coverage by projected gradient ascent.

    The objective is concave (each term is a concave function of ``p(x)``), so
    the method converges to the global optimum.  With ``requirements == 1`` the
    result matches the closed-form ``sigma_star`` (tested).
    """
    k = check_positive_integer(k, "k")
    f = values_array(values)
    r = _requirements_array(requirements, f.size)
    m = f.size
    if step_size is None:
        step_size = 1.0 / max(k * k * float(f.max()), 1e-12)
    p = (initial.as_array() if initial is not None else np.full(m, 1.0 / m)).copy()
    previous = capacity_coverage(f, p, k, r)
    for _ in range(max_iter):
        grad = capacity_coverage_gradient(f, p, k, r)
        p = simplex_projection(p + step_size * grad)
        current = capacity_coverage(f, p, k, r)
        if abs(current - previous) <= tol * max(1.0, abs(current)):
            previous = current
            break
        previous = current
    strategy = Strategy(p)
    return CoverageOptimum(strategy, capacity_coverage(f, strategy, k, r), "projected-gradient")
