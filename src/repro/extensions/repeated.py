"""Repeated dispersal with resource depletion (Section 5.1 "other forms of repetition").

The one-shot game is played for ``T`` rounds over the same patch set.  A patch
visited in a round is (partially) depleted: its value is multiplied by a
``depletion`` factor in ``[0, 1)`` (0 means fully consumed).  Players remain
uncoordinated within a round; between rounds the *schedule* tells every player
which distribution to use — either the same strategy every round, or the
"adaptive sigma_star" schedule that re-solves the one-shot game on the current
expected remaining values (the natural greedy extension of the paper's
analysis, and the dispersal analogue of running Korman-Rodeh's ``A*`` for
several rounds).

The simulator tracks the realised cumulative group consumption so that
different congestion policies / schedules can be compared over a horizon;
:func:`expected_repeated_dispersal` evaluates the exact expectation of the
same process (the ``n_trials -> inf`` limit) deterministically, and
:func:`repro.batch.scenarios.repeated_dispersal_batch` evolves that expected
track for whole instance batches at once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.sigma_star import sigma_star
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_integer

__all__ = [
    "ExpectedDispersalResult",
    "RepeatedDispersalResult",
    "adaptive_sigma_star_schedule",
    "constant_schedule",
    "expected_repeated_dispersal",
    "simulate_repeated_dispersal",
]

#: The round-strategy contract: a ``Schedule`` is any callable mapping
#: ``(round_index, current_expected_values) -> Strategy``.  It is invoked once
#: per round with the 0-based round index and the *expected* remaining value
#: vector (deterministic, shared by every trial — players cannot condition on
#: the realised outcomes of others in the no-communication setting).  The
#: returned :class:`~repro.core.strategy.Strategy` must cover exactly the
#: instance's ``M`` sites; the simulator raises ``ValueError`` otherwise.
#: Schedules may keep internal state, but the expected-value argument already
#: carries everything the greedy adaptive schedules need.
Schedule = Callable[[int, np.ndarray], Strategy]


def _check_depletion(depletion: float) -> float:
    """Validate the depletion factor with an explicit-contract error message."""
    value = float(depletion)
    if not np.isfinite(value) or value < 0.0 or value >= 1.0:
        raise ValueError(
            f"depletion must lie in [0, 1) — it is the fraction of a visited "
            f"patch's value that survives the visit (0 = fully consumed, "
            f"values approaching 1 = nearly indestructible); got {depletion!r}"
        )
    return value


@dataclass(frozen=True)
class RepeatedDispersalResult:
    """Outcome of a repeated-dispersal simulation.

    Attributes
    ----------
    cumulative_consumption_mean:
        Mean (over trials) of the total value consumed by the group across all
        rounds.
    per_round_consumption:
        Mean consumption per round, shape ``(rounds,)``.
    remaining_value_mean:
        Mean total value left in the environment after the last round.
    n_trials, rounds, k:
        Simulation parameters.
    """

    cumulative_consumption_mean: float
    per_round_consumption: np.ndarray
    remaining_value_mean: float
    n_trials: int
    rounds: int
    k: int


def constant_schedule(strategy: Strategy) -> Schedule:
    """A schedule that plays the same strategy every round."""

    def schedule(_round_index: int, _current_values: np.ndarray) -> Strategy:
        return strategy

    return schedule


def adaptive_sigma_star_schedule(k: int, *, floor: float = 1e-9) -> Schedule:
    """Re-solve ``sigma_star`` on the current expected remaining values each round.

    Sites whose expected remaining value has dropped to (numerically) zero are
    excluded from the support by clamping them to ``floor`` before solving; the
    resulting probability mass on such sites is negligible.
    """
    k = check_positive_integer(k, "k")

    def schedule(_round_index: int, current_values: np.ndarray) -> Strategy:
        clamped = np.maximum(current_values, floor)
        order = np.argsort(-clamped, kind="stable")
        solved = sigma_star(clamped[order], k).strategy.as_array()
        probabilities = np.empty_like(solved)
        probabilities[order] = solved
        return Strategy(probabilities)

    return schedule


def simulate_repeated_dispersal(
    values: SiteValues | np.ndarray,
    k: int,
    schedule: Schedule,
    *,
    rounds: int = 5,
    depletion: float = 0.0,
    n_trials: int = 200,
    rng: np.random.Generator | int | None = None,
) -> RepeatedDispersalResult:
    """Simulate ``rounds`` of dispersal with depletion and report group consumption.

    Parameters
    ----------
    values, k:
        Patch values and number of players.
    schedule:
        Round-strategy schedule.  It receives the round index and the *expected*
        remaining values (deterministic across trials), so all trials share the
        same per-round strategy — consistent with the no-communication setting,
        where players cannot condition on the realised outcomes of others.
    rounds:
        Number of rounds ``T``.
    depletion:
        Fraction of a visited patch's value that survives the visit
        (0 = fully consumed, 0.5 = half remains, ...).
    n_trials:
        Monte-Carlo trials.
    """
    k = check_positive_integer(k, "k")
    rounds = check_positive_integer(rounds, "rounds")
    n_trials = check_positive_integer(n_trials, "n_trials")
    depletion = _check_depletion(depletion)
    generator = as_generator(rng)

    f0 = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)
    m = f0.size

    # Realised per-trial remaining values and the deterministic expected track
    # used by the schedule.
    remaining = np.tile(f0, (n_trials, 1))
    expected_remaining = f0.copy()
    per_round = np.zeros(rounds)

    for round_index in range(rounds):
        strategy = schedule(round_index, expected_remaining)
        probabilities = strategy.as_array()
        if probabilities.size != m:
            raise ValueError("schedule returned a strategy over the wrong number of sites")

        choices = generator.choice(m, size=(n_trials, k), p=probabilities)
        visited = np.zeros((n_trials, m), dtype=bool)
        rows = np.repeat(np.arange(n_trials), k)
        visited[rows, choices.ravel()] = True

        consumed = (remaining * visited).sum(axis=1) * (1.0 - depletion)
        per_round[round_index] = consumed.mean()
        remaining = np.where(visited, remaining * depletion, remaining)

        # Expected update used by the schedule (same formula in expectation).
        visit_prob = 1.0 - (1.0 - probabilities) ** k
        expected_remaining = expected_remaining * (1.0 - visit_prob * (1.0 - depletion))

    return RepeatedDispersalResult(
        cumulative_consumption_mean=float(per_round.sum()),
        per_round_consumption=per_round,
        remaining_value_mean=float(remaining.sum(axis=1).mean()),
        n_trials=n_trials,
        rounds=rounds,
        k=k,
    )


@dataclass(frozen=True)
class ExpectedDispersalResult:
    """Deterministic expected-track outcome of a repeated-dispersal horizon.

    Attributes
    ----------
    cumulative_consumption:
        Expected total value consumed by the group across all rounds.
    per_round_consumption:
        Expected consumption per round, shape ``(rounds,)``.
    remaining_value:
        Expected total value left after the last round.
    rounds, k:
        Horizon parameters.
    """

    cumulative_consumption: float
    per_round_consumption: np.ndarray
    remaining_value: float
    rounds: int
    k: int


def expected_repeated_dispersal(
    values: SiteValues | np.ndarray,
    k: int,
    schedule: Schedule,
    *,
    rounds: int = 5,
    depletion: float = 0.0,
) -> ExpectedDispersalResult:
    """Exact expected consumption of :func:`simulate_repeated_dispersal`.

    Because per-round consumption is linear in the remaining values and round
    choices are independent across rounds, the expectation of the Monte-Carlo
    simulator factorises into the same recursion its schedules already
    condition on: per round, each patch is visited with probability
    ``1 - (1 - p(x))**k`` and its expected remaining value decays by the
    depletion factor.  This deterministic track therefore equals the
    ``n_trials -> inf`` limit of the simulator (the test suite checks the
    convergence), with no sampling noise — and it is the scalar reference the
    batched :func:`repro.batch.scenarios.repeated_dispersal_batch` is
    property-tested against.

    Parameters
    ----------
    values, k:
        Patch values and number of players.
    schedule:
        Round-strategy :data:`Schedule` (same contract as the simulator).
    rounds:
        Number of rounds ``T``.
    depletion:
        Fraction of a visited patch's value that survives a visit, in
        ``[0, 1)`` (``0`` = fully consumed).
    """
    k = check_positive_integer(k, "k")
    rounds = check_positive_integer(rounds, "rounds")
    depletion = _check_depletion(depletion)
    f0 = values.as_array() if isinstance(values, SiteValues) else np.asarray(values, dtype=float)

    expected_remaining = f0.copy()
    per_round = np.zeros(rounds)
    for round_index in range(rounds):
        probabilities = schedule(round_index, expected_remaining).as_array()
        if probabilities.size != f0.size:
            raise ValueError("schedule returned a strategy over the wrong number of sites")
        visit_probability = 1.0 - (1.0 - probabilities) ** k
        per_round[round_index] = float(
            np.dot(expected_remaining, visit_probability) * (1.0 - depletion)
        )
        expected_remaining = expected_remaining * (
            1.0 - visit_probability * (1.0 - depletion)
        )

    return ExpectedDispersalResult(
        cumulative_consumption=float(per_round.sum()),
        per_round_consumption=per_round,
        remaining_value=float(expected_remaining.sum()),
        rounds=rounds,
        k=k,
    )
