"""Backend adapter functions: the seams between Array-API kernels and NumPy.

The batched kernel bodies are pure Array-API code, but a few operations are
genuinely outside the standard — ``einsum`` contractions, ``bincount``
histograms, RNG draws, error-state management and host I/O.  Each of those
lives here as a small adapter that takes the :class:`~repro.backend.registry.Backend`
handle explicitly, keeps the NumPy fast path bit-identical to the
pre-backend code, and provides a portable fallback for every other
namespace.  Nothing outside this module (and the host-side packing in
:mod:`repro.batch.padding`) is allowed to assume NumPy.

Transfer accounting
-------------------
Every host crossing funnels through :func:`to_numpy` / :func:`from_numpy`,
so "the pipeline never bounces through the host mid-kernel" is an
*assertable* property rather than a code-review promise: wrap a kernel call
in :func:`track_transfers` and check :attr:`TransferStats.mid_kernel`.
Kernels mark their documented boundary crossings — input staging, the
once-per-chunk draw placement, the final host materialisation — with
:func:`expected_transfer`; every crossing outside such a block counts as a
mid-kernel transfer.  Scalar synchronisations (``bool(xp.any(...))``,
``float(x)``) do not move arrays across the seam and are not counted.
"""

from __future__ import annotations

import contextlib
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator, Sequence

import numpy as np

from repro.backend.registry import Backend, resolve_backend

__all__ = [
    "TransferStats",
    "asarray_float",
    "batched_bincount",
    "bincount",
    "contract_occupancy",
    "ensure_numpy",
    "errstate_ignore",
    "expected_transfer",
    "from_numpy",
    "is_native",
    "random_uniform",
    "resolve_namespace",
    "scatter_rows",
    "take_along_axis",
    "take_rows",
    "to_numpy",
    "track_transfers",
]


# ------------------------------------------------------------------ counting
@dataclass
class TransferStats:
    """Counts of host crossings observed inside a :func:`track_transfers` block.

    Attributes
    ----------
    to_host, to_device:
        **Mid-kernel** crossings — transfers that happened outside any
        :func:`expected_transfer` block.  The device-residency gate asserts
        both are zero for the simulation/search/dynamics pipelines.
    boundary_to_host, boundary_to_device:
        Crossings inside :func:`expected_transfer` blocks: documented
        staging, per-chunk draw placement and final result materialisation.
    """

    to_host: int = 0
    to_device: int = 0
    boundary_to_host: int = 0
    boundary_to_device: int = 0

    @property
    def mid_kernel(self) -> int:
        """Total mid-kernel crossings (the quantity gated to zero)."""
        return self.to_host + self.to_device

    @property
    def total(self) -> int:
        """All crossings, boundary and mid-kernel alike."""
        return self.mid_kernel + self.boundary_to_host + self.boundary_to_device

    def as_dict(self) -> dict[str, int]:
        """Plain-dict view for JSON artifacts (``BENCH_device.json``)."""
        return {
            "to_host": self.to_host,
            "to_device": self.to_device,
            "boundary_to_host": self.boundary_to_host,
            "boundary_to_device": self.boundary_to_device,
            "mid_kernel": self.mid_kernel,
            "total": self.total,
        }


#: Innermost-last stack of active collectors (per context, like use_backend).
_TRACKERS: ContextVar[tuple[TransferStats, ...]] = ContextVar(
    "repro_transfer_trackers", default=()
)
#: Nesting depth of expected_transfer blocks (> 0 = crossings are boundaries).
_BOUNDARY_DEPTH: ContextVar[int] = ContextVar("repro_transfer_boundary", default=0)


@contextlib.contextmanager
def track_transfers() -> Iterator[TransferStats]:
    """Collect host-crossing counts for the duration of a ``with`` block.

    Nests: every active collector sees every crossing, so an outer tracker
    around a whole benchmark and an inner one around a single kernel call
    both stay correct.  Contextvar-scoped, so threads and asyncio tasks do
    not observe each other's kernels.
    """
    stats = TransferStats()
    token = _TRACKERS.set(_TRACKERS.get() + (stats,))
    try:
        yield stats
    finally:
        _TRACKERS.reset(token)


@contextlib.contextmanager
def expected_transfer() -> Iterator[None]:
    """Mark enclosed crossings as documented kernel boundaries.

    Kernels wrap their input staging, once-per-chunk draw placement and
    final host materialisation in this context; anything crossing outside it
    is counted as a mid-kernel transfer by :func:`track_transfers`.
    """
    token = _BOUNDARY_DEPTH.set(_BOUNDARY_DEPTH.get() + 1)
    try:
        yield
    finally:
        _BOUNDARY_DEPTH.reset(token)


def _record_crossing(to_host: bool) -> None:
    trackers = _TRACKERS.get()
    if not trackers:
        return
    boundary = _BOUNDARY_DEPTH.get() > 0
    for stats in trackers:
        if to_host:
            if boundary:
                stats.boundary_to_host += 1
            else:
                stats.to_host += 1
        else:
            if boundary:
                stats.boundary_to_device += 1
            else:
                stats.to_device += 1


def is_native(backend: Backend, obj: Any) -> bool:
    """``True`` when ``obj`` is an array belonging to ``backend``'s namespace.

    Used by the public kernels to decide where their result should live:
    backend-native inputs get backend-native outputs, host inputs (lists,
    NumPy arrays under a non-NumPy backend, wrapper objects) get host NumPy
    outputs.
    """
    namespace = getattr(obj, "__array_namespace__", None)
    if namespace is not None:
        try:
            if namespace() is backend.xp:
                return True
        except TypeError:  # pragma: no cover - exotic __array_namespace__ signature
            pass
    if isinstance(obj, np.ndarray):
        return backend.is_numpy
    if isinstance(obj, np.generic) or not hasattr(obj, "ndim"):
        return False
    # torch/cupy tensors predate __array_namespace__; match on the array
    # type's root module (the registry names backends after it).
    root = type(obj).__module__.split(".")[0]
    return root == backend.name


def to_numpy(obj: Any) -> np.ndarray:
    """Materialise any backend's array on the host as a plain ``numpy.ndarray``.

    The NumPy path is a no-op; other namespaces are converted through
    ``__array__`` / the buffer protocol, DLPack, or a ``.cpu()`` transfer for
    device-resident tensors — in that order.  Non-NumPy inputs count as one
    device→host crossing for any active :func:`track_transfers` collector.
    """
    if isinstance(obj, np.ndarray):
        return obj
    if not isinstance(obj, np.generic):
        _record_crossing(to_host=True)
    try:
        return np.asarray(obj)
    except (TypeError, ValueError, RuntimeError):
        pass
    try:
        return np.from_dlpack(obj)
    except (TypeError, ValueError, RuntimeError, AttributeError):
        pass
    cpu = getattr(obj, "cpu", None)
    if callable(cpu):  # pragma: no cover - device backends only
        return np.asarray(cpu())
    raise TypeError(f"cannot convert {type(obj).__name__} to a numpy array")


def from_numpy(backend: Backend, array: Any, *, dtype: Any = None) -> Any:
    """Place a host array into ``backend``'s namespace (no-op for NumPy).

    Arrays land on ``backend.device`` when the handle pins one (the
    ``--device`` option); non-NumPy placements count as one host→device
    crossing for any active :func:`track_transfers` collector.
    """
    xp = backend.xp
    if backend.is_numpy:
        return xp.asarray(array) if dtype is None else xp.asarray(array, dtype=dtype)
    _record_crossing(to_host=False)
    kwargs: dict[str, Any] = {}
    if dtype is not None:
        kwargs["dtype"] = dtype
    if backend.device is not None:
        kwargs["device"] = backend.device
    return xp.asarray(array, **kwargs)


def asarray_float(backend: Backend, obj: Any) -> Any:
    """Coerce ``obj`` (wrapper, sequence or array) to a float array of ``backend``.

    Objects exposing ``as_array()`` (the :class:`~repro.core.strategy.Strategy`
    / :class:`~repro.core.values.SiteValues` duck type) are unwrapped first;
    arrays native to another namespace are routed through the host.
    """
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        obj = as_array()
    if is_native(backend, obj):
        return backend.xp.astype(obj, backend.float_dtype) if _dtype_of(obj) != backend.float_dtype else obj
    if not isinstance(obj, np.ndarray) and hasattr(obj, "__array_namespace__"):
        obj = to_numpy(obj)
    return backend.xp.asarray(obj, dtype=backend.float_dtype)


def _dtype_of(obj: Any) -> Any:
    return getattr(obj, "dtype", None)


def contract_occupancy(backend: Backend, pmf: Any, tables: Any) -> Any:
    """Contract ``(B, M, J)`` occupancy PMFs with per-row ``(B, J)`` tables.

    The NumPy (and any einsum-capable) backend keeps the original
    ``einsum("bmj,bj->bm")`` formulation, which avoids materialising the
    ``(B, M, J)`` product; standard-only namespaces fall back to a
    broadcast multiply plus reduction — same result, one extra temporary.
    """
    if backend.supports_einsum:
        return backend.xp.einsum("bmj,bj->bm", pmf, tables)
    xp = backend.xp
    return xp.sum(pmf * tables[:, None, :], axis=2)


def take_along_axis(backend: Backend, array: Any, indices: Any, *, axis: int) -> Any:
    """``take_along_axis`` staying on-device wherever the namespace allows.

    Resolution order: the namespace's own ``take_along_axis`` (standard since
    2024.12), ``torch.take_along_dim`` for torch, and only then the host
    round-trip fallback for old standard-only namespaces.
    """
    xp = backend.xp
    fn = getattr(xp, "take_along_axis", None)
    if fn is not None:
        return fn(array, indices, axis=axis)
    native = _native_module(backend)
    if native is not None and hasattr(native, "take_along_dim"):
        return native.take_along_dim(array, indices, dim=axis)
    host = np.take_along_axis(to_numpy(array), to_numpy(indices), axis=axis)
    return from_numpy(backend, host)


def take_rows(backend: Backend, array: Any, rows: np.ndarray | None) -> Any:
    """Select a subset of leading-axis rows (``rows`` is a host index vector)."""
    if rows is None:
        return array
    if backend.is_numpy:
        return array[rows]
    return backend.xp.take(array, from_numpy(backend, rows), axis=0)


def scatter_rows(backend: Backend, dest: Any, rows: np.ndarray, src: Any) -> Any:
    """Write ``src`` into ``dest`` at the given leading-axis rows, returning the result.

    NumPy-style integer-array assignment where supported (in-place, returning
    ``dest`` itself).  Standard-only namespaces get a pure gather instead of
    the old full-array host round-trip: ``dest`` and ``src`` are concatenated
    along the leading axis and re-selected with a host-built index vector, so
    the array data never leaves the device — only the small ``(B,)`` index
    upload crosses, once.
    """
    if backend.supports_fancy_assignment:
        dest[rows] = src
        return dest
    xp = backend.xp
    n = int(dest.shape[0])
    index = np.arange(n, dtype=np.int64)
    index[np.asarray(rows, dtype=np.int64)] = n + np.arange(len(rows), dtype=np.int64)
    stacked = xp.concat([dest, src], axis=0)
    return xp.take(stacked, from_numpy(backend, index, dtype=backend.int_dtype), axis=0)


def _native_module(backend: Backend) -> Any | None:
    """The raw ``torch`` / ``cupy`` module behind a compat namespace, if any."""
    if backend.name not in ("torch", "cupy"):
        return None
    try:
        import importlib

        return importlib.import_module(backend.name)
    except Exception:  # pragma: no cover - backend resolved but module gone
        return None


def bincount(
    values: Any, *, minlength: int = 0, backend: Backend | None = None
) -> Any:
    """``bincount`` with an on-device path (no Array-API equivalent exists).

    Without ``backend`` (or on NumPy) this is the original host path: any
    backend's integer array is transferred, counted with ``numpy.bincount``
    and returned as a host ``int64`` vector.  With a non-NumPy ``backend``
    and a native ``values`` array, the histogram is computed **on the
    device** — ``torch.bincount`` / ``cupy.bincount`` where available, a
    one-hot reduction for standard-only namespaces — and returned
    device-resident (identical counts; callers materialise once at their
    result boundary).
    """
    if backend is not None and not backend.is_numpy and is_native(backend, values):
        xp = backend.xp
        flat = xp.reshape(values, (-1,))
        native = _native_module(backend)
        if native is not None:
            return native.bincount(flat, minlength=minlength)
        return _one_hot_counts(backend, flat[None, :], max(minlength, 1))[0, :]
    return np.bincount(to_numpy(values).ravel(), minlength=minlength)


def _one_hot_counts(backend: Backend, values: Any, n_bins: int) -> Any:
    """Row-wise counts via a one-hot comparison sum (standard-only namespaces).

    ``values`` is an ``(R, N)`` integer array on ``backend``; the result is
    the ``(R, n_bins)`` count matrix.  Memory is ``R * N * n_bins`` booleans,
    so this is the small-batch fallback — torch/cupy take their native
    scatter-sum paths instead.
    """
    xp = backend.xp
    bins = xp.arange(n_bins, dtype=backend.int_dtype)
    if backend.device is not None:  # pragma: no cover - device backends only
        bins = xp.asarray(bins, device=backend.device)
    hits = values[:, :, None] == bins[None, None, :]
    return xp.astype(xp.sum(xp.astype(hits, backend.int_dtype), axis=1), backend.int_dtype)


def batched_bincount(values: Any, n_bins: int, *, backend: Backend | None = None) -> Any:
    """Row-wise histogram of an integer matrix: one segment-sum ``bincount``.

    The batched Monte-Carlo kernels need one histogram **per row** of an
    ``(R, N)`` index matrix (per-trial occupancy counts, per-row occupancy
    histograms) — the operation the scalar engine used to run as a Python
    loop of ``np.bincount`` calls.  Offsetting row ``r`` by ``r * n_bins``
    turns the whole matrix into a single segment-sum, so every row is counted
    in one flat ``bincount`` pass.

    Parameters
    ----------
    values:
        Integer array of shape ``(R, N)``, every entry in ``[0, n_bins)``.
        Host arrays (or ``backend=None``) take the original host path;
        arrays native to a non-NumPy ``backend`` are counted **on the
        device** without any host round-trip.
    n_bins:
        Number of bins per row.
    backend:
        Optional backend handle enabling the device-native path:
        ``torch.Tensor.scatter_add_`` / ``cupy.bincount`` segment-sums where
        the namespace has them, a one-hot reduction otherwise.  The host
        fallback is retained bit-identically for NumPy and host inputs.

    Returns
    -------
    ``(R, n_bins)`` ``int64`` count matrix — host NumPy on the host path,
    device-resident on the native path; ``out[r, v]`` is the number of
    entries of row ``r`` equal to ``v``.
    """
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    if values.ndim != 2:
        raise ValueError("values must be a 2-D (R, N) integer matrix")
    if backend is not None and not backend.is_numpy and is_native(backend, values):
        xp = backend.xp
        native = _native_module(backend)
        if native is not None and backend.name == "torch":
            rows = int(values.shape[0])
            out = native.zeros(
                (rows, n_bins), dtype=native.int64, device=values.device
            )
            return out.scatter_add_(1, values, native.ones_like(values))
        if native is not None:  # pragma: no cover - cupy only
            rows = int(values.shape[0])
            offsets = xp.arange(rows, dtype=backend.int_dtype)[:, None] * n_bins
            flat = xp.reshape(values + offsets, (-1,))
            counts = native.bincount(flat, minlength=rows * n_bins)
            return xp.reshape(counts, (rows, n_bins))
        return _one_hot_counts(backend, values, n_bins)
    host = to_numpy(values)
    rows = host.shape[0]
    flat = host + n_bins * np.arange(rows, dtype=host.dtype)[:, None]
    counts = np.bincount(flat.ravel(), minlength=rows * n_bins)
    return counts.reshape(rows, n_bins)


def random_uniform(
    backend: Backend,
    rng: np.random.Generator,
    shape: int | Sequence[int],
) -> Any:
    """Uniform ``[0, 1)`` draws via the host NumPy generator, placed on ``backend``.

    RNG is deliberately *not* delegated to the backend: experiment
    reproducibility is keyed to ``numpy.random.SeedSequence`` streams, so
    every backend sees the same draws, transferred once per batch.
    """
    draws = rng.random(shape)
    if backend.is_numpy:
        return draws
    return from_numpy(backend, draws, dtype=backend.float_dtype)


def errstate_ignore(backend: Backend):
    """``numpy.errstate(divide/invalid ignore)`` on NumPy, a no-op elsewhere."""
    if backend.is_numpy:
        return np.errstate(divide="ignore", invalid="ignore")
    return contextlib.nullcontext()


def ensure_numpy(obj: Any) -> np.ndarray:
    """Host float array from a wrapper, sequence or any backend's array."""
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        obj = as_array()
    if isinstance(obj, np.ndarray):
        return obj
    if hasattr(obj, "__array_namespace__"):
        return to_numpy(obj)
    return np.asarray(obj, dtype=float)


def resolve_namespace(spec: "Backend | str | None" = None) -> Any:
    """Shorthand: the raw ``xp`` namespace of :func:`resolve_backend`."""
    return resolve_backend(spec).xp
