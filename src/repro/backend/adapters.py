"""Backend adapter functions: the seams between Array-API kernels and NumPy.

The batched kernel bodies are pure Array-API code, but a few operations are
genuinely outside the standard — ``einsum`` contractions, ``bincount``
histograms, RNG draws, error-state management and host I/O.  Each of those
lives here as a small adapter that takes the :class:`~repro.backend.registry.Backend`
handle explicitly, keeps the NumPy fast path bit-identical to the
pre-backend code, and provides a portable fallback for every other
namespace.  Nothing outside this module (and the host-side packing in
:mod:`repro.batch.padding`) is allowed to assume NumPy.
"""

from __future__ import annotations

import contextlib
from typing import Any, Sequence

import numpy as np

from repro.backend.registry import Backend, resolve_backend

__all__ = [
    "asarray_float",
    "batched_bincount",
    "bincount",
    "contract_occupancy",
    "ensure_numpy",
    "errstate_ignore",
    "from_numpy",
    "is_native",
    "random_uniform",
    "resolve_namespace",
    "scatter_rows",
    "take_along_axis",
    "take_rows",
    "to_numpy",
]


def is_native(backend: Backend, obj: Any) -> bool:
    """``True`` when ``obj`` is an array belonging to ``backend``'s namespace.

    Used by the public kernels to decide where their result should live:
    backend-native inputs get backend-native outputs, host inputs (lists,
    NumPy arrays under a non-NumPy backend, wrapper objects) get host NumPy
    outputs.
    """
    namespace = getattr(obj, "__array_namespace__", None)
    if namespace is not None:
        try:
            if namespace() is backend.xp:
                return True
        except TypeError:  # pragma: no cover - exotic __array_namespace__ signature
            pass
    if isinstance(obj, np.ndarray):
        return backend.is_numpy
    if isinstance(obj, np.generic) or not hasattr(obj, "ndim"):
        return False
    # torch/cupy tensors predate __array_namespace__; match on the array
    # type's root module (the registry names backends after it).
    root = type(obj).__module__.split(".")[0]
    return root == backend.name


def to_numpy(obj: Any) -> np.ndarray:
    """Materialise any backend's array on the host as a plain ``numpy.ndarray``.

    The NumPy path is a no-op; other namespaces are converted through
    ``__array__`` / the buffer protocol, DLPack, or a ``.cpu()`` transfer for
    device-resident tensors — in that order.
    """
    if isinstance(obj, np.ndarray):
        return obj
    try:
        return np.asarray(obj)
    except (TypeError, ValueError, RuntimeError):
        pass
    try:
        return np.from_dlpack(obj)
    except (TypeError, ValueError, RuntimeError, AttributeError):
        pass
    cpu = getattr(obj, "cpu", None)
    if callable(cpu):  # pragma: no cover - device backends only
        return np.asarray(cpu())
    raise TypeError(f"cannot convert {type(obj).__name__} to a numpy array")


def from_numpy(backend: Backend, array: Any, *, dtype: Any = None) -> Any:
    """Place a host array into ``backend``'s namespace (no-op for NumPy)."""
    xp = backend.xp
    if dtype is None:
        return xp.asarray(array)
    return xp.asarray(array, dtype=dtype)


def asarray_float(backend: Backend, obj: Any) -> Any:
    """Coerce ``obj`` (wrapper, sequence or array) to a float array of ``backend``.

    Objects exposing ``as_array()`` (the :class:`~repro.core.strategy.Strategy`
    / :class:`~repro.core.values.SiteValues` duck type) are unwrapped first;
    arrays native to another namespace are routed through the host.
    """
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        obj = as_array()
    if is_native(backend, obj):
        return backend.xp.astype(obj, backend.float_dtype) if _dtype_of(obj) != backend.float_dtype else obj
    if not isinstance(obj, np.ndarray) and hasattr(obj, "__array_namespace__"):
        obj = to_numpy(obj)
    return backend.xp.asarray(obj, dtype=backend.float_dtype)


def _dtype_of(obj: Any) -> Any:
    return getattr(obj, "dtype", None)


def contract_occupancy(backend: Backend, pmf: Any, tables: Any) -> Any:
    """Contract ``(B, M, J)`` occupancy PMFs with per-row ``(B, J)`` tables.

    The NumPy (and any einsum-capable) backend keeps the original
    ``einsum("bmj,bj->bm")`` formulation, which avoids materialising the
    ``(B, M, J)`` product; standard-only namespaces fall back to a
    broadcast multiply plus reduction — same result, one extra temporary.
    """
    if backend.supports_einsum:
        return backend.xp.einsum("bmj,bj->bm", pmf, tables)
    xp = backend.xp
    return xp.sum(pmf * tables[:, None, :], axis=2)


def take_along_axis(backend: Backend, array: Any, indices: Any, *, axis: int) -> Any:
    """``take_along_axis`` with a host round-trip fallback for old namespaces."""
    xp = backend.xp
    fn = getattr(xp, "take_along_axis", None)
    if fn is not None:
        return fn(array, indices, axis=axis)
    host = np.take_along_axis(to_numpy(array), to_numpy(indices), axis=axis)
    return from_numpy(backend, host)


def take_rows(backend: Backend, array: Any, rows: np.ndarray | None) -> Any:
    """Select a subset of leading-axis rows (``rows`` is a host index vector)."""
    if rows is None:
        return array
    if backend.is_numpy:
        return array[rows]
    return backend.xp.take(array, from_numpy(backend, rows), axis=0)


def scatter_rows(backend: Backend, dest: Any, rows: np.ndarray, src: Any) -> Any:
    """Write ``src`` into ``dest`` at the given leading-axis rows, returning ``dest``.

    NumPy-style integer-array assignment where supported; otherwise a
    documented host round-trip (the :class:`~repro.batch.dynamics.DynamicsEngine`
    avoids this path entirely for such backends by stepping the full batch).
    """
    if backend.supports_fancy_assignment:
        dest[rows] = src
        return dest
    host = to_numpy(dest).copy()
    host[rows] = to_numpy(src)
    return from_numpy(backend, host)


def bincount(values: Any, *, minlength: int = 0) -> np.ndarray:
    """Host-side ``bincount`` (no Array-API equivalent exists).

    Accepts any backend's integer array, counts on the host, and returns a
    NumPy ``int64`` vector — histogram consumers (the Monte-Carlo simulation
    engine) are host-side by design.
    """
    return np.bincount(to_numpy(values).ravel(), minlength=minlength)


def batched_bincount(values: Any, n_bins: int) -> np.ndarray:
    """Row-wise histogram of an integer matrix: one segment-sum ``bincount``.

    The batched Monte-Carlo kernels need one histogram **per row** of an
    ``(R, N)`` index matrix (per-trial occupancy counts, per-row occupancy
    histograms) — the operation the scalar engine used to run as a Python
    loop of ``np.bincount`` calls.  Offsetting row ``r`` by ``r * n_bins``
    turns the whole matrix into a single segment-sum, so every row is counted
    in one flat ``bincount`` pass.

    Parameters
    ----------
    values:
        Integer array of shape ``(R, N)`` (any backend; transferred to the
        host), every entry in ``[0, n_bins)``.
    n_bins:
        Number of bins per row.

    Returns
    -------
    numpy.ndarray
        Host ``(R, n_bins)`` ``int64`` count matrix; ``out[r, v]`` is the
        number of entries of row ``r`` equal to ``v``.
    """
    host = to_numpy(values)
    if host.ndim != 2:
        raise ValueError("values must be a 2-D (R, N) integer matrix")
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    rows = host.shape[0]
    flat = host + n_bins * np.arange(rows, dtype=host.dtype)[:, None]
    counts = np.bincount(flat.ravel(), minlength=rows * n_bins)
    return counts.reshape(rows, n_bins)


def random_uniform(
    backend: Backend,
    rng: np.random.Generator,
    shape: int | Sequence[int],
) -> Any:
    """Uniform ``[0, 1)`` draws via the host NumPy generator, placed on ``backend``.

    RNG is deliberately *not* delegated to the backend: experiment
    reproducibility is keyed to ``numpy.random.SeedSequence`` streams, so
    every backend sees the same draws, transferred once per batch.
    """
    draws = rng.random(shape)
    if backend.is_numpy:
        return draws
    return from_numpy(backend, draws, dtype=backend.float_dtype)


def errstate_ignore(backend: Backend):
    """``numpy.errstate(divide/invalid ignore)`` on NumPy, a no-op elsewhere."""
    if backend.is_numpy:
        return np.errstate(divide="ignore", invalid="ignore")
    return contextlib.nullcontext()


def ensure_numpy(obj: Any) -> np.ndarray:
    """Host float array from a wrapper, sequence or any backend's array."""
    as_array = getattr(obj, "as_array", None)
    if callable(as_array):
        obj = as_array()
    if isinstance(obj, np.ndarray):
        return obj
    if hasattr(obj, "__array_namespace__"):
        return to_numpy(obj)
    return np.asarray(obj, dtype=float)


def resolve_namespace(spec: "Backend | str | None" = None) -> Any:
    """Shorthand: the raw ``xp`` namespace of :func:`resolve_backend`."""
    return resolve_backend(spec).xp
