"""Backend registry: resolving Array-API namespaces for the batched kernels.

The batch layer (:mod:`repro.batch`) expresses every kernel body against an
Array-API-compatible namespace ``xp`` instead of importing NumPy at module
scope.  This module owns the mapping from a backend *name* to a resolved
:class:`Backend` handle:

* ``numpy`` — always available; NumPy >= 2.0 implements the standard names
  (``cumulative_sum``, ``pow``, ``take_along_axis``, ...) in its main
  namespace, so no wrapper is needed;
* ``array_api_strict`` — auto-detected when importable;
* ``torch`` / ``cupy`` — auto-detected when importable *and* a
  standard-conforming namespace resolves (via ``array_api_compat`` for
  torch, whose raw namespace predates the standard; cupy's own namespace is
  accepted when it passes the surface check);
* anything else — registrable via :func:`register_backend`.

Detection never crashes: loaders map every import/conformance failure to
:class:`BackendNotAvailableError` with the reason, surfaced through
:func:`backend_failures`.

Selection order for the *active* backend:

1. the innermost :func:`use_backend` context, if any;
2. the process-wide override installed by :func:`set_default_backend`;
3. the ``REPRO_BACKEND`` environment variable;
4. ``numpy``.

The active backend is tracked with a :class:`contextvars.ContextVar`, so
``use_backend`` nests correctly and is safe under threads and asyncio.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator

__all__ = [
    "Backend",
    "BackendNotAvailableError",
    "DEVICE_ENV_VAR",
    "ENV_VAR",
    "available_backends",
    "backend_failures",
    "get_backend",
    "load_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "with_device",
]

#: Environment variable consulted when no explicit backend is active.
ENV_VAR = "REPRO_BACKEND"

#: Environment variable pinning the default device (``cpu`` / ``cuda`` / ``mps``).
DEVICE_ENV_VAR = "REPRO_DEVICE"

#: Standard functions a candidate namespace must expose before the registry
#: accepts it (the subset the batched kernels actually call).
_REQUIRED_FUNCTIONS = (
    "asarray",
    "astype",
    "arange",
    "broadcast_to",
    "clip",
    "concat",
    "cumulative_sum",
    "exp",
    "flip",
    "log",
    "maximum",
    "minimum",
    "pow",
    "searchsorted",
    "stack",
    "sum",
    "take",
    "where",
    "zeros",
)


class BackendNotAvailableError(RuntimeError):
    """Raised when a requested backend cannot be imported or is incomplete."""


@dataclass(frozen=True)
class Backend:
    """A resolved array backend: namespace plus defaults and capability flags.

    Attributes
    ----------
    name:
        Registry name (``"numpy"``, ``"array_api_strict"``, ...).
    xp:
        The Array-API-compatible namespace itself; kernel bodies call
        ``xp.sum``, ``xp.cumulative_sum`` etc. on it and nothing else.
    float_dtype, int_dtype, bool_dtype:
        Default dtypes used when kernels materialise new arrays.
    device:
        Default device new arrays are placed on (``None`` = the namespace's
        own default, which is correct for every CPU backend).
    is_numpy:
        ``True`` only for the NumPy backend; adapters use it to keep the
        NumPy fast paths (``einsum``, fancy assignment) byte-identical to the
        pre-backend code.
    supports_einsum:
        Namespace has ``einsum`` (not part of the Array-API standard);
        :func:`repro.backend.adapters.contract_occupancy` falls back to a
        broadcast-multiply-reduce when it is missing.
    supports_fancy_assignment:
        Namespace supports NumPy-style integer-array ``__setitem__``
        (scatter).  The :class:`repro.batch.dynamics.DynamicsEngine` only
        uses its active-row subset stepping when this holds and otherwise
        steps the full batch with ``where``-masked freezing.
    supports_object_dtype:
        Namespace can hold ``object`` dtype arrays (NumPy only); nothing in
        the batch layer needs it, but callers staging ragged metadata can ask.
    """

    name: str
    xp: Any
    float_dtype: Any
    int_dtype: Any
    bool_dtype: Any
    device: Any = None
    is_numpy: bool = False
    supports_einsum: bool = False
    supports_fancy_assignment: bool = False
    supports_object_dtype: bool = False

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Backend({self.name!r})"


def _check_namespace(name: str, xp: Any) -> None:
    missing = [fn for fn in _REQUIRED_FUNCTIONS if not hasattr(xp, fn)]
    if missing:
        raise BackendNotAvailableError(
            f"backend {name!r} is importable but its namespace lacks the "
            f"standard functions the kernels need: {', '.join(sorted(missing))}"
        )


def _load_numpy() -> Backend:
    import numpy as np

    return Backend(
        name="numpy",
        xp=np,
        float_dtype=np.float64,
        int_dtype=np.int64,
        bool_dtype=np.bool_,
        is_numpy=True,
        supports_einsum=True,
        supports_fancy_assignment=True,
        supports_object_dtype=True,
    )


def _load_array_api_strict() -> Backend:
    try:
        import array_api_strict as xp
    except Exception as error:  # pragma: no cover - environment dependent
        # Broken installs can raise more than ImportError; any failure just
        # means the backend is unavailable, never that the registry crashes.
        raise BackendNotAvailableError(
            f"array_api_strict is not importable ({error})"
        ) from error
    _check_namespace("array_api_strict", xp)
    return Backend(
        name="array_api_strict",
        xp=xp,
        float_dtype=xp.float64,
        int_dtype=xp.int64,
        bool_dtype=xp.bool,
    )


def _compat_namespace(module_name: str):
    """Resolve a namespace through ``array_api_compat`` when it is installed.

    The raw ``torch`` / ``cupy`` namespaces predate the standard (``cumsum``
    instead of ``cumulative_sum``, no ``astype`` function, ...), so the
    standard-conforming wrappers of ``array_api_compat`` are required for
    those backends; without the compat package they are reported unavailable
    with an actionable reason.
    """
    try:
        import importlib

        return importlib.import_module(f"array_api_compat.{module_name}")
    except Exception:
        return None


def _load_torch() -> Backend:  # pragma: no cover - exercised only with torch
    try:
        import torch
    except Exception as error:
        raise BackendNotAvailableError(f"torch is not importable ({error})") from error
    xp = _compat_namespace("torch")
    if xp is None:
        raise BackendNotAvailableError(
            "torch is installed but its raw namespace is not Array-API "
            "conforming; install array-api-compat to use the torch backend"
        )
    _check_namespace("torch", xp)
    return Backend(
        name="torch",
        xp=xp,
        float_dtype=torch.float64,
        int_dtype=torch.int64,
        bool_dtype=torch.bool,
        supports_einsum=True,
        supports_fancy_assignment=True,
    )


def _load_cupy() -> Backend:  # pragma: no cover - exercised only with cupy
    try:
        import cupy
    except Exception as error:
        raise BackendNotAvailableError(f"cupy is not importable ({error})") from error
    xp = _compat_namespace("cupy")
    if xp is None:
        # cupy's main namespace tracks numpy's, so recent versions conform on
        # their own; fall back to it when the compat wrapper is absent.
        xp = cupy
    _check_namespace("cupy", xp)
    return Backend(
        name="cupy",
        xp=xp,
        float_dtype=cupy.float64,
        int_dtype=cupy.int64,
        bool_dtype=cupy.bool_,
        supports_einsum=True,
        supports_fancy_assignment=True,
    )


#: Built-in loaders in registry (and therefore fallback/auto-detect) order.
_LOADERS: dict[str, Callable[[], Backend]] = {
    "numpy": _load_numpy,
    "array_api_strict": _load_array_api_strict,
    "torch": _load_torch,
    "cupy": _load_cupy,
}

_CACHE: dict[str, Backend] = {}
_FAILURES: dict[str, str] = {}

#: Innermost-first stack of ``use_backend`` activations (per context).
_ACTIVE: ContextVar[tuple[Backend, ...]] = ContextVar("repro_backend_stack", default=())

#: Process-wide default installed by :func:`set_default_backend` (overrides
#: the environment variable but not an enclosing ``use_backend``).
_DEFAULT_OVERRIDE: list[Backend | None] = [None]


def register_backend(
    name: str, loader: Callable[[], Backend], *, overwrite: bool = False
) -> None:
    """Register (or replace) a backend loader under ``name``.

    ``loader`` is called lazily on first resolution and must return a
    :class:`Backend` or raise :class:`BackendNotAvailableError`.
    """
    if not name:
        raise ValueError("backend name must be non-empty")
    if name in _LOADERS and not overwrite:
        raise ValueError(f"backend {name!r} is already registered")
    _LOADERS[name] = loader
    _CACHE.pop(name, None)
    _FAILURES.pop(name, None)


def load_backend(name: str) -> Backend:
    """Resolve ``name`` into a cached :class:`Backend` (raising if unavailable)."""
    cached = _CACHE.get(name)
    if cached is not None:
        return cached
    loader = _LOADERS.get(name)
    if loader is None:
        raise BackendNotAvailableError(
            f"unknown backend {name!r}; registered: {', '.join(_LOADERS)}"
        )
    try:
        backend = loader()
    except BackendNotAvailableError as error:
        _FAILURES[name] = str(error)
        raise
    _CACHE[name] = backend
    _FAILURES.pop(name, None)
    return backend


def available_backends() -> tuple[str, ...]:
    """Names of every registered backend that resolves on this machine.

    The numpy backend is always first; the rest follow registration order,
    which is the fallback order the docs promise.
    """
    names = []
    for name in _LOADERS:
        try:
            load_backend(name)
        except BackendNotAvailableError:
            continue
        names.append(name)
    return tuple(names)


def backend_failures() -> dict[str, str]:
    """Why each unavailable backend failed to load (for diagnostics)."""
    for name in _LOADERS:
        if name not in _CACHE and name not in _FAILURES:
            try:
                load_backend(name)
            except BackendNotAvailableError:
                pass
    return dict(_FAILURES)


def with_device(backend: Backend, device: "str | None") -> Backend:
    """Pin a :class:`Backend` handle to a device (``cpu`` / ``cuda`` / ``mps``).

    ``None`` (and ``"default"``) leave the handle untouched.  Host
    namespaces (NumPy, ``array_api_strict``) accept only ``cpu``; ``cupy``
    arrays are CUDA-resident by construction so only ``cuda`` is valid; the
    torch backend resolves any of the three, raising
    :class:`BackendNotAvailableError` with the reason when the requested
    accelerator is absent — callers (tests, CLI validation) skip-guard on
    that error.  On ``mps`` the default float dtype drops to ``float32``
    (Apple silicon has no native ``float64``).
    """
    if device is None:
        return backend
    name = str(device).strip().lower()
    if name in ("", "default"):
        return backend
    if backend.name == "torch":
        import torch

        if name == "cpu":
            return dataclasses.replace(backend, device=torch.device("cpu"))
        if name == "cuda":
            if not torch.cuda.is_available():
                raise BackendNotAvailableError(
                    "device 'cuda' requested but torch.cuda.is_available() is False"
                )
            return dataclasses.replace(backend, device=torch.device("cuda"))
        if name == "mps":
            mps = getattr(torch.backends, "mps", None)
            if mps is None or not mps.is_available():
                raise BackendNotAvailableError(
                    "device 'mps' requested but the MPS backend is unavailable"
                )
            return dataclasses.replace(
                backend, device=torch.device("mps"), float_dtype=torch.float32
            )
        raise BackendNotAvailableError(
            f"unknown device {device!r} for the torch backend (cpu/cuda/mps)"
        )
    if backend.name == "cupy":
        if name == "cuda":
            return backend
        raise BackendNotAvailableError(
            f"the cupy backend is CUDA-resident; device {device!r} is not supported"
        )
    if name == "cpu":
        return backend
    raise BackendNotAvailableError(
        f"backend {backend.name!r} runs on the host; device {device!r} is not supported"
    )


def _default_backend() -> Backend:
    override = _DEFAULT_OVERRIDE[0]
    if override is not None:
        return override
    name = os.environ.get(ENV_VAR, "").strip()
    backend = load_backend(name) if name else load_backend("numpy")
    device = os.environ.get(DEVICE_ENV_VAR, "").strip()
    return with_device(backend, device) if device else backend


def get_backend() -> Backend:
    """The currently active backend (context > process default > env > numpy)."""
    stack = _ACTIVE.get()
    if stack:
        return stack[-1]
    return _default_backend()


def resolve_backend(
    spec: "Backend | str | None" = None, *, device: "str | None" = None
) -> Backend:
    """Resolve a user-facing backend argument.

    ``None`` means "whatever is active" (:func:`get_backend`), a string is a
    registry lookup, and a :class:`Backend` passes through unchanged.  Every
    batched kernel funnels its ``backend=`` keyword through here.  ``device``
    optionally pins the handle via :func:`with_device`.
    """
    if spec is None:
        backend = get_backend()
    elif isinstance(spec, Backend):
        backend = spec
    else:
        backend = load_backend(spec)
    return with_device(backend, device)


def set_default_backend(
    spec: "Backend | str | None", *, device: "str | None" = None
) -> None:
    """Install (or with ``None`` clear) the process-wide default backend.

    Unlike :func:`use_backend` this is not scoped; it overrides the
    ``REPRO_BACKEND`` environment variable for the rest of the process but is
    still shadowed by any enclosing ``use_backend`` context.
    """
    _DEFAULT_OVERRIDE[0] = None if spec is None else resolve_backend(spec, device=device)


@contextlib.contextmanager
def use_backend(spec: "Backend | str", *, device: "str | None" = None) -> Iterator[Backend]:
    """Activate a backend for the duration of a ``with`` block.

    Nests: the innermost activation wins, and the previous active backend is
    restored on exit even when the body raises.

    >>> from repro.backend import use_backend, get_backend
    >>> with use_backend("numpy") as backend:
    ...     assert get_backend() is backend
    """
    backend = resolve_backend(spec, device=device)
    stack = _ACTIVE.get()
    token = _ACTIVE.set(stack + (backend,))
    try:
        yield backend
    finally:
        _ACTIVE.reset(token)
