"""Pluggable Array-API backend layer for the batched kernels.

Every batched kernel in :mod:`repro.batch` (and the shared helpers in
:mod:`repro.utils`) expresses its body against an Array-API-compatible
namespace ``xp`` resolved through this package instead of importing NumPy at
module scope.  Swapping the backend swaps the array library the hot paths run
on — NumPy today, ``array_api_strict`` for conformance testing, ``torch`` /
``cupy`` for accelerators — without touching a single kernel.

Public API
----------
:func:`get_backend` / :func:`resolve_backend`
    The currently active :class:`Backend` handle, and the resolver every
    kernel funnels its ``backend=`` keyword through.
:func:`use_backend`
    Context manager activating a backend for a ``with`` block; nests and
    restores on exit.
:func:`set_default_backend`
    Process-wide default (overrides the ``REPRO_BACKEND`` environment
    variable; shadowed by any enclosing :func:`use_backend`).
:func:`available_backends` / :func:`register_backend`
    Detection and extension points of the registry.
:func:`to_numpy` / :func:`from_numpy`
    Host transfers at the public result boundary.

Conventions
-----------
* Results of the public batch APIs are returned **on the host** as NumPy
  arrays (grids, reports and JSON artifacts are host objects); intermediate
  arrays flowing between kernels stay backend-native.
* Randomness always comes from host ``numpy.random`` generators (seeds are
  part of the experiment contract) and is transferred per batch.
* Genuinely NumPy-only operations (``bincount``, ``einsum``, error-state)
  are isolated in :mod:`repro.backend.adapters`.

Selection order: ``use_backend`` context > :func:`set_default_backend` >
``REPRO_BACKEND`` environment variable > ``numpy``.  The CLI exposes the same
choice as ``repro-dispersal <command> --backend NAME``.
"""

from repro.backend.adapters import (
    TransferStats,
    asarray_float,
    batched_bincount,
    bincount,
    contract_occupancy,
    ensure_numpy,
    errstate_ignore,
    expected_transfer,
    from_numpy,
    is_native,
    random_uniform,
    resolve_namespace,
    scatter_rows,
    take_along_axis,
    take_rows,
    to_numpy,
    track_transfers,
)
from repro.backend.registry import (
    DEVICE_ENV_VAR,
    ENV_VAR,
    Backend,
    BackendNotAvailableError,
    available_backends,
    backend_failures,
    get_backend,
    load_backend,
    register_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
    with_device,
)

__all__ = [
    "Backend",
    "BackendNotAvailableError",
    "DEVICE_ENV_VAR",
    "ENV_VAR",
    "available_backends",
    "backend_failures",
    "get_backend",
    "load_backend",
    "register_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
    "with_device",
    "TransferStats",
    "asarray_float",
    "batched_bincount",
    "bincount",
    "contract_occupancy",
    "ensure_numpy",
    "errstate_ignore",
    "expected_transfer",
    "from_numpy",
    "is_native",
    "random_uniform",
    "resolve_namespace",
    "scatter_rows",
    "take_along_axis",
    "take_rows",
    "to_numpy",
    "track_transfers",
]
