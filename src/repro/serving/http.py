"""Dependency-free asyncio HTTP front of the equilibrium service.

A deliberately small HTTP/1.1 server (stdlib ``asyncio.start_server``, no
web framework) exposing the scheduler over six routes:

==================  =======  ==================================================
``/solve``          POST     one equilibrium (``values``, ``k``, ``policy``)
``/sweep``          POST     ``sigma_star`` + coverage over a ``k_grid``
``/mechanism``      POST     policy-roster comparison (``values``, ``k``,
                             ``policies``)
``/coverage-times`` POST     exact Von Schelling coverage-time laws
                             (``values`` distribution, ``k``, ``times``, ``j``)
``/healthz``        GET      liveness probe
``/stats``          GET      scheduler / cache / memo counters + queue-depth
                             and latency histograms + host environment
==================  =======  ==================================================

Bodies and responses are JSON.  Malformed requests get ``400`` with an
``{"error": ...}`` body; unknown routes ``404``.  When the scheduler's
bounded pending queue is full, admission control answers ``503`` with a
``Retry-After`` header estimating the drain time — shedding load at the
door instead of letting queues grow without bound.  Connections are
keep-alive (closed-loop load generators reuse them), one in-flight request
per connection — concurrency comes from many connections, which is exactly
the regime the scheduler packs into shared kernel calls.

For a production deployment behind a real ASGI stack, see
:func:`repro.serving.fastapi_app.create_fastapi_app` (``pip install
repro-dispersal[serve]``); this module is the zero-dependency reference
front used by the CLI (``repro-dispersal serve``) and the benchmark.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass
from typing import Any

from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.executor import create_executor
from repro.serving.requests import parse_request
from repro.serving.scheduler import QueueFullError
from repro.utils.envinfo import environment_metadata

__all__ = ["EquilibriumService", "start_server", "serve_forever"]

_MAX_BODY_BYTES = 8 * 1024 * 1024
_POST_KINDS = ("solve", "sweep", "mechanism", "coverage-times")


class EquilibriumService:
    """Routes HTTP requests into a :class:`~repro.serving.coalescer.BatchCoalescer`."""

    def __init__(self, coalescer: BatchCoalescer) -> None:
        self.coalescer = coalescer

    # ---------------------------------------------------------------- routing
    async def dispatch(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict, dict[str, str]]:
        """Map one parsed HTTP request to ``(status, JSON payload, headers)``."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path == "/healthz":
            return 200, {"status": "ok"}, {}
        if method == "GET" and path == "/stats":
            return 200, {
                "coalescer": self.coalescer.stats(),
                "environment": environment_metadata(),
            }, {}
        kind = path.lstrip("/")
        if kind in _POST_KINDS:
            if method != "POST":
                return 405, {"error": f"{path} expects POST"}, {}
            try:
                payload = json.loads(body.decode("utf-8")) if body else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as error:
                return 400, {"error": f"invalid JSON body: {error}"}, {}
            try:
                request = parse_request(kind, payload)
            except (TypeError, ValueError) as error:
                return 400, {"error": str(error)}, {}
            try:
                return 200, await self.coalescer.submit(request), {}
            except QueueFullError as error:
                retry_after = max(1, round(error.retry_after))
                return 503, {
                    "error": str(error),
                    "retry_after_s": retry_after,
                }, {"Retry-After": str(retry_after)}
            except Exception as error:  # noqa: BLE001 - reported, not raised
                return 500, {"error": f"{type(error).__name__}: {error}"}, {}
        return 404, {"error": f"no route for {method} {path}"}, {}

    # ------------------------------------------------------------- connection
    async def handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one keep-alive connection until the peer closes it."""
        try:
            while True:
                request_line = await reader.readline()
                if not request_line or request_line.strip() == b"":
                    break
                try:
                    method, path, _version = request_line.decode("latin-1").split(None, 2)
                except ValueError:
                    await self._respond(writer, 400, {"error": "malformed request line"})
                    break
                headers: dict[str, str] = {}
                while True:
                    line = await reader.readline()
                    if line in (b"\r\n", b"\n", b""):
                        break
                    name, _, value = line.decode("latin-1").partition(":")
                    headers[name.strip().lower()] = value.strip()
                try:
                    length = int(headers.get("content-length", "0") or "0")
                except ValueError:
                    await self._respond(writer, 400, {"error": "bad Content-Length"})
                    break
                if length < 0 or length > _MAX_BODY_BYTES:
                    await self._respond(writer, 413, {"error": "body too large"})
                    break
                body = await reader.readexactly(length) if length else b""
                status, payload, extra = await self.dispatch(method.upper(), path, body)
                keep_alive = headers.get("connection", "").lower() != "close"
                await self._respond(
                    writer, status, payload, keep_alive=keep_alive, extra_headers=extra
                )
                if not keep_alive:
                    break
        except (asyncio.IncompleteReadError, ConnectionResetError):
            pass  # peer went away mid-request; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
                # The handler task is cancelled by Server.close(); the socket
                # is already closing, so there is nothing left to wait for.
                pass

    @staticmethod
    async def _respond(
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        *,
        keep_alive: bool = False,
        extra_headers: dict[str, str] | None = None,
    ) -> None:
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   405: "Method Not Allowed", 413: "Payload Too Large",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        body = json.dumps(payload).encode("utf-8")
        extras = "".join(
            f"{name}: {value}\r\n" for name, value in (extra_headers or {}).items()
        )
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extras}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()


@dataclass
class RunningServer:
    """A started server plus its service; ``async with`` closes both."""

    server: asyncio.base_events.Server
    service: EquilibriumService

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0`` in tests)."""
        return self.server.sockets[0].getsockname()[1]

    async def close(self) -> None:
        self.server.close()
        await self.server.wait_closed()
        await self.service.coalescer.close()

    async def __aenter__(self) -> "RunningServer":
        return self

    async def __aexit__(self, *exc_info: Any) -> None:
        await self.close()


async def start_server(
    host: str = "127.0.0.1",
    port: int = 8080,
    *,
    coalescer: BatchCoalescer | None = None,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    cache_size: int = 4096,
    backend: str | None = None,
    max_pending: int = 1024,
    executor: str | None = None,
    workers: int | None = None,
) -> RunningServer:
    """Bind the service and return a handle (``port=0`` picks a free port).

    Without an explicit ``coalescer``, one is built from ``max_batch`` /
    ``max_wait_ms`` / ``cache_size`` (``cache_size=0`` disables the cache),
    with a bounded pending queue of ``max_pending`` requests and kernel
    execution on ``executor`` (``"inline"``, ``"thread"`` or ``"process"``;
    ``workers`` sizes the pool, defaulting to the visible CPU count).
    """
    if coalescer is None:
        cache = ResultCache(cache_size) if cache_size > 0 else None
        coalescer = BatchCoalescer(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache=cache,
            backend=backend,
            executor=create_executor(executor, max_workers=workers, backend=backend),
            max_pending=max_pending,
        )
    service = EquilibriumService(coalescer)
    server = await asyncio.start_server(service.handle_connection, host, port)
    return RunningServer(server=server, service=service)


async def serve_forever(host: str, port: int, **options: Any) -> None:
    """Run the service until cancelled (the ``repro-dispersal serve`` body)."""
    running = await start_server(host, port, **options)
    addresses = ", ".join(
        f"{sock.getsockname()[0]}:{sock.getsockname()[1]}" for sock in running.server.sockets
    )
    scheduler = running.service.coalescer
    print(f"repro-dispersal serving on {addresses} "
          f"(max_batch={scheduler.max_batch}, max_wait_ms={scheduler.max_wait_ms}, "
          f"executor={scheduler.executor.mode}, max_pending={scheduler.max_pending})")
    try:
        await running.server.serve_forever()
    finally:
        await running.close()
