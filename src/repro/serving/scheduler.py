"""Continuous-batching scheduler: adaptive accumulation + admission control.

The original coalescer held *every* request for a fixed ``max_wait_ms``
window — great for throughput (batches fill), terrible for light-load
latency (a lone request waits the full window: ``BENCH_serving.json``
showed coalescing regress p50 from 0.44 ms to 6.8 ms).  The
:class:`ContinuousBatchScheduler` replaces the fixed window with the
vLLM-style rule *dispatch immediately when idle, accumulate only under
pressure*:

* **Idle → dispatch now.**  When nothing is in flight, the next event-loop
  tick dispatches whatever is queued (usually one request).  A lone request
  pays microseconds of scheduling, not the window.
* **Busy → accumulate, then dispatch the moment a worker frees.**  While
  groups execute on the :class:`~repro.serving.executor.KernelExecutor`,
  arrivals park in the pending queue.  Every group completion re-runs the
  pump, so a freed worker immediately picks up the batch that accumulated
  during execution — batch size adapts to service time, with ``max_batch``
  as the hard cap.
* **EWMA arrival-rate target.**  Between idle and saturated, a free worker
  dispatches early once ``pending >= clip(max_wait / tau, 1, max_batch)``
  requests are queued, where ``tau`` is an exponentially weighted moving
  average of the inter-arrival time: sparse traffic (large ``tau``) targets
  batch-of-one, bursts (small ``tau``) accumulate toward full batches.  A
  ``max_wait_ms`` backstop timer bounds how long the first queued request
  can wait for that target.
* **Admission control.**  The pending queue is bounded (``max_pending``);
  overflow raises :exc:`QueueFullError` carrying a ``retry_after`` estimate
  derived from the observed service rate, which the HTTP fronts map to
  ``503`` + ``Retry-After``.  Queue-depth and latency histograms are kept
  for ``/stats``.

Everything the bit-identity contract relies on is unchanged: grouping,
packing and kernel dispatch are exactly
:func:`~repro.serving.engine.evaluate_group` on canonical host tuples, the
cache and single-flight layers sit in front of the queue as before, and a
failing group settles only its own callers.

:class:`~repro.serving.coalescer.BatchCoalescer` is now a thin alias of
this scheduler (inline executor), so existing imports keep working.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.backend import Backend
from repro.serving.cache import ResultCache
from repro.serving.engine import group_requests
from repro.serving.executor import KernelExecutor, create_executor
from repro.serving.requests import ServingRequest
from repro.utils.memo import plan_memo

__all__ = ["ContinuousBatchScheduler", "QueueFullError"]

#: EWMA smoothing factor of the inter-arrival estimate (~ last 10 arrivals).
_EWMA_ALPHA = 0.2


class QueueFullError(RuntimeError):
    """Raised by :meth:`ContinuousBatchScheduler.submit` when admission fails.

    Attributes
    ----------
    retry_after:
        Suggested back-off in seconds, estimated from the observed service
        rate; the HTTP fronts surface it as a ``Retry-After`` header.
    """

    def __init__(self, message: str, *, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = max(0.0, float(retry_after))


class _Histogram:
    """Fixed-bucket counting histogram (`le`-style upper bounds + overflow)."""

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.total = 0.0
        self.n = 0

    def observe(self, value: float) -> None:
        self.n += 1
        self.total += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def as_dict(self) -> dict[str, Any]:
        buckets = {f"le_{bound:g}": count for bound, count in zip(self.bounds, self.counts)}
        buckets["inf"] = self.counts[-1]
        return {
            "count": self.n,
            "mean": self.total / self.n if self.n else 0.0,
            "buckets": buckets,
        }


class ContinuousBatchScheduler:
    """Adaptive micro-batching with parallel group execution and backpressure.

    Parameters
    ----------
    max_batch:
        Hard cap on the number of requests one dispatch takes off the queue
        (and therefore on any kernel call's batch-row count).
    max_wait_ms:
        Backstop on accumulation: the first queued request is dispatched at
        the latest this many milliseconds after it arrived, even if the
        adaptive target was not reached.  It is **not** a fixed window — at
        light load dispatch happens on the next loop tick.
    cache:
        Optional :class:`~repro.serving.cache.ResultCache`; ``None`` disables
        caching.
    backend:
        Array backend the batched kernels run on (name, handle, or ``None``
        for the active default).
    executor:
        A :class:`~repro.serving.executor.KernelExecutor`, a mode name
        (``"inline"`` / ``"thread"`` / ``"process"``), or ``None`` for
        inline.  Its ``concurrency`` is the number of groups that may
        execute at once.
    max_pending:
        Bound on the pending queue; beyond it :meth:`submit` raises
        :exc:`QueueFullError` (admission control).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache: ResultCache | None = None,
        backend: Backend | str | None = None,
        executor: KernelExecutor | str | None = None,
        max_pending: int = 1024,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.cache = cache
        self.backend = backend
        self.executor = create_executor(executor, backend=backend)
        self.max_pending = int(max_pending)
        self._pending: list[tuple[ServingRequest, asyncio.Future, float]] = []
        self._inflight: dict[str, asyncio.Future] = {}
        self._tasks: set[asyncio.Task] = set()
        self._inflight_groups = 0
        self._pump_scheduled = False
        self._timer: asyncio.TimerHandle | None = None
        # Adaptive state: EWMA of inter-arrival and per-request service time.
        self._last_arrival: float | None = None
        self._ewma_interarrival: float | None = None
        self._ewma_service: float | None = None
        # Lifetime counters (stats() keys are shared with the old coalescer).
        self._n_requests = 0
        self._n_cache_hits = 0
        self._n_singleflight = 0
        self._n_batches = 0
        self._n_solved = 0
        self._largest_batch = 0
        self._n_rejected = 0
        self._queue_depth_histogram = _Histogram((0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512))
        self._latency_histogram = _Histogram((0.5, 1, 2, 5, 10, 25, 50, 100, 250, 1000))

    # ------------------------------------------------------------------ submit
    async def submit(self, request: ServingRequest) -> dict:
        """Answer ``request``, sharing work with every concurrent caller.

        Resolution order: cache hit -> in-flight duplicate (single flight)
        -> bounded pending queue (:exc:`QueueFullError` beyond
        ``max_pending``) for the next dispatch.  The returned payload is a
        JSON-native dict and must be treated as immutable.
        """
        self._n_requests += 1
        key = request.cache_key
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self._n_cache_hits += 1
                return cached
        shared = self._inflight.get(key)
        if shared is not None:
            self._n_singleflight += 1
            return await asyncio.shield(shared)
        if len(self._pending) >= self.max_pending:
            self._n_rejected += 1
            raise QueueFullError(
                f"pending queue is full ({self.max_pending} requests queued)",
                retry_after=self._retry_after(),
            )
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._observe_arrival(now)
        self._queue_depth_histogram.observe(len(self._pending))
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._pending.append((request, future, now))
        # Deferred one tick, so a burst scheduled in the same loop iteration
        # (asyncio.gather, several connections becoming readable together)
        # fully enqueues before the pump decides what to dispatch.
        self._schedule_pump(loop)
        return await asyncio.shield(future)

    # -------------------------------------------------------------------- pump
    def _schedule_pump(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        if not self._pump_scheduled:
            self._pump_scheduled = True
            (loop or asyncio.get_running_loop()).call_soon(self._pump)

    def _pump(self, *, worker_freed: bool = False, backstop: bool = False) -> None:
        """Dispatch pending requests per the continuous-batching rule."""
        self._pump_scheduled = False
        loop = asyncio.get_running_loop()
        while self._pending:
            idle = self._inflight_groups == 0
            slot_free = self._inflight_groups < self.executor.concurrency
            overdue = backstop or (
                loop.time() >= self._pending[0][2] + self.max_wait_ms / 1000.0
            )
            target_met = len(self._pending) >= self._accumulation_target()
            if idle or (slot_free and (worker_freed or overdue or target_met)):
                self._dispatch_event(loop)
                worker_freed = backstop = False
                continue
            break
        self._arm_backstop(loop)

    def _accumulation_target(self) -> int:
        """How many requests a free (non-idle) worker waits to accumulate.

        ``clip(max_wait / tau_ewma, 1, max_batch)``: the number of arrivals
        expected within the latency budget.  With no arrival history the
        target is 1 (dispatch immediately).
        """
        tau = self._ewma_interarrival
        if tau is None or tau <= 0.0:
            return 1
        target = (self.max_wait_ms / 1000.0) / tau
        return max(1, min(self.max_batch, int(target)))

    def _observe_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            dt = max(0.0, now - self._last_arrival)
            if self._ewma_interarrival is None:
                self._ewma_interarrival = dt
            else:
                self._ewma_interarrival += _EWMA_ALPHA * (dt - self._ewma_interarrival)
        self._last_arrival = now

    def _retry_after(self) -> float:
        """Seconds until the queue has plausibly drained one full batch."""
        service = self._ewma_service if self._ewma_service else 0.05
        depth_in_batches = max(1.0, len(self._pending) / float(self.max_batch))
        return min(30.0, service * depth_in_batches / max(1, self.executor.concurrency))

    # ---------------------------------------------------------------- dispatch
    def _dispatch_event(self, loop: asyncio.AbstractEventLoop) -> None:
        """Take up to ``max_batch`` requests FIFO and launch their groups."""
        event = self._pending[: self.max_batch]
        del self._pending[: self.max_batch]
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self._n_batches += 1
        self._n_solved += len(event)
        self._largest_batch = max(self._largest_batch, len(event))
        requests = [request for request, _, _ in event]
        for indices in group_requests(requests).values():
            group = [event[i] for i in indices]
            # Synchronous accounting: the pump sees this group occupying a
            # slot before the task first runs, so one pump pass cannot
            # over-dispatch past the executor's concurrency.
            self._inflight_groups += 1
            task = loop.create_task(self._run_group(group))
            self._tasks.add(task)
            task.add_done_callback(self._tasks.discard)

    async def _run_group(
        self, group: list[tuple[ServingRequest, asyncio.Future, float]]
    ) -> None:
        """Execute one homogeneous group and settle its callers."""
        loop = asyncio.get_running_loop()
        started = loop.time()
        requests = [request for request, _, _ in group]
        try:
            payloads = await self.executor.run(requests, backend=self.backend)
        except Exception as error:  # noqa: BLE001 - forwarded to callers
            for request, future, enqueued in group:
                self._settle(request, future, enqueued, error=error)
        else:
            for (request, future, enqueued), payload in zip(group, payloads):
                self._settle(request, future, enqueued, payload=payload)
        finally:
            finished = loop.time()
            per_request = (finished - started) / max(1, len(group))
            if self._ewma_service is None:
                self._ewma_service = per_request
            else:
                self._ewma_service += _EWMA_ALPHA * (per_request - self._ewma_service)
            self._inflight_groups -= 1
            # A worker just freed: dispatch whatever accumulated meanwhile.
            if self._pending:
                self._pump(worker_freed=True)

    def _settle(
        self,
        request: ServingRequest,
        future: asyncio.Future,
        enqueued: float,
        *,
        payload: dict | None = None,
        error: Exception | None = None,
    ) -> None:
        self._inflight.pop(request.cache_key, None)
        self._latency_histogram.observe(
            (asyncio.get_running_loop().time() - enqueued) * 1000.0
        )
        if future.done():  # pragma: no cover - cancelled caller
            return
        if error is not None:
            future.set_exception(error)
        else:
            if self.cache is not None:
                self.cache.put(request.cache_key, payload)
            future.set_result(payload)

    # ---------------------------------------------------------------- backstop
    def _arm_backstop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Bound the wait of the oldest queued request by ``max_wait_ms``."""
        if not self._pending:
            if self._timer is not None:
                self._timer.cancel()
                self._timer = None
            return
        if self._timer is not None:
            return
        delay = self._pending[0][2] + self.max_wait_ms / 1000.0 - loop.time()
        if delay <= 0:
            # Already overdue with every worker busy (the pump would have
            # dispatched otherwise): the next group completion dispatches,
            # so arming a zero-delay timer would only spin the loop.
            return
        self._timer = loop.call_later(delay, self._on_backstop)

    def _on_backstop(self) -> None:
        self._timer = None
        self._pump(backstop=True)

    # --------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Dispatch everything queued and wait for every in-flight answer."""
        loop = asyncio.get_running_loop()
        futures = [future for _, future, _ in self._pending]
        while self._pending:
            self._dispatch_event(loop)
        if futures:
            await asyncio.gather(*futures, return_exceptions=True)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    async def close(self) -> None:
        """Drain, stop the backstop timer and release the executor (idempotent)."""
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        self.executor.close()

    # ------------------------------------------------------------------- stats
    def stats(self) -> dict[str, Any]:
        """Lifetime counters: scheduling, admission, cache and memo behaviour.

        Keys of the original fixed-window coalescer are preserved
        (``batches`` counts dispatch events, ``largest_batch`` the largest
        event); new keys cover the executor, admission control, the
        queue-depth/latency histograms and the pmf-plan memo.
        """
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "max_pending": self.max_pending,
            "requests": self._n_requests,
            "cache_hits": self._n_cache_hits,
            "singleflight_hits": self._n_singleflight,
            "batches": self._n_batches,
            "solved": self._n_solved,
            "largest_batch": self._largest_batch,
            "mean_batch_size": self._n_solved / self._n_batches if self._n_batches else 0.0,
            "rejected": self._n_rejected,
            "pending": len(self._pending),
            "inflight": len(self._inflight),
            "inflight_groups": self._inflight_groups,
            "accumulation_target": self._accumulation_target(),
            "ewma_interarrival_ms": (
                self._ewma_interarrival * 1000.0 if self._ewma_interarrival else None
            ),
            "ewma_service_ms": self._ewma_service * 1000.0 if self._ewma_service else None,
            "queue_depth": self._queue_depth_histogram.as_dict(),
            "latency_ms": self._latency_histogram.as_dict(),
            "executor": self.executor.stats(),
            "cache": self.cache.stats() if self.cache is not None else None,
            "plan_memo": plan_memo.stats(),
        }
