"""Online equilibrium service: continuous batching + content-addressed cache.

The batch layer (:mod:`repro.batch`) amortises per-call overhead across the
rows of one caller's grid; this package amortises it across *callers*.  A
persistent asyncio service admits concurrent solve/sweep/mechanism/
coverage-times requests into a bounded queue, dispatches immediately when
the kernels are idle and accumulates only while they are busy (continuous
batching — a lone request at low load never waits for companions), packs
each dispatch into shared kernel calls, and answers each caller with its
slice — bit-identical to what a direct batch-of-one call of the public
kernels returns (see :mod:`repro.serving.engine` for why).  Kernel calls can
run inline on the event loop or off-loop on warm thread/process pools
(:mod:`repro.serving.executor`); either way the contract holds.  Repeated
questions never reach a kernel at all: a content-addressed LRU cache keyed
by the canonical instance hash (:mod:`repro.utils.canonical`) answers them
in O(lookup), single-flight dedup collapses identical in-flight requests
into one computation, and a cross-call plan memo
(:mod:`repro.utils.memo`) reuses the binomial-PMF combinatorics across
batches.  When the pending queue fills, admission control sheds load with
``503`` + ``Retry-After`` instead of queueing without bound.

Layers
------
:mod:`repro.serving.requests`
    Canonicalised request models (``solve`` / ``sweep`` / ``mechanism`` /
    ``coverage-times``).
:mod:`repro.serving.engine`
    Grouping + batched evaluation; the bit-identity contract.
:mod:`repro.serving.cache`
    Bounded LRU result cache with hit/miss/eviction counters.
:mod:`repro.serving.scheduler`
    Continuous-batching scheduler: adaptive accumulation, bounded admission,
    single-flight dedup, queue-depth/latency histograms.
:mod:`repro.serving.executor`
    Kernel execution strategies: inline, thread pool, warm process pool.
:mod:`repro.serving.coalescer`
    The established :class:`BatchCoalescer` name, now a thin alias of the
    scheduler.
:mod:`repro.serving.http`
    Dependency-free asyncio HTTP front (``repro-dispersal serve``).
:mod:`repro.serving.fastapi_app`
    The same routes as a FastAPI app (optional ``serve`` extra).

Benchmarked by ``benchmarks/bench_serving.py`` (``BENCH_serving.json``):
latency-vs-load curves (low / medium / saturating), coalesced vs naive
throughput, executor-mode identity, plan-memo hit rate and warm-cache
speedup, CI-gated like the other families.
"""

from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.engine import (
    EQUILIBRIUM_OPTS,
    evaluate_group,
    evaluate_one,
    evaluate_requests,
    group_requests,
)
from repro.serving.executor import (
    EXECUTOR_MODES,
    InlineKernelExecutor,
    KernelExecutor,
    ProcessKernelExecutor,
    ThreadKernelExecutor,
    create_executor,
)
from repro.serving.fastapi_app import create_fastapi_app
from repro.serving.http import EquilibriumService, RunningServer, serve_forever, start_server
from repro.serving.requests import (
    CoverageTimeRequest,
    MechanismRequest,
    ServingRequest,
    SolveRequest,
    SweepRequest,
    parse_request,
)
from repro.serving.scheduler import ContinuousBatchScheduler, QueueFullError

__all__ = [
    "BatchCoalescer",
    "ContinuousBatchScheduler",
    "QueueFullError",
    "ResultCache",
    "EquilibriumService",
    "RunningServer",
    "ServingRequest",
    "SolveRequest",
    "SweepRequest",
    "MechanismRequest",
    "CoverageTimeRequest",
    "parse_request",
    "EQUILIBRIUM_OPTS",
    "evaluate_group",
    "evaluate_one",
    "evaluate_requests",
    "group_requests",
    "EXECUTOR_MODES",
    "KernelExecutor",
    "InlineKernelExecutor",
    "ThreadKernelExecutor",
    "ProcessKernelExecutor",
    "create_executor",
    "create_fastapi_app",
    "serve_forever",
    "start_server",
]
