"""Online equilibrium service: micro-batch coalescing + content-addressed cache.

The batch layer (:mod:`repro.batch`) amortises per-call overhead across the
rows of one caller's grid; this package amortises it across *callers*.  A
persistent asyncio service accumulates concurrent solve/sweep/mechanism
requests for a short window, packs them into one
:class:`~repro.batch.padding.PaddedValues` batch, dispatches a single
batched kernel call, and answers each caller with its slice — bit-identical
to what a direct batch-of-one call of the public kernels returns (see
:mod:`repro.serving.engine` for why).  Repeated questions never reach a
kernel at all: a content-addressed LRU cache keyed by the canonical instance
hash (:mod:`repro.utils.canonical`) answers them in O(lookup), and
single-flight dedup collapses identical in-flight requests into one
computation.

Layers
------
:mod:`repro.serving.requests`
    Canonicalised request models (``solve`` / ``sweep`` / ``mechanism``).
:mod:`repro.serving.engine`
    Grouping + batched evaluation; the bit-identity contract.
:mod:`repro.serving.cache`
    Bounded LRU result cache with hit/miss/eviction counters.
:mod:`repro.serving.coalescer`
    The accumulation window (``max_batch`` / ``max_wait_ms``), single-flight
    dedup, and per-caller futures.
:mod:`repro.serving.http`
    Dependency-free asyncio HTTP front (``repro-dispersal serve``).
:mod:`repro.serving.fastapi_app`
    The same routes as a FastAPI app (optional ``serve`` extra).

Benchmarked by ``benchmarks/bench_serving.py`` (``BENCH_serving.json``):
coalesced vs naive per-request throughput at fixed concurrency, latency
percentiles and warm-cache hit speedup, CI-gated like the other families.
"""

from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.engine import (
    EQUILIBRIUM_OPTS,
    evaluate_group,
    evaluate_one,
    evaluate_requests,
    group_requests,
)
from repro.serving.fastapi_app import create_fastapi_app
from repro.serving.http import EquilibriumService, RunningServer, serve_forever, start_server
from repro.serving.requests import (
    MechanismRequest,
    ServingRequest,
    SolveRequest,
    SweepRequest,
    parse_request,
)

__all__ = [
    "BatchCoalescer",
    "ResultCache",
    "EquilibriumService",
    "RunningServer",
    "ServingRequest",
    "SolveRequest",
    "SweepRequest",
    "MechanismRequest",
    "parse_request",
    "EQUILIBRIUM_OPTS",
    "evaluate_group",
    "evaluate_one",
    "evaluate_requests",
    "group_requests",
    "create_fastapi_app",
    "serve_forever",
    "start_server",
]
