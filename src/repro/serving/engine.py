"""Batched evaluation of serving requests — the coalescer's kernel dispatch.

One flush of the coalescer hands a mixed list of requests to
:func:`evaluate_requests`: requests are grouped by ``group_key`` (same
family, policy roster and player-count signature, same padded-width
bucket), each group is packed into one
:class:`~repro.batch.padding.PaddedValues`, one batched kernel call solves
the whole group, and each request's answer is sliced out of its
``(row, k)`` cell.

Bit-identical coalescing
------------------------
The service promises that a coalesced answer equals the answer the same
request gets from a direct (batch-of-one) call of the public kernels, bit
for bit.  Three properties make that hold:

* a group is homogeneous in everything but the instance — the family, the
  policy roster, the ``k`` signature and the padded-width bucket are all
  part of ``group_key`` — so coalescing only ever grows the batch-row count
  ``B``, and every kernel involved
  (:func:`~repro.batch.solvers.sigma_star_batch`,
  :func:`~repro.batch.solvers.coverage_batch`,
  :func:`~repro.batch.ifd.ifd_batch`,
  :func:`~repro.batch.mechanism.compare_policies_batch`) is elementwise in
  the row: co-batched instances cannot perturb each other's cells.  (Pinning
  the ``k`` signature matters beyond row-independence: a wider ``k`` axis
  changes the broadcast strides of the coverage exponent, which can select
  a different ufunc inner loop for ``**`` whose results differ in the last
  ulp.  It also means a group never computes ``(row, k)`` cells nobody
  asked for);
* the one data-dependent control flow — the IFD solver's bisection early
  exits, which fire when *all* rows of a batch have converged — is pinned by
  :data:`EQUILIBRIUM_OPTS`: ``tol=0.0`` disables the outer early exit and
  ``max_inner_iter=40`` keeps the inner bisection short of its ``1e-15``
  exit width (``2**-40 > 1e-15``), so both loops always run their full fixed
  budget regardless of what else is in the batch.  The budgets still drive
  the brackets to ``~4e-15`` relative (outer) and ``~9e-13`` absolute
  (inner) — far inside the ``1e-6`` convergence check;
* reductions over the site axis (coverage sums, the bisection's total
  probability mass) use a summation tree that depends on the *padded*
  width, which would otherwise float with whatever the request was batched
  with.  Groups therefore only mix requests of one power-of-two width
  bucket (:attr:`~repro.serving.requests.ServingRequest.pad_width`, part of
  ``group_key``) and :func:`_pack` pads to exactly that bucket, so direct
  and coalesced runs reduce over identically shaped rows.  Padding cells
  hold the row's own smallest value and contribute exact zeros to every
  masked reduction, so widening a row never changes its answer — only
  *where* in the tree its real terms sit, which bucketing pins.

Responses are plain JSON-native dicts (floats/ints/lists), so they can be
cached, serialised and compared for exact equality.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

import numpy as np

from repro.analysis.scenario_experiments import policy_from_name
from repro.backend import Backend
from repro.batch.coverage_times import (
    coverage_time_cdf_batch,
    expected_coverage_time_batch,
    partial_coverage_time_batch,
)
from repro.batch.ifd import ifd_batch
from repro.batch.mechanism import compare_policies_batch
from repro.batch.padding import PaddedValues
from repro.batch.solvers import coverage_batch, sigma_star_batch
from repro.serving.requests import (
    CoverageTimeRequest,
    MechanismRequest,
    ServingRequest,
    SolveRequest,
    SweepRequest,
)

__all__ = ["EQUILIBRIUM_OPTS", "group_requests", "evaluate_group", "evaluate_requests", "evaluate_one"]

#: Fixed iteration budgets of the IFD bisections (see module docstring):
#: results become independent of batch composition, which the bit-identity
#: contract of the coalescer relies on.
EQUILIBRIUM_OPTS: Mapping[str, float | int] = {
    "tol": 0.0,
    "max_outer_iter": 48,
    "max_inner_iter": 40,
}


def group_requests(requests: Sequence[ServingRequest]) -> dict[tuple, list[int]]:
    """Indices of ``requests`` grouped by coalescible ``(kind, group_key)``."""
    groups: dict[tuple, list[int]] = {}
    for index, request in enumerate(requests):
        groups.setdefault(request.group_key, []).append(index)
    return groups


def _pack(batch: Sequence[ServingRequest]) -> PaddedValues:
    """One padded batch, at the group's fixed width bucket (see module docs)."""
    return PaddedValues.from_instances(
        [request.site_values for request in batch], width=batch[0].pad_width
    )


def _finite_or_none(value: float) -> float | None:
    """Map non-finite ratios (SPoA of a zero-coverage cell) to JSON ``null``."""
    value = float(value)
    return value if math.isfinite(value) else None


def _evaluate_solve(batch: Sequence[SolveRequest], backend) -> list[dict]:
    padded = _pack(batch)
    ks = sorted({request.k for request in batch})
    policy = batch[0].policy_object()
    equilibrium = ifd_batch(padded, ks, policy, backend=backend, **EQUILIBRIUM_OPTS)
    coverages = coverage_batch(padded, equilibrium.probabilities, ks, backend=backend)
    k_index = {k: column for column, k in enumerate(ks)}
    payloads = []
    for row, request in enumerate(batch):
        column = k_index[request.k]
        payloads.append(
            {
                "kind": "solve",
                "m": request.m,
                "k": request.k,
                "policy": request.policy,
                "probabilities": [
                    float(p) for p in equilibrium.probabilities[row, column, : request.m]
                ],
                "equilibrium_value": float(equilibrium.values[row, column]),
                "support_size": int(equilibrium.support_sizes[row, column]),
                "coverage": float(coverages[row, column]),
                "converged": bool(equilibrium.converged[row, column]),
            }
        )
    return payloads


def _evaluate_sweep(batch: Sequence[SweepRequest], backend) -> list[dict]:
    padded = _pack(batch)
    union = sorted({k for request in batch for k in request.k_grid})
    star = sigma_star_batch(padded, union, backend=backend)
    coverages = coverage_batch(padded, star.probabilities, union, backend=backend)
    k_index = {k: column for column, k in enumerate(union)}
    payloads = []
    for row, request in enumerate(batch):
        columns = [k_index[k] for k in request.k_grid]
        payloads.append(
            {
                "kind": "sweep",
                "m": request.m,
                "k_grid": list(request.k_grid),
                "support_sizes": [int(star.support_sizes[row, c]) for c in columns],
                "equilibrium_values": [float(star.equilibrium_values[row, c]) for c in columns],
                "coverages": [float(coverages[row, c]) for c in columns],
            }
        )
    return payloads


def _evaluate_mechanism(batch: Sequence[MechanismRequest], backend) -> list[dict]:
    padded = _pack(batch)
    ks = sorted({request.k for request in batch})
    roster_names = batch[0].policies
    roster = [policy_from_name(name) for name in roster_names]
    comparison = compare_policies_batch(padded, ks, roster, backend=backend, **EQUILIBRIUM_OPTS)
    k_index = {k: column for column, k in enumerate(ks)}
    payloads = []
    for row, request in enumerate(batch):
        column = k_index[request.k]
        payloads.append(
            {
                "kind": "mechanism",
                "m": request.m,
                "k": request.k,
                "policies": list(roster_names),
                "equilibrium_coverages": [
                    float(comparison.equilibrium_coverages[p, row, column])
                    for p in range(len(roster_names))
                ],
                "optimal_coverage": float(comparison.optimal_coverages[row, column]),
                "spoa": [
                    _finite_or_none(comparison.spoa[p, row, column])
                    for p in range(len(roster_names))
                ],
                "equilibrium_payoffs": [
                    float(comparison.equilibrium_payoffs[p, row, column])
                    for p in range(len(roster_names))
                ],
                "support_sizes": [
                    int(comparison.support_sizes[p, row, column])
                    for p in range(len(roster_names))
                ],
            }
        )
    return payloads


def _evaluate_coverage(batch: Sequence[CoverageTimeRequest], backend) -> list[dict]:
    # Coverage-time requests carry visit *distributions* (zeros allowed), so
    # they do not ride on PaddedValues: the batch is a zero-padded matrix at
    # the group's width bucket plus a per-row real-size roster.  The exact
    # kernels partition rows by (site count, uniformity) and only ever read
    # each row's first ``m`` entries, so co-batching and the shared padding
    # width cannot perturb a row's answer — the same bit-identity argument
    # as the equilibrium families, one layer down.
    width = batch[0].pad_width
    matrix = np.zeros((len(batch), width))
    sizes = np.empty(len(batch), dtype=np.int64)
    for row, request in enumerate(batch):
        matrix[row, : request.m] = request.values
        sizes[row] = request.m
    k = batch[0].k  # pinned by group_key
    times = batch[0].times
    j = batch[0].j
    expected = expected_coverage_time_batch(matrix, k, sizes=sizes, backend=backend)
    cdf = (
        coverage_time_cdf_batch(matrix, k, list(times), sizes=sizes, backend=backend)
        if times
        else None
    )
    partial = (
        partial_coverage_time_batch(matrix, k, j, sizes=sizes, backend=backend)
        if j
        else None
    )
    payloads = []
    for row, request in enumerate(batch):
        payload = {
            "kind": "coverage-times",
            "m": request.m,
            "k": request.k,
            "distribution": [float(p) for p in request.values],
            "coverable": bool(math.isfinite(expected[row])),
            "expected_rounds": _finite_or_none(expected[row]),
        }
        if cdf is not None:
            payload["times"] = list(times)
            payload["cdf"] = [float(value) for value in cdf[row, :]]
        if partial is not None:
            payload["j"] = request.j
            payload["partial_expected_rounds"] = _finite_or_none(partial[row])
        payloads.append(payload)
    return payloads


_EVALUATORS = {
    "solve": _evaluate_solve,
    "sweep": _evaluate_sweep,
    "mechanism": _evaluate_mechanism,
    "coverage-times": _evaluate_coverage,
}


def evaluate_group(
    batch: Sequence[ServingRequest], *, backend: Backend | str | None = None
) -> list[dict]:
    """Solve one coalescible group (same ``group_key``) in one kernel call."""
    if not batch:
        return []
    kinds = {request.group_key for request in batch}
    if len(kinds) != 1:
        raise ValueError(f"cannot evaluate a mixed group: {sorted(kinds)}")
    return _EVALUATORS[batch[0].kind](batch, backend)


def evaluate_requests(
    requests: Sequence[ServingRequest], *, backend: Backend | str | None = None
) -> list[dict]:
    """Solve a mixed request list, grouped and batched; results in input order."""
    results: list[dict | None] = [None] * len(requests)
    for indices in group_requests(requests).values():
        payloads = evaluate_group([requests[i] for i in indices], backend=backend)
        for index, payload in zip(indices, payloads):
            results[index] = payload
    return results  # type: ignore[return-value]


def evaluate_one(request: ServingRequest, *, backend: Backend | str | None = None) -> dict:
    """The direct (batch-of-one) path — the reference the coalescer must match."""
    return evaluate_requests([request], backend=backend)[0]
