"""Micro-batch request coalescing — now continuous batching under the hood.

:class:`BatchCoalescer` began life as a fixed-window accumulator: every
request waited up to ``max_wait_ms`` for companions, which bought batch
throughput at the price of light-load latency (a lone request paid the full
window).  The scheduling core now lives in
:class:`~repro.serving.scheduler.ContinuousBatchScheduler`, which dispatches
immediately when idle and accumulates only while kernels are executing —
``max_wait_ms`` survives as the accumulation *backstop*, not a fixed delay.

This module keeps the established name and constructor as a thin subclass:
existing imports (``from repro.serving import BatchCoalescer``), the stats
keys and the cache/single-flight semantics are unchanged, and the default
executor is inline — exactly the original event-loop execution model.  See
:mod:`repro.serving.scheduler` for the scheduling policy and
:mod:`repro.serving.executor` for off-loop parallel execution.
"""

from __future__ import annotations

from repro.backend import Backend
from repro.serving.cache import ResultCache
from repro.serving.executor import KernelExecutor
from repro.serving.scheduler import ContinuousBatchScheduler

__all__ = ["BatchCoalescer"]


class BatchCoalescer(ContinuousBatchScheduler):
    """Accumulates concurrent requests and solves them in shared kernel calls.

    The established entry point of the serving layer; since the
    continuous-batching rework it is an alias of
    :class:`~repro.serving.scheduler.ContinuousBatchScheduler` (inline
    executor by default).  Parameters are documented there; the historical
    ones keep their exact meaning except that ``max_wait_ms`` now bounds
    accumulation instead of imposing it.
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache: ResultCache | None = None,
        backend: Backend | str | None = None,
        executor: KernelExecutor | str | None = None,
        max_pending: int = 1024,
    ) -> None:
        super().__init__(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache=cache,
            backend=backend,
            executor=executor,
            max_pending=max_pending,
        )
