"""Micro-batch request coalescing: concurrent callers, one kernel call.

The :class:`BatchCoalescer` is the heart of the serving layer.  Concurrent
:meth:`~BatchCoalescer.submit` calls do not each run a solver; they park a
future on a shared accumulation queue.  The queue flushes when either

* ``max_batch`` requests have accumulated (a full batch is ready), or
* ``max_wait_ms`` elapsed since the first queued request (latency bound) —

whichever comes first.  A flush groups the queue by coalescible family
(:func:`~repro.serving.engine.group_requests`), packs each group via
:meth:`PaddedValues.from_instances
<repro.batch.padding.PaddedValues.from_instances>`, dispatches **one**
batched kernel call per group on the active backend, and resolves every
caller's future with its slice of the result.  Under load, per-request cost
collapses to per-batch cost — the amortisation the ``(B, M)`` kernels were
built for, now applied across callers instead of across grid cells.

Layered in front of the kernels:

* a content-addressed :class:`~repro.serving.cache.ResultCache` answers
  repeated questions in O(lookup) without touching the queue;
* **single-flight dedup**: identical requests that are in flight (queued or
  mid-kernel) share one future, so a thundering herd of equal queries costs
  one computation.

Everything runs on the caller's event loop: the kernels are CPU-bound NumPy
passes, so a flush blocks the loop for one batched call — by design (a
thread pool would serialise on the GIL anyway and only add latency jitter).
Waiting requests hold canonicalised host-side tuples across event-loop
turns; see :class:`~repro.batch.padding.PaddedValues` for why the padded
container and its per-backend transfer cache are safe to share this way.
"""

from __future__ import annotations

import asyncio
from typing import Any, Sequence

from repro.backend import Backend
from repro.serving.cache import ResultCache
from repro.serving.engine import evaluate_group, group_requests
from repro.serving.requests import ServingRequest

__all__ = ["BatchCoalescer"]


class BatchCoalescer:
    """Accumulates concurrent requests and solves them in shared kernel calls.

    Parameters
    ----------
    max_batch:
        Flush as soon as this many requests are queued (also the upper bound
        on the batch size of one kernel call).
    max_wait_ms:
        Flush at the latest this many milliseconds after the first request
        of a window — the latency price a lone request pays for batching.
    cache:
        Optional :class:`~repro.serving.cache.ResultCache`; ``None`` disables
        caching (every request is solved).
    backend:
        Array backend the batched kernels run on (name, handle, or ``None``
        for the active default — see :mod:`repro.backend`).
    """

    def __init__(
        self,
        *,
        max_batch: int = 64,
        max_wait_ms: float = 2.0,
        cache: ResultCache | None = None,
        backend: Backend | str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.cache = cache
        self.backend = backend
        self._pending: list[tuple[ServingRequest, asyncio.Future]] = []
        self._inflight: dict[str, asyncio.Future] = {}
        self._timer: asyncio.TimerHandle | None = None
        # Lifetime counters (surfaced by stats() and the /stats endpoint).
        self._n_requests = 0
        self._n_cache_hits = 0
        self._n_singleflight = 0
        self._n_batches = 0
        self._n_solved = 0
        self._largest_batch = 0

    # ------------------------------------------------------------------ submit
    async def submit(self, request: ServingRequest) -> dict:
        """Answer ``request``, sharing work with every concurrent caller.

        Resolution order: cache hit -> in-flight duplicate (single flight)
        -> queue for the next coalesced kernel call.  The returned payload
        is a JSON-native dict and must be treated as immutable (cache and
        duplicate submitters share it).
        """
        self._n_requests += 1
        key = request.cache_key
        if self.cache is not None:
            cached = self.cache.get(key)
            if cached is not None:
                self._n_cache_hits += 1
                return cached
        shared = self._inflight.get(key)
        if shared is not None:
            self._n_singleflight += 1
            return await asyncio.shield(shared)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._pending.append((request, future))
        if len(self._pending) >= self.max_batch:
            self._flush()
        elif self._timer is None:
            self._timer = loop.call_later(self.max_wait_ms / 1000.0, self._flush)
        return await asyncio.shield(future)

    # ------------------------------------------------------------------- flush
    def _flush(self) -> None:
        """Solve everything queued (timer callback / full-batch trigger)."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = self._pending
        self._pending = []
        if not batch:
            return
        self._n_batches += 1
        self._n_solved += len(batch)
        self._largest_batch = max(self._largest_batch, len(batch))
        requests = [request for request, _ in batch]
        futures = [future for _, future in batch]
        # Evaluate group by group so one failing group (e.g. a kernel error)
        # does not poison unrelated callers of the same flush.
        for indices in group_requests(requests).values():
            try:
                payloads = evaluate_group(
                    [requests[i] for i in indices], backend=self.backend
                )
            except Exception as error:  # noqa: BLE001 - forwarded to callers
                for i in indices:
                    self._settle(requests[i], futures[i], error=error)
            else:
                for i, payload in zip(indices, payloads):
                    self._settle(requests[i], futures[i], payload=payload)

    def _settle(
        self,
        request: ServingRequest,
        future: asyncio.Future,
        *,
        payload: dict | None = None,
        error: Exception | None = None,
    ) -> None:
        self._inflight.pop(request.cache_key, None)
        if future.done():  # pragma: no cover - cancelled caller
            return
        if error is not None:
            future.set_exception(error)
        else:
            if self.cache is not None:
                self.cache.put(request.cache_key, payload)
            future.set_result(payload)

    # --------------------------------------------------------------- lifecycle
    async def drain(self) -> None:
        """Flush the queue immediately and wait for every queued answer."""
        pending = [future for _, future in self._pending]
        self._flush()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)

    async def close(self) -> None:
        """Drain and stop the window timer (idempotent)."""
        await self.drain()
        if self._timer is not None:  # pragma: no cover - drain already flushed
            self._timer.cancel()
            self._timer = None

    # ------------------------------------------------------------------- stats
    def stats(self) -> dict[str, Any]:
        """Lifetime counters: coalescing effectiveness and cache behaviour."""
        return {
            "max_batch": self.max_batch,
            "max_wait_ms": self.max_wait_ms,
            "requests": self._n_requests,
            "cache_hits": self._n_cache_hits,
            "singleflight_hits": self._n_singleflight,
            "batches": self._n_batches,
            "solved": self._n_solved,
            "largest_batch": self._largest_batch,
            "mean_batch_size": self._n_solved / self._n_batches if self._n_batches else 0.0,
            "pending": len(self._pending),
            "inflight": len(self._inflight),
            "cache": self.cache.stats() if self.cache is not None else None,
        }
