"""Content-addressed LRU result cache of the equilibrium service.

Keys are the :attr:`~repro.serving.requests.ServingRequest.cache_key`
SHA-256 digests of canonicalised requests (:mod:`repro.utils.canonical`):
any two spellings of the same mathematical question share one slot, and the
cached answer is exact — closed forms and fixed-budget bisections do not
depend on when or with whom they were computed, so a hit is simply the
answer, not an approximation of it.

The cache is bounded (strict LRU on both reads and writes) and counts hits,
misses and evictions for the ``/stats`` endpoint and the serving benchmark.
A :class:`threading.Lock` guards the order-mutating operations: the HTTP
front runs on one event loop, but benchmarks and embedding applications may
probe from worker threads.

Cached payloads are returned by reference and must be treated as immutable
(the coalescer only ever stores freshly built JSON-native dicts).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

__all__ = ["ResultCache"]


class ResultCache:
    """Bounded LRU mapping ``cache_key -> response payload``."""

    def __init__(self, max_entries: int = 4096) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = int(max_entries)
        self._entries: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Any | None:
        """The cached payload for ``key`` (refreshing its recency), else ``None``."""
        with self._lock:
            payload = self._entries.get(key)
            if payload is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return payload

    def put(self, key: str, payload: Any) -> None:
        """Insert (or refresh) ``key``, evicting the least recently used entry."""
        with self._lock:
            self._entries[key] = payload
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def clear(self) -> None:
        """Drop every entry (counters are kept; they describe the lifetime)."""
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, Any]:
        """Counters for ``/stats`` and the benchmark artifact."""
        lookups = self.hits + self.misses
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }
