"""Off-loop kernel execution: inline, thread-pool and process-pool workers.

The scheduler (:mod:`repro.serving.scheduler`) turns queued requests into
homogeneous groups; a :class:`KernelExecutor` decides *where* each group's
batched kernel call runs:

* :class:`InlineKernelExecutor` — on the event-loop thread, exactly like the
  original coalescer.  One group at a time; a kernel call blocks the loop
  for its duration.  Zero overhead, the right default for a single-CPU host
  and the reference the other modes must match bit for bit.
* :class:`ThreadKernelExecutor` — a ``ThreadPoolExecutor``.  The event loop
  stays responsive (accepting connections, parsing requests and accumulating
  the next batch *while* kernels run), and NumPy's BLAS/ufunc inner loops
  release the GIL, so groups overlap on multi-core hosts.
* :class:`ProcessKernelExecutor` — a ``ProcessPoolExecutor`` with **warm
  per-worker backend state**: each worker resolves the backend handle and
  imports the kernel stack once at startup (initializer), so steady-state
  group dispatch only pays request pickling, never re-import or re-resolve.
  Full parallelism regardless of the GIL, at IPC cost per group.

Pool sizes default to :func:`repro.utils.envinfo.available_cpus` (container
aware — cgroup quotas and CPU affinity masks are respected).

**Bit identity across modes.**  Every mode runs the *same*
:func:`repro.serving.engine.evaluate_group` on the same canonicalised host
tuples, and the engine's contract (group homogeneity, pinned
``EQUILIBRIUM_OPTS``, power-of-two width bucketing) fixes every float op and
its order regardless of which thread or process executes the call — so the
three modes return identical payloads, asserted by the benchmark gate and
``tests/test_serving.py``.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import functools
from typing import Any, Sequence

from repro.backend import Backend
from repro.serving.engine import evaluate_group
from repro.serving.requests import ServingRequest
from repro.utils.envinfo import available_cpus

__all__ = [
    "KernelExecutor",
    "InlineKernelExecutor",
    "ThreadKernelExecutor",
    "ProcessKernelExecutor",
    "create_executor",
]

#: Executor mode names accepted by :func:`create_executor` and the CLI.
EXECUTOR_MODES = ("inline", "thread", "process")


class KernelExecutor:
    """Where a scheduled group's batched kernel call runs.

    Subclasses implement :meth:`run`; ``concurrency`` tells the scheduler how
    many groups may usefully execute at once (its continuous-batching pump
    dispatches a new group the moment a slot frees up).
    """

    #: Mode tag (``inline`` / ``thread`` / ``process``), surfaced on ``/stats``.
    mode = "abstract"

    @property
    def concurrency(self) -> int:
        """Number of groups that can execute simultaneously."""
        raise NotImplementedError

    async def run(
        self, batch: Sequence[ServingRequest], *, backend: Backend | str | None = None
    ) -> list[dict]:
        """Solve one homogeneous group; returns payloads in batch order."""
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (idempotent)."""

    def stats(self) -> dict[str, Any]:
        """Mode and sizing, for ``/stats`` and the benchmark artifact."""
        return {"mode": self.mode, "concurrency": self.concurrency}


class InlineKernelExecutor(KernelExecutor):
    """Run groups synchronously on the event-loop thread (the default)."""

    mode = "inline"

    @property
    def concurrency(self) -> int:
        """Always ``1``: the loop thread is the only worker."""
        return 1

    async def run(
        self, batch: Sequence[ServingRequest], *, backend: Backend | str | None = None
    ) -> list[dict]:
        """Direct :func:`~repro.serving.engine.evaluate_group` call, no handoff."""
        return evaluate_group(batch, backend=backend)


class ThreadKernelExecutor(KernelExecutor):
    """Run groups on a thread pool; the event loop never blocks on a kernel."""

    mode = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        self._max_workers = int(max_workers) if max_workers else available_cpus()
        if self._max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._pool: concurrent.futures.ThreadPoolExecutor | None = None

    @property
    def concurrency(self) -> int:
        """The thread-pool size."""
        return self._max_workers

    def _ensure_pool(self) -> concurrent.futures.ThreadPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ThreadPoolExecutor(
                max_workers=self._max_workers, thread_name_prefix="repro-serve"
            )
        return self._pool

    async def run(
        self, batch: Sequence[ServingRequest], *, backend: Backend | str | None = None
    ) -> list[dict]:
        """Hand the group to a pool thread and await its payloads."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._ensure_pool(), functools.partial(evaluate_group, batch, backend=backend)
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


# -- process-pool plumbing ---------------------------------------------------
# Workers hold one resolved backend handle (warm state), established by the
# initializer.  Backends cross the process boundary by *name* — handles wrap
# module namespaces and device objects that do not pickle.

_WORKER_BACKEND: Any = None
_WORKER_SPEC: str | None = None


def _warm_worker(spec: str | None) -> None:
    """Process-pool initializer: resolve the backend and import the kernels once."""
    global _WORKER_BACKEND, _WORKER_SPEC
    from repro.backend import resolve_backend
    import repro.serving.engine  # noqa: F401 - pulls the whole kernel stack in

    _WORKER_SPEC = spec
    _WORKER_BACKEND = resolve_backend(spec)


def _solve_group_in_worker(batch: Sequence[ServingRequest], spec: str | None) -> list[dict]:
    """The per-group body executed inside a warm pool worker."""
    backend = _WORKER_BACKEND if spec == _WORKER_SPEC else spec
    return evaluate_group(batch, backend=backend)


def _backend_spec(backend: Backend | str | None) -> str | None:
    """The picklable spelling of a backend argument (handles go by name)."""
    if backend is None or isinstance(backend, str):
        return backend
    return backend.name


class ProcessKernelExecutor(KernelExecutor):
    """Run groups on a process pool with warm per-worker backend state."""

    mode = "process"

    def __init__(
        self, max_workers: int | None = None, *, backend: Backend | str | None = None
    ) -> None:
        self._max_workers = int(max_workers) if max_workers else available_cpus()
        if self._max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._spec = _backend_spec(backend)
        self._pool: concurrent.futures.ProcessPoolExecutor | None = None

    @property
    def concurrency(self) -> int:
        """The process-pool size."""
        return self._max_workers

    def _ensure_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        if self._pool is None:
            self._pool = concurrent.futures.ProcessPoolExecutor(
                max_workers=self._max_workers,
                initializer=_warm_worker,
                initargs=(self._spec,),
            )
        return self._pool

    async def run(
        self, batch: Sequence[ServingRequest], *, backend: Backend | str | None = None
    ) -> list[dict]:
        """Pickle the group to a warm worker and await its payloads."""
        spec = _backend_spec(backend) if backend is not None else self._spec
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._ensure_pool(), functools.partial(_solve_group_in_worker, list(batch), spec)
        )

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None


def create_executor(
    mode: str | KernelExecutor | None = None,
    *,
    max_workers: int | None = None,
    backend: Backend | str | None = None,
) -> KernelExecutor:
    """Build a :class:`KernelExecutor` from a mode name (the CLI surface).

    ``mode`` is ``"inline"`` (default), ``"thread"`` or ``"process"``; an
    already-built executor passes through unchanged.  Pool modes default
    their worker count to :func:`~repro.utils.envinfo.available_cpus`.
    """
    if isinstance(mode, KernelExecutor):
        return mode
    name = (mode or "inline").lower()
    if name == "inline":
        return InlineKernelExecutor()
    if name == "thread":
        return ThreadKernelExecutor(max_workers)
    if name == "process":
        return ProcessKernelExecutor(max_workers, backend=backend)
    raise ValueError(f"unknown executor mode {mode!r}; expected one of {EXECUTOR_MODES}")
