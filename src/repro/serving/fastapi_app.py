"""Optional FastAPI front for production ASGI deployments.

The reference server (:mod:`repro.serving.http`) is dependency-free; this
module builds the same routes as a FastAPI application for users who want a
real ASGI stack (workers, middleware, OpenAPI docs).  FastAPI is **not** a
dependency of the package — install the extra::

    pip install repro-dispersal[serve]
    uvicorn --factory repro.serving.fastapi_app:create_fastapi_app

Route semantics, coalescing and caching are identical to the reference
front: both delegate to one :class:`~repro.serving.coalescer.BatchCoalescer`.
Note that one uvicorn worker hosts one coalescer (and one cache); scaling to
several workers shards the traffic — and therefore the micro-batches —
across them.
"""

from __future__ import annotations

from typing import Any

from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.requests import parse_request
from repro.utils.envinfo import environment_metadata

__all__ = ["create_fastapi_app"]


def create_fastapi_app(
    coalescer: BatchCoalescer | None = None,
    *,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    cache_size: int = 4096,
    backend: str | None = None,
) -> Any:
    """Build the FastAPI application (requires the ``serve`` extra).

    Raises
    ------
    RuntimeError
        When FastAPI is not installed (with the install hint).
    """
    try:
        from fastapi import FastAPI, HTTPException
    except ImportError as error:  # pragma: no cover - exercised without the extra
        raise RuntimeError(
            "FastAPI is not installed; the stdlib front (repro.serving.http) "
            "works without it, or install the extra: pip install repro-dispersal[serve]"
        ) from error

    if coalescer is None:
        cache = ResultCache(cache_size) if cache_size > 0 else None
        coalescer = BatchCoalescer(
            max_batch=max_batch, max_wait_ms=max_wait_ms, cache=cache, backend=backend
        )

    app = FastAPI(
        title="repro-dispersal equilibrium service",
        description="Micro-batched solve/sweep/mechanism endpoints with a "
        "content-addressed result cache.",
    )
    app.state.coalescer = coalescer

    async def _submit(kind: str, payload: dict) -> dict:
        try:
            request = parse_request(kind, payload)
        except (TypeError, ValueError) as error:
            raise HTTPException(status_code=400, detail=str(error)) from None
        return await coalescer.submit(request)

    @app.post("/solve")
    async def solve(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("solve", payload)

    @app.post("/sweep")
    async def sweep(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("sweep", payload)

    @app.post("/mechanism")
    async def mechanism(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("mechanism", payload)

    @app.get("/healthz")
    async def healthz() -> dict:  # pragma: no cover - thin route
        return {"status": "ok"}

    @app.get("/stats")
    async def stats() -> dict:  # pragma: no cover - thin route
        return {"coalescer": coalescer.stats(), "environment": environment_metadata()}

    return app
