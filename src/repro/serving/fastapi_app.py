"""Optional FastAPI front for production ASGI deployments.

The reference server (:mod:`repro.serving.http`) is dependency-free; this
module builds the same routes as a FastAPI application for users who want a
real ASGI stack (workers, middleware, OpenAPI docs).  FastAPI is **not** a
dependency of the package — install the extra::

    pip install repro-dispersal[serve]
    uvicorn --factory repro.serving.fastapi_app:create_fastapi_app

Route semantics, scheduling, caching and admission control are identical to
the reference front: both delegate to one
:class:`~repro.serving.scheduler.ContinuousBatchScheduler` (via the
:class:`~repro.serving.coalescer.BatchCoalescer` compatibility name).  A full
pending queue answers ``503`` with a ``Retry-After`` header, exactly like the
stdlib front.  Note that one uvicorn worker hosts one scheduler (and one
cache); scaling to several workers shards the traffic — and therefore the
micro-batches — across them.
"""

from __future__ import annotations

from typing import Any

from repro.serving.cache import ResultCache
from repro.serving.coalescer import BatchCoalescer
from repro.serving.executor import create_executor
from repro.serving.requests import parse_request
from repro.serving.scheduler import QueueFullError
from repro.utils.envinfo import environment_metadata

__all__ = ["create_fastapi_app"]


def create_fastapi_app(
    coalescer: BatchCoalescer | None = None,
    *,
    max_batch: int = 64,
    max_wait_ms: float = 2.0,
    cache_size: int = 4096,
    backend: str | None = None,
    max_pending: int = 1024,
    executor: str | None = None,
    workers: int | None = None,
) -> Any:
    """Build the FastAPI application (requires the ``serve`` extra).

    Raises
    ------
    RuntimeError
        When FastAPI is not installed (with the install hint).
    """
    try:
        from fastapi import FastAPI, HTTPException
    except ImportError as error:  # pragma: no cover - exercised without the extra
        raise RuntimeError(
            "FastAPI is not installed; the stdlib front (repro.serving.http) "
            "works without it, or install the extra: pip install repro-dispersal[serve]"
        ) from error

    if coalescer is None:
        cache = ResultCache(cache_size) if cache_size > 0 else None
        coalescer = BatchCoalescer(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            cache=cache,
            backend=backend,
            executor=create_executor(executor, max_workers=workers, backend=backend),
            max_pending=max_pending,
        )

    app = FastAPI(
        title="repro-dispersal equilibrium service",
        description="Continuously batched solve/sweep/mechanism/coverage-times "
        "endpoints with a content-addressed result cache and bounded admission.",
    )
    app.state.coalescer = coalescer

    async def _submit(kind: str, payload: dict) -> dict:
        try:
            request = parse_request(kind, payload)
        except (TypeError, ValueError) as error:
            raise HTTPException(status_code=400, detail=str(error)) from None
        try:
            return await coalescer.submit(request)
        except QueueFullError as error:
            retry_after = max(1, round(error.retry_after))
            raise HTTPException(
                status_code=503,
                detail=str(error),
                headers={"Retry-After": str(retry_after)},
            ) from None

    @app.post("/solve")
    async def solve(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("solve", payload)

    @app.post("/sweep")
    async def sweep(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("sweep", payload)

    @app.post("/mechanism")
    async def mechanism(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("mechanism", payload)

    @app.post("/coverage-times")
    async def coverage_times(payload: dict) -> dict:  # pragma: no cover - thin route
        return await _submit("coverage-times", payload)

    @app.get("/healthz")
    async def healthz() -> dict:  # pragma: no cover - thin route
        return {"status": "ok"}

    @app.get("/stats")
    async def stats() -> dict:  # pragma: no cover - thin route
        return {"coalescer": coalescer.stats(), "environment": environment_metadata()}

    return app
