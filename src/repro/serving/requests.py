"""Typed request models of the online equilibrium service.

Three request families mirror the service endpoints (and the three batched
kernel families the coalescer dispatches to):

* :class:`SolveRequest` — one equilibrium: instance + player count + one
  congestion policy (:func:`~repro.batch.ifd.ifd_batch`, which
  short-circuits to the closed form for the exclusive policy);
* :class:`SweepRequest` — the closed-form ``sigma_star`` and its coverage
  over a whole player-count grid
  (:func:`~repro.batch.solvers.sigma_star_batch`);
* :class:`MechanismRequest` — a congestion-policy roster comparison on one
  ``(instance, k)`` cell (:func:`~repro.batch.mechanism.compare_policies_batch`).

Requests canonicalise their payload at construction (values sorted
non-increasing, grids as sorted unique tuples — see
:mod:`repro.utils.canonical`), so two requests are equal exactly when they
denote the same mathematical question; ``cache_key`` is the matching
content-addressed hash.  ``group_key`` identifies requests the coalescer may
pack into one kernel call: same family, policy roster and player-count
signature, same padded-width bucket (:attr:`ServingRequest.pad_width`) — a
group is homogeneous in everything but the instance, so coalescing only ever
changes the batch-row count, which the kernels are elementwise in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

from repro.analysis.scenario_experiments import POLICY_FACTORIES, policy_from_name
from repro.batch.coverage_times import DEFAULT_MAX_EXACT_SITES
from repro.core.policies import CongestionPolicy
from repro.core.values import SiteValues
from repro.utils.canonical import (
    canonical_distribution,
    canonical_k_grid,
    canonical_times,
    canonical_values,
    content_key,
)

__all__ = [
    "ServingRequest",
    "SolveRequest",
    "SweepRequest",
    "MechanismRequest",
    "CoverageTimeRequest",
    "parse_request",
]


def _coerce_values(values: Any) -> tuple[float, ...]:
    if values is None:
        raise ValueError("request is missing the site-value profile 'values'")
    return canonical_values(values)


@dataclass(frozen=True)
class ServingRequest:
    """Base of the three request families.

    Attributes
    ----------
    values:
        Canonical (non-increasing, strictly positive) site-value tuple.
    """

    values: tuple[float, ...]

    #: Family tag; also the endpoint path segment (``/solve`` etc.).
    kind = "abstract"

    def __post_init__(self) -> None:
        object.__setattr__(self, "values", _coerce_values(self.values))

    @property
    def site_values(self) -> SiteValues:
        """The instance as a :class:`~repro.core.values.SiteValues` (already sorted)."""
        return SiteValues.from_values(np.asarray(self.values))

    @property
    def m(self) -> int:
        """Number of sites of the instance."""
        return len(self.values)

    @property
    def cache_key(self) -> str:
        """Content-addressed key: equal for all spellings of the same request."""
        key = self.__dict__.get("_cache_key")
        if key is None:
            key = content_key(self.kind, self.values, **self._params())
            object.__setattr__(self, "_cache_key", key)
        return key

    @property
    def pad_width(self) -> int:
        """The power-of-two padded width this request's group is packed to.

        Reduction trees over the site axis (pairwise summation, device
        reductions) depend on the padded length, so the coalescer only packs
        requests of the same width bucket together and pads the batch to
        exactly that bucket — the direct (batch-of-one) path then reduces
        over identically shaped arrays and answers stay bit-identical no
        matter what the request was coalesced with.
        """
        return max(8, 1 << (self.m - 1).bit_length())

    @property
    def group_key(self) -> tuple:
        """Requests sharing a ``group_key`` coalesce into one kernel call."""
        return (self.kind, self.pad_width)

    def _params(self) -> dict[str, Any]:
        raise NotImplementedError


@dataclass(frozen=True)
class SolveRequest(ServingRequest):
    """Equilibrium of one instance for ``k`` players under one congestion policy."""

    k: int = 2
    policy: str = "exclusive"

    kind = "solve"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "policy", str(self.policy))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.policy not in POLICY_FACTORIES:
            available = ", ".join(sorted(POLICY_FACTORIES))
            raise ValueError(f"unknown policy {self.policy!r}; available: {available}")

    def _params(self) -> dict[str, Any]:
        return {"k": self.k, "policy": self.policy}

    @property
    def group_key(self) -> tuple:
        return (self.kind, self.policy, self.k, self.pad_width)

    def policy_object(self) -> CongestionPolicy:
        """A fresh policy instance resolved from the stable name."""
        return policy_from_name(self.policy)


@dataclass(frozen=True)
class SweepRequest(ServingRequest):
    """``sigma_star`` support/value/coverage over a player-count grid."""

    k_grid: tuple[int, ...] = (2, 3, 5, 8)

    kind = "sweep"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "k_grid", canonical_k_grid(self.k_grid))

    def _params(self) -> dict[str, Any]:
        return {"k_grid": self.k_grid}

    @property
    def group_key(self) -> tuple:
        return (self.kind, self.k_grid, self.pad_width)


@dataclass(frozen=True)
class MechanismRequest(ServingRequest):
    """Congestion-policy roster comparison on one ``(instance, k)`` cell."""

    k: int = 2
    policies: tuple[str, ...] = ("exclusive", "sharing")

    kind = "mechanism"

    def __post_init__(self) -> None:
        super().__post_init__()
        object.__setattr__(self, "k", int(self.k))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        roster = tuple(str(name) for name in self.policies)
        if not roster:
            raise ValueError("policies roster must not be empty")
        for name in roster:
            if name not in POLICY_FACTORIES:
                available = ", ".join(sorted(POLICY_FACTORIES))
                raise ValueError(f"unknown policy {name!r}; available: {available}")
        # Roster order only affects response presentation, not the answers:
        # canonicalise to sorted-unique so equivalent requests share a key.
        object.__setattr__(self, "policies", tuple(sorted(set(roster))))

    def _params(self) -> dict[str, Any]:
        return {"k": self.k, "policies": self.policies}

    @property
    def group_key(self) -> tuple:
        return (self.kind, self.policies, self.k, self.pad_width)


@dataclass(frozen=True)
class CoverageTimeRequest(ServingRequest):
    """Exact Von Schelling coverage-time laws of one visit distribution.

    ``values`` is a site-visit *distribution* (non-negative, normalised by
    the service — zeros are legal and mark sites that are never visited),
    not a site-value profile.  The response always carries the expected
    full-coverage time ``E[T]`` (``null`` when a zero-probability site makes
    coverage impossible); a non-empty ``times`` grid adds the CDF
    ``P(T <= t)`` at those round counts, and a coverage target ``j`` adds
    the partial expectation ``E[T_j]``.

    The exact kernels enumerate ``2**M`` subsets for non-uniform rows, so a
    non-uniform distribution wider than
    :data:`~repro.batch.coverage_times.DEFAULT_MAX_EXACT_SITES` is refused
    at construction (the HTTP fronts answer ``400``); exactly-uniform
    distributions take an ``O(M)`` closed-form merge and are accepted at any
    width.
    """

    k: int = 1
    times: tuple[int, ...] = ()
    j: int = 0

    kind = "coverage-times"

    def __post_init__(self) -> None:
        # Deliberately NOT the base coercion: distributions admit zeros,
        # which SiteValues (strictly positive site values) rejects.
        object.__setattr__(self, "values", canonical_distribution(self.values))
        object.__setattr__(self, "k", int(self.k))
        object.__setattr__(self, "j", int(self.j))
        if self.k < 1:
            raise ValueError("k must be >= 1")
        raw_times = self.times
        if isinstance(raw_times, (int, np.integer)):
            times = canonical_times(raw_times)
        else:
            times = canonical_times(raw_times) if len(tuple(raw_times)) else ()
        object.__setattr__(self, "times", times)
        if self.j < 0 or self.j > self.m:
            raise ValueError(f"coverage target j must satisfy 0 <= j <= {self.m} (0 = off)")
        uniform = self.values[0] == self.values[-1]
        if not uniform and self.m > DEFAULT_MAX_EXACT_SITES:
            raise ValueError(
                f"a non-uniform distribution over {self.m} sites exceeds the exact "
                f"enumeration cap ({DEFAULT_MAX_EXACT_SITES}); the subset sum is "
                f"O(2**M) — reduce the site count or make the distribution uniform"
            )

    def _params(self) -> dict[str, Any]:
        return {"k": self.k, "times": self.times, "j": self.j}

    @property
    def group_key(self) -> tuple:
        return (self.kind, self.k, self.times, self.j, self.pad_width)


_KINDS: dict[str, type[ServingRequest]] = {
    "solve": SolveRequest,
    "sweep": SweepRequest,
    "mechanism": MechanismRequest,
    "coverage-times": CoverageTimeRequest,
}


def parse_request(kind: str, payload: Mapping[str, Any]) -> ServingRequest:
    """Build a request of family ``kind`` from a JSON-ish payload dict.

    Unknown fields are rejected (a typo'd parameter silently falling back to
    a default would be served — and cached — as the wrong question).
    """
    cls = _KINDS.get(kind)
    if cls is None:
        raise ValueError(f"unknown request kind {kind!r}; expected one of {sorted(_KINDS)}")
    if not isinstance(payload, Mapping):
        raise ValueError("request payload must be a JSON object")
    allowed = set(cls.__dataclass_fields__)
    unknown = set(payload) - allowed
    if unknown:
        raise ValueError(
            f"unknown field(s) {sorted(unknown)} for {kind!r}; allowed: {sorted(allowed)}"
        )
    try:
        return cls(**payload)
    except TypeError as error:
        raise ValueError(f"invalid {kind!r} payload: {error}") from None
