"""Mechanism-design baselines and policy-design tooling.

The paper positions its congestion-policy result against the reward-design
mechanisms of Kleinberg & Oren (STOC 2011), in which a central entity cannot
change the competition rule (researchers share credit) but *can* change the
rewards attached to sites (grant sizes).  This subpackage implements that
baseline and the tooling to compare the two levers:

* :mod:`repro.mechanism.kleinberg_oren` — reward vectors steering the IFD of a
  fixed (e.g. sharing) policy to any target distribution, in particular to the
  coverage-optimal ``sigma_star``;
* :mod:`repro.mechanism.policy_design` — searching over congestion policies
  for a fixed reward vector (the paper's lever), including the ablation that
  the two-level policy's optimal collision payoff is ``c = 0``.
"""

from repro.mechanism.kleinberg_oren import (
    GrantDesign,
    design_rewards_for_target,
    optimal_grant_design,
    proportional_rewards,
)
from repro.mechanism.policy_design import (
    PolicyComparison,
    best_two_level_policy,
    compare_policies,
)

__all__ = [
    "GrantDesign",
    "design_rewards_for_target",
    "optimal_grant_design",
    "proportional_rewards",
    "PolicyComparison",
    "best_two_level_policy",
    "compare_policies",
]
