"""Reward-design mechanism in the spirit of Kleinberg & Oren (2011).

Setting: the congestion rule is fixed (researchers who pick the same topic
share the credit — the sharing policy), but a central entity can attach an
arbitrary *reward* ``r(x)`` to each site, decoupled from the site's social
value ``f(x)``.  The goal is to pick rewards whose induced equilibrium matches
a target distribution, typically the coverage-optimal ``sigma_star`` of the
underlying values.

Contrast with the paper's mechanism (changing the congestion rule while
keeping ``r = f``): reward design requires knowing the number of players ``k``
and the freedom to re-price sites, neither of which is available in ecological
settings; the congestion-policy route needs neither (Section 1.6 of the
paper).  Both implementations are provided so the benchmarks can compare them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage_strategy
from repro.core.payoffs import occupancy_congestion_factor
from repro.core.policies import CongestionPolicy, SharingPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer

__all__ = [
    "GrantDesign",
    "design_rewards_for_target",
    "optimal_grant_design",
    "proportional_rewards",
]


@dataclass(frozen=True)
class GrantDesign:
    """A designed reward vector and the equilibrium it induces.

    Attributes
    ----------
    rewards:
        Designed reward (grant) per site.
    induced_strategy:
        IFD of the game with rewards ``rewards`` under the design policy.
    induced_coverage:
        Coverage of the induced strategy measured with the *original* social
        values ``f`` (the planner cares about ``f``, not the grants).
    target_strategy:
        The distribution the design aimed for.
    max_deviation:
        ``max_x |induced(x) - target(x)|``.
    """

    rewards: np.ndarray
    induced_strategy: Strategy
    induced_coverage: float
    target_strategy: Strategy
    max_deviation: float


def design_rewards_for_target(
    target: Strategy,
    k: int,
    policy: CongestionPolicy | None = None,
    *,
    equilibrium_value: float = 1.0,
    off_support_fraction: float = 0.5,
) -> np.ndarray:
    """Rewards making ``target`` the IFD of the game under ``policy``.

    The IFD condition under rewards ``r`` is ``r(x) * g(p(x)) = v`` on the
    support (where ``g(q) = E[C(1 + Binomial(k-1, q))]``) and ``r(x) <= v``
    outside it.  Fixing the equilibrium value ``v`` (grants are scale free)
    gives ``r(x) = v / g(target(x))`` on the support; off-support sites get
    ``off_support_fraction * v``, small enough to stay unattractive but
    strictly positive so the game remains well posed.

    Raises ``ValueError`` when the congestion factor at the target occupancy is
    non-positive (the target is then not implementable with positive rewards,
    e.g. aggressive policies at high occupancy probabilities).
    """
    k = check_positive_integer(k, "k")
    if policy is None:
        policy = SharingPolicy()
    policy.validate(k)
    if equilibrium_value <= 0:
        raise ValueError("equilibrium_value must be positive")
    if not 0 < off_support_fraction < 1:
        raise ValueError("off_support_fraction must lie in (0, 1)")

    p = target.as_array()
    g = occupancy_congestion_factor(policy, p, k - 1)
    support = p > 0
    if np.any(g[support] <= 0):
        raise ValueError(
            "target not implementable: non-positive congestion factor on its support"
        )
    rewards = np.full(p.size, off_support_fraction * equilibrium_value)
    rewards[support] = equilibrium_value / g[support]
    return rewards


def optimal_grant_design(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy | None = None,
    **solver_kwargs,
) -> GrantDesign:
    """Design grants that steer the sharing-policy IFD to the coverage optimum.

    The target is ``sigma_star`` of the social values ``f`` (the symmetric
    strategy maximising coverage); the returned design reports how closely the
    induced equilibrium matches it and the coverage it achieves on ``f``.
    """
    k = check_positive_integer(k, "k")
    if policy is None:
        policy = SharingPolicy()
    f = values_array(values)
    target = optimal_coverage_strategy(f, k).strategy
    rewards = design_rewards_for_target(target, k, policy)
    induced = ideal_free_distribution(rewards, k, policy, use_closed_form=False, **solver_kwargs)
    deviation = float(np.abs(induced.strategy.as_array() - target.as_array()).max())
    return GrantDesign(
        rewards=rewards,
        induced_strategy=induced.strategy,
        induced_coverage=coverage(f, induced.strategy, k),
        target_strategy=target,
        max_deviation=deviation,
    )


def proportional_rewards(values: SiteValues | np.ndarray) -> np.ndarray:
    """The naive baseline: grants proportional to the social values (``r = f``)."""
    return values_array(values).copy()
