"""Reward-design mechanism in the spirit of Kleinberg & Oren (2011).

Setting: the congestion rule is fixed (researchers who pick the same topic
share the credit — the sharing policy), but a central entity can attach an
arbitrary *reward* ``r(x)`` to each site, decoupled from the site's social
value ``f(x)``.  The goal is to pick rewards whose induced equilibrium matches
a target distribution, typically the coverage-optimal ``sigma_star`` of the
underlying values.

Contrast with the paper's mechanism (changing the congestion rule while
keeping ``r = f``): reward design requires knowing the number of players ``k``
and the freedom to re-price sites, neither of which is available in ecological
settings; the congestion-policy route needs neither (Section 1.6 of the
paper).  Both implementations are provided so the benchmarks can compare them.

The public entry points are thin ``B = 1`` wrappers (original signatures)
over the batched kernels of :mod:`repro.batch.mechanism`, which design
grants for whole instance batches with mixed per-row player counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.mechanism import design_rewards_batch, optimal_grant_design_batch
from repro.core.policies import CongestionPolicy
from repro.core.strategy import Strategy
from repro.core.values import SiteValues
from repro.utils.coercion import values_array
from repro.utils.validation import check_positive_integer

__all__ = [
    "GrantDesign",
    "design_rewards_for_target",
    "optimal_grant_design",
    "proportional_rewards",
]


@dataclass(frozen=True)
class GrantDesign:
    """A designed reward vector and the equilibrium it induces.

    Attributes
    ----------
    rewards:
        Designed reward (grant) per site.
    induced_strategy:
        IFD of the game with rewards ``rewards`` under the design policy.
    induced_coverage:
        Coverage of the induced strategy measured with the *original* social
        values ``f`` (the planner cares about ``f``, not the grants).
    target_strategy:
        The distribution the design aimed for.
    max_deviation:
        ``max_x |induced(x) - target(x)|``.
    """

    rewards: np.ndarray
    induced_strategy: Strategy
    induced_coverage: float
    target_strategy: Strategy
    max_deviation: float


def design_rewards_for_target(
    target: Strategy,
    k: int,
    policy: CongestionPolicy | None = None,
    *,
    equilibrium_value: float = 1.0,
    off_support_fraction: float = 0.5,
) -> np.ndarray:
    """Rewards making ``target`` the IFD of the game under ``policy``.

    The IFD condition under rewards ``r`` is ``r(x) * g(p(x)) = v`` on the
    support (where ``g(q) = E[C(1 + Binomial(k-1, q))]``) and ``r(x) <= v``
    outside it.  Fixing the equilibrium value ``v`` (grants are scale free)
    gives ``r(x) = v / g(target(x))`` on the support; off-support sites get
    ``off_support_fraction * v``, small enough to stay unattractive but
    strictly positive so the game remains well posed.

    Raises ``ValueError`` when the congestion factor at the target occupancy is
    non-positive (the target is then not implementable with positive rewards,
    e.g. aggressive policies at high occupancy probabilities).

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.mechanism.design_rewards_batch`.
    """
    k = check_positive_integer(k, "k")
    return design_rewards_batch(
        target.as_array()[None, :],
        k,
        policy,
        equilibrium_value=equilibrium_value,
        off_support_fraction=off_support_fraction,
    )[0]


def optimal_grant_design(
    values: SiteValues | np.ndarray,
    k: int,
    policy: CongestionPolicy | None = None,
    **solver_kwargs,
) -> GrantDesign:
    """Design grants that steer the sharing-policy IFD to the coverage optimum.

    The target is ``sigma_star`` of the social values ``f`` (the symmetric
    strategy maximising coverage); the returned design reports how closely the
    induced equilibrium matches it and the coverage it achieves on ``f``.

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.mechanism.optimal_grant_design_batch`.
    """
    k = check_positive_integer(k, "k")
    batch = optimal_grant_design_batch([values], k, policy, **solver_kwargs)
    return batch.design(0)


def proportional_rewards(values: SiteValues | np.ndarray) -> np.ndarray:
    """The naive baseline: grants proportional to the social values (``r = f``)."""
    return values_array(values).copy()
