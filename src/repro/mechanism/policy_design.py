"""Designing the congestion rule itself (the paper's mechanism lever).

Here the rewards are pinned to the social values (``r = f``, as in ecology)
and the designer instead chooses the congestion function ``C``.  Theorems 4-6
say the optimal choice is the exclusive function; these helpers make that
statement quantitative:

* :func:`compare_policies` evaluates a roster of congestion policies on an
  instance, reporting equilibrium coverage and the per-instance SPoA;
* :func:`best_two_level_policy` sweeps the one-parameter family ``C_c`` of
  Figure 1 and returns the collision payoff ``c`` with the best equilibrium
  coverage — the ablation showing the maximum sits at ``c = 0``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import CongestionPolicy, TwoLevelPolicy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["PolicyComparison", "compare_policies", "best_two_level_policy"]


@dataclass(frozen=True)
class PolicyComparison:
    """Equilibrium outcome of one congestion policy on one instance."""

    policy_name: str
    equilibrium_coverage: float
    optimal_coverage: float
    spoa: float
    equilibrium_payoff: float
    support_size: int


def compare_policies(
    values: SiteValues | np.ndarray,
    k: int,
    policies: Sequence[CongestionPolicy],
    **solver_kwargs,
) -> list[PolicyComparison]:
    """Evaluate each policy's IFD coverage against the coverage optimum."""
    k = check_positive_integer(k, "k")
    best = optimal_coverage(values, k)
    rows: list[PolicyComparison] = []
    for policy in policies:
        result = ideal_free_distribution(values, k, policy, **solver_kwargs)
        eq_coverage = coverage(values, result.strategy, k)
        rows.append(
            PolicyComparison(
                policy_name=policy.name,
                equilibrium_coverage=float(eq_coverage),
                optimal_coverage=float(best),
                spoa=float(best / eq_coverage) if eq_coverage > 0 else float("inf"),
                equilibrium_payoff=float(result.value),
                support_size=result.support_size,
            )
        )
    return rows


def best_two_level_policy(
    values: SiteValues | np.ndarray,
    k: int,
    *,
    c_grid: np.ndarray | None = None,
    **solver_kwargs,
) -> tuple[float, list[PolicyComparison]]:
    """Sweep the collision payoff ``c`` of the two-level family and pick the best.

    Returns ``(best_c, rows)`` where ``rows`` holds one
    :class:`PolicyComparison` per grid point (in grid order).  Theorem 6
    predicts the best ``c`` to be 0 for every instance in which the exclusive
    support differs from the others' — the benchmarks confirm the maximiser of
    equilibrium coverage sits at ``c = 0`` on the Figure 1 instances.
    """
    if c_grid is None:
        c_grid = np.linspace(-0.5, 0.5, 41)
    policies = [TwoLevelPolicy(float(c)) for c in c_grid]
    rows = compare_policies(values, k, policies, **solver_kwargs)
    coverages = np.array([row.equilibrium_coverage for row in rows])
    best_index = int(np.argmax(coverages))
    return float(np.asarray(c_grid, dtype=float)[best_index]), rows
