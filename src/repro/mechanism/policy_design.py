"""Designing the congestion rule itself (the paper's mechanism lever).

Here the rewards are pinned to the social values (``r = f``, as in ecology)
and the designer instead chooses the congestion function ``C``.  Theorems 4-6
say the optimal choice is the exclusive function; these helpers make that
statement quantitative:

* :func:`compare_policies` evaluates a roster of congestion policies on an
  instance, reporting equilibrium coverage and the per-instance SPoA;
* :func:`best_two_level_policy` sweeps the one-parameter family ``C_c`` of
  Figure 1 and returns the collision payoff ``c`` with the best equilibrium
  coverage — the ablation showing the maximum sits at ``c = 0``.

Both are thin ``B = 1`` wrappers (original signatures) over the batched
roster sweeps of :mod:`repro.batch.mechanism`, which evaluate whole
``(instances x k x policy)`` grids per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.batch.mechanism import best_two_level_batch, compare_policies_batch
from repro.core.policies import CongestionPolicy
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["PolicyComparison", "compare_policies", "best_two_level_policy"]


@dataclass(frozen=True)
class PolicyComparison:
    """Equilibrium outcome of one congestion policy on one instance."""

    policy_name: str
    equilibrium_coverage: float
    optimal_coverage: float
    spoa: float
    equilibrium_payoff: float
    support_size: int


def compare_policies(
    values: SiteValues | np.ndarray,
    k: int,
    policies: Sequence[CongestionPolicy],
    **solver_kwargs,
) -> list[PolicyComparison]:
    """Evaluate each policy's IFD coverage against the coverage optimum.

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.mechanism.compare_policies_batch`.
    """
    k = check_positive_integer(k, "k")
    batch = compare_policies_batch([values], [k], list(policies), **solver_kwargs)
    return [batch.comparison(index, 0, 0) for index in range(len(batch.policy_names))]


def best_two_level_policy(
    values: SiteValues | np.ndarray,
    k: int,
    *,
    c_grid: np.ndarray | None = None,
    **solver_kwargs,
) -> tuple[float, list[PolicyComparison]]:
    """Sweep the collision payoff ``c`` of the two-level family and pick the best.

    Returns ``(best_c, rows)`` where ``rows`` holds one
    :class:`PolicyComparison` per grid point (in grid order).  Theorem 6
    predicts the best ``c`` to be 0 for every instance in which the exclusive
    support differs from the others' — the benchmarks confirm the maximiser of
    equilibrium coverage sits at ``c = 0`` on the Figure 1 instances.

    Thin ``B = 1`` wrapper over
    :func:`repro.batch.mechanism.best_two_level_batch` (same first-argmax
    tie-breaking in grid order).
    """
    k = check_positive_integer(k, "k")
    batch = best_two_level_batch([values], [k], c_grid=c_grid, **solver_kwargs)
    rows = [
        batch.comparisons.comparison(index, 0, 0)
        for index in range(batch.c_grid.size)
    ]
    return float(batch.best_c[0, 0]), rows
