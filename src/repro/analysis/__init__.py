"""Experiment harness: regenerate the paper's figure and theorem-level checks.

Each module corresponds to one experiment family of ``EXPERIMENTS.md``, and
each is a thin client of the :mod:`repro.experiments` registry/runner (the
heavy lifting happens in the batched solvers of :mod:`repro.batch`):

* :mod:`repro.analysis.figure1` — the coverage-vs-competition curves of
  Figure 1 (both panels, plus arbitrary instances); registered as ``figure1``;
* :mod:`repro.analysis.observation1` — the ``(1 - 1/e)`` coverage bound;
  registered as ``observation1``;
* :mod:`repro.analysis.spoa_experiments` — Corollary 5 / Theorem 6 /
  the sharing-policy ``SPoA <= 2`` bound; registered as ``spoa``;
* :mod:`repro.analysis.ess_experiments` — Theorem 3 audits; registered as
  ``ess``;
* :mod:`repro.analysis.sweeps` — generic parameter sweeps over ``(M, k, C)``;
  registered as ``sweep`` and ``dynamics``;
* :mod:`repro.analysis.scenario_experiments` — the Section-5 scenario sweeps
  on the batched kernels of :mod:`repro.batch.scenarios`; registered as
  ``travel-costs``, ``group-competition`` and ``repeated``;
* :mod:`repro.analysis.stochastic_experiments` — the batched stochastic
  layer's sweeps (:mod:`repro.batch.search` / :mod:`repro.batch.mechanism`);
  registered as ``search`` and ``mechanism``;
* :mod:`repro.analysis.reporting` / :mod:`repro.analysis.ascii_plot` — text
  tables and ASCII plots (the offline environment has no plotting backend).

Importing this package registers every built-in experiment, so
``repro.experiments.run_registered("spoa", quick=True)`` works immediately.
"""

from repro.analysis.figure1 import (
    Figure1Data,
    assemble_figure1_panels,
    figure1_data,
    figure1_panels,
    write_figure1_csv,
    write_panels_csv,
)
from repro.analysis.observation1 import (
    Observation1Row,
    default_value_families,
    observation1_experiment,
)
from repro.analysis.spoa_experiments import (
    CertificateRow,
    SharingBoundRow,
    SPoARow,
    spoa_experiment,
    theorem6_certificates,
)
from repro.analysis.ess_experiments import ESSRow, ess_experiment
from repro.analysis.sweeps import (
    SweepPointRow,
    SweepResult,
    assemble_sweep,
    coverage_ratio_sweep,
    support_size_sweep,
)
from repro.analysis.scenario_experiments import (
    GroupCompetitionRow,
    RepeatedDispersalRow,
    TravelCostRow,
    build_group_competition_spec,
    build_repeated_spec,
    build_travel_costs_spec,
)
from repro.analysis.stochastic_experiments import (
    GrantDesignRow,
    MechanismPolicyRow,
    SearchRow,
    build_mechanism_spec,
    build_search_spec,
)
from repro.analysis.reporting import render_report
from repro.analysis.ascii_plot import ascii_line_plot

__all__ = [
    "Figure1Data",
    "figure1_data",
    "figure1_panels",
    "write_figure1_csv",
    "write_panels_csv",
    "assemble_figure1_panels",
    "Observation1Row",
    "observation1_experiment",
    "default_value_families",
    "SPoARow",
    "CertificateRow",
    "SharingBoundRow",
    "spoa_experiment",
    "theorem6_certificates",
    "ESSRow",
    "ess_experiment",
    "SweepResult",
    "SweepPointRow",
    "assemble_sweep",
    "coverage_ratio_sweep",
    "support_size_sweep",
    "TravelCostRow",
    "build_travel_costs_spec",
    "GroupCompetitionRow",
    "build_group_competition_spec",
    "RepeatedDispersalRow",
    "build_repeated_spec",
    "SearchRow",
    "build_search_spec",
    "MechanismPolicyRow",
    "GrantDesignRow",
    "build_mechanism_spec",
    "render_report",
    "ascii_line_plot",
]
