"""Experiment harness: regenerate the paper's figure and theorem-level checks.

Each module corresponds to one experiment family of ``EXPERIMENTS.md``:

* :mod:`repro.analysis.figure1` — the coverage-vs-competition curves of
  Figure 1 (both panels, plus arbitrary instances);
* :mod:`repro.analysis.observation1` — the ``(1 - 1/e)`` coverage bound;
* :mod:`repro.analysis.spoa_experiments` — Corollary 5 / Theorem 6 /
  the sharing-policy ``SPoA <= 2`` bound;
* :mod:`repro.analysis.ess_experiments` — Theorem 3 audits;
* :mod:`repro.analysis.sweeps` — generic parameter sweeps over ``(M, k, C)``;
* :mod:`repro.analysis.reporting` / :mod:`repro.analysis.ascii_plot` — text
  tables and ASCII plots (the offline environment has no plotting backend).
"""

from repro.analysis.figure1 import Figure1Data, figure1_data, figure1_panels, write_figure1_csv
from repro.analysis.observation1 import Observation1Row, observation1_experiment
from repro.analysis.spoa_experiments import SPoARow, spoa_experiment, theorem6_certificates
from repro.analysis.ess_experiments import ESSRow, ess_experiment
from repro.analysis.sweeps import SweepResult, coverage_ratio_sweep, support_size_sweep
from repro.analysis.reporting import render_report
from repro.analysis.ascii_plot import ascii_line_plot

__all__ = [
    "Figure1Data",
    "figure1_data",
    "figure1_panels",
    "write_figure1_csv",
    "Observation1Row",
    "observation1_experiment",
    "SPoARow",
    "spoa_experiment",
    "theorem6_certificates",
    "ESSRow",
    "ess_experiment",
    "SweepResult",
    "coverage_ratio_sweep",
    "support_size_sweep",
    "render_report",
    "ascii_line_plot",
]
