"""Tiny dependency-free ASCII line plots.

The offline reproduction environment has no matplotlib, so the examples and
CLI render their curves as character rasters.  The plots are intentionally
simple: linear axes, one character per sample column, one symbol per curve.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

__all__ = ["ascii_line_plot"]

_SYMBOLS = "*o+x#@%&"


def ascii_line_plot(
    x: Sequence[float] | np.ndarray,
    curves: Mapping[str, Sequence[float] | np.ndarray],
    *,
    width: int = 72,
    height: int = 18,
    title: str | None = None,
) -> str:
    """Render ``curves`` over ``x`` as an ASCII raster.

    Parameters
    ----------
    x:
        Shared x-coordinates (must be non-empty and monotone increasing).
    curves:
        Mapping from curve label to y-values (same length as ``x``).
    width, height:
        Raster size in characters (axes excluded).
    title:
        Optional title line.
    """
    x_arr = np.asarray(x, dtype=float)
    if x_arr.size == 0:
        raise ValueError("x must not be empty")
    if np.any(np.diff(x_arr) < 0):
        raise ValueError("x must be monotone non-decreasing")
    if not curves:
        raise ValueError("at least one curve is required")
    if width < 8 or height < 4:
        raise ValueError("raster too small")

    y_all = []
    for label, ys in curves.items():
        ys_arr = np.asarray(ys, dtype=float)
        if ys_arr.shape != x_arr.shape:
            raise ValueError(f"curve {label!r} has a different length than x")
        y_all.append(ys_arr)
    y_stack = np.vstack(y_all)
    y_min, y_max = float(np.nanmin(y_stack)), float(np.nanmax(y_stack))
    if np.isclose(y_min, y_max):
        y_max = y_min + 1.0
    x_min, x_max = float(x_arr[0]), float(x_arr[-1])
    if np.isclose(x_min, x_max):
        x_max = x_min + 1.0

    raster = [[" "] * width for _ in range(height)]
    for curve_index, (label, ys) in enumerate(curves.items()):
        symbol = _SYMBOLS[curve_index % len(_SYMBOLS)]
        ys_arr = np.asarray(ys, dtype=float)
        cols = np.round((x_arr - x_min) / (x_max - x_min) * (width - 1)).astype(int)
        rows = np.round((ys_arr - y_min) / (y_max - y_min) * (height - 1)).astype(int)
        for col, row in zip(cols, rows):
            raster[height - 1 - row][col] = symbol

    lines = []
    if title:
        lines.append(title)
    legend = "   ".join(
        f"{_SYMBOLS[i % len(_SYMBOLS)]} {label}" for i, label in enumerate(curves.keys())
    )
    lines.append(legend)
    lines.append(f"y in [{y_min:.6g}, {y_max:.6g}]")
    border = "+" + "-" * width + "+"
    lines.append(border)
    lines.extend("|" + "".join(row) + "|" for row in raster)
    lines.append(border)
    lines.append(f"x in [{x_min:.6g}, {x_max:.6g}]")
    return "\n".join(lines)
