"""Turning experiment rows into human-readable text reports.

Every experiment module returns lists of small dataclasses; this module
renders them as aligned text tables (and, for the Figure 1 panels, as ASCII
plots), which is what the CLI prints and what ``EXPERIMENTS.md`` quotes.
"""

from __future__ import annotations

from dataclasses import asdict, is_dataclass
from typing import Iterable, Mapping, Sequence

from repro.analysis.ascii_plot import ascii_line_plot
from repro.analysis.figure1 import Figure1Data
from repro.utils.tables import format_table

__all__ = ["rows_to_table", "figure1_report", "render_report"]


def rows_to_table(rows: Sequence[object], *, precision: int = 6) -> str:
    """Render a list of dataclass rows (all of the same type) as a text table."""
    if not rows:
        return "(no rows)"
    first = rows[0]
    if not is_dataclass(first):
        raise TypeError("rows_to_table expects dataclass instances")
    headers = list(asdict(first).keys())
    body = []
    for row in rows:
        record = asdict(row)
        body.append([record[h] for h in headers])
    return format_table(headers, body, precision=precision)


def figure1_report(panels: Mapping[str, Figure1Data], *, plot: bool = True) -> str:
    """Readable report of the Figure 1 panels: key numbers plus ASCII plots."""
    sections: list[str] = []
    for name, panel in panels.items():
        headers = ["panel", "k", "optimal coverage", "ESS peak coverage", "peak at c", "peak gap"]
        row = [
            name,
            panel.k,
            panel.optimal_coverage,
            float(panel.ess_coverage.max()),
            panel.argmax_c,
            panel.peak_gap,
        ]
        sections.append(format_table(headers, [row]))
        if plot:
            sections.append(
                ascii_line_plot(
                    panel.c_grid,
                    {
                        "ESS coverage": panel.ess_coverage,
                        "optimal coverage": [panel.optimal_coverage] * panel.c_grid.size,
                        "welfare optimum": panel.welfare_optimum_coverage,
                    },
                    title=f"Figure 1 panel {name}: coverage vs competition extent c",
                )
            )
    return "\n\n".join(sections)


def render_report(title: str, sections: Iterable[tuple[str, str]]) -> str:
    """Assemble a multi-section text report with underlined headings."""
    parts = [title, "=" * len(title), ""]
    for heading, body in sections:
        parts.append(heading)
        parts.append("-" * len(heading))
        parts.append(body)
        parts.append("")
    return "\n".join(parts)
