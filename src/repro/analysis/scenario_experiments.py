"""Registered experiments for the Section-5 scenario extensions.

Three experiments sweep the scenario models over instance grids, each task
evaluating one *chunk* of grid cells in a single batched kernel call (the
same ``chunk_grid`` pattern as the ``dynamics`` experiment, so the
process-pool runner parallelises across chunks while every task amortises
its kernel over many rows):

* ``travel-costs`` — cost-adjusted equilibria
  (:func:`repro.batch.scenarios.cost_adjusted_ifd_batch`) over a
  ``(family x M x k x cost-scale)`` grid, reporting how visiting costs erode
  the equilibrium coverage relative to the cost-free optimum;
* ``group-competition`` — sequential two-group contests
  (:func:`repro.batch.scenarios.two_group_competition_batch`) over every
  ordered pair of a congestion-rule roster, quantifying the paper's
  "aggression can pay at the group level" discussion;
* ``repeated`` — expected multi-round depletion horizons
  (:func:`repro.batch.scenarios.repeated_dispersal_batch`) comparing the
  constant and adaptive ``sigma_star`` schedules across depletion factors.

The matching ``repro-dispersal travel-costs / group-competition / repeated``
CLI sub-commands are thin clients of these builders, sharing the common
``--seed/--json/--workers/--backend`` flags.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping, Sequence

import numpy as np

from repro.analysis.observation1 import make_family
from repro.batch import (
    PaddedValues,
    cost_adjusted_ifd_batch,
    coverage_batch,
    optimal_coverage_batch,
    repeated_dispersal_batch,
    two_group_competition_batch,
)
from repro.core.policies import (
    AggressivePolicy,
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    PowerLawPolicy,
    SharingPolicy,
)
from repro.experiments.registry import register_experiment
from repro.experiments.runner import chunk_grid, resolve_batch_rows
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import check_positive_integer

__all__ = [
    "POLICY_FACTORIES",
    "policy_from_name",
    "TravelCostRow",
    "travel_cost_task",
    "build_travel_costs_spec",
    "GroupCompetitionRow",
    "group_competition_task",
    "build_group_competition_spec",
    "RepeatedDispersalRow",
    "repeated_dispersal_task",
    "build_repeated_spec",
]

#: Named congestion-policy factories shared by the scenario experiments and
#: the CLI (names are stable identifiers used in specs and reports).
POLICY_FACTORIES = {
    "exclusive": ExclusivePolicy,
    "sharing": SharingPolicy,
    "constant": ConstantPolicy,
    "aggressive": lambda: AggressivePolicy(0.5),
    "power-law": lambda: PowerLawPolicy(2.0),
}


def policy_from_name(name: str) -> CongestionPolicy:
    """Resolve a stable policy name into a fresh policy object."""
    try:
        return POLICY_FACTORIES[str(name)]()
    except KeyError:
        available = ", ".join(sorted(POLICY_FACTORIES))
        raise ValueError(f"unknown policy {name!r}; available: {available}") from None


# --------------------------------------------------------------------------
# travel costs
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class TravelCostRow:
    """Cost-adjusted equilibrium of one ``(family, M, k, cost-scale)`` cell.

    ``coverage_ratio`` is the equilibrium coverage divided by the cost-free
    coverage optimum of the same ``(f, k)`` — it equals the plain coverage
    ratio when ``cost_scale == 0`` and generally drops below it as visiting
    gets expensive.
    """

    policy_name: str
    family: str
    m: int
    k: int
    cost_scale: float
    equilibrium_value: float
    support_size: int
    coverage: float
    optimal_coverage: float
    coverage_ratio: float
    converged: bool


def travel_cost_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[TravelCostRow]:
    """Runner task: one chunk of cells through one ``cost_adjusted_ifd_batch``.

    Every cell — a ``(family, M, k, cost_scale)`` tuple — becomes one row of
    a ragged, mixed-``k`` batch; costs are drawn uniformly in
    ``[0, cost_scale * mean(f)]`` per site from the task's deterministic
    generator.
    """
    policy: CongestionPolicy = params["policy"]
    cells = tuple(params["cells"])

    instances = [make_family(str(family), int(m), rng) for family, m, _, _ in cells]
    padded = PaddedValues.from_instances(instances)
    ks = np.asarray([int(k) for _, _, k, _ in cells], dtype=np.int64)
    scales = np.asarray([float(scale) for _, _, _, scale in cells])
    costs = np.zeros(padded.values.shape)
    for index, values in enumerate(instances):
        ceiling = scales[index] * float(values.as_array().mean())
        costs[index, : values.m] = rng.uniform(0.0, max(ceiling, 0.0), values.m)

    batch = cost_adjusted_ifd_batch(padded, costs, ks, policy)

    # Coverage of the cost-adjusted equilibrium against the cost-free optimum:
    # both solved for the distinct player counts in one batched pass, then
    # each row gathers its own k column.
    unique_ks = np.unique(ks)
    columns = np.searchsorted(unique_ks, ks)
    take = np.arange(padded.batch_size)
    optimal = optimal_coverage_batch(padded, unique_ks)[take, columns]
    coverages = coverage_batch(padded, batch.probabilities, unique_ks)[take, columns]

    rows = []
    for index, (values, (family, _, k, scale)) in enumerate(zip(instances, cells)):
        best = float(optimal[index])
        cover = float(coverages[index])
        rows.append(
            TravelCostRow(
                policy_name=policy.name,
                family=str(family),
                m=values.m,
                k=int(k),
                cost_scale=float(scale),
                equilibrium_value=float(batch.values[index]),
                support_size=int(batch.support_sizes[index]),
                coverage=cover,
                optimal_coverage=best,
                coverage_ratio=cover / best if best > 0 else float("nan"),
                converged=bool(batch.converged[index]),
            )
        )
    return rows


@register_experiment(
    "travel-costs",
    "Cost-adjusted equilibria over a (family, M, k, cost-scale) grid (Section 5.1)",
)
def build_travel_costs_spec(
    *,
    policy: CongestionPolicy | str = "sharing",
    families: Sequence[str] = ("zipf", "uniform", "geometric"),
    m_values: Sequence[int] = (6, 12),
    k_values: Sequence[int] = (2, 4, 8),
    cost_scales: Sequence[float] = (0.0, 0.1, 0.3),
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``travel-costs`` experiment.

    The full grid is flattened into cells and chunked into one task per
    ``batch_rows`` rows; each task solves its chunk in a single batched
    nested-bisection call.  ``cost_scales`` always deserves a ``0.0`` entry —
    those rows certify the reduction to the cost-free core model.
    """
    resolved = policy_from_name(policy) if isinstance(policy, str) else policy
    cells = [
        (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"), float(scale))
        for family in families
        for m in m_values
        for k in k_values
        for scale in cost_scales
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {"policy": resolved, "cells": chunk}
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="travel-costs",
        description=f"Cost-adjusted IFD under the {resolved.name} policy ({len(cells)} cells)",
        task=travel_cost_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policy": resolved.name,
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "cost_scales": tuple(float(s) for s in cost_scales),
            "batch_rows": int(batch_rows),
            "n_cells": len(cells),
        },
    )


# --------------------------------------------------------------------------
# two-group competition
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class GroupCompetitionRow:
    """Outcome of one sequential contest between two within-group rules."""

    first_policy: str
    second_policy: str
    family: str
    m: int
    k_first: int
    k_second: int
    first_consumption: float
    second_consumption: float
    first_share: float
    first_payoff: float
    second_payoff: float
    leftover_value: float


def group_competition_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[GroupCompetitionRow]:
    """Runner task: one chunk of policy-pair matchups in one batched call.

    Every cell — a ``(first, second, family, M)`` tuple of policy names and
    an instance family — becomes one row of the ``(B,)`` roster handed to
    :func:`~repro.batch.scenarios.two_group_competition_batch`; rows sharing
    a rule are solved in grouped :func:`~repro.batch.ifd.ifd_batch` passes.
    """
    cells = tuple(params["cells"])
    k_first = int(params["k_first"])
    k_second = int(params["k_second"])

    instances = [make_family(str(family), int(m), rng) for _, _, family, m in cells]
    padded = PaddedValues.from_instances(instances)
    # One policy object per distinct name, so the batch groups rows by rule.
    names = {name for first, second, _, _ in cells for name in (first, second)}
    policies = {name: policy_from_name(name) for name in names}
    firsts = [policies[first] for first, _, _, _ in cells]
    seconds = [policies[second] for _, second, _, _ in cells]

    batch = two_group_competition_batch(padded, firsts, seconds, k_first, k_second)
    return [
        GroupCompetitionRow(
            first_policy=str(first),
            second_policy=str(second),
            family=str(family),
            m=values.m,
            k_first=k_first,
            k_second=k_second,
            first_consumption=float(batch.first_consumption[index]),
            second_consumption=float(batch.second_consumption[index]),
            first_share=float(batch.first_shares[index]),
            first_payoff=float(batch.first_individual_payoffs[index]),
            second_payoff=float(batch.second_individual_payoffs[index]),
            leftover_value=float(batch.leftover_values[index]),
        )
        for index, (values, (first, second, family, _)) in enumerate(zip(instances, cells))
    ]


@register_experiment(
    "group-competition",
    "Sequential two-group contests over every ordered policy pair (Section 5.2)",
)
def build_group_competition_spec(
    *,
    policies: Sequence[str] = ("exclusive", "sharing", "aggressive"),
    families: Sequence[str] = ("zipf", "uniform"),
    m_values: Sequence[int] = (8, 16),
    k: int = 6,
    k_second: int | None = None,
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``group-competition`` experiment.

    The grid crosses every *ordered* pair of distinct policies with the
    instance families; the paper's prediction is that the exclusive rule
    weakly dominates when feeding first and concedes the least when second.
    """
    k = check_positive_integer(k, "k")
    k_second = k if k_second is None else check_positive_integer(k_second, "k_second")
    roster = [str(name) for name in policies]
    for name in roster:
        policy_from_name(name)  # fail fast on unknown names
    cells = [
        (first, second, str(family), check_positive_integer(int(m), "m"))
        for first in roster
        for second in roster
        if first != second
        for family in families
        for m in m_values
    ]
    batch_rows = resolve_batch_rows(batch_rows, len(cells))
    grid = [
        {"cells": chunk, "k_first": int(k), "k_second": int(k_second)}
        for chunk in chunk_grid(cells, batch_rows)
    ]
    return ExperimentSpec(
        name="group-competition",
        description=f"Two-group contests, k={k} vs k={k_second} ({len(cells)} matchups)",
        task=group_competition_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policies": tuple(roster),
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_first": int(k),
            "k_second": int(k_second),
            "batch_rows": int(batch_rows),
            "n_matchups": len(cells),
        },
    )


# --------------------------------------------------------------------------
# repeated dispersal
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class RepeatedDispersalRow:
    """Expected horizon outcome of one ``(schedule, depletion, family, M, k)`` cell."""

    schedule: str
    family: str
    m: int
    k: int
    rounds: int
    depletion: float
    cumulative_consumption: float
    remaining_value: float
    first_round: float
    last_round: float


def repeated_dispersal_task(
    params: Mapping[str, Any], rng: np.random.Generator
) -> list[RepeatedDispersalRow]:
    """Runner task: one chunk of horizons (single schedule) in one batched call."""
    schedule = str(params["schedule"])
    rounds = int(params["rounds"])
    cells = tuple(params["cells"])

    instances = [make_family(str(family), int(m), rng) for family, m, _, _ in cells]
    padded = PaddedValues.from_instances(instances)
    ks = np.asarray([int(k) for _, _, k, _ in cells], dtype=np.int64)
    depletions = np.asarray([float(d) for _, _, _, d in cells])

    batch = repeated_dispersal_batch(
        padded, ks, rounds=rounds, depletion=depletions, schedule=schedule
    )
    return [
        RepeatedDispersalRow(
            schedule=schedule,
            family=str(family),
            m=values.m,
            k=int(k),
            rounds=rounds,
            depletion=float(depletion),
            cumulative_consumption=float(batch.cumulative_consumption[index]),
            remaining_value=float(batch.remaining_values[index]),
            first_round=float(batch.per_round_consumption[index, 0]),
            last_round=float(batch.per_round_consumption[index, -1]),
        )
        for index, (values, (family, _, k, depletion)) in enumerate(zip(instances, cells))
    ]


@register_experiment(
    "repeated",
    "Expected multi-round depletion horizons, constant vs adaptive sigma_star",
)
def build_repeated_spec(
    *,
    schedules: Sequence[str] = ("adaptive", "constant"),
    families: Sequence[str] = ("zipf", "uniform"),
    m_values: Sequence[int] = (8, 16),
    k_values: Sequence[int] = (3, 6),
    depletions: Sequence[float] = (0.0, 0.25, 0.5),
    rounds: int = 6,
    batch_rows: int | None = None,
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``repeated`` experiment.

    Cells are chunked *per schedule* (the batched kernel evolves one schedule
    mode per call), so a task never mixes adaptive and constant rows.
    """
    rounds = check_positive_integer(rounds, "rounds")
    for schedule in schedules:
        if str(schedule) not in ("adaptive", "constant"):
            raise ValueError(f"unknown schedule {schedule!r} (adaptive or constant)")
    grid: list[dict[str, Any]] = []
    n_cells = 0
    for schedule in schedules:
        cells = [
            (str(family), check_positive_integer(int(m), "m"), check_positive_integer(int(k), "k"), float(d))
            for family in families
            for m in m_values
            for k in k_values
            for d in depletions
        ]
        n_cells += len(cells)
        # Same cell count per schedule, so the resolved value is loop-stable.
        batch_rows = resolve_batch_rows(batch_rows, len(cells))
        grid.extend(
            {"schedule": str(schedule), "rounds": int(rounds), "cells": chunk}
            for chunk in chunk_grid(cells, batch_rows)
        )
    return ExperimentSpec(
        name="repeated",
        description=f"Repeated dispersal over {rounds} rounds ({n_cells} horizons)",
        task=repeated_dispersal_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "schedules": tuple(str(s) for s in schedules),
            "families": tuple(str(f) for f in families),
            "m_values": tuple(int(m) for m in m_values),
            "k_values": tuple(int(k) for k in k_values),
            "depletions": tuple(float(d) for d in depletions),
            "rounds": int(rounds),
            "batch_rows": int(batch_rows),
            "n_horizons": n_cells,
        },
    )
