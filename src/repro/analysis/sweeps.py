"""Generic parameter sweeps over the dispersal game.

Two reusable sweeps back several benchmarks and examples:

* :func:`coverage_ratio_sweep` — for a roster of congestion policies, how the
  equilibrium coverage (relative to the optimum) changes with the number of
  players ``k``;
* :func:`support_size_sweep` — how the support ``W`` of ``sigma_star`` grows
  with ``k`` for different value-function shapes (the "how widely does intense
  competition spread the population" question).

Both sweeps evaluate their whole ``k`` grid in one :mod:`repro.batch` pass
per policy/family; the registered ``sweep`` experiment (one task per policy)
is what backs the ``repro-dispersal sweep`` CLI command.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

from repro.batch import sigma_star_batch, spoa_batch
from repro.core.policies import (
    CongestionPolicy,
    ConstantPolicy,
    ExclusivePolicy,
    SharingPolicy,
)
from repro.core.values import SiteValues
from repro.experiments.registry import register_experiment
from repro.experiments.spec import ExperimentSpec
from repro.utils.validation import check_positive_integer

__all__ = [
    "SweepResult",
    "SweepPointRow",
    "coverage_ratio_sweep",
    "support_size_sweep",
    "coverage_ratio_task",
    "build_sweep_spec",
    "assemble_sweep",
]


@dataclass(frozen=True)
class SweepResult:
    """A labelled family of curves over a shared x-axis."""

    x_label: str
    x_values: np.ndarray
    curves: dict[str, np.ndarray] = field(default_factory=dict)

    def as_series(self) -> dict[str, np.ndarray]:
        """Column view (x first) suitable for CSV output."""
        series = {self.x_label: self.x_values}
        series.update(self.curves)
        return series


@dataclass(frozen=True)
class SweepPointRow:
    """One ``(policy, k)`` point of a coverage-ratio sweep.

    ``task_index`` is the position of the policy in the spec grid; the
    assembler groups rows by it, so curves never have to be re-inferred from
    the (possibly duplicated) policy names or ``k`` values.
    """

    policy_name: str
    m: int
    k: int
    ratio: float
    task_index: int = 0


def _coverage_ratio_curve(
    values: SiteValues, policy: CongestionPolicy, ks: np.ndarray, **solver_kwargs
) -> np.ndarray:
    """Equilibrium/optimal coverage for one policy over a whole ``k`` grid."""
    batch = spoa_batch([values], ks, policy, **solver_kwargs)
    optimal = batch.optimal_coverages[0]
    equilibrium = batch.equilibrium_coverages[0]
    return np.where(optimal > 0, equilibrium / np.where(optimal > 0, optimal, 1.0), 0.0)


def coverage_ratio_task(params: Mapping[str, Any], rng: np.random.Generator) -> list[SweepPointRow]:
    """Runner task: one policy's coverage-ratio curve over the ``k`` grid."""
    policy: CongestionPolicy = params["policy"]
    values = SiteValues.from_values(np.asarray(params["values"], dtype=float))
    ks = np.asarray([int(k) for k in params["k_values"]], dtype=np.int64)
    task_index = int(params.get("task_index", 0))
    ratios = _coverage_ratio_curve(values, policy, ks)
    return [
        SweepPointRow(
            policy_name=policy.name,
            m=values.m,
            k=int(k),
            ratio=float(r),
            task_index=task_index,
        )
        for k, r in zip(ks, ratios)
    ]


@register_experiment("sweep", "Coverage-ratio sweep over k for a roster of policies")
def build_sweep_spec(
    *,
    policies: Sequence[CongestionPolicy] | None = None,
    values: SiteValues | Sequence[float] | None = None,
    m: int = 20,
    k_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    seed: int = 0,
) -> ExperimentSpec:
    """Spec builder of the ``sweep`` experiment (one task per policy).

    ``policies`` defaults to the three policies the paper names explicitly.
    """
    if policies is None:
        policies = [ExclusivePolicy(), SharingPolicy(), ConstantPolicy()]
    if values is None:
        values = SiteValues.zipf(check_positive_integer(m, "m"), exponent=1.0)
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(np.asarray(values))
    raw = tuple(float(v) for v in f.as_array())
    k_tuple = tuple(check_positive_integer(int(k), "k") for k in k_values)
    grid = [
        {"policy": policy, "values": raw, "k_values": k_tuple, "task_index": index}
        for index, policy in enumerate(policies)
    ]
    return ExperimentSpec(
        name="sweep",
        description=f"Equilibrium coverage / optimal coverage (M={f.m})",
        task=coverage_ratio_task,
        grid=tuple(grid),
        seed=int(seed),
        metadata={
            "policies": tuple(policy.name for policy in policies),
            "m": f.m,
            "k_values": k_tuple,
        },
    )


def assemble_sweep(rows: Sequence[SweepPointRow]) -> SweepResult:
    """Fold per-point rows into the labelled-curves view.

    Curves are grouped by the rows' ``task_index`` (the exact per-policy task
    boundary recorded by the spec builder); a second policy with the same
    display name is disambiguated with a suffix, matching
    :func:`coverage_ratio_sweep`.
    """
    groups: dict[int, list[SweepPointRow]] = {}
    for row in rows:
        groups.setdefault(row.task_index, []).append(row)
    curves: dict[str, np.ndarray] = {}
    k_axis: np.ndarray = np.empty(0)
    for task_index in sorted(groups):
        points = groups[task_index]
        name = points[0].policy_name
        if name in curves:
            name = f"{name}-{len(curves)}"
        curves[name] = np.asarray([p.ratio for p in points])
        if not k_axis.size:
            # Every task shares the spec's k grid (duplicates preserved).
            k_axis = np.asarray([p.k for p in points], dtype=float)
    return SweepResult(x_label="k", x_values=k_axis, curves=curves)


def coverage_ratio_sweep(
    values: SiteValues | np.ndarray,
    policies: Sequence[CongestionPolicy],
    *,
    k_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    **solver_kwargs,
) -> SweepResult:
    """Equilibrium coverage / optimal coverage, per policy, as ``k`` grows."""
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=np.int64)
    curves: dict[str, np.ndarray] = {}
    for policy in policies:
        name = policy.name
        if name in curves:
            name = f"{name}-{len(curves)}"
        curves[name] = _coverage_ratio_curve(f, policy, ks, **solver_kwargs)
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)


def support_size_sweep(
    value_families: dict[str, SiteValues],
    *,
    k_values: Sequence[int] = (2, 3, 5, 8, 13, 21, 34),
) -> SweepResult:
    """Support size ``W`` of ``sigma_star`` as a function of ``k`` for each family.

    Solved for every ``(family, k)`` cell in a single batched pass.
    """
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=np.int64)
    names = list(value_families)
    supports = sigma_star_batch(list(value_families.values()), ks).support_sizes
    curves = {
        name: supports[index].astype(float) for index, name in enumerate(names)
    }
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)
