"""Generic parameter sweeps over the dispersal game.

Two reusable sweeps back several benchmarks and examples:

* :func:`coverage_ratio_sweep` — for a roster of congestion policies, how the
  equilibrium coverage (relative to the optimum) changes with the number of
  players ``k``;
* :func:`support_size_sweep` — how the support ``W`` of ``sigma_star`` grows
  with ``k`` for different value-function shapes (the "how widely does intense
  competition spread the population" question).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.coverage import coverage
from repro.core.ifd import ideal_free_distribution
from repro.core.optimal_coverage import optimal_coverage
from repro.core.policies import CongestionPolicy
from repro.core.sigma_star import sigma_star
from repro.core.values import SiteValues
from repro.utils.validation import check_positive_integer

__all__ = ["SweepResult", "coverage_ratio_sweep", "support_size_sweep"]


@dataclass(frozen=True)
class SweepResult:
    """A labelled family of curves over a shared x-axis."""

    x_label: str
    x_values: np.ndarray
    curves: dict[str, np.ndarray] = field(default_factory=dict)

    def as_series(self) -> dict[str, np.ndarray]:
        """Column view (x first) suitable for CSV output."""
        series = {self.x_label: self.x_values}
        series.update(self.curves)
        return series


def coverage_ratio_sweep(
    values: SiteValues | np.ndarray,
    policies: Sequence[CongestionPolicy],
    *,
    k_values: Sequence[int] = (2, 3, 4, 6, 8, 12, 16),
    **solver_kwargs,
) -> SweepResult:
    """Equilibrium coverage / optimal coverage, per policy, as ``k`` grows."""
    f = values if isinstance(values, SiteValues) else SiteValues.from_values(values)
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=int)
    curves: dict[str, np.ndarray] = {}
    for policy in policies:
        ratios = np.empty(ks.size)
        for index, k in enumerate(ks):
            best = optimal_coverage(f, int(k))
            equilibrium = ideal_free_distribution(f, int(k), policy, **solver_kwargs)
            ratios[index] = coverage(f, equilibrium.strategy, int(k)) / best
        name = policy.name
        if name in curves:
            name = f"{name}-{len(curves)}"
        curves[name] = ratios
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)


def support_size_sweep(
    value_families: dict[str, SiteValues],
    *,
    k_values: Sequence[int] = (2, 3, 5, 8, 13, 21, 34),
) -> SweepResult:
    """Support size ``W`` of ``sigma_star`` as a function of ``k`` for each family."""
    ks = np.asarray([check_positive_integer(k, "k") for k in k_values], dtype=int)
    curves: dict[str, np.ndarray] = {}
    for name, values in value_families.items():
        supports = np.empty(ks.size)
        for index, k in enumerate(ks):
            supports[index] = sigma_star(values, int(k)).support_size
        curves[name] = supports
    return SweepResult(x_label="k", x_values=ks.astype(float), curves=curves)
